"""E-F9: Figure 9 -- DaCapo start-up compilation time.

Expected shape: consistent compilation-time reduction, correlated
with the performance changes of Figure 8.
"""

from benchmarks.conftest import run_figure
from repro.experiments.figures import figure9


def test_figure9(benchmark, ctx, results_dir):
    run_figure(benchmark, ctx, results_dir, figure9,
               "figure9")
