"""E-F9: Figure 9 -- DaCapo start-up compilation time.

Expected shape: consistent compilation-time reduction, correlated
with the performance changes of Figure 8.
"""

from benchmarks.conftest import save_result
from repro.experiments.figures import figure9


def test_figure9(benchmark, ctx, results_dir):
    payload = benchmark.pedantic(figure9, args=(ctx,), rounds=1,
                                 iterations=1)
    print()
    print(payload["text"])
    save_result(results_dir, "figure9", payload)
    assert payload["rows"]
    for bench_rows in payload["rows"].values():
        for mean, _ci in bench_rows.values():
            assert mean > 0
