"""E-F8: Figure 8 -- DaCapo start-up performance -- the generalization experiment.

Expected shape: models trained ONLY on SPECjvm98-like programs
still deliver a modest average start-up gain on the very different
DaCapo-like suite (the paper's 'pleasantly positive' result).
"""

from benchmarks.conftest import save_result
from repro.experiments.figures import figure8


def test_figure8(benchmark, ctx, results_dir):
    payload = benchmark.pedantic(figure8, args=(ctx,), rounds=1,
                                 iterations=1)
    print()
    print(payload["text"])
    save_result(results_dir, "figure8", payload)
    assert payload["rows"]
    for bench_rows in payload["rows"].values():
        for mean, _ci in bench_rows.values():
            assert mean > 0
