"""E-F8: Figure 8 -- DaCapo start-up performance -- the generalization experiment.

Expected shape: models trained ONLY on SPECjvm98-like programs
still deliver a modest average start-up gain on the very different
DaCapo-like suite (the paper's 'pleasantly positive' result).
"""

from benchmarks.conftest import run_figure
from repro.experiments.figures import figure8


def test_figure8(benchmark, ctx, results_dir):
    run_figure(benchmark, ctx, results_dir, figure8,
               "figure8")
