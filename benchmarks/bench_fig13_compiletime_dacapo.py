"""E-F13: Figure 13 -- DaCapo relative compilation time (throughput mode).

Expected shape: as Figure 12, on the unseen suite.
"""

from benchmarks.conftest import run_figure
from repro.experiments.figures import figure13


def test_figure13(benchmark, ctx, results_dir):
    run_figure(benchmark, ctx, results_dir, figure13,
               "figure13")
