"""E-F13: Figure 13 -- DaCapo relative compilation time (throughput mode).

Expected shape: as Figure 12, on the unseen suite.
"""

from benchmarks.conftest import save_result
from repro.experiments.figures import figure13


def test_figure13(benchmark, ctx, results_dir):
    payload = benchmark.pedantic(figure13, args=(ctx,), rounds=1,
                                 iterations=1)
    print()
    print(payload["text"])
    save_result(results_dir, "figure13", payload)
    assert payload["rows"]
    for bench_rows in payload["rows"].values():
        for mean, _ci in bench_rows.values():
            assert mean > 0
