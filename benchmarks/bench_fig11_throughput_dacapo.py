"""E-F11: Figure 11 -- DaCapo throughput performance (10 iterations).

Expected shape: as Figure 10 -- the adaptive baseline wins or ties
once code runs long enough to amortize compilation.
"""

from benchmarks.conftest import save_result
from repro.experiments.figures import figure11


def test_figure11(benchmark, ctx, results_dir):
    payload = benchmark.pedantic(figure11, args=(ctx,), rounds=1,
                                 iterations=1)
    print()
    print(payload["text"])
    save_result(results_dir, "figure11", payload)
    assert payload["rows"]
    for bench_rows in payload["rows"].values():
        for mean, _ci in bench_rows.values():
            assert mean > 0
