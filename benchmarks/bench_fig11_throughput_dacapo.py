"""E-F11: Figure 11 -- DaCapo throughput performance (10 iterations).

Expected shape: as Figure 10 -- the adaptive baseline wins or ties
once code runs long enough to amortize compilation.
"""

from benchmarks.conftest import run_figure
from repro.experiments.figures import figure11


def test_figure11(benchmark, ctx, results_dir):
    run_figure(benchmark, ctx, results_dir, figure11,
               "figure11")
