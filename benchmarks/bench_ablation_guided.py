"""E-A4 (extension): the guided modifier search -- the paper's future
work, implemented and measured.

Paper §5: "a heuristic-based search that evaluates the performance for
modifiers during data collection may focus the search on promising
regions within the space of possible modifiers.  The implementation of
such a search is left for future work."

This ablation compares the guided search (online mutation/crossover of
the best-scoring modifiers, `repro.collect.guided`) against the paper's
merged offline strategy at equal experiment budget, on two axes:

* **search efficiency** -- the mean Eq. 2 quality (best_V / V) of the
  non-null experiments each strategy spends its budget on;
* **downstream model quality** -- start-up performance and compile time
  of models trained from each strategy's data.

Expected shape: the guided search concentrates its experiments on
higher-quality plans (higher mean quality), supporting the paper's
conjecture; downstream model quality is at least comparable.
"""

import numpy as np

from benchmarks.conftest import save_result
from repro.experiments.evaluation import evaluate_benchmark
from repro.ml.pipeline import leave_one_out_models
from repro.ml.ranking import ranking_value, trigger_for_record


def _mean_quality(record_sets):
    """Mean Eq. 2 quality of non-null experiments, per feature vector."""
    qualities = []
    for rs in record_sets.values():
        best = {}
        values = []
        for record in rs:
            value = ranking_value(record, trigger_for_record(record))
            if value <= 0 or value == float("inf"):
                continue
            key = (tuple(record.features), record.level)
            if key not in best or value < best[key]:
                best[key] = value
            values.append((key, record.modifier_bits, value))
        for key, bits, value in values:
            if bits == 0:
                continue
            qualities.append(best[key] / value)
    return float(np.mean(qualities)) if qualities else 0.0


def run_ablation(ctx):
    rows = {}
    for search in ("merged", "guided"):
        record_sets = ctx.record_sets(search=search)
        models = leave_one_out_models(record_sets)
        program = ctx.program("specjvm", "javac")
        result = evaluate_benchmark(
            program, models, iterations=1,
            replications=max(2, ctx.replications),
            master_seed=ctx.master_seed)
        rows[search] = {
            "mean_quality": _mean_quality(record_sets),
            "records": sum(len(rs) for rs in record_sets.values()),
            "performance": float(np.mean(
                [result.relative_performance(m).mean
                 for m in result.models()])),
            "compile_time": float(np.mean(
                [result.relative_compile_time(m).mean
                 for m in result.models()])),
        }
    lines = ["Ablation: guided search (the paper's future work) vs "
             "merged offline search",
             f"{'strategy':8s} {'records':>8s} {'mean quality':>13s} "
             f"{'rel perf':>9s} {'rel compile':>12s}"]
    for search, row in rows.items():
        lines.append(f"{search:8s} {row['records']:8d} "
                     f"{row['mean_quality']:13.3f} "
                     f"{row['performance']:9.3f} "
                     f"{row['compile_time']:12.3f}")
    return {"rows": rows, "text": "\n".join(lines)}


def test_guided_search_ablation(benchmark, ctx, results_dir):
    payload = benchmark.pedantic(run_ablation, args=(ctx,), rounds=1,
                                 iterations=1)
    print()
    print(payload["text"])
    save_result(results_dir, "ablation_guided", payload)
    rows = payload["rows"]
    for row in rows.values():
        assert row["records"] > 0
        assert row["performance"] > 0
