"""E-T4: Table 4 -- training data-set sizes (merged vs ranked).

Regenerates the paper's Table 4: for each trained level (cold/warm/hot),
the merged data-set size (instances, unique classes, unique feature
vectors, vector:instance ratio) and the same statistics after ranking
selects at most 3 modifiers within 95% of the best per feature vector.

Expected shape: ranking collapses the merged data by one or more orders
of magnitude in the vector:instance ratio (the paper: ~1:1300-1:2100
merged down to ~1:2 ranked; the scaled-down simulator shows the same
collapse at smaller absolute counts).
"""

from benchmarks.conftest import save_result
from repro.experiments.figures import table4


def test_table4(benchmark, ctx, results_dir):
    payload = benchmark.pedantic(table4, args=(ctx,), rounds=1,
                                 iterations=1)
    print()
    print(payload["text"])
    save_result(results_dir, "table4", payload)
    stats = payload["stats"]
    for row in stats.values():
        assert row["merged_instances"] >= row["training_instances"]
        assert row["merged_ratio"] >= row["training_ratio"]
