"""E-A2: ablation of the ranking-selection strategy (paper §6).

The pipeline supports the three selection strategies the paper
describes: the single best modifier per feature vector, the top-N (the
paper's models use N = 3 with the 95%-of-best rule), and the top-M%.
This ablation trains a model set per strategy and compares prediction
behaviour and training-set size.

Expected shape: 'best' yields the smallest training set (1 instance per
vector); 'top_n' multiplies instances by up to N while keeping only
near-optimal plans; 'top_percent' scales with the exploration depth.
"""

import numpy as np

from benchmarks.conftest import save_result
from repro.jit.plans import OptLevel
from repro.ml.pipeline import TrainingPipeline, merge_record_sets


def run_ablation(ctx):
    merged = merge_record_sets(ctx.record_sets())
    rows = {}
    for strategy, kwargs in (
            ("best", {}),
            ("top_n", {"top_n": 3, "quality_floor": 0.95}),
            ("top_percent", {}),
    ):
        pipeline = TrainingPipeline(levels=(OptLevel.HOT,),
                                    strategy=strategy, **kwargs)
        model_set = pipeline.train(merged, name=strategy)
        ranked = pipeline.ranked[OptLevel.HOT]
        model = model_set.model_for(OptLevel.HOT)
        bits = [model.predict_modifier(
            np.array(inst.features)).count_disabled()
            for inst in ranked.instances[:40]]
        rows[strategy] = {
            "training_instances": len(ranked.instances),
            "training_classes": len(ranked.unique_classes()),
            "mean_predicted_disabled": float(np.mean(bits)),
            "training_seconds":
                pipeline.training_seconds[OptLevel.HOT],
        }
    lines = ["Ablation: ranking selection strategy (hot level)",
             f"{'strategy':12s} {'instances':>10s} {'classes':>8s} "
             f"{'pred.bits':>10s} {'train s':>8s}"]
    for strategy, row in rows.items():
        lines.append(
            f"{strategy:12s} {row['training_instances']:10d} "
            f"{row['training_classes']:8d} "
            f"{row['mean_predicted_disabled']:10.1f} "
            f"{row['training_seconds']:8.2f}")
    return {"rows": rows, "text": "\n".join(lines)}


def test_ranking_strategy_ablation(benchmark, ctx, results_dir):
    payload = benchmark.pedantic(run_ablation, args=(ctx,), rounds=1,
                                 iterations=1)
    print()
    print(payload["text"])
    save_result(results_dir, "ablation_ranking", payload)
    rows = payload["rows"]
    assert rows["best"]["training_instances"] \
        <= rows["top_n"]["training_instances"]
