"""E-HP: host wall-clock cost of the execution engines themselves.

Unlike the figure drivers (which report *virtual* cycles), this driver
times the simulator on the host: the retained legacy if/elif loop, the
predecoded table-driven dispatch, and the superinstruction block
compiler, over interpreter-only / JIT steady-state / mixed adaptive,
median-of-5.  The same harness backs the ``repro bench`` CLI; here it
runs in quick mode so the benchmark suite stays fast.
"""

import json
import os

from benchmarks.conftest import save_result
from repro.experiments.hostperf import (NULL_TRACER_BUDGET,
                                        TRACER_MODES, render, run_bench)


def test_hostperf(benchmark, results_dir):
    result = benchmark.pedantic(run_bench, kwargs={"quick": True},
                                rounds=1, iterations=1)
    text = render(result)
    print()
    print(text)
    save_result(results_dir, "hostperf", {"text": text})
    with open(os.path.join(results_dir, "hostperf.json"), "w",
              encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
    for cells in result["results"].values():
        for mode, cell in cells.items():
            assert cell["cycles_identical"]
            assert cell["speedup"] > 1.0
            if mode == "jit":
                # Steady state is where block fusion must pay off.
                assert cell["superop_speedup"] >= 1.5
            elif mode == "mixed":
                # Fusion cost lands inside the timed region here; the
                # engine must not lose what dispatch savings buy
                # (0.9 rather than 1.0 absorbs quick-mode sample noise).
                assert cell["superop_speedup"] >= 0.9
    assert result["summary"]["min_interp_speedup"] >= 1.8
    assert result["summary"]["min_superop_jit_speedup"] >= 1.5
    # Tracer-overhead column: off vs null vs recording, with the null
    # tracer inside the published budget and virtual time untouched.
    overhead = result["tracer_overhead"]
    assert set(overhead["modes"]) == set(TRACER_MODES)
    assert overhead["cycles_identical"]
    assert overhead["null_overhead"] < NULL_TRACER_BUDGET
    assert result["summary"]["null_tracer_overhead"] == \
        overhead["null_overhead"]
