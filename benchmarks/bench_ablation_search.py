"""E-A1: ablation of the modifier-search strategy (paper §8.1).

The paper: "Separate models for each search strategy were also trained
and measured, but they did not perform as well as the models that
combine both strategies."  This ablation collects data with the pure
randomized search, the progressive randomized search, and their merge,
trains a model set from each, and compares start-up performance and
compile time on a reserved benchmark.

Expected shape: the merged-strategy models are at least as good as the
better single strategy (they never lose information), and the two single
strategies explore visibly different modifier populations.
"""

import numpy as np

from benchmarks.conftest import save_result
from repro.experiments.evaluation import evaluate_benchmark
from repro.ml.pipeline import leave_one_out_models


def _evaluate_search(ctx, search):
    record_sets = ctx.record_sets(search=search)
    model_sets = leave_one_out_models(record_sets)
    program = ctx.program("specjvm", "javac")  # reserved benchmark
    result = evaluate_benchmark(program, model_sets, iterations=1,
                                replications=max(2, ctx.replications),
                                master_seed=ctx.master_seed)
    perf = np.mean([result.relative_performance(m).mean
                    for m in result.models()])
    comp = np.mean([result.relative_compile_time(m).mean
                    for m in result.models()])
    bits = np.mean([
        bin(r.modifier_bits).count("1")
        for rs in record_sets.values() for r in rs if r.modifier_bits])
    return {"performance": float(perf), "compile_time": float(comp),
            "mean_disabled_bits": float(bits)}


def run_ablation(ctx):
    rows = {search: _evaluate_search(ctx, search)
            for search in ("random", "progressive", "merged")}
    lines = ["Ablation: modifier search strategy (javac, start-up)",
             f"{'strategy':12s} {'rel perf':>9s} {'rel compile':>12s} "
             f"{'bits':>6s}"]
    for search, row in rows.items():
        lines.append(f"{search:12s} {row['performance']:9.3f} "
                     f"{row['compile_time']:12.3f} "
                     f"{row['mean_disabled_bits']:6.1f}")
    return {"rows": rows, "text": "\n".join(lines)}


def test_search_strategy_ablation(benchmark, ctx, results_dir):
    payload = benchmark.pedantic(run_ablation, args=(ctx,), rounds=1,
                                 iterations=1)
    print()
    print(payload["text"])
    save_result(results_dir, "ablation_search", payload)
    rows = payload["rows"]
    # Progressive search stays closer to the original plan.
    assert rows["progressive"]["mean_disabled_bits"] \
        < rows["random"]["mean_disabled_bits"]
    for row in rows.values():
        assert row["performance"] > 0
