"""E-F6: Figure 6 -- SPECjvm98 start-up performance (1 iteration per JVM invocation).

Expected shape: the learned models beat the unmodified baseline on
average for start-up (the paper reports +10%..+22%; the simulator shows
a uniform but smaller gain), with leave-one-out single bars for the five
training benchmarks and five bars for the reserved ones.
"""

from benchmarks.conftest import save_result
from repro.experiments.figures import figure6


def test_figure6(benchmark, ctx, results_dir):
    payload = benchmark.pedantic(figure6, args=(ctx,), rounds=1,
                                 iterations=1)
    print()
    print(payload["text"])
    save_result(results_dir, "figure6", payload)
    assert payload["rows"]
    for bench_rows in payload["rows"].values():
        for mean, _ci in bench_rows.values():
            assert mean > 0
