"""E-F6: Figure 6 -- SPECjvm98 start-up performance (1 iteration per JVM invocation).

Expected shape: the learned models beat the unmodified baseline on
average for start-up (the paper reports +10%..+22%; the simulator shows
a uniform but smaller gain), with leave-one-out single bars for the five
training benchmarks and five bars for the reserved ones.
"""

from benchmarks.conftest import run_figure
from repro.experiments.figures import figure6


def test_figure6(benchmark, ctx, results_dir):
    run_figure(benchmark, ctx, results_dir, figure6,
               "figure6")
