"""Shared fixtures for the figure/table benchmark drivers.

Every driver reuses one :class:`EvaluationContext` (collection + training
are cached on disk under ``.repro_cache/``), so a full
``pytest benchmarks/ --benchmark-only`` run collects data and trains the
five model sets once and then regenerates each table/figure.

Generated outputs are also written to ``.repro_cache/results/`` so they
can be inspected after the run (and pasted into EXPERIMENTS.md).
"""

import os

import pytest

from repro.experiments import EvaluationContext


@pytest.fixture(scope="session")
def ctx():
    return EvaluationContext()


@pytest.fixture(scope="session")
def results_dir(ctx):
    path = os.path.join(ctx.cache_dir, "results")
    os.makedirs(path, exist_ok=True)
    return path


def save_result(results_dir, name, payload):
    path = os.path.join(results_dir, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload["text"] + "\n")
    return path


def run_figure(benchmark, ctx, results_dir, fn, name):
    """The shared body of every figure driver: generate once under the
    benchmark fixture, print + save the text block, and sanity-check
    that each (model, benchmark) cell carries a positive mean."""
    payload = benchmark.pedantic(fn, args=(ctx,), rounds=1,
                                 iterations=1)
    print()
    print(payload["text"])
    save_result(results_dir, name, payload)
    assert payload["rows"]
    for bench_rows in payload["rows"].values():
        for mean, _ci in bench_rows.values():
            assert mean > 0
    return payload
