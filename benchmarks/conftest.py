"""Shared fixtures for the figure/table benchmark drivers.

Every driver reuses one :class:`EvaluationContext` (collection + training
are cached on disk under ``.repro_cache/``), so a full
``pytest benchmarks/ --benchmark-only`` run collects data and trains the
five model sets once and then regenerates each table/figure.

Generated outputs are also written to ``.repro_cache/results/`` so they
can be inspected after the run (and pasted into EXPERIMENTS.md).
"""

import os

import pytest

from repro.experiments import EvaluationContext


@pytest.fixture(scope="session")
def ctx():
    return EvaluationContext()


@pytest.fixture(scope="session")
def results_dir(ctx):
    path = os.path.join(ctx.cache_dir, "results")
    os.makedirs(path, exist_ok=True)
    return path


def save_result(results_dir, name, payload):
    path = os.path.join(results_dir, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload["text"] + "\n")
    return path
