"""E-F7: Figure 7 -- SPECjvm98 start-up compilation time.

Expected shape: compilation time drops well below 1.0 for every
model (the paper: less than half on average, with up to 5x on jess).
"""

from benchmarks.conftest import run_figure
from repro.experiments.figures import figure7


def test_figure7(benchmark, ctx, results_dir):
    run_figure(benchmark, ctx, results_dir, figure7,
               "figure7")
