"""E-F7: Figure 7 -- SPECjvm98 start-up compilation time.

Expected shape: compilation time drops well below 1.0 for every
model (the paper: less than half on average, with up to 5x on jess).
"""

from benchmarks.conftest import save_result
from repro.experiments.figures import figure7


def test_figure7(benchmark, ctx, results_dir):
    payload = benchmark.pedantic(figure7, args=(ctx,), rounds=1,
                                 iterations=1)
    print()
    print(payload["text"])
    save_result(results_dir, "figure7", payload)
    assert payload["rows"]
    for bench_rows in payload["rows"].values():
        for mean, _ci in bench_rows.values():
            assert mean > 0
