"""E-K: the §6 kernel-selection study -- linear vs RBF.

The paper found that the RBF kernel *trains* in about 20% of the linear
model's time, but a trained RBF model can take up to 660 ms per
prediction versus 48 us for the linear model (four orders of magnitude)
-- far too slow for use inside a JIT, whose highest-level compiles take
100-220 ms.  Expected shape here: RBF trains faster; RBF predicts more
slowly, with the gap widening with training-set size.
"""

from benchmarks.conftest import save_result
from repro.experiments.figures import kernel_study


def test_kernel_selection(benchmark, ctx, results_dir):
    payload = benchmark.pedantic(kernel_study, args=(ctx,), rounds=1,
                                 iterations=1)
    print()
    print(payload["text"])
    save_result(results_dir, "kernel_study", payload)
    # RBF trains faster than the linear Crammer-Singer solver...
    assert payload["rbf_train_s"] < payload["linear_train_s"]
    # ...but predicts more slowly (the reason the paper rejects it).
    assert payload["rbf_predict_s"] > payload["linear_predict_s"]
