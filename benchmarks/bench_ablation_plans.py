"""E-A3: ablation of the hand-tuned plan ladder itself.

Not a paper table, but the design question the paper motivates: how much
does each optimization level's plan actually buy, and at what compile
cost?  For one benchmark we compile every method at a single fixed level
and measure code quality (total run cycles, warmed) against compile
cycles -- the quality/effort frontier the adaptive controller and the
learned models both navigate.

Expected shape: higher levels monotonically increase compile cost;
run-time improves with level but with strongly diminishing returns
(most of the win arrives by warm/hot -- why Testarossa compiles most
methods at warm).
"""

from benchmarks.conftest import save_result
from repro.jit.compiler import JitCompiler
from repro.jit.plans import OptLevel
from repro.jvm.bytecode import JType
from repro.jvm.vm import VirtualMachine


def run_frontier(ctx):
    program = ctx.program("specjvm", "mtrt")
    rows = {}
    for level in OptLevel:
        vm = VirtualMachine()
        vm.load_program(program)
        compiler = JitCompiler(method_resolver=vm._methods.get)
        compiled = {}
        compile_cycles = 0
        for method in program.methods():
            out = compiler.compile(method, level)
            compiled[method.signature] = out
            compile_cycles += out.compile_cycles

        class Precompiled:
            def on_attach(self, vm):
                pass

            def on_invoke(self, method, count):
                pass

            def on_sample(self, method):
                pass

            def on_return(self, method, c):
                pass

            def compiled_for(self, method, now):
                return compiled.get(method.signature)

        vm.attach_manager(Precompiled())
        vm.call(program.entry, 3)
        rows[level.name] = {
            "compile_cycles": compile_cycles,
            "run_cycles": vm.clock.now(),
        }
    lines = ["Ablation: fixed-level quality/effort frontier (mtrt)",
             f"{'level':10s} {'compile cyc':>12s} {'run cyc':>10s}"]
    for name, row in rows.items():
        lines.append(f"{name:10s} {row['compile_cycles']:12d} "
                     f"{row['run_cycles']:10d}")
    return {"rows": rows, "text": "\n".join(lines)}


def test_plan_ladder_frontier(benchmark, ctx, results_dir):
    payload = benchmark.pedantic(run_frontier, args=(ctx,), rounds=1,
                                 iterations=1)
    print()
    print(payload["text"])
    save_result(results_dir, "ablation_plans", payload)
    rows = payload["rows"]
    costs = [rows[lv.name]["compile_cycles"] for lv in OptLevel]
    assert costs == sorted(costs)  # effort grows with level
    # Code quality: the hottest plan must beat the coldest.
    assert rows["SCORCHING"]["run_cycles"] \
        <= rows["COLD"]["run_cycles"]
