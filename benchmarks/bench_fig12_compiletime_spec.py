"""E-F12: Figure 12 -- SPECjvm98 relative compilation time (throughput mode).

Expected shape: the compilation-time reduction persists under
throughput measurement (paper: consistent, significant reduction).
"""

from benchmarks.conftest import run_figure
from repro.experiments.figures import figure12


def test_figure12(benchmark, ctx, results_dir):
    run_figure(benchmark, ctx, results_dir, figure12,
               "figure12")
