"""E-F12: Figure 12 -- SPECjvm98 relative compilation time (throughput mode).

Expected shape: the compilation-time reduction persists under
throughput measurement (paper: consistent, significant reduction).
"""

from benchmarks.conftest import save_result
from repro.experiments.figures import figure12


def test_figure12(benchmark, ctx, results_dir):
    payload = benchmark.pedantic(figure12, args=(ctx,), rounds=1,
                                 iterations=1)
    print()
    print(payload["text"])
    save_result(results_dir, "figure12", payload)
    assert payload["rows"]
    for bench_rows in payload["rows"].values():
        for mean, _ci in bench_rows.values():
            assert mean > 0
