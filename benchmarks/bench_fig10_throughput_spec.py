"""E-F10: Figure 10 -- SPECjvm98 throughput performance (10 iterations).

Expected shape: the learned models do NOT beat the hand-tuned
baseline for throughput on average (isolated exceptions such as javac
are consistent with the paper), and variance between models is smaller
than at start-up.
"""

from benchmarks.conftest import save_result
from repro.experiments.figures import figure10


def test_figure10(benchmark, ctx, results_dir):
    payload = benchmark.pedantic(figure10, args=(ctx,), rounds=1,
                                 iterations=1)
    print()
    print(payload["text"])
    save_result(results_dir, "figure10", payload)
    assert payload["rows"]
    for bench_rows in payload["rows"].values():
        for mean, _ci in bench_rows.values():
            assert mean > 0
