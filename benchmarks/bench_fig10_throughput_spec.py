"""E-F10: Figure 10 -- SPECjvm98 throughput performance (10 iterations).

Expected shape: the learned models do NOT beat the hand-tuned
baseline for throughput on average (isolated exceptions such as javac
are consistent with the paper), and variance between models is smaller
than at start-up.
"""

from benchmarks.conftest import run_figure
from repro.experiments.figures import figure10


def test_figure10(benchmark, ctx, results_dir):
    run_figure(benchmark, ctx, results_dir, figure10,
               "figure10")
