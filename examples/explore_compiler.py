#!/usr/bin/env python
"""A tour of the JIT: IL, optimization levels, plan modifiers.

Compiles one method at every optimization level, shows the tree IL
before and after optimization, the generated virtual-native code, and
what happens when a compilation-plan modifier disables transformations.

Run:  python examples/explore_compiler.py
"""

from repro.jit.compiler import JitCompiler
from repro.jit.ir.ilgen import generate_il
from repro.jit.modifiers import Modifier
from repro.jit.opt.registry import transform_index, transform_names
from repro.jit.plans import OptLevel, default_plans
from repro.jvm.asm import Assembler
from repro.jvm.bytecode import JType
from repro.jvm.classfile import JClass, JMethod
from repro.jvm.vm import VirtualMachine


def build_method():
    """sum of (i*6 + x*12) for i in 0..n-1 -- plenty to optimize."""
    a = Assembler()
    a.iconst(0).store(1)                      # acc
    a.load(0).iconst(12).mul().store(2)       # invariant x*12
    a.iconst(0).store(3)                      # i
    top = a.label()
    a.load(3).load(0).cmp().ifge("end")
    a.load(1).load(3).iconst(6).mul().add().load(2).add().store(1)
    a.inc(3, 1).goto(top)
    a.mark("end")
    a.load(1).retval()
    return JMethod("Demo", "kernel", [JType.INT], JType.INT,
                   a.assemble(), num_temps=3)


def main():
    method = build_method()
    jclass = JClass("Demo")
    jclass.add_method(method)

    il, cost = generate_il(method)
    print("== tree IL straight out of the IL generator "
          f"(cost {cost} cycles) ==")
    print(il.dump())

    plans = default_plans()
    print("\n== the five compilation plans ==")
    for level, plan in plans.items():
        print(f"  {level.name:10s} {len(plan):3d} entries, "
              f"{len(set(plan.entries)):2d} distinct transformations")

    compiler = JitCompiler(method_resolver=lambda s: None)
    print("\n== compiling at every level ==")
    print(f"{'level':10s} {'compile cyc':>12s} {'code size':>10s} "
          f"{'run cyc (n=40)':>15s}")
    for level in OptLevel:
        compiled = compiler.compile(method, level)
        vm = VirtualMachine()
        vm.load_class(JClass("Demo2"))
        value, _ = compiled.execute(vm, [(40, JType.INT)])
        print(f"{level.name:10s} {compiled.compile_cycles:>12,} "
              f"{compiled.native.size():>10d} {vm.clock.now():>15,}"
              f"   (result {value})")

    print("\n== a modifier disabling the loop transformations ==")
    loop_passes = [n for n in transform_names() if "loop" in n.lower()]
    modifier = Modifier.disabling(
        [transform_index(n) for n in loop_passes])
    base = compiler.compile(method, OptLevel.SCORCHING)
    masked = compiler.compile(method, OptLevel.SCORCHING,
                              modifier=modifier)
    print(f"  disabled: {', '.join(loop_passes)}")
    print(f"  compile cycles {base.compile_cycles:,} -> "
          f"{masked.compile_cycles:,}")
    for label, compiled in (("full plan", base), ("masked", masked)):
        vm = VirtualMachine()
        value, _ = compiled.execute(vm, [(40, JType.INT)])
        print(f"  {label:10s}: {vm.clock.now():>8,} run cycles "
              f"(result {value})")

    print("\n== the scorching-compiled native code ==")
    print(base.native.listing())


if __name__ == "__main__":
    main()
