#!/usr/bin/env python
"""Look inside a trained model and inside the compiler it drives.

Shows three diagnostics the paper's workflow needs but does not print:

1. which features the model actually uses (§4.1 reduced the feature set
   based on exactly this invariance evidence);
2. what a predicted modifier does to a real compilation, pass by pass
   (the tracing manager);
3. the method's control-flow graph, in Graphviz format.

Run:  python examples/inspect_model.py
"""

from repro.experiments import EvaluationContext
from repro.jit.ir.ilgen import generate_il
from repro.jit.opt.trace import TracingManager, cfg_to_dot
from repro.jit.plans import OptLevel, default_plans
from repro.ml.analysis import feature_report
from repro.ml.pipeline import merge_record_sets


def main():
    ctx = EvaluationContext(preset="tiny")
    print("collecting + training (tiny preset)...\n")
    record_sets = ctx.record_sets()
    model_set = ctx.model_sets()["H1"]
    merged = merge_record_sets(record_sets)

    hot_model = model_set.model_for(OptLevel.HOT)
    print(feature_report(merged.records, hot_model))

    # Pick a real collected method and trace its compilation under the
    # model's predicted modifier.
    program = ctx.program("specjvm", "mtrt")
    method = max(program.methods(),
                 key=lambda m: m.has_backward_branch())
    il, _ = generate_il(method,
                        resolve_return_type=lambda s: None)
    il2, _ = generate_il(method)
    from repro.features import extract_features
    features = extract_features(il2)
    modifier = hot_model.predict_modifier(features)
    print(f"\npredicted modifier for {method.signature}: "
          f"{modifier.count_disabled()} of 58 transformations "
          "disabled")
    from repro.jit.opt.registry import transform_names
    disabled = [transform_names()[i]
                for i in modifier.disabled_indices()]
    print("  disabled:", ", ".join(disabled[:10]),
          "..." if len(disabled) > 10 else "")

    plan = default_plans()[OptLevel.HOT]
    tracer = TracingManager(plan.entries, modifier=modifier)
    il3, _ = generate_il(method)
    tracer.optimize(il3)
    print("\npass trace (changed passes only):")
    print(tracer.report(only_changed=True))
    print(f"\n{len(tracer.masked_passes())} plan entries were masked "
          "by the modifier")

    print("\nCFG of the optimized method (Graphviz):")
    print(cfg_to_dot(il3))


if __name__ == "__main__":
    main()
