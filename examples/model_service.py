#!/usr/bin/env python
"""The out-of-process model service (paper §7).

Trains a small model set, serves it over real named pipes, and attaches
a learning-enabled compilation manager whose Strategy Control consults
the model through the lean binary protocol.  Then swaps in a *different*
model set without touching the compiler side -- the architectural
property the paper highlights.

Run:  python examples/model_service.py
"""

import tempfile
import threading

from repro.experiments import EvaluationContext
from repro.experiments.measure import run_once
from repro.jit.compiler import JitCompiler
from repro.jit.control import CompilationManager
from repro.jvm.vm import VirtualMachine
from repro.service.client import ModelClient
from repro.service.server import make_fifo_pair, serve_over_fifos
from repro.service.strategy import ServiceStrategy


def run_with_service(program, model_set, fifo_dir):
    request, response = make_fifo_pair(fifo_dir)
    server_thread = threading.Thread(
        target=serve_over_fifos, args=(model_set, request, response),
        daemon=True)
    server_thread.start()
    client = ModelClient.connect_fifos(request, response)
    client.ping()

    vm = VirtualMachine()
    vm.load_program(program)
    compiler = JitCompiler(method_resolver=vm._methods.get)
    manager = CompilationManager(compiler,
                                 strategy=ServiceStrategy(client))
    vm.attach_manager(manager)
    result = vm.call(program.entry, 3)

    client.shutdown()
    client.close()
    server_thread.join(timeout=10)
    return result, vm.clock.now(), manager


def main():
    ctx = EvaluationContext(preset="tiny")
    print("training models (tiny preset)...")
    model_sets = ctx.model_sets()
    program = ctx.program("specjvm", "javac")

    baseline = run_once(program, None, iterations=1)
    print(f"\nbaseline (original plans): "
          f"{baseline.total_cycles:>12,.0f} cycles, "
          f"{baseline.compile_cycles:,} compile cycles")

    with tempfile.TemporaryDirectory() as fifo_dir:
        for name in ("H1", "H3"):
            result, cycles, manager = run_with_service(
                program, model_sets[name], fifo_dir)
            strategy_hits = manager.strategy.predictions
            print(f"model {name} over named pipes: "
                  f"{cycles:>12,.0f} cycles, "
                  f"{manager.total_compile_cycles:,} compile cycles "
                  f"({strategy_hits} predictions served)")
            assert result == baseline.result_value, \
                "learned plans must preserve program results"
    print("\nsame compiler binary, two different models, zero "
          "compiler changes -- only the server process differed.")


if __name__ == "__main__":
    main()
