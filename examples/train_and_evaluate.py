#!/usr/bin/env python
"""The paper's full loop, small scale: collect -> train -> evaluate.

1. Runs data-collection sessions (paper §4) on the five SPECjvm98-like
   training benchmarks: the strategy control explores compilation-plan
   modifiers, instrumented methods are timed with the simulated TSC,
   and experiments are flushed into compact binary archives.
2. Trains the five leave-one-out model sets (paper §6/§8.1): rank with
   Eq. 2, normalize with Eq. 3, fit a multi-class linear SVM per
   optimization level with C = 10.
3. Evaluates start-up and throughput performance of learned vs original
   plans on a reserved benchmark (paper §8.2).

Run:  python examples/train_and_evaluate.py            (quick, ~3 min)
      REPRO_PROFILE=tiny python examples/train_and_evaluate.py  (~40 s)
"""

from repro.experiments import EvaluationContext
from repro.experiments.evaluation import evaluate_benchmark
from repro.experiments.figures import table4


def main():
    ctx = EvaluationContext()
    print(f"preset: {ctx.preset_name} "
          f"(archives/models cached under {ctx.cache_dir})")

    print("\n[1/3] data collection on the five training benchmarks...")
    record_sets = ctx.record_sets()
    for name, records in sorted(record_sets.items()):
        print(f"  {name:10s} {len(records):5d} experiment records, "
              f"{len(records.unique_modifiers()):4d} distinct "
              f"modifiers")

    print("\n[2/3] training the five leave-one-out model sets...")
    model_sets = ctx.model_sets()
    for name, model_set in sorted(model_sets.items()):
        levels = ", ".join(lv.name.lower()
                           for lv in model_set.models)
        print(f"  {name}: excludes {model_set.excluded:10s} "
              f"levels [{levels}]")
    print()
    print(table4(ctx)["text"])

    print("\n[3/3] evaluating on the reserved benchmark 'javac'...")
    program = ctx.program("specjvm", "javac")
    for label, iterations in (("start-up", 1), ("throughput", 10)):
        result = evaluate_benchmark(program, model_sets,
                                    iterations=iterations,
                                    replications=ctx.replications,
                                    master_seed=ctx.master_seed)
        print(f"\n  {label} (relative to the unmodified baseline):")
        for model in result.models():
            perf = result.relative_performance(model)
            comp = result.relative_compile_time(model)
            print(f"    {model}: performance {perf.mean:5.3f}"
                  f"±{perf.ci95:5.3f}   compile time "
                  f"{comp.mean:5.3f}")
    print("\nExpected shape: learned plans win (or tie) start-up with"
          "\nmuch less compilation; the hand-tuned baseline holds its"
          "\nground on throughput -- the paper's central result.")


if __name__ == "__main__":
    main()
