#!/usr/bin/env python
"""Quickstart: run a benchmark interpreted, then under the adaptive JIT.

Builds one SPECjvm98-like synthetic benchmark, executes it on the bare
interpreter, then again with the adaptive compilation controller
attached, and prints the virtual-cycle speedup plus what the JIT did.

Run:  python examples/quickstart.py [benchmark] [iterations]
"""

import sys

from repro.jit.compiler import JitCompiler
from repro.jit.control import CompilationManager
from repro.jvm.vm import VirtualMachine
from repro.workloads import SPECJVM_BENCHMARKS, specjvm_program


def run(program, iterations, with_jit):
    vm = VirtualMachine()
    vm.load_program(program)
    manager = None
    if with_jit:
        compiler = JitCompiler(method_resolver=vm._methods.get)
        manager = CompilationManager(compiler)
        vm.attach_manager(manager)
    result = None
    for _ in range(iterations):
        result = vm.call(program.entry, 3)
    return result, vm, manager


def main():
    name = sys.argv[1] if len(sys.argv) > 1 else "mtrt"
    iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 3
    if name not in SPECJVM_BENCHMARKS:
        raise SystemExit(f"unknown benchmark {name!r}; choose from "
                         f"{sorted(SPECJVM_BENCHMARKS)}")

    program = specjvm_program(name)
    print(f"benchmark: {program} ({iterations} iterations)")

    result_i, vm_i, _ = run(program, iterations, with_jit=False)
    print(f"\ninterpreted:  {vm_i.clock.now():>12,} cycles "
          f"(result {result_i})")

    result_j, vm_j, manager = run(program, iterations, with_jit=True)
    assert result_i == result_j, "JIT must not change results!"
    speedup = vm_i.clock.now() / vm_j.clock.now()
    print(f"adaptive JIT: {vm_j.clock.now():>12,} cycles "
          f"(result {result_j})  -> {speedup:.2f}x faster")

    print(f"\n{manager.compilations()} compilations, "
          f"{manager.total_compile_cycles:,} compile cycles "
          f"on the JIT thread")
    by_level = {}
    for record in manager.records:
        by_level.setdefault(record.level.name, []).append(record)
    for level, records in sorted(by_level.items()):
        cycles = sum(r.compile_cycles for r in records)
        print(f"  {level:10s} {len(records):3d} methods, "
              f"{cycles:>10,} compile cycles")
    stats = vm_j.stats
    print(f"\ninvocations: {stats['invocations']:,} "
          f"({stats['compiled_invocations']:,} ran compiled code)")


if __name__ == "__main__":
    main()
