"""Virtual time.

The whole system runs on simulated cycles rather than wall-clock time, which
makes every measurement deterministic.  A :class:`VirtualClock` is advanced
by the interpreter (per bytecode executed), by the native simulator (per
virtual instruction executed) and by the JIT (per unit of optimization
work).

The paper measures time with the x86 Time-Stamp Counter; our analogue is a
cycle counter at a notional 2 GHz (the AMD Opteron 2350 clock used in the
paper's testbed), so helpers are provided to convert cycles to seconds for
reporting.
"""

#: Notional core frequency used when converting cycles to seconds (paper
#: testbed: 2 GHz Quad-Core AMD Opteron 2350).
CYCLES_PER_SECOND = 2_000_000_000

#: Cycles per millisecond at the notional frequency.
CYCLES_PER_MS = CYCLES_PER_SECOND // 1000


class VirtualClock:
    """A monotonically increasing cycle counter."""

    __slots__ = ("cycles",)

    def __init__(self, start=0):
        self.cycles = int(start)

    def advance(self, cycles):
        """Advance the clock by a non-negative number of cycles."""
        if cycles < 0:
            raise ValueError(f"cannot advance clock by {cycles} cycles")
        self.cycles += int(cycles)

    def now(self):
        """Current time in cycles."""
        return self.cycles

    def seconds(self):
        """Current time converted to (virtual) seconds."""
        return self.cycles / CYCLES_PER_SECOND

    def __repr__(self):
        return f"VirtualClock(cycles={self.cycles})"


def cycles_to_ms(cycles):
    """Convert virtual cycles to (virtual) milliseconds."""
    return cycles / CYCLES_PER_MS


def ms_to_cycles(ms):
    """Convert (virtual) milliseconds to cycles."""
    return int(ms * CYCLES_PER_MS)
