"""The on-disk code-cache store.

Entries live as individual files under ``<directory>/entries/``, named
by three content hashes::

    <sig16>-<fp24>-<key16>.tcc

* ``sig16`` -- hash of the method signature: groups every entry that
  belongs to one method, whatever its level or modifier.
* ``fp24``  -- hash of the method + context fingerprints: entries whose
  ``sig16`` matches but whose ``fp24`` differs were compiled from an
  older version of the code and are *stale*; a probe deletes them
  (invalidation) instead of ever loading them.
* ``key16`` -- hash of the full lookup key ``(method fingerprint,
  context fingerprint, opt level, modifier bits, model-set digest,
  format version)``.

The model-set digest (see :func:`repro.codecache.fingerprint
.strategy_digest`) lives in ``key16``, not ``fp24``: a retrained model
makes its predecessor's entries unreachable (miss -> recompile ->
store under the new key) without *deleting* them, so one shared cache
directory can serve runs under different model sets -- or none --
concurrently without thrashing each other's entries.

Properties:

* **Atomic writes** -- entries are written to a temp file and
  ``os.replace``d into place, so a crashed writer never leaves a
  half-written entry under a valid name.
* **LRU eviction** -- the in-memory index (loaded once, ordered by
  mtime) tracks recency; stores that push the cache over
  ``max_bytes`` evict the least-recently-used entries first.  Hits
  refresh both the index order and the file mtime, so recency survives
  across VM runs.
* **Corruption tolerance** -- a truncated or bit-flipped entry fails
  CRC/decoding inside :func:`~repro.codecache.serialize
  .deserialize_compiled`; the store logs it, deletes the file and
  reports a miss.  The VM then simply recompiles: a broken cache can
  cost time, never correctness.
"""

import dataclasses
import hashlib
import os
import re
from collections import OrderedDict

from repro.codecache.fingerprint import HEURISTIC_DIGEST, \
    context_fingerprint, method_fingerprint
from repro.codecache.serialize import FORMAT_VERSION, describe_blob, \
    deserialize_compiled, payload_sizes, serialize_compiled
from repro.codecache.stats import CacheStats
from repro.errors import CodeCacheError
from repro.log import get_logger
from repro.telemetry import get_tracer

log = get_logger("codecache")

_ENTRY_SUFFIX = ".tcc"
_ENTRY_RE = re.compile(
    r"^([0-9a-f]{16})-([0-9a-f]{24})-([0-9a-f]{16})\.tcc$")

#: Default size cap: generous for simulated workloads, small for disks.
DEFAULT_MAX_BYTES = 64 * 1024 * 1024


@dataclasses.dataclass
class CodeCacheConfig:
    """How (and whether) a VM run uses the persistent code cache.

    The default configuration is *disabled*: constructing a VM or a
    compilation manager without an explicit cache keeps every existing
    experiment bit-for-bit reproducible.
    """

    enabled: bool = False
    directory: str = None
    max_bytes: int = DEFAULT_MAX_BYTES
    #: Probe but never store or evict (shared read-only cache image).
    read_only: bool = False

    def open(self):
        """Build the :class:`CodeCache` for this config (None when
        disabled or directory-less)."""
        if not self.enabled or not self.directory:
            return None
        return CodeCache(self)


@dataclasses.dataclass
class EntryInfo:
    """One on-disk entry as seen by the maintenance commands."""

    name: str
    path: str
    size: int
    sig_hash: str
    fp_hash: str
    key_hash: str


class CodeCache:
    """A directory of persisted compiled bodies plus its in-memory index."""

    def __init__(self, config):
        if isinstance(config, str):
            config = CodeCacheConfig(enabled=True, directory=config)
        self.config = config
        self.stats = CacheStats()
        self.entries_dir = os.path.join(config.directory, "entries")
        if not config.read_only:
            os.makedirs(self.entries_dir, exist_ok=True)
        # name -> size, ordered least- to most-recently used.
        self._index = OrderedDict()
        self._scan()

    # -- index ------------------------------------------------------------

    def _scan(self):
        """Load the index once at VM start, LRU-ordered by mtime."""
        if not os.path.isdir(self.entries_dir):
            return
        found = []
        for name in os.listdir(self.entries_dir):
            if not _ENTRY_RE.match(name):
                continue
            path = os.path.join(self.entries_dir, name)
            try:
                st = os.stat(path)
            except OSError:
                continue
            found.append((st.st_mtime, name, st.st_size))
        for _mtime, name, size in sorted(found):
            self._index[name] = size

    def total_bytes(self):
        return sum(self._index.values())

    def __len__(self):
        return len(self._index)

    def entries(self):
        """Index contents in LRU order (oldest first)."""
        out = []
        for name, size in self._index.items():
            m = _ENTRY_RE.match(name)
            out.append(EntryInfo(name, os.path.join(self.entries_dir, name),
                                 size, m.group(1), m.group(2), m.group(3)))
        return out

    # -- keying -----------------------------------------------------------

    def _names(self, method, level, modifier, resolver,
               model_digest=None):
        if model_digest is None:
            model_digest = HEURISTIC_DIGEST
        sig_hash = hashlib.sha256(
            method.signature.encode("utf-8")).hexdigest()[:16]
        method_fp = method_fingerprint(method)
        context_fp = context_fingerprint(method, resolver)
        fp_hash = hashlib.sha256(
            f"{method_fp}|{context_fp}".encode("ascii")).hexdigest()[:24]
        key_hash = hashlib.sha256(
            f"{method_fp}|{context_fp}|{int(level)}|{int(modifier.bits)}"
            f"|{model_digest}|{FORMAT_VERSION}"
            .encode("ascii")).hexdigest()[:16]
        return sig_hash, fp_hash, key_hash

    @staticmethod
    def _entry_name(sig_hash, fp_hash, key_hash):
        return f"{sig_hash}-{fp_hash}-{key_hash}{_ENTRY_SUFFIX}"

    def _path(self, name):
        return os.path.join(self.entries_dir, name)

    # -- probe / load -----------------------------------------------------

    def load(self, method, level, modifier, resolver=None,
             relocation_cycles=0, model_digest=None):
        """Probe for a cached body of *method* at (*level*, *modifier*).

        On a hit, returns a fresh :class:`CompiledMethod` whose
        ``compile_cycles`` is *relocation_cycles* -- the load-and-
        relocate cost the controller charges instead of a compilation
        -- and credits the difference to ``stats.cycles_saved``; its
        ``persisted_profile`` is the entry's profile section ({} when
        the entry carried none).  *model_digest* is the active model
        set's content hash (None = heuristic sentinel): entries stored
        under a different model set simply never match.  Returns None
        on a miss; stale same-method entries found during the probe are
        invalidated (deleted) on the way.
        """
        with get_tracer().span("cache.probe", cat="cache",
                               method=method.signature,
                               level=level.name) as span:
            sig_hash, fp_hash, key_hash = self._names(
                method, level, modifier, resolver, model_digest)
            name = self._entry_name(sig_hash, fp_hash, key_hash)
            self._invalidate_stale(sig_hash, fp_hash)
            if name not in self._index:
                self.stats.misses += 1
                span.set(outcome="miss")
                return None
            try:
                with open(self._path(name), "rb") as fh:
                    data = fh.read()
                compiled = deserialize_compiled(data, method)
            except (OSError, CodeCacheError) as exc:
                log.warning("dropping unreadable cache entry %s: %s",
                            name, exc)
                self._drop(name)
                self.stats.corrupt_dropped += 1
                self.stats.misses += 1
                span.set(outcome="corrupt")
                return None
            self._touch(name)
            self.stats.hits += 1
            if compiled.persisted_profile:
                self.stats.profile_hits += 1
            self.stats.cycles_saved += max(
                0, compiled.compile_cycles - relocation_cycles)
            compiled.compile_cycles = relocation_cycles
            span.set(outcome="hit", bytes=len(data),
                     profile=bool(compiled.persisted_profile))
            return compiled

    def _invalidate_stale(self, sig_hash, fp_hash):
        """Drop entries for this method compiled from changed code."""
        prefix = sig_hash + "-"
        keep = prefix + fp_hash + "-"
        stale = [n for n in self._index
                 if n.startswith(prefix) and not n.startswith(keep)]
        for name in stale:
            log.info("invalidating stale cache entry %s", name)
            self._drop(name)
            self.stats.invalidations += 1

    # -- store / evict ----------------------------------------------------

    def store(self, compiled, resolver=None, model_digest=None,
              profile=None):
        """Persist a freshly compiled body; returns True when written.

        *profile*, when given, rides in the entry's profile section: a
        later run's hit restores it as ``persisted_profile``, letting
        the controller seed instrumentation instead of re-gathering.
        Storing the same key again (the profile write-back path)
        atomically replaces the old blob.
        """
        if self.config.read_only:
            return False
        with get_tracer().span("cache.store", cat="cache",
                               method=compiled.method.signature,
                               level=compiled.level.name,
                               profile=profile is not None) as span:
            try:
                blob = serialize_compiled(compiled, profile=profile)
            except CodeCacheError as exc:
                log.warning("not caching %s: %s",
                            compiled.method.signature, exc)
                span.set(outcome="unserializable")
                return False
            sig_hash, fp_hash, key_hash = self._names(
                compiled.method, compiled.level, compiled.modifier,
                resolver, model_digest)
            name = self._entry_name(sig_hash, fp_hash, key_hash)
            path = self._path(name)
            # Per-process temp name: concurrent writers of one key must
            # not interleave into a shared temp file; each os.replace is
            # atomic.
            tmp = f"{path}.{os.getpid()}.tmp"
            try:
                with open(tmp, "wb") as fh:
                    fh.write(blob)
                os.replace(tmp, path)
            except OSError as exc:
                log.warning("cache write failed for %s: %s", name, exc)
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                span.set(outcome="write_failed")
                return False
            self._index[name] = len(blob)
            self._index.move_to_end(name)
            compressed, uncompressed = payload_sizes(blob)
            self.stats.bytes_compressed += compressed
            self.stats.bytes_uncompressed += uncompressed
            if profile is not None:
                self.stats.profile_stores += 1
            else:
                self.stats.stores += 1
            evicted = self._evict_to(self.config.max_bytes)
            span.set(outcome="stored", bytes=len(blob),
                     bytes_raw=uncompressed, evicted=evicted)
            return True

    def _evict_to(self, max_bytes):
        evicted = 0
        while self._index and self.total_bytes() > max_bytes:
            name = next(iter(self._index))
            self._drop(name)
            self.stats.evictions += 1
            evicted += 1
        return evicted

    def _touch(self, name):
        self._index.move_to_end(name)
        try:
            os.utime(self._path(name))
        except OSError:
            pass

    def _drop(self, name):
        self._index.pop(name, None)
        try:
            os.unlink(self._path(name))
        except OSError:
            pass

    # -- maintenance (the ``repro cache`` CLI) ----------------------------

    def verify(self, delete_corrupt=False):
        """Deserialize-check every entry; returns ``(ok, bad)`` lists.

        *bad* holds ``(EntryInfo, reason)`` pairs; with
        *delete_corrupt* the offending files are removed as well.
        """
        ok, bad = [], []
        for entry in self.entries():
            try:
                with open(entry.path, "rb") as fh:
                    meta = describe_blob(fh.read())
            except (OSError, CodeCacheError) as exc:
                bad.append((entry, str(exc)))
                if delete_corrupt:
                    self._drop(entry.name)
                continue
            ok.append((entry, meta))
        return ok, bad

    def prune(self, max_bytes=None):
        """Drop corrupt entries, then LRU-evict down to *max_bytes*.

        Returns ``(corrupt_removed, evicted)``.
        """
        _ok, bad = self.verify(delete_corrupt=True)
        cap = self.config.max_bytes if max_bytes is None else max_bytes
        evicted = self._evict_to(cap)
        return len(bad), evicted
