"""The versioned binary format for persisted compiled bodies.

Layout (little-endian)::

    magic   'TRCC'
    u16     format version (=3)
    u32     uncompressed payload length
    --      zlib-deflated tagged payload (see below)
    u32     CRC-32 of everything before the footer

The payload is one recursively *tagged* value: every atom carries a
one-byte type tag, so the heterogeneous operand fields of
:class:`~repro.jit.codegen.isa.NInstr` (``imm`` may be an int or a
float; ``aux`` ranges over labels, field names, call descriptors,
:class:`NOp`/:class:`JType` enums and nested tuples) serialize without
a per-op schema.  Decoding is strict: an unknown tag, a short buffer or
a CRC mismatch raises :class:`~repro.errors.CodeCacheError`, which the
store treats as "drop the entry and recompile" -- never a VM crash.

Format version 2 appended a *section list* to the version-1 record: a
tuple of ``(tag, value)`` pairs, CRC-covered like everything else, that
optional per-entry data rides in.  Unknown tags are skipped on read, so
later minor additions stay forward-compatible within the version.
Format version 3 zlib-compresses the tagged payload inside the CRC
envelope (the tagged stream is highly repetitive -- one-byte tags,
zero-heavy little-endian i64s -- and deflates to a fraction of its raw
size); the recorded uncompressed length is verified on read.  Each
version bump cleanly rejects older entries (the store treats the
:class:`~repro.errors.CodeCacheError` as a miss and recompiles --
never a half-read).  The one section defined today is ``"profile"``:
the branch profile gathered by the body's instrumentation (the
``(bytecode pc, taken) -> count`` dict that feedback-directed
optimization consumes), persisted so a warm start can recompile
profile-directed without re-gathering.

Round-trips are **cycle-identical**: every field the native simulator's
cost model reads (instruction stream, source registers for forwarding
stalls, leaf-frame flag, handler tables, block->bytecode map) is
restored exactly, so a deserialized body executes with the same
semantics *and* the same virtual-cycle cost as the original.  The
property tests in ``tests/codecache/test_serialize.py`` enforce this
against the interpreter-equivalence generator.
"""

import struct
import zlib

import numpy as np

from repro.errors import CodeCacheError
from repro.features import NUM_FEATURES
from repro.jit.codegen import native as native_mod
from repro.jit.codegen.isa import NInstr, NOp
from repro.jit.codegen.native import NativeCode
from repro.jit.codegen.superop import SUPEROP_LEVEL
from repro.jit.compiler import CompiledMethod
from repro.jit.ir.block import ILHandler
from repro.jit.modifiers import Modifier
from repro.jit.plans import OptLevel
from repro.jvm.bytecode import JType
from repro.telemetry import get_tracer

MAGIC = b"TRCC"
FORMAT_VERSION = 3

#: Section tag for the persisted branch profile.
SECTION_PROFILE = "profile"

#: zlib level: 6 is the speed/ratio knee for these small payloads.
COMPRESSION_LEVEL = 6

_HEADER = struct.Struct("<4sH")
_RAWLEN = struct.Struct("<I")
_CRC = struct.Struct("<I")

# -- tagged value encoding ---------------------------------------------------

_T_NONE = 0
_T_FALSE = 1
_T_TRUE = 2
_T_I64 = 3
_T_F64 = 4
_T_STR = 5
_T_BIGINT = 6
_T_TUPLE = 7
_T_JTYPE = 8
_T_NOP = 9

_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


def _encode(out, value):
    """Append the tagged encoding of *value* to bytearray *out*."""
    if value is None:
        out.append(_T_NONE)
    elif value is True:
        out.append(_T_TRUE)
    elif value is False:
        out.append(_T_FALSE)
    elif isinstance(value, NOp):
        out.append(_T_NOP)
        out += struct.pack("<H", int(value))
    elif isinstance(value, JType):
        out.append(_T_JTYPE)
        out.append(int(value))
    elif isinstance(value, int):
        if _I64_MIN <= value <= _I64_MAX:
            out.append(_T_I64)
            out += struct.pack("<q", value)
        else:
            text = str(value).encode("ascii")
            out.append(_T_BIGINT)
            out += struct.pack("<I", len(text))
            out += text
    elif isinstance(value, float):
        out.append(_T_F64)
        out += struct.pack("<d", value)
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(_T_STR)
        out += struct.pack("<I", len(data))
        out += data
    elif isinstance(value, (tuple, list)):
        out.append(_T_TUPLE)
        out += struct.pack("<I", len(value))
        for item in value:
            _encode(out, item)
    else:
        raise CodeCacheError(
            f"cannot serialize value of type {type(value).__name__}: "
            f"{value!r}")


class _Decoder:
    def __init__(self, data, pos, end):
        self.data = data
        self.pos = pos
        self.end = end

    def take(self, n):
        if self.pos + n > self.end:
            raise CodeCacheError("truncated code-cache entry")
        out = self.data[self.pos:self.pos + n]
        self.pos += n
        return out

    def value(self):
        tag = self.take(1)[0]
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_I64:
            return struct.unpack("<q", self.take(8))[0]
        if tag == _T_F64:
            return struct.unpack("<d", self.take(8))[0]
        if tag == _T_STR:
            n = struct.unpack("<I", self.take(4))[0]
            try:
                return self.take(n).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise CodeCacheError(f"bad string in entry: {exc}")
        if tag == _T_BIGINT:
            n = struct.unpack("<I", self.take(4))[0]
            try:
                return int(self.take(n).decode("ascii"))
            except (UnicodeDecodeError, ValueError) as exc:
                raise CodeCacheError(f"bad bigint in entry: {exc}")
        if tag == _T_TUPLE:
            n = struct.unpack("<I", self.take(4))[0]
            if n > self.end - self.pos:
                raise CodeCacheError(f"oversized tuple: {n} items")
            return tuple(self.value() for _ in range(n))
        if tag == _T_JTYPE:
            try:
                return JType(self.take(1)[0])
            except ValueError as exc:
                raise CodeCacheError(str(exc))
        if tag == _T_NOP:
            try:
                return NOp(struct.unpack("<H", self.take(2))[0])
            except ValueError as exc:
                raise CodeCacheError(str(exc))
        raise CodeCacheError(f"unknown value tag {tag}")


# -- profile section ---------------------------------------------------------

def encode_profile(profile):
    """Branch-profile dict -> canonical section value (sorted triples)."""
    out = []
    for key, count in profile.items():
        if (not isinstance(key, tuple) or len(key) != 2
                or not isinstance(key[0], int)
                or isinstance(key[0], bool) or key[0] < 0
                or not isinstance(key[1], bool)
                or not isinstance(count, int)
                or isinstance(count, bool) or count < 0):
            raise CodeCacheError(
                f"cannot serialize profile point {key!r}: {count!r}")
        out.append((int(key[0]), bool(key[1]), int(count)))
    return tuple(sorted(out))


def decode_profile(value):
    """Section value -> branch-profile dict; strict shape checks."""
    if not isinstance(value, tuple):
        raise CodeCacheError("profile section is not a tuple")
    profile = {}
    for rec in value:
        if (not isinstance(rec, tuple) or len(rec) != 3
                or not isinstance(rec[0], int) or isinstance(rec[0], bool)
                or not isinstance(rec[1], bool)
                or not isinstance(rec[2], int) or isinstance(rec[2], bool)
                or rec[0] < 0 or rec[2] < 0):
            raise CodeCacheError(f"bad profile point {rec!r}")
        profile[(rec[0], rec[1])] = rec[2]
    return profile


# -- compiled-method round trip ---------------------------------------------

def _pack_payload(compiled, profile=None):
    native = compiled.native
    sections = []
    if profile is not None:
        sections.append((SECTION_PROFILE, encode_profile(profile)))
    return (
        compiled.method.signature,
        int(compiled.level),
        int(compiled.modifier.bits),
        int(compiled.compile_cycles),
        tuple((int(i), float(v)) for i, v in enumerate(compiled.features)
              if v != 0.0),
        tuple((str(name), bool(changed))
              for name, changed in compiled.pass_log),
        int(native.num_locals),
        bool(native.leaf),
        tuple((tuple(sorted(h.covered)), int(h.handler_bid),
               str(h.class_name)) for h in native.handlers),
        tuple((int(bid), bc) for bid, bc in sorted(native.block_bc.items())),
        tuple((ins.op, ins.dst, ins.srcs, ins.imm, ins.type, ins.aux,
               int(ins.block)) for ins in native.instrs),
        tuple(sections),
    )


def serialize_compiled(compiled, profile=None):
    """Serialize a :class:`CompiledMethod` to a self-checking blob.

    *profile*, when given, is a gathered branch profile persisted in the
    entry's ``"profile"`` section and restored on deserialization as the
    body's ``persisted_profile``.
    """
    raw = bytearray()
    _encode(raw, _pack_payload(compiled, profile))
    out = bytearray(_HEADER.pack(MAGIC, FORMAT_VERSION))
    out += _RAWLEN.pack(len(raw))
    out += zlib.compress(bytes(raw), COMPRESSION_LEVEL)
    out += _CRC.pack(zlib.crc32(bytes(out)) & 0xFFFFFFFF)
    return bytes(out)


_PREFIX_SIZE = _HEADER.size + _RAWLEN.size


def payload_sizes(data):
    """``(compressed_bytes, uncompressed_bytes)`` of a blob's payload.

    Reads only the framing; raises :class:`CodeCacheError` on foreign
    magic/version or an obviously truncated blob.  The store uses this
    to account compression savings without re-decoding what it just
    encoded.
    """
    if len(data) < _PREFIX_SIZE + _CRC.size:
        raise CodeCacheError("entry shorter than header + footer")
    magic, version = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise CodeCacheError(f"bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise CodeCacheError(
            f"format version {version} (expected {FORMAT_VERSION})")
    (raw_len,) = _RAWLEN.unpack_from(data, _HEADER.size)
    return len(data) - _PREFIX_SIZE - _CRC.size, raw_len


def _parse_payload(data):
    """Validate framing, decompress and return the decoded payload."""
    compressed_len, raw_len = payload_sizes(data)
    body, footer = data[:-_CRC.size], data[-_CRC.size:]
    (crc,) = _CRC.unpack(footer)
    if crc != zlib.crc32(body) & 0xFFFFFFFF:
        raise CodeCacheError("CRC mismatch (corrupt entry)")
    try:
        raw = zlib.decompress(data[_PREFIX_SIZE:_PREFIX_SIZE
                                   + compressed_len])
    except zlib.error as exc:
        raise CodeCacheError(f"payload decompression failed: {exc}")
    if len(raw) != raw_len:
        raise CodeCacheError(
            f"decompressed to {len(raw)} bytes, header says {raw_len}")
    decoder = _Decoder(raw, 0, len(raw))
    try:
        payload = decoder.value()
    except struct.error as exc:
        raise CodeCacheError(f"malformed entry: {exc}")
    if decoder.pos != len(raw):
        raise CodeCacheError("trailing bytes after payload")
    if not isinstance(payload, tuple) or len(payload) != 12:
        raise CodeCacheError("payload is not a 12-field record")
    return payload


def _parse_sections(sections):
    """Validate the section list; returns the decoded profile (or None).

    Unknown section tags are skipped -- minor additions within one
    format version must not brick older readers.
    """
    if not isinstance(sections, tuple):
        raise CodeCacheError("section list is not a tuple")
    profile = None
    for rec in sections:
        if (not isinstance(rec, tuple) or len(rec) != 2
                or not isinstance(rec[0], str)):
            raise CodeCacheError(f"bad section record {rec!r}")
        tag, value = rec
        if tag == SECTION_PROFILE:
            if profile is not None:
                raise CodeCacheError("duplicate profile section")
            profile = decode_profile(value)
    return profile


def describe_blob(data):
    """Parse a blob without rebinding it to a method (``cache verify``).

    Returns a metadata dict; raises :class:`CodeCacheError` when the
    blob is corrupt, truncated or of a foreign version.
    """
    (signature, level, bits, cycles, features, pass_log, num_locals,
     leaf, handlers, block_bc, instrs, sections) = _parse_payload(data)
    _check_shapes(signature, level, bits, cycles, features, num_locals,
                  handlers, instrs)
    profile = _parse_sections(sections)
    bytes_compressed, bytes_raw = payload_sizes(data)
    return {
        "bytes_compressed": bytes_compressed,
        "bytes_raw": bytes_raw,
        "signature": signature,
        "level": OptLevel(level),
        "modifier_bits": bits,
        "compile_cycles": cycles,
        "instructions": len(instrs),
        "passes": len(pass_log),
        "leaf": bool(leaf),
        "handlers": len(handlers),
        "blocks": len(block_bc),
        "profile_points": 0 if profile is None else len(profile),
        "has_profile": profile is not None,
    }


def _check_shapes(signature, level, bits, cycles, features, num_locals,
                  handlers, instrs):
    if not isinstance(signature, str):
        raise CodeCacheError("signature field is not a string")
    try:
        OptLevel(level)
    except ValueError:
        raise CodeCacheError(f"bad optimization level {level!r}")
    for field, name in ((bits, "modifier bits"), (cycles, "cycle count"),
                        (num_locals, "locals count")):
        if not isinstance(field, int) or field < 0:
            raise CodeCacheError(f"bad {name}: {field!r}")
    for pair in features:
        if (not isinstance(pair, tuple) or len(pair) != 2
                or not 0 <= pair[0] < NUM_FEATURES):
            raise CodeCacheError(f"bad feature component {pair!r}")
    for rec in handlers:
        if not isinstance(rec, tuple) or len(rec) != 3:
            raise CodeCacheError(f"bad handler record {rec!r}")
    for rec in instrs:
        if (not isinstance(rec, tuple) or len(rec) != 7
                or not isinstance(rec[0], NOp)):
            raise CodeCacheError(f"bad instruction record {rec!r}")


def deserialize_compiled(data, method):
    """Rebuild a :class:`CompiledMethod` bound to *method*.

    *method* must be the live :class:`~repro.jvm.classfile.JMethod` the
    body was compiled from (the store guarantees this through its
    fingerprint keys; the signature is re-checked here as a backstop).
    """
    (signature, level, bits, cycles, sparse_features, pass_log,
     num_locals, leaf, handler_recs, block_bc, instr_recs, sections) = \
        _parse_payload(data)
    _check_shapes(signature, level, bits, cycles, sparse_features,
                  num_locals, handler_recs, instr_recs)
    persisted_profile = _parse_sections(sections)
    if signature != method.signature:
        raise CodeCacheError(
            f"entry is for {signature}, not {method.signature}")

    instrs = []
    for op, dst, srcs, imm, jtype, aux, block in instr_recs:
        if not isinstance(srcs, tuple):
            raise CodeCacheError(f"bad source registers {srcs!r}")
        instrs.append(NInstr(op, dst, srcs, imm, jtype, aux, block))
    handlers = [ILHandler(frozenset(covered), handler_bid, class_name)
                for covered, handler_bid, class_name in handler_recs]
    native = NativeCode.from_parts(method, num_locals, instrs,
                                   bool(leaf), handlers, dict(block_bc))
    # Rebuild the table-driven dispatch form eagerly: a warm start pays
    # predecode at load time, not on the first hot-path invocation.
    native.predecode()
    # Same deal for the superop program: warm-installed host-tier bodies
    # are fused at load time, so a warm start runs superops immediately.
    if native_mod.USE_SUPEROP and OptLevel(level) >= SUPEROP_LEVEL:
        with get_tracer().span("jit.superop", cat="jit",
                               method=method.signature,
                               level=OptLevel(level).name,
                               warm_install=True) as span:
            program = native.superop()
            span.set(blocks=len(program.blocks),
                     fused=program.n_fused,
                     handler_calls=program.n_handler_calls)

    features = np.zeros(NUM_FEATURES, dtype=np.float64)
    for index, value in sparse_features:
        features[index] = value

    compiled = CompiledMethod(
        method, OptLevel(level), Modifier(bits), native, cycles,
        features, pass_log=tuple(pass_log))
    # Mark cache provenance: {} for "loaded, no profile persisted",
    # the gathered dict otherwise.  Freshly compiled bodies keep None.
    compiled.persisted_profile = (
        {} if persisted_profile is None else persisted_profile)
    return compiled
