"""Persistent shared code cache: AOT-style warm starts across VM runs.

The real J9 JVM persists compiled method bodies in its shared classes
cache so that later JVM invocations *load and relocate* code instead of
recompiling it -- the single biggest start-up lever a production JIT
has.  This package is that subsystem for the reproduction:

* :mod:`repro.codecache.serialize` -- a versioned binary format for
  compiled bodies (:class:`~repro.jit.compiler.CompiledMethod` plus its
  :class:`~repro.jit.codegen.native.NativeCode`); round-trips are
  execution-equivalent and cycle-identical.
* :mod:`repro.codecache.fingerprint` -- content hashes of a method's
  bytecode and of everything it (transitively) calls, the analogue of
  keying J9's cache by class-file and constant-pool content.
* :mod:`repro.codecache.store` -- the on-disk store: atomic writes,
  size-capped LRU eviction, corruption tolerance, invalidation of stale
  entries.
* :mod:`repro.codecache.stats` -- per-run hit/miss/store/evict counters
  and cycles-saved accounting for the experiment reports.

The cache is *disabled by default*: with no :class:`CodeCache` attached
to the compilation manager, every existing experiment is byte-for-byte
identical to a build without this package.
"""

from repro.codecache.fingerprint import (
    HEURISTIC_DIGEST,
    context_fingerprint,
    method_fingerprint,
    strategy_digest,
)
from repro.codecache.serialize import (
    FORMAT_VERSION,
    SECTION_PROFILE,
    decode_profile,
    deserialize_compiled,
    describe_blob,
    encode_profile,
    serialize_compiled,
)
from repro.codecache.stats import CacheStats
from repro.codecache.store import CodeCache, CodeCacheConfig

__all__ = [
    "CacheStats",
    "CodeCache",
    "CodeCacheConfig",
    "FORMAT_VERSION",
    "HEURISTIC_DIGEST",
    "SECTION_PROFILE",
    "context_fingerprint",
    "decode_profile",
    "describe_blob",
    "deserialize_compiled",
    "encode_profile",
    "method_fingerprint",
    "serialize_compiled",
    "strategy_digest",
]
