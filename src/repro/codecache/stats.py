"""Per-run code-cache statistics.

One :class:`CacheStats` instance lives on each :class:`CodeCache` and
counts the cache's interactions with the compilation controller for the
duration of one VM run.  ``cycles_saved`` is the AOT win itself: the
sum over all hits of ``stored compile_cycles - relocation_cycles``,
i.e. the JIT-thread work the warm start avoided.  The cold-vs-warm
experiment (:mod:`repro.experiments.warmstart`) surfaces these counters
in the report output.
"""

import dataclasses


@dataclasses.dataclass
class CacheStats:
    """Counters for one VM run against the cache."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    invalidations: int = 0
    corrupt_dropped: int = 0
    #: JIT-thread cycles avoided by hits (compile cost minus relocation).
    cycles_saved: int = 0
    #: Entries (re)written with a branch-profile section attached.
    profile_stores: int = 0
    #: Hits whose entry carried a persisted branch profile.
    profile_hits: int = 0
    #: Installs that seeded live instrumentation from a persisted profile.
    profile_seeds: int = 0
    #: Hits installed above the requested level (stepping stones skipped).
    tier_skips: int = 0
    #: Payload bytes written this run, after zlib (format v3).
    bytes_compressed: int = 0
    #: The same payloads before compression (the on-disk saving is the
    #: difference between these two counters).
    bytes_uncompressed: int = 0

    @property
    def probes(self):
        return self.hits + self.misses

    @property
    def hit_rate(self):
        return self.hits / self.probes if self.probes else 0.0

    def as_dict(self):
        out = dataclasses.asdict(self)
        out["hit_rate"] = self.hit_rate
        return out

    def render(self, indent=""):
        """Human-readable block for reports and ``repro cache stats``."""
        lines = [
            f"{indent}probes        {self.probes:>10,}  "
            f"(hits {self.hits:,}, misses {self.misses:,}, "
            f"hit rate {self.hit_rate:.1%})",
            f"{indent}stores        {self.stores:>10,}",
            f"{indent}evictions     {self.evictions:>10,}",
            f"{indent}invalidations {self.invalidations:>10,}",
            f"{indent}corrupt drops {self.corrupt_dropped:>10,}",
            f"{indent}cycles saved  {self.cycles_saved:>10,}",
        ]
        if self.profile_stores or self.profile_hits or self.profile_seeds:
            lines.append(
                f"{indent}profiles      {self.profile_stores:>10,}  "
                f"(hits {self.profile_hits:,}, "
                f"seeded {self.profile_seeds:,})")
        lines.append(f"{indent}tier skips    {self.tier_skips:>10,}")
        if self.bytes_uncompressed:
            ratio = self.bytes_compressed / self.bytes_uncompressed
            lines.append(
                f"{indent}bytes written {self.bytes_compressed:>10,}  "
                f"({self.bytes_uncompressed:,} raw, {ratio:.0%})")
        else:
            lines.append(
                f"{indent}bytes written {self.bytes_compressed:>10,}")
        return "\n".join(lines)
