"""Content fingerprints that key the persistent code cache.

A cached body is only valid while the code it was compiled from is
unchanged.  Three hashes capture that:

* :func:`method_fingerprint` -- everything the compiler observes about
  the method itself: signature, declared modifiers, locals layout, the
  exception-handler table and the bytecode body.
* :func:`context_fingerprint` -- the *transitive* call context: the
  fingerprints of every method reachable through calls.  Inlining can
  splice a callee's body (at any depth) into the compiled code, so a
  change to any reachable callee must invalidate the entry, exactly as
  a constant-pool change invalidates J9's shared-cache AOT bodies.
* :func:`strategy_digest` -- the *model set* behind the plan choice.  A
  learned :class:`~repro.service.strategy.ModelStrategy` folds a hash
  of its trained weights, scaling parameters and label tables into the
  key, so a retrained model never silently reuses bodies planned by its
  predecessor; heuristic (model-less) compilation uses a fixed
  sentinel, keeping model-free runs shareable across processes.

Fingerprints are content hashes -- no timestamps, no identity -- so the
same program always maps to the same keys regardless of process, load
order or machine.
"""

import hashlib

from repro.jvm.classfile import is_intrinsic

#: Hex digits kept per fingerprint (96 bits: collision-safe at any
#: realistic cache size, short enough for file names).
DIGEST_HEX = 24


def _digest(h):
    return h.hexdigest()[:DIGEST_HEX]


def method_fingerprint(method):
    """Content hash of one method's declaration and bytecode."""
    h = hashlib.sha256()

    def put(text):
        h.update(text.encode("utf-8"))
        h.update(b"\x00")

    put(method.signature)
    put(str(int(method.modifiers)))
    put(",".join(t.name for t in method.param_types))
    put(method.return_type.name)
    put(str(method.num_temps))
    put(str(int(method.is_constructor)))
    for hd in method.handlers:
        put(f"H{hd.start_pc}:{hd.end_pc}:{hd.handler_pc}:{hd.class_name}")
    for slot, elem in sorted(method.array_elems.items()):
        put(f"A{slot}:{elem.name}")
    put(str(len(method.code)))
    for ins in method.code:
        put(f"I{int(ins.op)}|{ins.a!r}|{ins.b!r}")
    return _digest(h)


def context_fingerprint(method, resolver=None):
    """Content hash of every method transitively reachable via calls.

    *resolver* is ``signature -> JMethod | None`` (the compiler's method
    resolver).  Unresolvable signatures and intrinsics contribute their
    name only -- intrinsic semantics are fixed by the VM, and a call
    that cannot resolve cannot be inlined either.
    """
    seen = {}
    stack = list(method.call_targets())
    while stack:
        sig = stack.pop()
        if sig in seen:
            continue
        target = None
        if resolver is not None and not is_intrinsic(sig):
            try:
                target = resolver(sig)
            except Exception:
                target = None
        if target is None:
            seen[sig] = "external"
        else:
            seen[sig] = method_fingerprint(target)
            stack.extend(target.call_targets())
    h = hashlib.sha256()
    for sig in sorted(seen):
        h.update(f"{sig}={seen[sig]};".encode("utf-8"))
    return _digest(h)


#: Digest sentinel for heuristic (model-less) compilation.  A fixed
#: string rather than a hash: model-free runs on any machine share it.
HEURISTIC_DIGEST = "heuristic"


def strategy_digest(strategy):
    """Model-set digest of *strategy* for cache keying.

    * ``None`` (heuristic plans only): :data:`HEURISTIC_DIGEST`.
    * A strategy exposing ``model_digest()`` (both
      :class:`~repro.service.strategy.ModelStrategy` and
      :class:`~repro.service.strategy.ServiceStrategy` do): that
      digest -- a content hash of the learned weights and plan tables,
      so retraining changes every key it influenced.
    * Anything else: a hash of the strategy's class identity.  Distinct
      strategy implementations never share entries, but such a strategy
      is assumed stateless; implement ``model_digest()`` to key on
      learned state.
    """
    if strategy is None:
        return HEURISTIC_DIGEST
    digest_fn = getattr(strategy, "model_digest", None)
    if digest_fn is not None:
        digest = digest_fn()
        if digest:
            return str(digest)
    cls = type(strategy)
    h = hashlib.sha256(
        f"unkeyed:{cls.__module__}.{cls.__qualname__}".encode("utf-8"))
    return _digest(h)
