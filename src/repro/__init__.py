"""Reproduction of "Using Machines to Learn Method-Specific Compilation
Strategies" (Sanchez, Amaral, Szafron, Pirvu, Stoodley -- CGO 2011).

Public surface, by subsystem:

* :mod:`repro.jvm` -- the guest bytecode virtual machine.
* :mod:`repro.jit` -- the Testarossa-style JIT: tree IL, 58 controllable
  transformations, plans, plan modifiers, adaptive control.
* :mod:`repro.features` -- the 71-dimension method feature vector.
* :mod:`repro.collect` -- data-collection infrastructure and archives.
* :mod:`repro.ml` -- ranking, normalization, SVMs, training pipeline.
* :mod:`repro.service` -- the out-of-process model server (named pipes).
* :mod:`repro.workloads` -- synthetic benchmark suites.
* :mod:`repro.experiments` -- the evaluation harness (Table 4,
  Figures 6-13).

Deterministic throughout: all randomness flows from
:class:`repro.rng.RngStreams` seeded by a single master seed.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
