"""Class and method model of the guest virtual machine.

A :class:`JMethod` carries everything the feature extractor (paper §4.1)
must be able to observe: declared modifiers (public/protected/static/final/
synchronized/strictfp), constructor-ness, argument and temporary counts, the
exception-handler table, and the bytecode body from which loop structure and
operation distributions are derived.
"""

import dataclasses
import enum

from repro.errors import BytecodeError
from repro.jvm.bytecode import JType, Op, validate_code


class MethodModifiers(enum.IntFlag):
    """Declared method modifiers (the binary attributes of Table 1)."""

    NONE = 0
    PUBLIC = 1
    PROTECTED = 2
    STATIC = 4
    FINAL = 8
    SYNCHRONIZED = 16
    STRICTFP = 32


@dataclasses.dataclass(frozen=True)
class Handler:
    """One exception-handler table entry: [start_pc, end_pc) -> handler_pc."""

    start_pc: int
    end_pc: int
    handler_pc: int
    class_name: str = "java/lang/Throwable"

    def covers(self, pc):
        return self.start_pc <= pc < self.end_pc

    def matches(self, thrown_class):
        # "Throwable" is the root: it catches everything thrown by guests.
        return (self.class_name == "java/lang/Throwable"
                or self.class_name == thrown_class)


class JMethod:
    """A guest method: signature, modifiers, locals layout and bytecode.

    Locals layout: slots ``[0, num_args)`` hold the arguments, slots
    ``[num_args, max_locals)`` are temporaries.
    """

    def __init__(self, class_name, name, param_types, return_type, code,
                 modifiers=MethodModifiers.PUBLIC, num_temps=0, handlers=(),
                 is_constructor=False, array_elems=None):
        self.class_name = class_name
        self.name = name
        self.param_types = tuple(param_types)
        self.return_type = return_type
        self.code = list(code)
        self.modifiers = modifiers
        self.num_temps = int(num_temps)
        self.handlers = tuple(handlers)
        self.is_constructor = is_constructor or name == "<init>"
        # Optional hint: slot -> element JType for array-typed parameters
        # (the analogue of array descriptors in real class files).
        self.array_elems = dict(array_elems) if array_elems else {}
        # Predecoded dispatch tuples, built lazily by the interpreter on
        # first execution and reused by every later activation.  Anyone
        # who mutates ``code`` after construction must call
        # :meth:`invalidate_predecode`.
        self._predecoded = None
        validate_code(self.code, self.max_locals)
        self._validate_handlers()

    def invalidate_predecode(self):
        """Drop the cached predecoded body (call after editing ``code``)."""
        self._predecoded = None

    # -- layout ----------------------------------------------------------

    @property
    def num_args(self):
        return len(self.param_types)

    @property
    def max_locals(self):
        return self.num_args + self.num_temps

    @property
    def signature(self):
        params = ",".join(t.name for t in self.param_types)
        return (f"{self.class_name}.{self.name}"
                f"({params}){self.return_type.name}")

    # -- modifier helpers --------------------------------------------------

    @property
    def is_static(self):
        return bool(self.modifiers & MethodModifiers.STATIC)

    @property
    def is_final(self):
        return bool(self.modifiers & MethodModifiers.FINAL)

    @property
    def is_public(self):
        return bool(self.modifiers & MethodModifiers.PUBLIC)

    @property
    def is_protected(self):
        return bool(self.modifiers & MethodModifiers.PROTECTED)

    @property
    def is_synchronized(self):
        return bool(self.modifiers & MethodModifiers.SYNCHRONIZED)

    @property
    def is_strictfp(self):
        return bool(self.modifiers & MethodModifiers.STRICTFP)

    # -- static analyses used by compilation control ------------------------

    def has_backward_branch(self):
        """True when any branch targets an earlier pc (``may have loops``)."""
        from repro.jvm.bytecode import BRANCH_OPS
        return any(ins.op in BRANCH_OPS and ins.a <= pc
                   for pc, ins in enumerate(self.code))

    def call_targets(self):
        """Signatures of all methods this body calls, in order."""
        return [ins.a for ins in self.code if ins.op is Op.CALL]

    def _validate_handlers(self):
        n = len(self.code)
        for h in self.handlers:
            if not (0 <= h.start_pc < h.end_pc <= n):
                raise BytecodeError(
                    f"{self.signature}: handler range "
                    f"[{h.start_pc}, {h.end_pc}) invalid for {n} instrs")
            if not (0 <= h.handler_pc < n):
                raise BytecodeError(
                    f"{self.signature}: handler pc {h.handler_pc} invalid")

    def __repr__(self):
        return f"JMethod({self.signature}, {len(self.code)} instrs)"


class JClass:
    """A guest class: a name, an optional superclass and its methods."""

    def __init__(self, name, superclass=None):
        self.name = name
        self.superclass = superclass
        self.methods = {}

    def add_method(self, method):
        if method.class_name != self.name:
            raise BytecodeError(
                f"method {method.signature} declared for class "
                f"{method.class_name}, added to {self.name}")
        self.methods[method.name] = method
        return method

    def __repr__(self):
        return f"JClass({self.name}, {len(self.methods)} methods)"


#: Signatures treated as library intrinsics by the VM.  Calls to these do
#: not dispatch to guest bytecode; the interpreter and the native simulator
#: model them directly.  They matter to learning because the feature
#: extractor flags methods that use BigDecimal or sun.misc.Unsafe (Table 1).
INTRINSIC_PREFIXES = (
    "java/math/BigDecimal.",
    "sun/misc/Unsafe.",
    "java/lang/Math.",
)


def is_intrinsic(signature):
    return signature.startswith(INTRINSIC_PREFIXES)


def intrinsic_kind(signature):
    """Return 'bigdecimal' | 'unsafe' | 'math' for an intrinsic signature."""
    if signature.startswith("java/math/BigDecimal."):
        return "bigdecimal"
    if signature.startswith("sun/misc/Unsafe."):
        return "unsafe"
    return "math"
