"""The interpreted execution tier.

A classic stack-machine interpreter over :mod:`repro.jvm.bytecode`.  Every
stack slot and local carries ``(value, JType)`` so arithmetic can apply the
correct two's-complement masking, and so the IL generator's abstract
interpretation agrees with concrete execution.

Each bytecode advances the VM clock by its ``INTERP_COST`` -- interpretation
pays dispatch overhead on every instruction, which is precisely the gap JIT
compilation closes.
"""

import math

from repro.errors import JavaThrow, VMError
from repro.jvm.bytecode import (
    INTERP_COST,
    JType,
    Op,
    convert_to_integral,
    mask_integral,
)
from repro.jvm.classfile import is_intrinsic
from repro.jvm.intrinsics import call_intrinsic
from repro.jvm.objects import JArray, JObject, make_multiarray, null_check

#: Hard step bound per method activation; generated programs should never
#: get near it, so hitting it indicates a bug (e.g. a miscompiled branch).
MAX_STEPS = 5_000_000


def promote(t1, t2):
    """Binary-operation result type, Java-style numeric promotion."""
    floats = (JType.LONGDOUBLE, JType.DOUBLE, JType.FLOAT)
    for ft in floats:
        if t1 is ft or t2 is ft:
            return ft
    if t1 is JType.PACKED or t2 is JType.PACKED:
        return JType.PACKED
    if t1 is JType.ZONED or t2 is JType.ZONED:
        return JType.ZONED
    if t1 is JType.LONG or t2 is JType.LONG:
        return JType.LONG
    return JType.INT


def coerce(value, jtype):
    """Clamp/convert *value* to the representation of *jtype*."""
    if jtype.is_floating:
        return float(value)
    if jtype.is_integral or jtype.is_decimal:
        return convert_to_integral(value, jtype)
    return value


def default_value(jtype):
    """The zero value of *jtype* (used for uninitialized temporaries)."""
    if jtype.is_floating:
        return 0.0
    if jtype.is_reference:
        return None
    return 0


class Interpreter:
    """Executes guest bytecode on behalf of a :class:`VirtualMachine`.

    The interpreter does not dispatch calls itself; it asks the VM via
    ``vm.invoke`` so the VM can route to compiled code and maintain
    invocation counters.
    """

    def __init__(self, vm):
        self.vm = vm

    # -- public API -------------------------------------------------------

    def execute(self, method, args):
        """Run *method* with *args*; returns ``(value, jtype)``.

        Guest exceptions unwound past this frame propagate as
        :class:`JavaThrow`.
        """
        if len(args) != method.num_args:
            raise VMError(f"{method.signature}: expected {method.num_args} "
                          f"args, got {len(args)}")
        locals_ = [None] * method.max_locals
        # Arguments adopt the *declared* parameter types, exactly as the IL
        # generator assumes during abstract interpretation.
        for i, ((value, _jtype), ptype) in enumerate(
                zip(args, method.param_types)):
            if ptype.is_reference:
                locals_[i] = (value, ptype)
            else:
                locals_[i] = (coerce(value, ptype), ptype)
        for i in range(method.num_args, method.max_locals):
            locals_[i] = (0, JType.INT)
        return self._run(method, locals_)

    # -- the dispatch loop --------------------------------------------------

    def _run(self, method, locals_):
        code = method.code
        clock = self.vm.clock
        stack = []
        pc = 0
        steps = 0
        while True:
            steps += 1
            if steps > MAX_STEPS:
                raise VMError(f"{method.signature}: exceeded {MAX_STEPS} "
                              "interpreted steps")
            ins = code[pc]
            op = ins.op
            clock.advance(INTERP_COST[op])
            try:
                next_pc = self._step(method, ins, stack, locals_, pc)
            except JavaThrow as thrown:
                handler = self._find_handler(method, pc, thrown.class_name)
                if handler is None:
                    raise
                stack.clear()
                stack.append((JObject(thrown.class_name), JType.OBJECT))
                pc = handler.handler_pc
                continue
            if next_pc is None:
                pc += 1
            elif isinstance(next_pc, tuple):  # RETURN sentinel
                return next_pc[1]
            else:
                if next_pc <= pc:
                    self.vm.on_backward_branch(method)
                pc = next_pc

    def _find_handler(self, method, pc, thrown_class):
        for handler in method.handlers:
            if handler.covers(pc) and handler.matches(thrown_class):
                return handler
        return None

    # -- single instruction ---------------------------------------------------

    def _step(self, method, ins, stack, locals_, pc):
        """Execute one instruction.

        Returns ``None`` to fall through, an int pc to branch, or the tuple
        ``("return", (value, jtype))`` to leave the method.
        """
        op = ins.op

        # ALU ---------------------------------------------------------
        if op is Op.ADD or op is Op.SUB or op is Op.MUL:
            b, tb = stack.pop()
            a, ta = stack.pop()
            t = promote(ta, tb)
            if op is Op.ADD:
                r = a + b
            elif op is Op.SUB:
                r = a - b
            else:
                r = a * b
            stack.append((coerce(r, t), t))
            return None
        if op is Op.DIV or op is Op.REM:
            b, tb = stack.pop()
            a, ta = stack.pop()
            t = promote(ta, tb)
            if t.is_floating:
                if b == 0:
                    r = (math.inf if a > 0 else -math.inf if a < 0
                         else math.nan)
                    if op is Op.REM:
                        r = math.nan
                else:
                    r = a / b if op is Op.DIV else math.fmod(a, b)
            else:
                if b == 0:
                    raise JavaThrow("java/lang/ArithmeticException",
                                    "/ by zero")
                # Java semantics: truncate toward zero.
                q = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    q = -q
                r = q if op is Op.DIV else a - q * b
            stack.append((coerce(r, t), t))
            return None
        if op is Op.NEG:
            a, ta = stack.pop()
            stack.append((coerce(-a, ta), ta))
            return None
        if op in (Op.SHL, Op.SHR, Op.OR, Op.AND, Op.XOR):
            b, tb = stack.pop()
            a, ta = stack.pop()
            t = ta if ta is JType.LONG else JType.INT
            a = int(a)
            b = int(b)
            if op is Op.SHL:
                r = a << (b & (63 if t is JType.LONG else 31))
            elif op is Op.SHR:
                r = a >> (b & (63 if t is JType.LONG else 31))
            elif op is Op.OR:
                r = a | b
            elif op is Op.AND:
                r = a & b
            else:
                r = a ^ b
            stack.append((mask_integral(r, t), t))
            return None
        if op is Op.INC:
            value, jtype = locals_[ins.a]
            locals_[ins.a] = (coerce(value + ins.b, jtype), jtype)
            return None
        if op is Op.CMP:
            b, _tb = stack.pop()
            a, _ta = stack.pop()
            if isinstance(a, float) and math.isnan(a):
                r = -1
            elif isinstance(b, float) and math.isnan(b):
                r = -1
            else:
                r = (a > b) - (a < b)
            stack.append((r, JType.INT))
            return None

        # Cast --------------------------------------------------------
        if op is Op.CAST:
            value, _ = stack.pop()
            to = ins.a
            if to.is_floating:
                stack.append((float(value), to))
            else:
                stack.append((convert_to_integral(value, to), to))
            return None
        if op is Op.CHECKCAST:
            ref, t = stack[-1]
            if ref is not None and isinstance(ref, JObject):
                if not ref.isinstance_of(ins.a, self.vm.classes):
                    raise JavaThrow("java/lang/ClassCastException",
                                    f"{ref.class_name} -> {ins.a}")
            return None

        # Load / store --------------------------------------------------
        if op is Op.LOAD:
            entry = locals_[ins.a]
            stack.append(entry)
            return None
        if op is Op.LOADCONST:
            stack.append((coerce(ins.b, ins.a), ins.a))
            return None
        if op is Op.STORE:
            locals_[ins.a] = stack.pop()
            return None
        if op is Op.GETFIELD:
            ref, _ = stack.pop()
            null_check(ref)
            value = ref.getfield(ins.a)
            jtype = (JType.OBJECT if isinstance(value, JObject)
                     else JType.ADDRESS if isinstance(value, JArray)
                     else JType.DOUBLE if isinstance(value, float)
                     else JType.INT)
            stack.append((value, jtype))
            return None
        if op is Op.PUTFIELD:
            value, _ = stack.pop()
            ref, _ = stack.pop()
            null_check(ref)
            ref.putfield(ins.a, value)
            return None
        if op is Op.ALOAD:
            index, _ = stack.pop()
            ref, _ = stack.pop()
            null_check(ref)
            value = ref.load(int(index))
            stack.append((value, ref.elem_type))
            return None
        if op is Op.ASTORE:
            value, _ = stack.pop()
            index, _ = stack.pop()
            ref, _ = stack.pop()
            null_check(ref)
            ref.store(int(index), coerce(value, ref.elem_type))
            return None

        # Memory --------------------------------------------------------
        if op is Op.NEW:
            self.vm.on_allocation()
            stack.append((JObject(ins.a), JType.OBJECT))
            return None
        if op is Op.NEWARRAY:
            length, _ = stack.pop()
            self.vm.on_allocation()
            stack.append((JArray(ins.a, int(length)), JType.ADDRESS))
            return None
        if op is Op.NEWMULTIARRAY:
            dims = []
            for _ in range(ins.b):
                length, _ = stack.pop()
                dims.append(int(length))
            dims.reverse()
            self.vm.on_allocation()
            stack.append((make_multiarray(ins.a, dims), JType.ADDRESS))
            return None

        # Branch --------------------------------------------------------
        if op is Op.GOTO:
            return ins.a
        if op in (Op.IFEQ, Op.IFNE, Op.IFLT, Op.IFLE, Op.IFGT, Op.IFGE):
            v, _ = stack.pop()
            taken = {
                Op.IFEQ: v == 0, Op.IFNE: v != 0, Op.IFLT: v < 0,
                Op.IFLE: v <= 0, Op.IFGT: v > 0, Op.IFGE: v >= 0,
            }[op]
            return ins.a if taken else None
        if op is Op.CALL:
            nargs = ins.b
            call_args = stack[len(stack) - nargs:]
            del stack[len(stack) - nargs:]
            if is_intrinsic(ins.a):
                value, rtype, cost = call_intrinsic(
                    ins.a, [v for v, _ in call_args])
                self.vm.clock.advance(cost)
            else:
                value, rtype = self.vm.invoke(ins.a, call_args)
            if rtype is not JType.VOID:
                stack.append((value, rtype))
            return None
        if op is Op.RET:
            return ("return", (None, JType.VOID))
        if op is Op.RETVAL:
            return ("return", stack.pop())

        # JVM ---------------------------------------------------------
        if op is Op.INSTANCEOF:
            ref, _ = stack.pop()
            result = int(isinstance(ref, JObject)
                         and ref.isinstance_of(ins.a, self.vm.classes))
            stack.append((result, JType.INT))
            return None
        if op is Op.MONITORENTER:
            ref, _ = stack.pop()
            null_check(ref)
            self.vm.on_monitor(enter=True)
            return None
        if op is Op.MONITOREXIT:
            ref, _ = stack.pop()
            null_check(ref)
            self.vm.on_monitor(enter=False)
            return None
        if op is Op.ATHROW:
            ref, _ = stack.pop()
            null_check(ref)
            raise JavaThrow(ref.class_name)

        # Arrays --------------------------------------------------------
        if op is Op.ARRAYLENGTH:
            ref, _ = stack.pop()
            null_check(ref)
            stack.append((ref.length, JType.INT))
            return None
        if op is Op.ARRAYCOPY:
            count, _ = stack.pop()
            dstoff, _ = stack.pop()
            dst, _ = stack.pop()
            srcoff, _ = stack.pop()
            src, _ = stack.pop()
            null_check(src)
            null_check(dst)
            count, srcoff, dstoff = int(count), int(srcoff), int(dstoff)
            if (count < 0 or srcoff < 0 or dstoff < 0
                    or srcoff + count > src.length
                    or dstoff + count > dst.length):
                raise JavaThrow("java/lang/ArrayIndexOutOfBoundsException",
                                "arraycopy")
            dst.data[dstoff:dstoff + count] = src.data[srcoff:srcoff + count]
            self.vm.clock.advance(2 * count)
            return None
        if op is Op.ARRAYCMP:
            b, _ = stack.pop()
            a, _ = stack.pop()
            null_check(a)
            null_check(b)
            r = (a.data > b.data) - (a.data < b.data)
            stack.append((r, JType.INT))
            self.vm.clock.advance(min(a.length, b.length))
            return None

        # Stack housekeeping ----------------------------------------------
        if op is Op.DUP:
            stack.append(stack[-1])
            return None
        if op is Op.POP:
            stack.pop()
            return None
        if op is Op.SWAP:
            stack[-1], stack[-2] = stack[-2], stack[-1]
            return None
        if op is Op.NOP:
            return None

        raise VMError(f"unimplemented opcode {op!r}")
