"""The interpreted execution tier.

A classic stack-machine interpreter over :mod:`repro.jvm.bytecode`.  Every
stack slot and local carries ``(value, JType)`` so arithmetic can apply the
correct two's-complement masking, and so the IL generator's abstract
interpretation agrees with concrete execution.

Each bytecode advances the VM clock by its ``INTERP_COST`` -- interpretation
pays dispatch overhead on every instruction, which is precisely the gap JIT
compilation closes.

Dispatch itself is **table-driven and predecoded**: the first activation of
a method compiles its instruction stream into flat tuples
``(handler, cost, a, b)``, where ``handler`` comes from an opcode-indexed
table and the operands (including per-instruction constants such as a
pre-coerced ``LOADCONST`` value) are resolved once.  The hot loop is then
``handler(stack, locals, vm, a, b)`` -- no enum comparisons, no cost-dict
hash, no per-step attribute chasing.  Virtual-cycle accounting is
bit-identical to the pre-table interpreter: the predecoded tuples carry the
same ``INTERP_COST`` charged at the same per-step points, which
``tests/jvm/test_dispatch_parity.py`` enforces against the retained legacy
loop (set ``REPRO_DISPATCH=legacy`` or flip ``USE_PREDECODE`` to compare).
"""

import math
import os

from repro.errors import JavaThrow, StepBudgetExceeded, VMError
from repro.jvm.bytecode import (
    INTERP_COST,
    INTERP_COST_TABLE,
    NUM_OPCODES,
    JType,
    Op,
    convert_to_integral,
    mask_integral,
)
from repro.jvm.classfile import is_intrinsic
from repro.jvm.intrinsics import call_intrinsic
from repro.jvm.objects import JArray, JObject, make_multiarray, null_check

#: Hard step bound per method activation; generated programs should never
#: get near it, so hitting it indicates a bug (e.g. a miscompiled branch).
MAX_STEPS = 5_000_000

#: When False, every activation runs the legacy if/elif dispatch loop
#: instead of the predecoded table -- kept through the transition so the
#: parity suite (and ``repro bench``) can compare the two paths on
#: identical inputs.  ``REPRO_DISPATCH=legacy`` flips the default.
USE_PREDECODE = os.environ.get("REPRO_DISPATCH", "").lower() != "legacy"


def promote(t1, t2):
    """Binary-operation result type, Java-style numeric promotion."""
    floats = (JType.LONGDOUBLE, JType.DOUBLE, JType.FLOAT)
    for ft in floats:
        if t1 is ft or t2 is ft:
            return ft
    if t1 is JType.PACKED or t2 is JType.PACKED:
        return JType.PACKED
    if t1 is JType.ZONED or t2 is JType.ZONED:
        return JType.ZONED
    if t1 is JType.LONG or t2 is JType.LONG:
        return JType.LONG
    return JType.INT


def coerce(value, jtype):
    """Clamp/convert *value* to the representation of *jtype*."""
    if jtype.is_floating:
        return float(value)
    if jtype.is_integral or jtype.is_decimal:
        return convert_to_integral(value, jtype)
    return value


def default_value(jtype):
    """The zero value of *jtype* (used for uninitialized temporaries)."""
    if jtype.is_floating:
        return 0.0
    if jtype.is_reference:
        return None
    return 0


# -- predecoded instruction handlers ----------------------------------------
#
# One function per opcode (conditional branches and calls get one per
# *specialized* form), signature ``(stack, locals_, vm, a, b)``.  Return
# value protocol, shared with the main loop: ``None`` falls through to
# ``pc + 1``, an ``int`` branches to that pc, and a tuple
# ``("return", (value, jtype))`` leaves the method.  Bodies mirror the
# legacy ``_step`` arms statement for statement -- the parity property
# depends on it.

_RETURN_VOID = ("return", (None, JType.VOID))


def _op_add(stack, locals_, vm, a, b):
    y, ty = stack.pop()
    x, tx = stack.pop()
    t = promote(tx, ty)
    stack.append((coerce(x + y, t), t))


def _op_sub(stack, locals_, vm, a, b):
    y, ty = stack.pop()
    x, tx = stack.pop()
    t = promote(tx, ty)
    stack.append((coerce(x - y, t), t))


def _op_mul(stack, locals_, vm, a, b):
    y, ty = stack.pop()
    x, tx = stack.pop()
    t = promote(tx, ty)
    stack.append((coerce(x * y, t), t))


def _divrem_interp(stack, is_div):
    y, ty = stack.pop()
    x, tx = stack.pop()
    t = promote(tx, ty)
    if t.is_floating:
        if y == 0:
            r = (math.inf if x > 0 else -math.inf if x < 0 else math.nan)
            if not is_div:
                r = math.nan
        else:
            r = x / y if is_div else math.fmod(x, y)
    else:
        if y == 0:
            raise JavaThrow("java/lang/ArithmeticException", "/ by zero")
        # Java semantics: truncate toward zero.
        q = abs(x) // abs(y)
        if (x < 0) != (y < 0):
            q = -q
        r = q if is_div else x - q * y
    stack.append((coerce(r, t), t))


def _op_div(stack, locals_, vm, a, b):
    _divrem_interp(stack, True)


def _op_rem(stack, locals_, vm, a, b):
    _divrem_interp(stack, False)


def _op_neg(stack, locals_, vm, a, b):
    x, tx = stack.pop()
    stack.append((coerce(-x, tx), tx))


def _op_shl(stack, locals_, vm, a, b):
    y, _ty = stack.pop()
    x, tx = stack.pop()
    t = tx if tx is JType.LONG else JType.INT
    r = int(x) << (int(y) & (63 if t is JType.LONG else 31))
    stack.append((mask_integral(r, t), t))


def _op_shr(stack, locals_, vm, a, b):
    y, _ty = stack.pop()
    x, tx = stack.pop()
    t = tx if tx is JType.LONG else JType.INT
    r = int(x) >> (int(y) & (63 if t is JType.LONG else 31))
    stack.append((mask_integral(r, t), t))


def _op_or(stack, locals_, vm, a, b):
    y, _ty = stack.pop()
    x, tx = stack.pop()
    t = tx if tx is JType.LONG else JType.INT
    stack.append((mask_integral(int(x) | int(y), t), t))


def _op_and(stack, locals_, vm, a, b):
    y, _ty = stack.pop()
    x, tx = stack.pop()
    t = tx if tx is JType.LONG else JType.INT
    stack.append((mask_integral(int(x) & int(y), t), t))


def _op_xor(stack, locals_, vm, a, b):
    y, _ty = stack.pop()
    x, tx = stack.pop()
    t = tx if tx is JType.LONG else JType.INT
    stack.append((mask_integral(int(x) ^ int(y), t), t))


def _op_inc(stack, locals_, vm, a, b):
    value, jtype = locals_[a]
    locals_[a] = (coerce(value + b, jtype), jtype)


def _op_cmp(stack, locals_, vm, a, b):
    y, _ty = stack.pop()
    x, _tx = stack.pop()
    if isinstance(x, float) and math.isnan(x):
        r = -1
    elif isinstance(y, float) and math.isnan(y):
        r = -1
    else:
        r = (x > y) - (x < y)
    stack.append((r, JType.INT))


def _op_cast_float(stack, locals_, vm, a, b):
    value, _ = stack.pop()
    stack.append((float(value), a))


def _op_cast_int(stack, locals_, vm, a, b):
    value, _ = stack.pop()
    stack.append((convert_to_integral(value, a), a))


def _op_checkcast(stack, locals_, vm, a, b):
    ref, _t = stack[-1]
    if ref is not None and isinstance(ref, JObject):
        if not ref.isinstance_of(a, vm.classes):
            raise JavaThrow("java/lang/ClassCastException",
                            f"{ref.class_name} -> {a}")


def _op_load(stack, locals_, vm, a, b):
    stack.append(locals_[a])


def _op_loadconst(stack, locals_, vm, a, b):
    # ``a`` is the pre-coerced ``(value, jtype)`` entry, built once at
    # predecode time.
    stack.append(a)


def _op_store(stack, locals_, vm, a, b):
    locals_[a] = stack.pop()


def _op_getfield(stack, locals_, vm, a, b):
    ref, _ = stack.pop()
    null_check(ref)
    value = ref.getfield(a)
    jtype = (JType.OBJECT if isinstance(value, JObject)
             else JType.ADDRESS if isinstance(value, JArray)
             else JType.DOUBLE if isinstance(value, float)
             else JType.INT)
    stack.append((value, jtype))


def _op_putfield(stack, locals_, vm, a, b):
    value, _ = stack.pop()
    ref, _ = stack.pop()
    null_check(ref)
    ref.putfield(a, value)


def _op_aload(stack, locals_, vm, a, b):
    index, _ = stack.pop()
    ref, _ = stack.pop()
    null_check(ref)
    value = ref.load(int(index))
    stack.append((value, ref.elem_type))


def _op_astore(stack, locals_, vm, a, b):
    value, _ = stack.pop()
    index, _ = stack.pop()
    ref, _ = stack.pop()
    null_check(ref)
    ref.store(int(index), coerce(value, ref.elem_type))


def _op_new(stack, locals_, vm, a, b):
    vm.on_allocation()
    stack.append((JObject(a), JType.OBJECT))


def _op_newarray(stack, locals_, vm, a, b):
    length, _ = stack.pop()
    vm.on_allocation()
    stack.append((JArray(a, int(length)), JType.ADDRESS))


def _op_newmultiarray(stack, locals_, vm, a, b):
    dims = []
    for _ in range(b):
        length, _ = stack.pop()
        dims.append(int(length))
    dims.reverse()
    vm.on_allocation()
    stack.append((make_multiarray(a, dims), JType.ADDRESS))


def _op_goto(stack, locals_, vm, a, b):
    return a


def _op_ifeq(stack, locals_, vm, a, b):
    return a if stack.pop()[0] == 0 else None


def _op_ifne(stack, locals_, vm, a, b):
    return a if stack.pop()[0] != 0 else None


def _op_iflt(stack, locals_, vm, a, b):
    return a if stack.pop()[0] < 0 else None


def _op_ifle(stack, locals_, vm, a, b):
    return a if stack.pop()[0] <= 0 else None


def _op_ifgt(stack, locals_, vm, a, b):
    return a if stack.pop()[0] > 0 else None


def _op_ifge(stack, locals_, vm, a, b):
    return a if stack.pop()[0] >= 0 else None


def _op_call(stack, locals_, vm, a, b):
    call_args = stack[len(stack) - b:]
    del stack[len(stack) - b:]
    value, rtype = vm.invoke(a, call_args)
    if rtype is not JType.VOID:
        stack.append((value, rtype))


def _op_call_intrinsic(stack, locals_, vm, a, b):
    call_args = stack[len(stack) - b:]
    del stack[len(stack) - b:]
    value, rtype, cost = call_intrinsic(a, [v for v, _ in call_args])
    vm.clock.advance(cost)
    if rtype is not JType.VOID:
        stack.append((value, rtype))


def _op_ret(stack, locals_, vm, a, b):
    return _RETURN_VOID


def _op_retval(stack, locals_, vm, a, b):
    return ("return", stack.pop())


def _op_instanceof(stack, locals_, vm, a, b):
    ref, _ = stack.pop()
    result = int(isinstance(ref, JObject)
                 and ref.isinstance_of(a, vm.classes))
    stack.append((result, JType.INT))


def _op_monitorenter(stack, locals_, vm, a, b):
    ref, _ = stack.pop()
    null_check(ref)
    vm.on_monitor(enter=True)


def _op_monitorexit(stack, locals_, vm, a, b):
    ref, _ = stack.pop()
    null_check(ref)
    vm.on_monitor(enter=False)


def _op_athrow(stack, locals_, vm, a, b):
    ref, _ = stack.pop()
    null_check(ref)
    raise JavaThrow(ref.class_name)


def _op_arraylength(stack, locals_, vm, a, b):
    ref, _ = stack.pop()
    null_check(ref)
    stack.append((ref.length, JType.INT))


def _op_arraycopy(stack, locals_, vm, a, b):
    count, _ = stack.pop()
    dstoff, _ = stack.pop()
    dst, _ = stack.pop()
    srcoff, _ = stack.pop()
    src, _ = stack.pop()
    null_check(src)
    null_check(dst)
    count, srcoff, dstoff = int(count), int(srcoff), int(dstoff)
    if (count < 0 or srcoff < 0 or dstoff < 0
            or srcoff + count > src.length
            or dstoff + count > dst.length):
        raise JavaThrow("java/lang/ArrayIndexOutOfBoundsException",
                        "arraycopy")
    dst.data[dstoff:dstoff + count] = src.data[srcoff:srcoff + count]
    vm.clock.advance(2 * count)


def _op_arraycmp(stack, locals_, vm, a, b):
    y, _ = stack.pop()
    x, _ = stack.pop()
    null_check(x)
    null_check(y)
    r = (x.data > y.data) - (x.data < y.data)
    stack.append((r, JType.INT))
    vm.clock.advance(min(x.length, y.length))


def _op_dup(stack, locals_, vm, a, b):
    stack.append(stack[-1])


def _op_pop(stack, locals_, vm, a, b):
    stack.pop()


def _op_swap(stack, locals_, vm, a, b):
    stack[-1], stack[-2] = stack[-2], stack[-1]


def _op_nop(stack, locals_, vm, a, b):
    return None


#: Opcode-indexed dispatch table (``HANDLERS[int(op)]``).
HANDLERS = [None] * NUM_OPCODES
for _op, _fn in {
    Op.ADD: _op_add, Op.SUB: _op_sub, Op.MUL: _op_mul,
    Op.DIV: _op_div, Op.REM: _op_rem, Op.NEG: _op_neg,
    Op.SHL: _op_shl, Op.SHR: _op_shr, Op.OR: _op_or,
    Op.AND: _op_and, Op.XOR: _op_xor, Op.INC: _op_inc, Op.CMP: _op_cmp,
    Op.CAST: _op_cast_int,  # refined per-instruction at predecode
    Op.CHECKCAST: _op_checkcast,
    Op.LOAD: _op_load, Op.LOADCONST: _op_loadconst, Op.STORE: _op_store,
    Op.GETFIELD: _op_getfield, Op.PUTFIELD: _op_putfield,
    Op.ALOAD: _op_aload, Op.ASTORE: _op_astore,
    Op.NEW: _op_new, Op.NEWARRAY: _op_newarray,
    Op.NEWMULTIARRAY: _op_newmultiarray,
    Op.GOTO: _op_goto, Op.IFEQ: _op_ifeq, Op.IFNE: _op_ifne,
    Op.IFLT: _op_iflt, Op.IFLE: _op_ifle, Op.IFGT: _op_ifgt,
    Op.IFGE: _op_ifge,
    Op.CALL: _op_call,  # refined to the intrinsic form at predecode
    Op.RET: _op_ret, Op.RETVAL: _op_retval,
    Op.INSTANCEOF: _op_instanceof, Op.MONITORENTER: _op_monitorenter,
    Op.MONITOREXIT: _op_monitorexit, Op.ATHROW: _op_athrow,
    Op.ARRAYLENGTH: _op_arraylength, Op.ARRAYCOPY: _op_arraycopy,
    Op.ARRAYCMP: _op_arraycmp,
    Op.DUP: _op_dup, Op.POP: _op_pop, Op.SWAP: _op_swap, Op.NOP: _op_nop,
}.items():
    HANDLERS[_op] = _fn
del _op, _fn


def predecode(code):
    """Compile a bytecode body into flat ``(handler, cost, a, b)`` tuples.

    Per-instruction work that the legacy loop redid on every step happens
    here exactly once: handler lookup, cost lookup, ``LOADCONST``
    coercion, ``CAST`` target classification and intrinsic-call
    resolution.  The result is position-aligned with *code* (one tuple
    per pc, branch targets unchanged), so exception-handler pcs and
    backward-branch detection carry over untouched.
    """
    table = HANDLERS
    costs = INTERP_COST_TABLE
    out = []
    for ins in code:
        op = ins.op
        handler = table[op]
        a, b = ins.a, ins.b
        if op is Op.LOADCONST:
            a = (coerce(b, a), a)
        elif op is Op.CAST:
            handler = _op_cast_float if a.is_floating else _op_cast_int
        elif op is Op.CALL and is_intrinsic(a):
            handler = _op_call_intrinsic
        out.append((handler, costs[op], a, b))
    return out


class Interpreter:
    """Executes guest bytecode on behalf of a :class:`VirtualMachine`.

    The interpreter does not dispatch calls itself; it asks the VM via
    ``vm.invoke`` so the VM can route to compiled code and maintain
    invocation counters.
    """

    def __init__(self, vm):
        self.vm = vm

    # -- public API -------------------------------------------------------

    def execute(self, method, args):
        """Run *method* with *args*; returns ``(value, jtype)``.

        Guest exceptions unwound past this frame propagate as
        :class:`JavaThrow`.
        """
        if len(args) != method.num_args:
            raise VMError(f"{method.signature}: expected {method.num_args} "
                          f"args, got {len(args)}")
        locals_ = [None] * method.max_locals
        # Arguments adopt the *declared* parameter types, exactly as the IL
        # generator assumes during abstract interpretation.
        for i, ((value, _jtype), ptype) in enumerate(
                zip(args, method.param_types)):
            if ptype.is_reference:
                locals_[i] = (value, ptype)
            else:
                locals_[i] = (coerce(value, ptype), ptype)
        for i in range(method.num_args, method.max_locals):
            locals_[i] = (0, JType.INT)
        if USE_PREDECODE:
            return self._run(method, locals_)
        return self._run_legacy(method, locals_)

    # -- the dispatch loop --------------------------------------------------

    def _run(self, method, locals_):
        code = method._predecoded
        if code is None:
            code = method._predecoded = predecode(method.code)
        vm = self.vm
        clock = vm.clock
        stats = vm.stats
        stack = []
        pc = 0
        budget = MAX_STEPS
        try:
            while True:
                budget -= 1
                if budget < 0:
                    raise StepBudgetExceeded(method.signature, MAX_STEPS,
                                             "interpreted")
                handler, cost, a, b = code[pc]
                clock.cycles += cost
                try:
                    next_pc = handler(stack, locals_, vm, a, b)
                except JavaThrow as thrown:
                    entry = self._find_handler(method, pc,
                                               thrown.class_name)
                    if entry is None:
                        raise
                    stack.clear()
                    stack.append((JObject(thrown.class_name),
                                  JType.OBJECT))
                    pc = entry.handler_pc
                    continue
                if next_pc is None:
                    pc += 1
                elif next_pc.__class__ is int:
                    if next_pc <= pc:
                        vm.on_backward_branch(method)
                    pc = next_pc
                else:  # ("return", (value, jtype)) sentinel
                    return next_pc[1]
        finally:
            stats["interp_steps"] += MAX_STEPS - budget

    def _run_legacy(self, method, locals_):
        code = method.code
        clock = self.vm.clock
        stack = []
        pc = 0
        steps = 0
        try:
            while True:
                steps += 1
                if steps > MAX_STEPS:
                    raise StepBudgetExceeded(method.signature, MAX_STEPS,
                                             "interpreted")
                ins = code[pc]
                op = ins.op
                clock.advance(INTERP_COST[op])
                try:
                    next_pc = self._step(method, ins, stack, locals_, pc)
                except JavaThrow as thrown:
                    handler = self._find_handler(method, pc,
                                                 thrown.class_name)
                    if handler is None:
                        raise
                    stack.clear()
                    stack.append((JObject(thrown.class_name),
                                  JType.OBJECT))
                    pc = handler.handler_pc
                    continue
                if next_pc is None:
                    pc += 1
                elif isinstance(next_pc, tuple):  # RETURN sentinel
                    return next_pc[1]
                else:
                    if next_pc <= pc:
                        self.vm.on_backward_branch(method)
                    pc = next_pc
        finally:
            self.vm.stats["interp_steps"] += steps

    def _find_handler(self, method, pc, thrown_class):
        for handler in method.handlers:
            if handler.covers(pc) and handler.matches(thrown_class):
                return handler
        return None

    # -- single instruction (legacy dispatch) ---------------------------------

    def _step(self, method, ins, stack, locals_, pc):
        """Execute one instruction (legacy if/elif dispatch).

        Returns ``None`` to fall through, an int pc to branch, or the tuple
        ``("return", (value, jtype))`` to leave the method.
        """
        op = ins.op

        # ALU ---------------------------------------------------------
        if op is Op.ADD or op is Op.SUB or op is Op.MUL:
            b, tb = stack.pop()
            a, ta = stack.pop()
            t = promote(ta, tb)
            if op is Op.ADD:
                r = a + b
            elif op is Op.SUB:
                r = a - b
            else:
                r = a * b
            stack.append((coerce(r, t), t))
            return None
        if op is Op.DIV or op is Op.REM:
            b, tb = stack.pop()
            a, ta = stack.pop()
            t = promote(ta, tb)
            if t.is_floating:
                if b == 0:
                    r = (math.inf if a > 0 else -math.inf if a < 0
                         else math.nan)
                    if op is Op.REM:
                        r = math.nan
                else:
                    r = a / b if op is Op.DIV else math.fmod(a, b)
            else:
                if b == 0:
                    raise JavaThrow("java/lang/ArithmeticException",
                                    "/ by zero")
                # Java semantics: truncate toward zero.
                q = abs(a) // abs(b)
                if (a < 0) != (b < 0):
                    q = -q
                r = q if op is Op.DIV else a - q * b
            stack.append((coerce(r, t), t))
            return None
        if op is Op.NEG:
            a, ta = stack.pop()
            stack.append((coerce(-a, ta), ta))
            return None
        if op in (Op.SHL, Op.SHR, Op.OR, Op.AND, Op.XOR):
            b, tb = stack.pop()
            a, ta = stack.pop()
            t = ta if ta is JType.LONG else JType.INT
            a = int(a)
            b = int(b)
            if op is Op.SHL:
                r = a << (b & (63 if t is JType.LONG else 31))
            elif op is Op.SHR:
                r = a >> (b & (63 if t is JType.LONG else 31))
            elif op is Op.OR:
                r = a | b
            elif op is Op.AND:
                r = a & b
            else:
                r = a ^ b
            stack.append((mask_integral(r, t), t))
            return None
        if op is Op.INC:
            value, jtype = locals_[ins.a]
            locals_[ins.a] = (coerce(value + ins.b, jtype), jtype)
            return None
        if op is Op.CMP:
            b, _tb = stack.pop()
            a, _ta = stack.pop()
            if isinstance(a, float) and math.isnan(a):
                r = -1
            elif isinstance(b, float) and math.isnan(b):
                r = -1
            else:
                r = (a > b) - (a < b)
            stack.append((r, JType.INT))
            return None

        # Cast --------------------------------------------------------
        if op is Op.CAST:
            value, _ = stack.pop()
            to = ins.a
            if to.is_floating:
                stack.append((float(value), to))
            else:
                stack.append((convert_to_integral(value, to), to))
            return None
        if op is Op.CHECKCAST:
            ref, t = stack[-1]
            if ref is not None and isinstance(ref, JObject):
                if not ref.isinstance_of(ins.a, self.vm.classes):
                    raise JavaThrow("java/lang/ClassCastException",
                                    f"{ref.class_name} -> {ins.a}")
            return None

        # Load / store --------------------------------------------------
        if op is Op.LOAD:
            entry = locals_[ins.a]
            stack.append(entry)
            return None
        if op is Op.LOADCONST:
            stack.append((coerce(ins.b, ins.a), ins.a))
            return None
        if op is Op.STORE:
            locals_[ins.a] = stack.pop()
            return None
        if op is Op.GETFIELD:
            ref, _ = stack.pop()
            null_check(ref)
            value = ref.getfield(ins.a)
            jtype = (JType.OBJECT if isinstance(value, JObject)
                     else JType.ADDRESS if isinstance(value, JArray)
                     else JType.DOUBLE if isinstance(value, float)
                     else JType.INT)
            stack.append((value, jtype))
            return None
        if op is Op.PUTFIELD:
            value, _ = stack.pop()
            ref, _ = stack.pop()
            null_check(ref)
            ref.putfield(ins.a, value)
            return None
        if op is Op.ALOAD:
            index, _ = stack.pop()
            ref, _ = stack.pop()
            null_check(ref)
            value = ref.load(int(index))
            stack.append((value, ref.elem_type))
            return None
        if op is Op.ASTORE:
            value, _ = stack.pop()
            index, _ = stack.pop()
            ref, _ = stack.pop()
            null_check(ref)
            ref.store(int(index), coerce(value, ref.elem_type))
            return None

        # Memory --------------------------------------------------------
        if op is Op.NEW:
            self.vm.on_allocation()
            stack.append((JObject(ins.a), JType.OBJECT))
            return None
        if op is Op.NEWARRAY:
            length, _ = stack.pop()
            self.vm.on_allocation()
            stack.append((JArray(ins.a, int(length)), JType.ADDRESS))
            return None
        if op is Op.NEWMULTIARRAY:
            dims = []
            for _ in range(ins.b):
                length, _ = stack.pop()
                dims.append(int(length))
            dims.reverse()
            self.vm.on_allocation()
            stack.append((make_multiarray(ins.a, dims), JType.ADDRESS))
            return None

        # Branch --------------------------------------------------------
        if op is Op.GOTO:
            return ins.a
        if op in (Op.IFEQ, Op.IFNE, Op.IFLT, Op.IFLE, Op.IFGT, Op.IFGE):
            v, _ = stack.pop()
            taken = {
                Op.IFEQ: v == 0, Op.IFNE: v != 0, Op.IFLT: v < 0,
                Op.IFLE: v <= 0, Op.IFGT: v > 0, Op.IFGE: v >= 0,
            }[op]
            return ins.a if taken else None
        if op is Op.CALL:
            nargs = ins.b
            call_args = stack[len(stack) - nargs:]
            del stack[len(stack) - nargs:]
            if is_intrinsic(ins.a):
                value, rtype, cost = call_intrinsic(
                    ins.a, [v for v, _ in call_args])
                self.vm.clock.advance(cost)
            else:
                value, rtype = self.vm.invoke(ins.a, call_args)
            if rtype is not JType.VOID:
                stack.append((value, rtype))
            return None
        if op is Op.RET:
            return ("return", (None, JType.VOID))
        if op is Op.RETVAL:
            return ("return", stack.pop())

        # JVM ---------------------------------------------------------
        if op is Op.INSTANCEOF:
            ref, _ = stack.pop()
            result = int(isinstance(ref, JObject)
                         and ref.isinstance_of(ins.a, self.vm.classes))
            stack.append((result, JType.INT))
            return None
        if op is Op.MONITORENTER:
            ref, _ = stack.pop()
            null_check(ref)
            self.vm.on_monitor(enter=True)
            return None
        if op is Op.MONITOREXIT:
            ref, _ = stack.pop()
            null_check(ref)
            self.vm.on_monitor(enter=False)
            return None
        if op is Op.ATHROW:
            ref, _ = stack.pop()
            null_check(ref)
            raise JavaThrow(ref.class_name)

        # Arrays --------------------------------------------------------
        if op is Op.ARRAYLENGTH:
            ref, _ = stack.pop()
            null_check(ref)
            stack.append((ref.length, JType.INT))
            return None
        if op is Op.ARRAYCOPY:
            count, _ = stack.pop()
            dstoff, _ = stack.pop()
            dst, _ = stack.pop()
            srcoff, _ = stack.pop()
            src, _ = stack.pop()
            null_check(src)
            null_check(dst)
            count, srcoff, dstoff = int(count), int(srcoff), int(dstoff)
            if (count < 0 or srcoff < 0 or dstoff < 0
                    or srcoff + count > src.length
                    or dstoff + count > dst.length):
                raise JavaThrow("java/lang/ArrayIndexOutOfBoundsException",
                                "arraycopy")
            dst.data[dstoff:dstoff + count] = src.data[srcoff:srcoff + count]
            self.vm.clock.advance(2 * count)
            return None
        if op is Op.ARRAYCMP:
            b, _ = stack.pop()
            a, _ = stack.pop()
            null_check(a)
            null_check(b)
            r = (a.data > b.data) - (a.data < b.data)
            stack.append((r, JType.INT))
            self.vm.clock.advance(min(a.length, b.length))
            return None

        # Stack housekeeping ----------------------------------------------
        if op is Op.DUP:
            stack.append(stack[-1])
            return None
        if op is Op.POP:
            stack.pop()
            return None
        if op is Op.SWAP:
            stack[-1], stack[-2] = stack[-2], stack[-1]
            return None
        if op is Op.NOP:
            return None

        raise VMError(f"unimplemented opcode {op!r}")
