"""Bytecode instruction set for the guest virtual machine.

The instruction set is a stack machine modelled on Java bytecode but
simplified, while deliberately covering every operation family that the
paper's feature extractor distinguishes (Table 3 of the paper): ALU
operations, type casts, loads/stores, memory allocation, branches and calls,
JVM-specific operations (``instanceof``, synchronization, ``athrow``) and
array operations.

Every instruction is an :class:`Instr` -- an opcode plus up to two operands.
Types follow Table 2 of the paper, including the Testarossa-specific types
(128-bit ``long double``, packed and zoned BCD decimals).
"""

import enum


class JType(enum.IntEnum):
    """Value types (Table 2: Java native, non-scalar, Testarossa types)."""

    BYTE = 0
    CHAR = 1
    SHORT = 2
    INT = 3
    LONG = 4
    FLOAT = 5
    DOUBLE = 6
    VOID = 7
    ADDRESS = 8      # arrays (one or more dimensions)
    OBJECT = 9       # user-defined objects
    LONGDOUBLE = 10  # quad-precision IEEE-754
    PACKED = 11      # packed BCD decimal
    ZONED = 12       # zoned BCD decimal
    MIXED = 13       # learning-only aggregate bucket

    @property
    def is_integral(self):
        return self in (JType.BYTE, JType.CHAR, JType.SHORT, JType.INT,
                        JType.LONG)

    @property
    def is_floating(self):
        return self in (JType.FLOAT, JType.DOUBLE, JType.LONGDOUBLE)

    @property
    def is_decimal(self):
        return self in (JType.PACKED, JType.ZONED)

    @property
    def is_reference(self):
        return self in (JType.ADDRESS, JType.OBJECT)

    @property
    def is_numeric(self):
        return self.is_integral or self.is_floating or self.is_decimal


#: Types that a guest program value may concretely have.
CONCRETE_TYPES = tuple(t for t in JType if t not in (JType.VOID, JType.MIXED))

#: Bit widths for integral masking in the interpreter / native simulator.
INTEGRAL_BITS = {
    JType.BYTE: 8,
    JType.CHAR: 16,
    JType.SHORT: 16,
    JType.INT: 32,
    JType.LONG: 64,
}


class Op(enum.IntEnum):
    """Opcodes, grouped as in Table 3 of the paper."""

    # --- ALU ---------------------------------------------------------
    ADD = 1
    SUB = 2
    MUL = 3
    DIV = 4
    REM = 5
    NEG = 6
    SHL = 7
    SHR = 8
    OR = 9
    AND = 10
    XOR = 11
    INC = 12      # operands: (slot, amount) -- increments a local in place
    CMP = 13      # pops b, a; pushes -1/0/1 as INT

    # --- Cast --------------------------------------------------------
    CAST = 20     # operands: (to_type,) -- value type is tracked dynamically
    CHECKCAST = 21  # operands: (class_name,)

    # --- Load / store ------------------------------------------------
    LOAD = 30       # operands: (slot,)
    LOADCONST = 31  # operands: (type, value)
    STORE = 32      # operands: (slot,)
    GETFIELD = 33   # operands: (field_name,) pops objref
    PUTFIELD = 34   # operands: (field_name,) pops value, objref
    ALOAD = 35      # pops index, arrayref; pushes element
    ASTORE = 36     # pops value, index, arrayref

    # --- Memory ------------------------------------------------------
    NEW = 40            # operands: (class_name,)
    NEWARRAY = 41       # operands: (elem_type,) pops length
    NEWMULTIARRAY = 42  # operands: (elem_type, ndims) pops ndims lengths

    # --- Branch ------------------------------------------------------
    GOTO = 50    # operands: (target_pc,)
    IFEQ = 51    # pops v; branch if v == 0
    IFNE = 52
    IFLT = 53
    IFLE = 54
    IFGT = 55
    IFGE = 56
    CALL = 57    # operands: (signature, nargs)
    RET = 58     # return void
    RETVAL = 59  # pops return value

    # --- JVM ---------------------------------------------------------
    INSTANCEOF = 70    # operands: (class_name,) pops ref, pushes INT 0/1
    MONITORENTER = 71  # pops ref
    MONITOREXIT = 72   # pops ref
    ATHROW = 73        # pops exception ref

    # --- Array operations --------------------------------------------
    ARRAYLENGTH = 80  # pops arrayref, pushes INT
    ARRAYCOPY = 81    # pops count, dstoff, dst, srcoff, src
    ARRAYCMP = 82     # pops b, a; pushes INT

    # --- Stack housekeeping ------------------------------------------
    DUP = 90
    POP = 91
    SWAP = 92
    NOP = 93


#: Conditional-branch opcodes (pop one INT, compare against zero).
COND_BRANCHES = (Op.IFEQ, Op.IFNE, Op.IFLT, Op.IFLE, Op.IFGT, Op.IFGE)

#: Opcodes that may transfer control.
BRANCH_OPS = (Op.GOTO,) + COND_BRANCHES

#: Opcodes that end a method.
RETURN_OPS = (Op.RET, Op.RETVAL)

ALU_OPS = (Op.ADD, Op.SUB, Op.MUL, Op.DIV, Op.REM, Op.NEG, Op.SHL, Op.SHR,
           Op.OR, Op.AND, Op.XOR, Op.INC, Op.CMP)

#: Per-opcode interpreted cost in cycles.  Interpretation pays a dispatch
#: overhead on every bytecode, which is why compiled code wins: the code
#: generator emits virtual native instructions costing ~1-4 cycles each.
INTERP_COST = {
    Op.ADD: 18, Op.SUB: 18, Op.MUL: 24, Op.DIV: 52, Op.REM: 52,
    Op.NEG: 16, Op.SHL: 18, Op.SHR: 18, Op.OR: 16, Op.AND: 16,
    Op.XOR: 16, Op.INC: 18, Op.CMP: 20,
    Op.CAST: 20, Op.CHECKCAST: 36,
    Op.LOAD: 15, Op.LOADCONST: 13, Op.STORE: 15,
    Op.GETFIELD: 25, Op.PUTFIELD: 27,
    Op.ALOAD: 28, Op.ASTORE: 30,
    Op.NEW: 70, Op.NEWARRAY: 60, Op.NEWMULTIARRAY: 130,
    Op.GOTO: 14, Op.IFEQ: 18, Op.IFNE: 18, Op.IFLT: 18, Op.IFLE: 18,
    Op.IFGT: 18, Op.IFGE: 18,
    Op.CALL: 60, Op.RET: 18, Op.RETVAL: 20,
    Op.INSTANCEOF: 32, Op.MONITORENTER: 45, Op.MONITOREXIT: 42,
    Op.ATHROW: 95,
    Op.DUP: 11, Op.POP: 11, Op.SWAP: 13, Op.NOP: 9,
    Op.ARRAYLENGTH: 16, Op.ARRAYCOPY: 42, Op.ARRAYCMP: 40,
}

#: Number of slots an opcode-indexed dispatch table needs.
NUM_OPCODES = max(Op) + 1

#: ``INTERP_COST`` as a flat list indexed by ``int(op)`` -- the predecoded
#: interpreter reads costs from here exactly once per instruction, at
#: method predecode time, instead of hashing an enum on every step.
INTERP_COST_TABLE = [0] * NUM_OPCODES
for _op, _cost in INTERP_COST.items():
    INTERP_COST_TABLE[_op] = _cost
del _op, _cost


class Instr:
    """One bytecode instruction: an opcode and its (immutable) operands."""

    __slots__ = ("op", "a", "b")

    def __init__(self, op, a=None, b=None):
        self.op = op
        self.a = a
        self.b = b

    def __repr__(self):
        parts = [self.op.name.lower()]
        if self.a is not None:
            parts.append(repr(self.a))
        if self.b is not None:
            parts.append(repr(self.b))
        return " ".join(parts)

    def __eq__(self, other):
        return (isinstance(other, Instr) and self.op == other.op
                and self.a == other.a and self.b == other.b)

    def __hash__(self):
        return hash((self.op, self.a, self.b))


def mask_integral(value, jtype):
    """Wrap *value* to the two's-complement range of an integral *jtype*."""
    bits = INTEGRAL_BITS[jtype]
    value &= (1 << bits) - 1
    if jtype is not JType.CHAR and value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value


def convert_to_integral(value, jtype):
    """Convert *value* (int or float) to an integral/decimal *jtype*.

    Integer inputs wrap (two's complement, as every ALU result does);
    floating inputs follow Java's d2i/d2l rules -- NaN becomes 0,
    infinities and out-of-range values saturate at the target bounds --
    then truncate toward zero.  Decimal (BCD) targets use LONG width.
    """
    import math
    target = jtype if jtype in INTEGRAL_BITS else JType.LONG
    if isinstance(value, float):
        if math.isnan(value):
            return 0
        bits = INTEGRAL_BITS[target]
        if target is JType.CHAR:
            lo, hi = 0, (1 << bits) - 1
        else:
            lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        if value <= lo:
            return lo
        if value >= hi:
            return hi
        return int(value)  # truncates toward zero
    return mask_integral(int(value), target)


def validate_code(code, max_locals):
    """Structural verification of a bytecode body.

    Checks branch targets, slot indices and operand presence.  Raises
    :class:`repro.errors.BytecodeError` on the first violation.  This is the
    moral equivalent of the JVM bytecode verifier; it keeps malformed
    generated programs from producing confusing interpreter failures.
    """
    from repro.errors import BytecodeError

    n = len(code)
    if n == 0:
        raise BytecodeError("empty method body")
    for pc, ins in enumerate(code):
        if not isinstance(ins, Instr):
            raise BytecodeError(f"pc {pc}: not an Instr: {ins!r}")
        if ins.op in BRANCH_OPS:
            tgt = ins.a
            if not isinstance(tgt, int) or not (0 <= tgt < n):
                raise BytecodeError(f"pc {pc}: branch target {tgt!r} "
                                    f"out of range [0, {n})")
        elif ins.op in (Op.LOAD, Op.STORE):
            slot = ins.a
            if not isinstance(slot, int) or not (0 <= slot < max_locals):
                raise BytecodeError(f"pc {pc}: slot {slot!r} out of range "
                                    f"[0, {max_locals})")
        elif ins.op is Op.INC:
            slot = ins.a
            if not isinstance(slot, int) or not (0 <= slot < max_locals):
                raise BytecodeError(f"pc {pc}: inc slot {slot!r} invalid")
        elif ins.op is Op.LOADCONST:
            if not isinstance(ins.a, JType):
                raise BytecodeError(f"pc {pc}: loadconst needs a JType, "
                                    f"got {ins.a!r}")
        elif ins.op is Op.CALL:
            if not isinstance(ins.a, str) or not isinstance(ins.b, int):
                raise BytecodeError(f"pc {pc}: call needs (signature, nargs)")
    last = code[-1]
    if last.op not in RETURN_OPS and last.op not in (Op.GOTO, Op.ATHROW):
        raise BytecodeError("method body may fall off the end "
                            f"(last instruction {last!r})")
