"""A small stack-based bytecode virtual machine.

This subpackage is the substitute for the IBM J9 JVM: it defines a Java-like
bytecode (`bytecode`), a class/method model (`classfile`), a stack-machine
interpreter with per-opcode cycle costs (`interpreter`) and the VM proper
(`vm`) which owns the virtual clock, invocation counters, the sampling
profiler and the interpreted-vs-compiled dispatch.
"""

from repro.jvm.bytecode import JType, Op, Instr
from repro.jvm.classfile import JClass, JMethod, MethodModifiers, Handler
from repro.jvm.interpreter import Interpreter
from repro.jvm.vm import VirtualMachine

__all__ = [
    "JType",
    "Op",
    "Instr",
    "JClass",
    "JMethod",
    "MethodModifiers",
    "Handler",
    "Interpreter",
    "VirtualMachine",
]
