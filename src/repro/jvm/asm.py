"""A tiny bytecode assembler.

Building :class:`Instr` lists by hand requires knowing absolute branch
targets up front.  :class:`Assembler` provides labels with back-patching::

    a = Assembler()
    a.loadconst(JType.INT, 0).store(1)
    top = a.label()
    a.load(1).loadconst(JType.INT, 10).cmp().ifge("end")
    a.inc(1, 1).goto(top)
    a.mark("end")
    a.load(1).retval()
    code = a.assemble()

Both tests and the synthetic workload generator use it.
"""

from repro.errors import BytecodeError
from repro.jvm.bytecode import Instr, JType, Op


class Assembler:
    """Accumulates instructions; resolves label references at assembly."""

    def __init__(self):
        self._code = []
        self._marks = {}
        self._auto = 0

    # -- labels ---------------------------------------------------------

    def label(self):
        """Create a label bound to the *current* position and return it."""
        name = f"__auto_{self._auto}"
        self._auto += 1
        self.mark(name)
        return name

    def new_label(self):
        """Create an unbound label name for a forward reference."""
        name = f"__fwd_{self._auto}"
        self._auto += 1
        return name

    def mark(self, name):
        """Bind *name* to the current position."""
        if name in self._marks:
            raise BytecodeError(f"label {name!r} already bound")
        self._marks[name] = len(self._code)
        return self

    def here(self):
        """Current instruction index."""
        return len(self._code)

    # -- emission ---------------------------------------------------------

    def emit(self, op, a=None, b=None):
        """Append a raw instruction."""
        self._code.append(Instr(op, a, b))
        return self

    def assemble(self):
        """Resolve labels and return the instruction list."""
        out = []
        for ins in self._code:
            if ins.op in (Op.GOTO, Op.IFEQ, Op.IFNE, Op.IFLT, Op.IFLE,
                          Op.IFGT, Op.IFGE) and isinstance(ins.a, str):
                if ins.a not in self._marks:
                    raise BytecodeError(f"unbound label {ins.a!r}")
                out.append(Instr(ins.op, self._marks[ins.a], ins.b))
            else:
                out.append(ins)
        return out

    # -- one helper per opcode ----------------------------------------------

    def add(self):
        """Emit ADD (pop b, a; push a+b)."""
        return self.emit(Op.ADD)

    def sub(self):
        """Emit SUB."""
        return self.emit(Op.SUB)

    def mul(self):
        """Emit MUL."""
        return self.emit(Op.MUL)

    def div(self):
        """Emit DIV."""
        return self.emit(Op.DIV)

    def rem(self):
        """Emit REM."""
        return self.emit(Op.REM)

    def neg(self):
        """Emit NEG."""
        return self.emit(Op.NEG)

    def shl(self):
        """Emit SHL."""
        return self.emit(Op.SHL)

    def shr(self):
        """Emit SHR."""
        return self.emit(Op.SHR)

    def or_(self):
        """Emit OR."""
        return self.emit(Op.OR)

    def and_(self):
        """Emit AND."""
        return self.emit(Op.AND)

    def xor(self):
        """Emit XOR."""
        return self.emit(Op.XOR)

    def inc(self, slot, amount=1):
        """Emit INC: locals[slot] += amount."""
        return self.emit(Op.INC, slot, amount)

    def cmp(self):
        """Emit CMP (push -1/0/1)."""
        return self.emit(Op.CMP)

    def cast(self, to_type):
        """Emit CAST to *to_type*."""
        return self.emit(Op.CAST, to_type)

    def checkcast(self, class_name):
        """Emit CHECKCAST against *class_name*."""
        return self.emit(Op.CHECKCAST, class_name)

    def load(self, slot):
        """Emit LOAD of a local slot."""
        return self.emit(Op.LOAD, slot)

    def loadconst(self, jtype, value):
        """Emit LOADCONST of (jtype, value)."""
        return self.emit(Op.LOADCONST, jtype, value)

    def iconst(self, value):
        """Emit an INT constant."""
        return self.emit(Op.LOADCONST, JType.INT, value)

    def dconst(self, value):
        """Emit a DOUBLE constant."""
        return self.emit(Op.LOADCONST, JType.DOUBLE, float(value))

    def store(self, slot):
        """Emit STORE to a local slot."""
        return self.emit(Op.STORE, slot)

    def getfield(self, name):
        """Emit GETFIELD *name* (pops objref)."""
        return self.emit(Op.GETFIELD, name)

    def putfield(self, name):
        """Emit PUTFIELD *name* (pops value, objref)."""
        return self.emit(Op.PUTFIELD, name)

    def aload(self):
        """Emit ALOAD (pops index, arrayref)."""
        return self.emit(Op.ALOAD)

    def astore(self):
        """Emit ASTORE (pops value, index, arrayref)."""
        return self.emit(Op.ASTORE)

    def new(self, class_name):
        """Emit NEW of *class_name*."""
        return self.emit(Op.NEW, class_name)

    def newarray(self, elem_type):
        """Emit NEWARRAY of *elem_type* (pops length)."""
        return self.emit(Op.NEWARRAY, elem_type)

    def newmultiarray(self, elem_type, ndims):
        """Emit NEWMULTIARRAY (pops ndims lengths)."""
        return self.emit(Op.NEWMULTIARRAY, elem_type, ndims)

    def goto(self, target):
        """Emit GOTO *target* (pc or label)."""
        return self.emit(Op.GOTO, target)

    def ifeq(self, target):
        """Emit IFEQ (branch when popped value == 0)."""
        return self.emit(Op.IFEQ, target)

    def ifne(self, target):
        """Emit IFNE."""
        return self.emit(Op.IFNE, target)

    def iflt(self, target):
        """Emit IFLT."""
        return self.emit(Op.IFLT, target)

    def ifle(self, target):
        """Emit IFLE."""
        return self.emit(Op.IFLE, target)

    def ifgt(self, target):
        """Emit IFGT."""
        return self.emit(Op.IFGT, target)

    def ifge(self, target):
        """Emit IFGE."""
        return self.emit(Op.IFGE, target)

    def call(self, signature, nargs):
        """Emit CALL of *signature* with *nargs* stack arguments."""
        return self.emit(Op.CALL, signature, nargs)

    def ret(self):
        """Emit RET (return void)."""
        return self.emit(Op.RET)

    def retval(self):
        """Emit RETVAL (pops the return value)."""
        return self.emit(Op.RETVAL)

    def instanceof(self, class_name):
        """Emit INSTANCEOF test against *class_name*."""
        return self.emit(Op.INSTANCEOF, class_name)

    def monitorenter(self):
        """Emit MONITORENTER (pops objref)."""
        return self.emit(Op.MONITORENTER)

    def monitorexit(self):
        """Emit MONITOREXIT (pops objref)."""
        return self.emit(Op.MONITOREXIT)

    def athrow(self):
        """Emit ATHROW (pops exception ref)."""
        return self.emit(Op.ATHROW)

    def arraylength(self):
        """Emit ARRAYLENGTH (pops arrayref)."""
        return self.emit(Op.ARRAYLENGTH)

    def arraycopy(self):
        """Emit ARRAYCOPY (pops 5 operands)."""
        return self.emit(Op.ARRAYCOPY)

    def arraycmp(self):
        """Emit ARRAYCMP (pops two arrayrefs)."""
        return self.emit(Op.ARRAYCMP)

    def dup(self):
        """Emit DUP."""
        return self.emit(Op.DUP)

    def pop(self):
        """Emit POP."""
        return self.emit(Op.POP)

    def swap(self):
        """Emit SWAP."""
        return self.emit(Op.SWAP)

    def nop(self):
        """Emit NOP."""
        return self.emit(Op.NOP)
