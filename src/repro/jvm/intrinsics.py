"""Library intrinsics shared by the interpreter and the native simulator.

The guest standard library is tiny: a few ``java/lang/Math`` routines, a
fixed-point model of ``java/math/BigDecimal`` (values are plain ints holding
hundredths, which keeps arbitrary-precision semantics deterministic), and
``sun/misc/Unsafe`` raw accessors.  Each intrinsic has a fixed cycle cost;
BigDecimal is deliberately expensive, which is why the paper notes such
methods may not be eligible for rematerialization.
"""

import math

from repro.errors import JavaThrow, VMError
from repro.jvm.bytecode import JType, mask_integral


def _math_sqrt(x):
    if x < 0:
        return float("nan")
    return math.sqrt(x)


def _guarded_div(a, b):
    if b == 0:
        raise JavaThrow("java/lang/ArithmeticException", "/ by zero")
    # Fixed-point division keeping two fractional digits.
    q = (a * 100) // b if (a >= 0) == (b >= 0) else -((abs(a) * 100) // abs(b))
    return mask_integral(q, JType.LONG)


#: signature -> (number of arguments, result JType, cost in cycles, fn)
INTRINSICS = {
    "java/lang/Math.sqrt": (1, JType.DOUBLE, 40, _math_sqrt),
    "java/lang/Math.sin": (1, JType.DOUBLE, 60, math.sin),
    "java/lang/Math.cos": (1, JType.DOUBLE, 60, math.cos),
    "java/lang/Math.abs": (1, JType.DOUBLE, 12, abs),
    "java/lang/Math.max": (2, JType.DOUBLE, 14, max),
    "java/lang/Math.min": (2, JType.DOUBLE, 14, min),
    "java/math/BigDecimal.add": (
        2, JType.PACKED, 220,
        lambda a, b: mask_integral(int(a) + int(b), JType.LONG)),
    "java/math/BigDecimal.subtract": (
        2, JType.PACKED, 220,
        lambda a, b: mask_integral(int(a) - int(b), JType.LONG)),
    "java/math/BigDecimal.multiply": (
        2, JType.PACKED, 340,
        lambda a, b: mask_integral((int(a) * int(b)) // 100, JType.LONG)),
    "java/math/BigDecimal.divide": (2, JType.PACKED, 520, _guarded_div),
    "sun/misc/Unsafe.getInt": (
        1, JType.INT, 10,
        lambda a: mask_integral(int(a), JType.INT)),
    "sun/misc/Unsafe.putInt": (
        2, JType.INT, 10,
        lambda a, b: mask_integral(int(a) ^ int(b), JType.INT)),
}


def call_intrinsic(signature, args):
    """Execute an intrinsic; returns ``(value, jtype, cost_cycles)``."""
    entry = INTRINSICS.get(signature)
    if entry is None:
        raise VMError(f"unknown intrinsic: {signature}")
    nargs, rtype, cost, fn = entry
    if len(args) != nargs:
        raise VMError(f"{signature} expects {nargs} args, got {len(args)}")
    numeric = []
    for value in args:
        if not isinstance(value, (int, float)):
            raise JavaThrow("java/lang/IllegalArgumentException",
                            f"{signature} got reference argument")
        numeric.append(value)
    result = fn(*numeric)
    if rtype.is_integral or rtype.is_decimal:
        result = mask_integral(int(result), JType.LONG)
    else:
        result = float(result)
    return result, rtype, cost
