"""The virtual machine: clock, dispatch, counters and profiling hooks.

The VM owns the virtual clock and routes every guest call either to the
interpreter or, once the JIT has installed a compiled body whose
(virtual-time) installation moment has passed, to the native simulator.

A *compilation manager* (see :mod:`repro.jit.control`) may be attached; the
VM notifies it on every invocation and on sampling ticks, and asks it for
compiled code.  Keeping the interface this narrow mirrors the paper's
Figure 1: the VM decides nothing about *how* to compile, only *when* to run
what it is given.
"""

from repro.clock import VirtualClock
from repro.errors import VMError
from repro.jvm.interpreter import Interpreter
from repro.telemetry import get_tracer

#: Cycles between sampling-profiler ticks (the timer-based half of the
#: hotness estimate; the other half is invocation counting).
DEFAULT_SAMPLE_INTERVAL = 200_000

#: Amortized allocation cost (object header + GC pressure), in cycles.
ALLOCATION_COST = 20

#: Guarded maximum recursion depth for guest calls.
MAX_CALL_DEPTH = 200


class VirtualMachine:
    """A guest-program execution environment.

    Parameters
    ----------
    sample_interval:
        Virtual cycles between sampling ticks delivered to the attached
        compilation manager.
    """

    def __init__(self, sample_interval=DEFAULT_SAMPLE_INTERVAL):
        self.clock = VirtualClock()
        # Stamp the active tracer's records with this VM's virtual
        # time.  The tracer only *reads* the clock, so attaching one
        # can never perturb a run's cycle counts.
        self.tracer = get_tracer()
        self.tracer.bind_clock(self.clock)
        self.classes = {}
        self._methods = {}
        self.invocation_counts = {}
        self.interpreter = Interpreter(self)
        self.manager = None  # compilation manager (JIT control), optional
        self.sample_interval = sample_interval
        self._next_sample_at = sample_interval
        self._depth = 0
        self._current_method = None
        # Aggregate statistics, for reports and tests.
        self.stats = {
            "invocations": 0,
            "interpreted_invocations": 0,
            "compiled_invocations": 0,
            "allocations": 0,
            "monitor_ops": 0,
            "samples": 0,
            # Host-perf accounting.  ``interp_steps`` counts interpreted
            # bytecodes.  For compiled code the two views differ:
            # ``host_steps`` is engine-*dependent* work on the host (legacy
            # loop iterations including LABELs, predecoded entries, superop
            # trampoline blocks) while ``retired_instructions`` is the
            # engine-*invariant* count of retired native instructions --
            # the denominator for ns/instr in ``repro bench``.
            "interp_steps": 0,
            "host_steps": 0,
            "retired_instructions": 0,
            # Superop engine: fused blocks dispatched and instructions
            # retired inside them (a subset of the totals above).
            "superop_blocks": 0,
            "superop_steps": 0,
        }

    # -- program loading -----------------------------------------------------

    def load_class(self, jclass):
        """Register *jclass* and index its methods by signature."""
        if jclass.name in self.classes:
            raise VMError(f"class {jclass.name} already loaded")
        self.classes[jclass.name] = jclass
        for method in jclass.methods.values():
            self._methods[method.signature] = method
        return jclass

    def load_program(self, program):
        """Load every class of a :class:`repro.workloads.Program`."""
        for jclass in program.classes:
            self.load_class(jclass)
        return program

    def lookup(self, signature):
        method = self._methods.get(signature)
        if method is None:
            raise VMError(f"no such method: {signature}")
        return method

    def methods(self):
        """All loaded methods, in load order."""
        return list(self._methods.values())

    # -- manager attachment -----------------------------------------------

    def attach_manager(self, manager):
        """Attach a compilation manager (or None to detach)."""
        self.manager = manager
        if manager is not None:
            manager.on_attach(self)

    # -- execution ----------------------------------------------------------

    def call(self, signature, *raw_args):
        """Convenience entry point: call with plain Python values.

        Arguments are paired with the method's declared parameter types;
        returns the plain result value.
        """
        method = self.lookup(signature)
        if len(raw_args) != method.num_args:
            raise VMError(f"{signature}: expected {method.num_args} args, "
                          f"got {len(raw_args)}")
        args = list(zip(raw_args, method.param_types))
        value, _ = self.invoke(signature, args)
        return value

    def invoke(self, signature, args):
        """Invoke a guest method with typed args; returns (value, jtype).

        This is the dispatch point: counters are bumped, the manager is
        notified (it may enqueue a compilation), and the best available
        tier is chosen.
        """
        method = self.lookup(signature)
        count = self.invocation_counts.get(signature, 0) + 1
        self.invocation_counts[signature] = count
        self.stats["invocations"] += 1
        if self._depth >= MAX_CALL_DEPTH:
            raise VMError(f"guest call depth exceeded at {signature}")

        manager = self.manager
        compiled = None
        if manager is not None:
            manager.on_invoke(method, count)
            compiled = manager.compiled_for(method, self.clock.now())

        previous = self._current_method
        self._current_method = method
        self._depth += 1
        try:
            if compiled is not None:
                self.stats["compiled_invocations"] += 1
                result = compiled.execute(self, args)
            else:
                self.stats["interpreted_invocations"] += 1
                result = self.interpreter.execute(method, args)
        finally:
            self._depth -= 1
            self._current_method = previous
        if manager is not None:
            manager.on_return(method, compiled)
        return result

    # -- hooks called by the execution tiers ---------------------------------

    def on_backward_branch(self, method):
        """Safepoint poll: deliver sampling ticks at loop back-edges."""
        if self.clock.now() >= self._next_sample_at:
            self._next_sample_at = self.clock.now() + self.sample_interval
            self.stats["samples"] += 1
            tracer = self.tracer
            if tracer.enabled:
                tracer.instant("vm.sample", cat="vm",
                               method=method.signature)
                # Counter series on the sampling cadence: Perfetto
                # renders these as tracks over virtual time.
                tracer.counter("vm.superop_blocks",
                               self.stats["superop_blocks"], cat="vm")
                if self.manager is not None:
                    depth = getattr(self.manager, "queue_depth", None)
                    if depth is not None:
                        tracer.counter("jit.queue_depth", depth(),
                                       cat="control")
            if self.manager is not None:
                self.manager.on_sample(method)

    def on_allocation(self):
        self.stats["allocations"] += 1
        self.clock.advance(ALLOCATION_COST)

    def on_monitor(self, enter):
        self.stats["monitor_ops"] += 1

    # -- introspection -------------------------------------------------------

    def current_method(self):
        return self._current_method

    def elapsed_cycles(self):
        return self.clock.now()


def run_entry(vm, signature, *raw_args):
    """Run an entry point and return (result, elapsed_cycles)."""
    start = vm.clock.now()
    result = vm.call(signature, *raw_args)
    return result, vm.clock.now() - start
