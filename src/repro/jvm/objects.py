"""Runtime heap values of the guest virtual machine.

Guest numeric values are plain Python ints/floats (masked to their declared
widths by the interpreter and native simulator); references are instances of
:class:`JObject` or :class:`JArray`.
"""

from repro.errors import JavaThrow
from repro.jvm.bytecode import JType


class JObject:
    """A guest heap object: a class name plus named fields."""

    __slots__ = ("class_name", "fields", "stack_allocated")

    def __init__(self, class_name, fields=None):
        self.class_name = class_name
        self.fields = dict(fields) if fields else {}
        # Set by compiled code when escape analysis proved the allocation
        # local; only affects allocation cost, never semantics.
        self.stack_allocated = False

    def getfield(self, name):
        # Unset fields read as zero, like default-initialized Java fields.
        return self.fields.get(name, 0)

    def putfield(self, name, value):
        self.fields[name] = value

    def isinstance_of(self, class_name, class_registry=None):
        """Nominal subtype test; the registry supplies superclass links."""
        cls = self.class_name
        while cls is not None:
            if cls == class_name:
                return True
            if class_registry is None:
                return False
            jclass = class_registry.get(cls)
            cls = jclass.superclass if jclass is not None else None
        return False

    def __repr__(self):
        return f"JObject({self.class_name}, {len(self.fields)} fields)"


class JArray:
    """A guest array with a fixed element type and length."""

    __slots__ = ("elem_type", "data")

    def __init__(self, elem_type, length, fill=0):
        if length < 0:
            raise JavaThrow("java/lang/NegativeArraySizeException",
                            str(length))
        self.elem_type = elem_type
        if elem_type in (JType.FLOAT, JType.DOUBLE, JType.LONGDOUBLE):
            fill = float(fill)
        self.data = [fill] * length

    @property
    def length(self):
        return len(self.data)

    def load(self, index):
        if not 0 <= index < len(self.data):
            raise JavaThrow("java/lang/ArrayIndexOutOfBoundsException",
                            str(index))
        return self.data[index]

    def store(self, index, value):
        if not 0 <= index < len(self.data):
            raise JavaThrow("java/lang/ArrayIndexOutOfBoundsException",
                            str(index))
        self.data[index] = value

    def __repr__(self):
        return f"JArray({self.elem_type.name}, len={len(self.data)})"


def null_check(ref):
    """Raise the guest NullPointerException when *ref* is None/0."""
    if ref is None or ref == 0:
        raise JavaThrow("java/lang/NullPointerException")
    return ref


def make_multiarray(elem_type, dims):
    """Build a rectangular multi-dimensional array (ADDRESS of ... of elem)."""
    if len(dims) == 1:
        return JArray(elem_type, dims[0])
    outer = JArray(JType.ADDRESS, dims[0])
    for i in range(dims[0]):
        outer.data[i] = make_multiarray(elem_type, dims[1:])
    return outer
