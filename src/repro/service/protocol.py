"""The lean binary protocol between compiler and model (paper §7).

Frames are length-prefixed::

    u32 length | u8 kind | payload

Kinds:

* ``MSG_PING``      -- payload empty; response is an empty PONG frame.
* ``MSG_PREDICT``   -- payload: u8 level + 71 little-endian f64 feature
  components; response payload: u64 modifier bits, or the 8-byte
  sentinel ``NO_MODEL`` when the server has no model for that level
  (the compiler then uses the original plan).
* ``MSG_SHUTDOWN``  -- server acknowledges and exits its loop.
* ``MSG_DIGEST``    -- payload empty; response is a ``MSG_DIGEST_VALUE``
  frame whose payload is the ASCII model-set digest (the content hash
  of the server's trained weights/plan tables that keys the persistent
  code cache).
* ``MSG_ERROR``     -- server's rejection of a frame it does not
  understand (payload: u8 offending kind).  The server keeps serving
  afterwards; answering instead of dying keeps a confused client from
  hanging forever on its response read.

The protocol deliberately carries *raw* features: renormalization with
the training-time scaling file happens on the model side, keeping the
compiler unaware of how any particular model was trained.
"""

import struct

from repro.errors import ProtocolError
from repro.features import NUM_FEATURES

MSG_PING = 1
MSG_PREDICT = 2
MSG_SHUTDOWN = 3
MSG_PONG = 4
MSG_MODIFIER = 5
MSG_BYE = 6
MSG_ERROR = 7
MSG_DIGEST = 8
MSG_DIGEST_VALUE = 9

#: Modifier-bits sentinel meaning "no model for this level".
NO_MODEL = 0xFFFFFFFFFFFFFFFF

_HEADER = struct.Struct("<IB")


def write_message(write_fn, kind, payload=b""):
    """Frame and send one message through *write_fn(bytes)*."""
    frame = _HEADER.pack(len(payload), kind) + payload
    write_fn(frame)


def read_message(read_fn):
    """Read one framed message via *read_fn(n) -> bytes*.

    Returns ``(kind, payload)``; raises ProtocolError on a short read or
    oversized frame.
    """
    header = _read_exact(read_fn, _HEADER.size)
    length, kind = _HEADER.unpack(header)
    if length > 1 << 20:
        raise ProtocolError(f"oversized frame: {length} bytes")
    payload = _read_exact(read_fn, length) if length else b""
    return kind, payload


def _read_exact(read_fn, n):
    chunks = []
    remaining = n
    while remaining > 0:
        chunk = read_fn(remaining)
        if not chunk:
            raise ProtocolError("peer closed the pipe mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def encode_predict(level, features):
    if len(features) != NUM_FEATURES:
        raise ProtocolError(
            f"feature vector must have {NUM_FEATURES} components")
    return struct.pack(f"<B{NUM_FEATURES}d", int(level),
                       *[float(x) for x in features])


def decode_predict(payload):
    expect = 1 + 8 * NUM_FEATURES
    if len(payload) != expect:
        raise ProtocolError(
            f"predict payload must be {expect} bytes, got "
            f"{len(payload)}")
    values = struct.unpack(f"<B{NUM_FEATURES}d", payload)
    return values[0], list(values[1:])


def encode_modifier(bits):
    return struct.pack("<Q", bits)


def decode_modifier(payload):
    if len(payload) != 8:
        raise ProtocolError("modifier payload must be 8 bytes")
    return struct.unpack("<Q", payload)[0]
