"""Compiler <-> model integration (paper §7).

The machine-learned model runs in a separate process (or thread) behind a
lean binary protocol over named pipes, so models can be swapped without
any change to the compiler.  ``protocol`` defines the framing,
``server``/``client`` the two endpoints over OS pipes (including real
``mkfifo`` named pipes), and ``strategy`` the Strategy-Control extension
that renormalizes features and maps predicted labels back to modifiers.
"""

from repro.service.protocol import (
    MSG_PING,
    MSG_PREDICT,
    MSG_SHUTDOWN,
    read_message,
    write_message,
)
from repro.service.server import ModelServer
from repro.service.client import ModelClient
from repro.service.strategy import ModelStrategy, ServiceStrategy

__all__ = [
    "MSG_PING",
    "MSG_PREDICT",
    "MSG_SHUTDOWN",
    "read_message",
    "write_message",
    "ModelServer",
    "ModelClient",
    "ModelStrategy",
    "ServiceStrategy",
]
