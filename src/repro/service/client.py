"""The compiler-side client endpoint.

Every request/response round-trip runs under a ``service`` span of the
active tracer: the host-side span duration is the real pipe latency the
compiler blocks for, the very number the paper's §6 kernel study says
disqualifies slow models from living inside a JIT.
"""

import os

from repro.errors import ProtocolError
from repro.jit.modifiers import Modifier
from repro.service import protocol as P
from repro.telemetry import get_tracer


class ModelClient:
    """Sends prediction requests; blocks for the answer (compilation
    cannot proceed without the plan)."""

    def __init__(self, write_fd, read_fd):
        self.write_fd = write_fd
        self.read_fd = read_fd
        self._read = lambda n: os.read(read_fd, n)
        self._write = lambda b: os.write(write_fd, b)

    @staticmethod
    def connect_fifos(request_path, response_path):
        """Open the client side of a named-pipe rendezvous."""
        write_fd = os.open(request_path, os.O_WRONLY)
        read_fd = os.open(response_path, os.O_RDONLY)
        return ModelClient(write_fd, read_fd)

    def ping(self):
        with get_tracer().span("rpc.ping", cat="service"):
            P.write_message(self._write, P.MSG_PING)
            kind, _ = P.read_message(self._read)
        if kind != P.MSG_PONG:
            raise ProtocolError(f"expected PONG, got kind {kind}")
        return True

    def predict(self, level, features):
        """Request a modifier for (level, raw features).

        Returns a :class:`Modifier`, or None when the server has no
        model for the level (the compiler then uses the original plan).
        """
        with get_tracer().span("rpc.predict", cat="service",
                               level=int(level)) as span:
            P.write_message(self._write, P.MSG_PREDICT,
                            P.encode_predict(int(level), features))
            kind, payload = P.read_message(self._read)
            if kind != P.MSG_MODIFIER:
                raise ProtocolError(
                    f"expected MODIFIER, got kind {kind}")
            bits = P.decode_modifier(payload)
            if bits == P.NO_MODEL:
                span.set(no_model=True)
                return None
            span.set(modifier_bits=bits)
            return Modifier(bits)

    def model_digest(self):
        """Request the server's model-set digest (cache keying)."""
        with get_tracer().span("rpc.digest", cat="service"):
            P.write_message(self._write, P.MSG_DIGEST)
            kind, payload = P.read_message(self._read)
        if kind != P.MSG_DIGEST_VALUE:
            raise ProtocolError(
                f"expected DIGEST_VALUE, got kind {kind}")
        try:
            return payload.decode("ascii")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"bad digest payload: {exc}")

    def shutdown(self):
        with get_tracer().span("rpc.shutdown", cat="service"):
            P.write_message(self._write, P.MSG_SHUTDOWN)
            kind, _ = P.read_message(self._read)
        if kind != P.MSG_BYE:
            raise ProtocolError(f"expected BYE, got kind {kind}")

    def close(self):
        for fd in (self.write_fd, self.read_fd):
            try:
                os.close(fd)
            except OSError:
                pass


def connected_pair(model_set):
    """Anonymous-pipe rendezvous for in-process tests: starts a server
    thread and returns a ready :class:`ModelClient`."""
    from repro.service.server import ModelServer
    req_r, req_w = os.pipe()
    resp_r, resp_w = os.pipe()
    server = ModelServer(model_set, req_r, resp_w)
    thread = server.serve_in_thread()
    client = ModelClient(req_w, resp_r)
    return client, server, thread
