"""The model server endpoint.

Serves prediction requests from a read pipe and answers on a write pipe.
Works over any file-descriptor pair; helpers create real ``mkfifo`` named
pipes (the paper's transport) or anonymous OS pipes for tests.  Swapping
models means restarting the server with a different
:class:`~repro.ml.model.ModelSet` -- the compiler side is untouched.
"""

import os
import threading

from repro.errors import ProtocolError
from repro.jit.plans import OptLevel
from repro.service import protocol as P


class ModelServer:
    """Answers MSG_PREDICT requests from a :class:`ModelSet`."""

    def __init__(self, model_set, read_fd, write_fd):
        self.model_set = model_set
        self.read_fd = read_fd
        self.write_fd = write_fd
        self.requests_served = 0
        self.rejected_frames = 0

    def serve_forever(self):
        """Process messages until MSG_SHUTDOWN or pipe closure."""
        read_fn = lambda n: os.read(self.read_fd, n)  # noqa: E731
        write_fn = lambda b: os.write(self.write_fd, b)  # noqa: E731
        while True:
            try:
                kind, payload = P.read_message(read_fn)
            except ProtocolError:
                break  # peer went away
            if kind == P.MSG_PING:
                P.write_message(write_fn, P.MSG_PONG)
            elif kind == P.MSG_PREDICT:
                try:
                    level_i, features = P.decode_predict(payload)
                except ProtocolError:
                    # Malformed payload: reject the frame, keep serving.
                    self.rejected_frames += 1
                    P.write_message(write_fn, P.MSG_ERROR,
                                    bytes([kind & 0xFF]))
                    continue
                self.requests_served += 1
                modifier = self.model_set.predict_modifier(
                    OptLevel(level_i), features)
                bits = P.NO_MODEL if modifier is None else modifier.bits
                P.write_message(write_fn, P.MSG_MODIFIER,
                                P.encode_modifier(bits))
            elif kind == P.MSG_DIGEST:
                digest = self.model_set.digest()
                P.write_message(write_fn, P.MSG_DIGEST_VALUE,
                                digest.encode("ascii"))
            elif kind == P.MSG_SHUTDOWN:
                P.write_message(write_fn, P.MSG_BYE)
                break
            else:
                # An unknown kind must not kill the daemon thread: that
                # would leave the compiler-side client hanging forever
                # on its response read.  Reject the frame and keep
                # serving.
                self.rejected_frames += 1
                P.write_message(write_fn, P.MSG_ERROR,
                                bytes([kind & 0xFF]))

    def serve_in_thread(self):
        thread = threading.Thread(target=self.serve_forever,
                                  daemon=True)
        thread.start()
        return thread


def make_fifo_pair(directory):
    """Create the two named pipes of a service rendezvous; returns
    ``(request_path, response_path)``."""
    request = os.path.join(directory, "model_requests.fifo")
    response = os.path.join(directory, "model_responses.fifo")
    for path in (request, response):
        if os.path.exists(path):
            os.unlink(path)
        os.mkfifo(path)
    return request, response


def serve_over_fifos(model_set, request_path, response_path):
    """Open the named pipes (blocking rendezvous with the client) and
    serve until shutdown.  Intended to run in a thread or subprocess."""
    read_fd = os.open(request_path, os.O_RDONLY)
    write_fd = os.open(response_path, os.O_WRONLY)
    try:
        ModelServer(model_set, read_fd, write_fd).serve_forever()
    finally:
        os.close(read_fd)
        os.close(write_fd)
