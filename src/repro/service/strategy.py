"""Strategy-Control extensions that consult a learned model.

Both implement the ``choose_modifier(method, level, features)`` hook the
compiler calls just before the optimization stage (paper Figure 5, steps
d-f).  :class:`ModelStrategy` queries an in-process
:class:`~repro.ml.model.ModelSet` directly (fast path used by the
experiment harness); :class:`ServiceStrategy` goes through the
named-pipe protocol, exercising the full out-of-process integration.

For levels without a trained model -- very hot and scorching in the
paper -- both return None, which the compiler maps to the null modifier
(the original hand-tuned plan).
"""

from repro.jit.plans import OptLevel


class ModelStrategy:
    """In-process model consultation."""

    def __init__(self, model_set, prediction_cost_cycles=120):
        self.model_set = model_set
        #: Synchronous cycles charged per prediction (the linear-kernel
        #: prediction latency; microseconds at the paper's scale).
        self.prediction_cost_cycles = prediction_cost_cycles
        self.predictions = 0

    def choose_modifier(self, method, level, features):
        model = self.model_set.model_for(OptLevel(level))
        if model is None:
            return None
        self.predictions += 1
        return model.predict_modifier(features)

    def model_digest(self):
        """Content hash of the learned weights/plan tables.

        The persistent code cache folds this into its entry keys, so a
        retrained model set invalidates every cached body its
        predecessor planned (stale-plan protection).  Computed per call:
        the set is mutable in experiments (weight surgery in tests).
        """
        return self.model_set.digest()


class ServiceStrategy:
    """Out-of-process model consultation over the pipe protocol."""

    def __init__(self, client):
        self.client = client
        self.predictions = 0
        self._digest = None

    def choose_modifier(self, method, level, features):
        self.predictions += 1
        return self.client.predict(int(level), features)

    def model_digest(self):
        """Digest of the server-side model set (one query, cached).

        A server restart with a different model set means a new
        connection and a fresh strategy, so caching the answer per
        strategy instance is sound -- and keeps the cache key handshake
        to one pipe round-trip per VM run.
        """
        if self._digest is None:
            self._digest = self.client.model_digest()
        return self._digest
