"""Exception hierarchy for the repro library.

Every error raised intentionally by the library derives from
:class:`ReproError`, so callers can distinguish library failures from
programming mistakes.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class BytecodeError(ReproError):
    """Malformed bytecode, bad operands, or verification failure."""


class VMError(ReproError):
    """Runtime failure inside the virtual machine itself (not a guest
    exception -- guest exceptions are modelled as :class:`JavaThrow`)."""


class StepBudgetExceeded(VMError):
    """One activation ran past its step budget.

    Generated programs never get near the budget, so this almost always
    means a miscompiled branch sent a method into an unintended loop;
    the offending method's signature rides in the message to make such
    loops diagnosable from the failure alone.
    """

    def __init__(self, signature, budget, tier):
        super().__init__(f"{signature}: exceeded {budget:,} {tier} steps "
                         "in one activation (miscompiled loop?)")
        self.signature = signature
        self.budget = budget
        self.tier = tier


class JavaThrow(ReproError):
    """An exception thrown *inside* the guest program.

    Carries the guest exception class name so exception handlers in guest
    code can match on it.  Escaping to the host means the guest program
    terminated with an uncaught exception.
    """

    def __init__(self, class_name, message=""):
        super().__init__(f"{class_name}: {message}" if message else class_name)
        self.class_name = class_name
        self.guest_message = message


class CompilationError(ReproError):
    """The JIT failed to compile a method (invalid IL, pass failure)."""


class ArchiveError(ReproError):
    """Corrupt or incompatible data-collection archive."""


class DatasetError(ReproError):
    """Malformed training data set or scaling file."""


class TrainingError(ReproError):
    """SVM training could not proceed (bad parameters, empty data)."""


class ProtocolError(ReproError):
    """Violation of the compiler <-> model communication protocol."""


class CodeCacheError(ReproError):
    """Corrupt, truncated or incompatible persistent code-cache entry.

    Always recoverable: the cache drops the entry and the VM falls back
    to normal JIT compilation."""
