"""Report rendering: ASCII figures and a consolidated results report.

The paper presents Figures 6-13 as bar charts; :func:`ascii_figure`
renders the same data as horizontal bars in plain text so regenerated
figures are visually comparable at a glance.  :func:`build_report`
assembles every saved result under ``<cache>/results/`` into one
markdown document.
"""

import os


def ascii_bar(value, lo, hi, width=40, marker="#", baseline=1.0):
    """One horizontal bar for *value* on a [lo, hi] axis, with a '|'
    tick at the baseline."""
    span = max(hi - lo, 1e-12)

    def col(x):
        return int(round((min(max(x, lo), hi) - lo) / span * width))

    cells = [" "] * (width + 1)
    fill_to = col(value)
    start = col(lo)
    for i in range(min(start, fill_to), max(start, fill_to) + 1):
        cells[i] = marker
    tick = col(baseline)
    cells[tick] = "|"
    cells[fill_to] = marker
    return "".join(cells)


def ascii_figure(rows, title, baseline=1.0, width=40, lo=None,
                 hi=None):
    """Render a figure payload's rows as labelled ASCII bars.

    *rows*: ``{benchmark: {model: (mean, ci)}}`` as produced by the
    figure generators.
    """
    values = [mean for models in rows.values()
              for mean, _ci in models.values()]
    if not values:
        return title + "\n  (no data)"
    lo = lo if lo is not None else min(min(values), baseline) - 0.02
    hi = hi if hi is not None else max(max(values), baseline) + 0.02
    lines = [title,
             f"  axis [{lo:.2f} .. {hi:.2f}], '|' marks baseline "
             f"{baseline:g}"]
    for bench in sorted(rows):
        for model in sorted(rows[bench]):
            mean, ci = rows[bench][model]
            bar = ascii_bar(mean, lo, hi, width=width,
                            baseline=baseline)
            lines.append(f"  {bench:12.12s} {model:3s} {bar} "
                         f"{mean:6.3f}±{ci:.3f}")
    return "\n".join(lines)


def build_report(cache_dir, preset_name="quick", master_seed=0):
    """Assemble every saved result into one markdown document."""
    results_dir = os.path.join(cache_dir, "results")
    sections = [
        "# Regenerated evaluation",
        f"\npreset `{preset_name}`, master seed {master_seed}.",
        "\nEach section below is the verbatim output of one benchmark "
        "driver (see `benchmarks/`).\n",
    ]
    if not os.path.isdir(results_dir):
        sections.append("*(no results found -- run "
                        "`pytest benchmarks/ --benchmark-only` first)*")
        return "\n".join(sections)
    order = (["table4"]
             + [f"figure{n}" for n in range(6, 14)]
             + ["kernel_study", "ablation_search", "ablation_ranking",
                "ablation_plans", "ablation_guided"])
    seen = set()
    names = [n for n in order
             if os.path.exists(os.path.join(results_dir, n + ".txt"))]
    names += sorted(
        os.path.splitext(f)[0]
        for f in os.listdir(results_dir)
        if f.endswith(".txt") and os.path.splitext(f)[0] not in order)
    for name in names:
        if name in seen:
            continue
        seen.add(name)
        with open(os.path.join(results_dir, name + ".txt"),
                  encoding="utf-8") as fh:
            body = fh.read().rstrip()
        sections.append(f"## {name}\n\n```\n{body}\n```\n")
    return "\n".join(sections)
