"""Host wall-clock benchmarking of the execution engines.

Everything else in this repository measures *virtual* cycles; this
module measures the one thing virtual cycles deliberately ignore -- how
much host CPU time the simulator itself burns -- so dispatch-engine
work (the predecoded table-driven loops in
:mod:`repro.jvm.interpreter` and :mod:`repro.jit.codegen.native`) has a
recorded trajectory.  ``repro bench`` drives it and writes
``BENCH_hostperf.json``.

Methodology: for each (workload, mode) pair the guest program runs
``iterations`` times per sample on a fresh VM, ``repeats`` samples per
dispatch engine, and the **median** sample is reported (median-of-5 in
the default configuration) together with ns per retired guest
instruction (``interp_steps + retired_instructions``, the
engine-invariant denominator).  All three engines -- the retained
legacy if/elif loop, the predecoded table-driven dispatch, and the
superinstruction block compiler (:mod:`repro.jit.codegen.superop`) --
run the identical workload; their virtual cycle counts are asserted
pairwise equal, so the comparison is pure host-time, never a semantic
drift.

Modes:

* ``interp`` -- no JIT attached; the interpreter microbenchmark.
* ``jit``    -- every method precompiled (hot) before timing starts;
  steady-state native-executor throughput.  This is where the superop
  engine earns its keep: fused bodies run block-at-a-time.
* ``mixed``  -- the adaptive controller compiles as it goes; this is
  what ``repro run`` does, so its compress row is the end-to-end
  number.  Superop fusion cost lands inside the timed region here,
  exactly as it does in production.
"""

import contextlib
import gc
import json
import platform
import statistics
import time

import repro.jit.codegen.native as _native_mod
import repro.jvm.interpreter as _interp_mod
from repro import telemetry
from repro.errors import CompilationError
from repro.jit.compiler import JitCompiler
from repro.jit.control import CompilationManager
from repro.jit.plans import OptLevel
from repro.jvm.vm import VirtualMachine
from repro.workloads import specjvm_program

#: Workloads timed by the full benchmark (``--quick`` keeps the first).
WORKLOADS = ("compress", "db", "mtrt")

MODES = ("interp", "jit", "mixed")

#: The dispatch engines timed against each other, slowest first.  The
#: interpreter only distinguishes legacy from predecoded; the superop
#: engine additionally fuses hot native bodies into block closures.
ENGINES = ("legacy", "predecoded", "superop")

#: The regression gate used by CI: the measured speedup must stay above
#: ``baseline_speedup * (1 - REGRESSION_TOLERANCE)``.
REGRESSION_TOLERANCE = 0.25


def _set_engine(engine):
    predecode = engine != "legacy"
    _interp_mod.USE_PREDECODE = predecode
    _native_mod.USE_PREDECODE = predecode
    _native_mod.USE_SUPEROP = engine == "superop"


class _Precompiled:
    """Minimal manager: serve a fixed table of compiled bodies."""

    def __init__(self, table):
        self.table = table

    def on_attach(self, vm):
        pass

    def on_invoke(self, method, count):
        pass

    def on_sample(self, method):
        pass

    def on_return(self, method, compiled):
        pass

    def compiled_for(self, method, now):
        return self.table.get(method.signature)


def _compile_all(program, level=OptLevel.HOT):
    """Compile every method of *program* once (shared across samples)."""
    vm = VirtualMachine()
    vm.load_program(program)
    compiler = JitCompiler(method_resolver=vm._methods.get)
    table = {}
    for method in program.methods():
        try:
            table[method.signature] = compiler.compile(method, level)
        except CompilationError:
            pass  # rare; the VM falls back to interpretation
    return table


def _one_sample(program, mode, iterations, compiled_table):
    """One timed sample on a fresh VM; returns (seconds, vm).

    The cyclic collector is drained before and paused during the timed
    region (pytest-benchmark does the same): a gen-2 pass landing
    inside one ~100ms sample but not its neighbor reads as several
    percent of phantom overhead.
    """
    vm = VirtualMachine()
    vm.load_program(program)
    if mode == "jit":
        vm.attach_manager(_Precompiled(compiled_table))
    elif mode == "mixed":
        vm.attach_manager(CompilationManager(
            JitCompiler(method_resolver=vm._methods.get)))
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        for _ in range(iterations):
            vm.call(program.entry, 3)
        return time.perf_counter() - t0, vm
    finally:
        if was_enabled:
            gc.enable()


def _measure_cell(program, mode, repeats, iterations, compiled_table):
    """Time every engine on one (workload, mode) cell, paired.

    Sampling is round-robin -- each round times all engines
    back-to-back -- so slow host-load drift (co-tenants, thermal
    throttle) lands on every engine alike instead of biasing whichever
    engine happened to run during the burst.  The reported number per
    engine is still the median sample.
    """
    # Steady state: fusion happens at install time in production, so
    # build the programs outside the timed region (cached on the
    # NativeCode, shared across samples).
    if mode == "jit":
        for cm in compiled_table.values():
            cm.native.superop()
    times = {engine: [] for engine in ENGINES}
    vms = {}
    for _ in range(repeats):
        for engine in ENGINES:
            _set_engine(engine)
            seconds, vm = _one_sample(program, mode, iterations,
                                      compiled_table)
            times[engine].append(seconds)
            vms[engine] = vm
    cell = {}
    for engine in ENGINES:
        vm = vms[engine]
        steps = (vm.stats["interp_steps"]
                 + vm.stats["retired_instructions"])
        median = statistics.median(times[engine])
        cell[engine] = {
            "runs_s": [round(t, 6) for t in times[engine]],
            "median_s": round(median, 6),
            "instructions": steps,
            "host_steps": (vm.stats["interp_steps"]
                           + vm.stats["host_steps"]),
            "superop_blocks": vm.stats["superop_blocks"],
            "ns_per_instr": (round(median / steps * 1e9, 2)
                             if steps else None),
            "cycles": vm.clock.now(),
        }
    return cell


def run_bench(quick=False, master_seed=0, repeats=5):
    """Run the benchmark matrix; returns the result dict.

    The virtual-clock totals of the three engines are compared for
    every cell -- a mismatch raises, because a dispatch rewrite that
    changes virtual time is a correctness bug, not a performance
    result.
    """
    workloads = WORKLOADS[:1] if quick else WORKLOADS
    iterations = 2 if quick else 5
    saved = (_interp_mod.USE_PREDECODE, _native_mod.USE_PREDECODE,
             _native_mod.USE_SUPEROP)
    results = {}
    try:
        for name in workloads:
            program = specjvm_program(name, master_seed=master_seed)
            compiled_table = _compile_all(program)
            results[name] = {}
            for mode in MODES:
                cell = _measure_cell(program, mode, repeats,
                                     iterations, compiled_table)
                cycles = {cell[e]["cycles"] for e in ENGINES}
                if len(cycles) != 1:
                    raise AssertionError(
                        f"{name}/{mode}: virtual time diverged between "
                        f"dispatch engines ({cycles})")
                legacy = cell["legacy"]["median_s"]
                predec = cell["predecoded"]["median_s"]
                superop = cell["superop"]["median_s"]
                cell["speedup"] = round(legacy / predec, 3)
                cell["superop_speedup"] = round(predec / superop, 3)
                cell["superop_vs_legacy"] = round(legacy / superop, 3)
                cell["cycles_identical"] = True
                results[name][mode] = cell
    finally:
        (_interp_mod.USE_PREDECODE, _native_mod.USE_PREDECODE,
         _native_mod.USE_SUPEROP) = saved

    summary = {
        "interp_speedup": {name: cells["interp"]["speedup"]
                           for name, cells in results.items()},
        "min_interp_speedup": min(cells["interp"]["speedup"]
                                  for cells in results.values()),
        # Steady-state block fusion: superop over the predecoded loop
        # and over the legacy loop, both on precompiled-hot bodies.
        "superop_jit_speedup": {
            name: cells["jit"]["superop_speedup"]
            for name, cells in results.items()},
        "min_superop_jit_speedup": min(
            cells["jit"]["superop_speedup"]
            for cells in results.values()),
        "superop_vs_legacy_jit": {
            name: cells["jit"]["superop_vs_legacy"]
            for name, cells in results.items()},
        "superop_mixed_speedup": {
            name: cells["mixed"]["superop_speedup"]
            for name, cells in results.items()},
    }
    if "compress" in results:
        summary["e2e_compress_speedup"] = \
            results["compress"]["mixed"]["speedup"]
    tracer_overhead = run_tracer_overhead(quick=quick,
                                          master_seed=master_seed,
                                          repeats=repeats)
    summary["null_tracer_overhead"] = tracer_overhead["null_overhead"]
    return {
        "tracer_overhead": tracer_overhead,
        "methodology": (
            f"median of {repeats} paired round-robin samples per "
            f"engine; each sample runs the guest entry {iterations}x "
            "on a fresh VM; ns/instr = median seconds / retired guest "
            "instructions (vm.stats interp_steps + "
            "retired_instructions); legacy, predecoded and superop "
            "engines verified cycle-identical per cell"),
        "quick": bool(quick),
        "repeats": repeats,
        "iterations": iterations,
        "master_seed": master_seed,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
        "summary": summary,
    }


#: Telemetry states compared by the overhead guard: no tracer
#: installed, the explicit :class:`~repro.telemetry.NullTracer`, and a
#: recording :class:`~repro.telemetry.Tracer`.
TRACER_MODES = ("off", "null", "on")

#: Ceiling on the null tracer's interpreter-microbenchmark overhead
#: (fraction); ``tests/telemetry/test_overhead.py`` enforces it.
NULL_TRACER_BUDGET = 0.02


def _tracer_context(mode):
    if mode == "off":
        return contextlib.nullcontext()
    if mode == "null":
        return telemetry.tracing(telemetry.NullTracer())
    return telemetry.tracing(telemetry.Tracer(
        sink=telemetry.RingBufferSink(capacity=1 << 18)))


def run_tracer_overhead(quick=False, master_seed=0, repeats=5,
                        workload="compress"):
    """Interpreter microbenchmark under tracer off / null / on.

    The design is *paired*: every round times the three modes
    back-to-back, each round yields a null/off and on/off ratio, and
    the reported overhead is the **best (lowest) per-round ratio**.
    Pairing cancels host-load drift between rounds; taking the best
    round discards the rounds where an interference burst (co-tenant,
    cgroup throttle) landed inside one sample.  That makes this a
    *regression guard*, not a precision measurement: a structural
    regression -- say per-bytecode instrumentation sneaking into the
    hot loops -- inflates every round and still trips the budget,
    while the true near-zero cost is not buried under one-sided noise.
    The per-round ratios are reported for inspection.  The virtual
    cycle totals of all three modes are asserted identical -- tracing
    that shifts guest time would be a correctness bug, not an
    overhead.
    """
    program = specjvm_program(workload, master_seed=master_seed)
    # Longer samples than the dispatch matrix: the effect measured here
    # is a fraction of a percent, so ~30ms samples would be pure noise.
    iterations = 10 if quick else 25
    times = {mode: [] for mode in TRACER_MODES}
    vms = {}
    for _ in range(repeats):
        for mode in TRACER_MODES:
            with _tracer_context(mode):
                seconds, vm = _one_sample(program, "interp",
                                          iterations, None)
            times[mode].append(seconds)
            vms[mode] = vm
    cycles = {vm.clock.now() for vm in vms.values()}
    out = {
        mode: {
            "runs_s": [round(t, 6) for t in times[mode]],
            "best_s": round(min(times[mode]), 6),
            "median_s": round(statistics.median(times[mode]), 6),
            "cycles": vms[mode].clock.now(),
        }
        for mode in TRACER_MODES
    }
    if len(cycles) != 1:
        raise AssertionError(
            f"virtual time diverged across tracer modes: {cycles}")

    def ratios(mode):
        return [round(t / base - 1.0, 4)
                for t, base in zip(times[mode], times["off"])]

    null_ratios, on_ratios = ratios("null"), ratios("on")
    return {
        "workload": workload,
        "iterations": iterations,
        "repeats": repeats,
        "modes": out,
        "null_overhead": min(null_ratios),
        "on_overhead": min(on_ratios),
        "round_overheads": {"null": null_ratios, "on": on_ratios},
        "cycles_identical": True,
    }


def render_tracer_overhead(overhead):
    """One-line-per-mode table of a :func:`run_tracer_overhead` result."""
    lines = [
        f"Tracer overhead ({overhead['workload']} interp, best of "
        f"{overhead['repeats']} paired round(s)):",
        f"{'tracer':8s} {'best':>10s} {'median':>10s} {'overhead':>9s}",
    ]
    pcts = {"off": 0.0, "null": overhead["null_overhead"],
            "on": overhead["on_overhead"]}
    for mode in TRACER_MODES:
        cell = overhead["modes"][mode]
        lines.append(f"{mode:8s} {cell['best_s']*1000:8.1f}ms "
                     f"{cell['median_s']*1000:8.1f}ms {pcts[mode]:8.1%}")
    return "\n".join(lines)


def render(result):
    """Human-readable table of a :func:`run_bench` result."""
    lines = [
        "Host-perf: legacy vs predecoded vs superop dispatch "
        f"(median of {result['repeats']}, "
        f"{result['iterations']} iteration(s)/sample)",
        f"{'workload':10s} {'mode':7s} {'legacy':>10s} {'predec.':>10s} "
        f"{'superop':>10s} {'pre/leg':>8s} {'sup/pre':>8s} "
        f"{'ns/instr':>9s}",
    ]
    for name, cells in result["results"].items():
        for mode, cell in cells.items():
            lines.append(
                f"{name:10s} {mode:7s} "
                f"{cell['legacy']['median_s']*1000:8.1f}ms "
                f"{cell['predecoded']['median_s']*1000:8.1f}ms "
                f"{cell['superop']['median_s']*1000:8.1f}ms "
                f"{cell['speedup']:7.2f}x "
                f"{cell['superop_speedup']:7.2f}x "
                f"{cell['superop']['ns_per_instr']:9.1f}")
    s = result["summary"]
    lines.append(f"min interpreter speedup: "
                 f"{s['min_interp_speedup']:.2f}x")
    if "min_superop_jit_speedup" in s:
        lines.append(f"min superop jit speedup (vs predecoded): "
                     f"{s['min_superop_jit_speedup']:.2f}x")
    if "e2e_compress_speedup" in s:
        lines.append(f"end-to-end compress (mixed): "
                     f"{s['e2e_compress_speedup']:.2f}x")
    if result.get("tracer_overhead"):
        lines.append("")
        lines.append(render_tracer_overhead(result["tracer_overhead"]))
    return "\n".join(lines)


def save_json(result, path):
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def check_regression(result, baseline, tolerance=REGRESSION_TOLERANCE):
    """Compare engine speedup ratios against a baseline run.

    Speedup *ratios* (engine-vs-engine on the same machine, same
    process) are machine-portable in a way absolute nanoseconds are
    not, so CI gates on them: the interpreter's predecoded/legacy
    ratio and the superop engine's steady-state superop/legacy ratio.
    Returns a list of failure strings, empty when every shared
    workload holds up.
    """
    failures = []
    gates = (
        ("interp_speedup", "interpreter speedup"),
        ("superop_vs_legacy_jit", "superop jit speedup vs legacy"),
    )
    for key, label in gates:
        base = baseline.get("summary", {}).get(key, {})
        measured = result.get("summary", {}).get(key, {})
        for name, base_speedup in base.items():
            got = measured.get(name)
            if got is None:
                continue  # quick vs full baseline: shared rows only
            floor = base_speedup * (1.0 - tolerance)
            if got < floor:
                failures.append(
                    f"{name}: {label} {got:.2f}x fell below "
                    f"{floor:.2f}x ({base_speedup:.2f}x baseline "
                    f"- {tolerance:.0%})")
    if not result.get("summary", {}).get("interp_speedup"):
        failures.append("result contains no interpreter measurements")
    return failures
