"""Host wall-clock benchmarking of the execution engines.

Everything else in this repository measures *virtual* cycles; this
module measures the one thing virtual cycles deliberately ignore -- how
much host CPU time the simulator itself burns -- so dispatch-engine
work (the predecoded table-driven loops in
:mod:`repro.jvm.interpreter` and :mod:`repro.jit.codegen.native`) has a
recorded trajectory.  ``repro bench`` drives it and writes
``BENCH_hostperf.json``.

Methodology: for each (workload, mode) pair the guest program runs
``iterations`` times per sample on a fresh VM, ``repeats`` samples per
dispatch engine, and the **median** sample is reported (median-of-5 in
the default configuration) together with ns per retired guest
instruction (``vm.stats`` step counters).  Both engines -- the
predecoded dispatch and the retained legacy if/elif loop -- run the
identical workload; their virtual cycle counts are asserted equal, so
the comparison is pure host-time, never a semantic drift.

Modes:

* ``interp`` -- no JIT attached; the interpreter microbenchmark.
* ``jit``    -- every method precompiled (hot) before timing starts;
  steady-state native-executor throughput.
* ``mixed``  -- the adaptive controller compiles as it goes; this is
  what ``repro run`` does, so its compress row is the end-to-end
  number.
"""

import json
import platform
import statistics
import time

import repro.jit.codegen.native as _native_mod
import repro.jvm.interpreter as _interp_mod
from repro.errors import CompilationError
from repro.jit.compiler import JitCompiler
from repro.jit.control import CompilationManager
from repro.jit.plans import OptLevel
from repro.jvm.vm import VirtualMachine
from repro.workloads import specjvm_program

#: Workloads timed by the full benchmark (``--quick`` keeps the first).
WORKLOADS = ("compress", "db", "mtrt")

MODES = ("interp", "jit", "mixed")

#: The regression gate used by CI: the measured speedup must stay above
#: ``baseline_speedup * (1 - REGRESSION_TOLERANCE)``.
REGRESSION_TOLERANCE = 0.25


def _set_dispatch(predecode):
    _interp_mod.USE_PREDECODE = predecode
    _native_mod.USE_PREDECODE = predecode


class _Precompiled:
    """Minimal manager: serve a fixed table of compiled bodies."""

    def __init__(self, table):
        self.table = table

    def on_attach(self, vm):
        pass

    def on_invoke(self, method, count):
        pass

    def on_sample(self, method):
        pass

    def on_return(self, method, compiled):
        pass

    def compiled_for(self, method, now):
        return self.table.get(method.signature)


def _compile_all(program, level=OptLevel.HOT):
    """Compile every method of *program* once (shared across samples)."""
    vm = VirtualMachine()
    vm.load_program(program)
    compiler = JitCompiler(method_resolver=vm._methods.get)
    table = {}
    for method in program.methods():
        try:
            table[method.signature] = compiler.compile(method, level)
        except CompilationError:
            pass  # rare; the VM falls back to interpretation
    return table


def _one_sample(program, mode, iterations, compiled_table):
    """One timed sample on a fresh VM; returns (seconds, vm)."""
    vm = VirtualMachine()
    vm.load_program(program)
    if mode == "jit":
        vm.attach_manager(_Precompiled(compiled_table))
    elif mode == "mixed":
        vm.attach_manager(CompilationManager(
            JitCompiler(method_resolver=vm._methods.get)))
    t0 = time.perf_counter()
    for _ in range(iterations):
        vm.call(program.entry, 3)
    return time.perf_counter() - t0, vm


def _measure(program, mode, predecode, repeats, iterations,
             compiled_table):
    _set_dispatch(predecode)
    times = []
    vm = None
    for _ in range(repeats):
        seconds, vm = _one_sample(program, mode, iterations,
                                  compiled_table)
        times.append(seconds)
    steps = vm.stats["interp_steps"] + vm.stats["native_steps"]
    median = statistics.median(times)
    return {
        "runs_s": [round(t, 6) for t in times],
        "median_s": round(median, 6),
        "instructions": steps,
        "ns_per_instr": round(median / steps * 1e9, 2) if steps else None,
        "cycles": vm.clock.now(),
    }


def run_bench(quick=False, master_seed=0, repeats=5):
    """Run the benchmark matrix; returns the result dict.

    The virtual-clock totals of the two engines are compared for every
    cell -- a mismatch raises, because a dispatch rewrite that changes
    virtual time is a correctness bug, not a performance result.
    """
    workloads = WORKLOADS[:1] if quick else WORKLOADS
    iterations = 2 if quick else 5
    saved = (_interp_mod.USE_PREDECODE, _native_mod.USE_PREDECODE)
    results = {}
    try:
        for name in workloads:
            program = specjvm_program(name, master_seed=master_seed)
            compiled_table = _compile_all(program)
            results[name] = {}
            for mode in MODES:
                new = _measure(program, mode, True, repeats, iterations,
                               compiled_table)
                old = _measure(program, mode, False, repeats, iterations,
                               compiled_table)
                if new["cycles"] != old["cycles"]:
                    raise AssertionError(
                        f"{name}/{mode}: virtual time diverged between "
                        f"dispatch engines ({new['cycles']} vs "
                        f"{old['cycles']})")
                results[name][mode] = {
                    "predecoded": new,
                    "legacy": old,
                    "speedup": round(old["median_s"] / new["median_s"], 3),
                    "cycles_identical": True,
                }
    finally:
        _interp_mod.USE_PREDECODE, _native_mod.USE_PREDECODE = saved

    summary = {
        "interp_speedup": {name: cells["interp"]["speedup"]
                           for name, cells in results.items()},
        "min_interp_speedup": min(cells["interp"]["speedup"]
                                  for cells in results.values()),
    }
    if "compress" in results:
        summary["e2e_compress_speedup"] = \
            results["compress"]["mixed"]["speedup"]
    return {
        "methodology": (
            f"median of {repeats} samples per engine; each sample runs "
            f"the guest entry {iterations}x on a fresh VM; ns/instr = "
            "median seconds / retired guest instructions "
            "(vm.stats interp_steps + native_steps); legacy and "
            "predecoded engines verified cycle-identical per cell"),
        "quick": bool(quick),
        "repeats": repeats,
        "iterations": iterations,
        "master_seed": master_seed,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "results": results,
        "summary": summary,
    }


def render(result):
    """Human-readable table of a :func:`run_bench` result."""
    lines = [
        "Host-perf: predecoded vs legacy dispatch "
        f"(median of {result['repeats']}, "
        f"{result['iterations']} iteration(s)/sample)",
        f"{'workload':10s} {'mode':7s} {'legacy':>10s} {'predec.':>10s} "
        f"{'speedup':>8s} {'ns/instr':>9s}",
    ]
    for name, cells in result["results"].items():
        for mode, cell in cells.items():
            lines.append(
                f"{name:10s} {mode:7s} "
                f"{cell['legacy']['median_s']*1000:8.1f}ms "
                f"{cell['predecoded']['median_s']*1000:8.1f}ms "
                f"{cell['speedup']:7.2f}x "
                f"{cell['predecoded']['ns_per_instr']:9.1f}")
    s = result["summary"]
    lines.append(f"min interpreter speedup: "
                 f"{s['min_interp_speedup']:.2f}x")
    if "e2e_compress_speedup" in s:
        lines.append(f"end-to-end compress (mixed): "
                     f"{s['e2e_compress_speedup']:.2f}x")
    return "\n".join(lines)


def save_json(result, path):
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def check_regression(result, baseline, tolerance=REGRESSION_TOLERANCE):
    """Compare interpreter-microbench speedups against a baseline run.

    Speedup *ratios* (legacy/predecoded on the same machine, same
    process) are machine-portable in a way absolute nanoseconds are
    not, so CI gates on them.  Returns a list of failure strings, empty
    when every shared workload holds up.
    """
    failures = []
    base = baseline.get("summary", {}).get("interp_speedup", {})
    measured = result.get("summary", {}).get("interp_speedup", {})
    for name, base_speedup in base.items():
        got = measured.get(name)
        if got is None:
            continue  # quick run vs full baseline: gate shared rows only
        floor = base_speedup * (1.0 - tolerance)
        if got < floor:
            failures.append(
                f"{name}: interpreter speedup {got:.2f}x fell below "
                f"{floor:.2f}x ({base_speedup:.2f}x baseline "
                f"- {tolerance:.0%})")
    if not measured:
        failures.append("result contains no interpreter measurements")
    return failures
