"""Start-up / throughput evaluation with leave-one-out model assignment.

The paper's methodology (§8.1-8.2):

* *Start-up*: one internal iteration per JVM invocation.
* *Throughput*: ten internal iterations per JVM invocation.
* A benchmark that was part of the training set is evaluated only under
  the model that *excludes* it (leave-one-out -- "hence the single bar");
  reserved benchmarks are evaluated under all five models.
* Every bar is relative to the unmodified baseline compiler, with 95%
  confidence intervals; compilation time is reported the same way
  (lower is better).
"""

import dataclasses

from repro.experiments.measure import (
    MeasurementConfig,
    measure,
    relative,
)
from repro.service.strategy import ModelStrategy


@dataclasses.dataclass
class EvaluationResult:
    """One benchmark's evaluation against a set of models."""

    benchmark: str
    baseline_time: object         # Summary
    baseline_compile: object      # Summary
    #: model name -> Summary of run time / compile time
    model_time: dict
    model_compile: dict

    def relative_performance(self, model_name):
        """>1 means the learned model beat the baseline."""
        return relative(self.baseline_time,
                        self.model_time[model_name])

    def relative_compile_time(self, model_name):
        """<1 means the learned model compiled for less time."""
        base = self.baseline_compile
        var = self.model_compile[model_name]
        if base.mean == 0:
            return None
        # relative(a, b) computes a.mean / b.mean with a propagated CI,
        # so swapping the arguments yields model/baseline directly.
        return relative(var, base)

    def models(self):
        return sorted(self.model_time)


def models_for_benchmark(benchmark, model_sets):
    """Leave-one-out assignment: the models applicable to *benchmark*.

    If some model excludes this benchmark, only that model applies (the
    benchmark was in the other folds' training data); otherwise all
    models apply (a reserved benchmark).
    """
    excluding = {name: ms for name, ms in model_sets.items()
                 if ms.excluded == benchmark}
    if excluding:
        return excluding
    return dict(model_sets)


def evaluate_benchmark(program, model_sets, iterations=1,
                       replications=5, master_seed=0,
                       honor_leave_one_out=True):
    """Measure baseline and every applicable model on one benchmark."""
    config = MeasurementConfig(iterations=iterations,
                               replications=replications,
                               master_seed=master_seed)
    base_time, base_compile, _ = measure(program, None, config)
    applicable = (models_for_benchmark(program.name, model_sets)
                  if honor_leave_one_out else dict(model_sets))
    model_time = {}
    model_compile = {}
    for name in sorted(applicable):
        model_set = applicable[name]
        t, c, _ = measure(
            program, lambda ms=model_set: ModelStrategy(ms), config)
        model_time[name] = t
        model_compile[name] = c
    return EvaluationResult(
        benchmark=program.name,
        baseline_time=base_time, baseline_compile=base_compile,
        model_time=model_time, model_compile=model_compile)


def evaluate_suite(programs, model_sets, iterations=1, replications=5,
                   master_seed=0, honor_leave_one_out=True):
    """Evaluate a list of programs; returns ``{name: EvaluationResult}``."""
    out = {}
    for program in programs:
        out[program.name] = evaluate_benchmark(
            program, model_sets, iterations=iterations,
            replications=replications, master_seed=master_seed,
            honor_leave_one_out=honor_leave_one_out)
    return out


def format_results(results, metric="performance"):
    """Render results as the paper's figure rows (text table)."""
    lines = []
    for name in sorted(results):
        res = results[name]
        parts = [f"{name:12s}"]
        for model in res.models():
            if metric == "performance":
                summary = res.relative_performance(model)
            else:
                summary = res.relative_compile_time(model)
            parts.append(f"{model}={summary.mean:5.3f}"
                         f"±{summary.ci95:5.3f}")
        lines.append("  ".join(parts))
    return "\n".join(lines)


def geometric_mean_gain(results, metric="performance"):
    """Average relative value across benchmarks and models."""
    import math
    values = []
    for res in results.values():
        for model in res.models():
            if metric == "performance":
                values.append(res.relative_performance(model).mean)
            else:
                values.append(res.relative_compile_time(model).mean)
    if not values:
        return 1.0
    return math.exp(sum(math.log(max(v, 1e-9)) for v in values)
                    / len(values))
