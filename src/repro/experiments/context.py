"""Cached collect-and-train context shared by the figure benchmarks.

Data collection and SVM training are the expensive stages of the
pipeline.  The context runs them once per (seed, profile) configuration
and caches the binary archives and trained model sets on disk (default
``.repro_cache/``), so each of the eight figure benchmarks reuses the
same models -- exactly as the paper evaluates one set of 15 trained
models across all figures.

Two built-in presets:

* ``quick`` (default) -- scaled-down collection, 5 replications;
  regenerates every figure in minutes.
* ``full``  -- heavier collection and 30 replications (the paper's
  count); select with ``REPRO_PROFILE=full``.
"""

import os

from repro.collect.archive import read_archive, write_archive
from repro.collect.instrument import ThresholdConfig
from repro.collect.session import CollectionConfig, CollectionSession
from repro.ml.model import ModelSet
from repro.ml.pipeline import leave_one_out_models, table4_statistics
from repro.workloads import (
    DACAPO_BENCHMARKS,
    SPECJVM_BENCHMARKS,
    SPECJVM_TRAINING,
    dacapo_program,
    specjvm_program,
)

PRESETS = {
    # Minimal end-to-end preset for tests and smoke runs.
    "tiny": {
        "modifiers_per_level": 80,
        "uses_per_modifier": 2,
        "max_iterations": 8,
        "threshold_target": 8_000,
        "threshold_min": 3,
        "threshold_max": 60,
        "replications": 2,
    },
    "quick": {
        "modifiers_per_level": 600,
        "uses_per_modifier": 3,
        "max_iterations": 70,
        "threshold_target": 6_000,
        "threshold_min": 3,
        "threshold_max": 30,
        "replications": 5,
    },
    "full": {
        "modifiers_per_level": 1600,
        "uses_per_modifier": 4,
        "max_iterations": 250,
        "threshold_target": 5_000,
        "threshold_min": 3,
        "threshold_max": 30,
        "replications": 30,
    },
}


def active_preset():
    return os.environ.get("REPRO_PROFILE", "quick")


class EvaluationContext:
    """Builds (and caches) everything the figures need."""

    def __init__(self, preset=None, master_seed=0, cache_dir=None,
                 search="merged"):
        self.preset_name = preset or active_preset()
        if self.preset_name not in PRESETS:
            raise ValueError(f"unknown preset {self.preset_name!r}")
        self.params = PRESETS[self.preset_name]
        self.master_seed = master_seed
        self.search = search
        self.cache_dir = cache_dir or os.environ.get(
            "REPRO_CACHE", os.path.join(os.getcwd(), ".repro_cache"))
        self._record_sets = None
        self._model_sets = None
        self._programs = {}

    # -- programs ---------------------------------------------------------

    def program(self, suite, name):
        key = (suite, name)
        if key not in self._programs:
            if suite == "specjvm":
                self._programs[key] = specjvm_program(
                    name, master_seed=self.master_seed)
            else:
                self._programs[key] = dacapo_program(
                    name, master_seed=self.master_seed)
        return self._programs[key]

    def spec_programs(self, names=None):
        names = names or list(SPECJVM_BENCHMARKS)
        return [self.program("specjvm", n) for n in names]

    def dacapo_programs(self, names=None):
        names = names or list(DACAPO_BENCHMARKS)
        return [self.program("dacapo", n) for n in names]

    @property
    def replications(self):
        return self.params["replications"]

    # -- collection -------------------------------------------------------------

    def collection_config(self, search=None):
        p = self.params
        return CollectionConfig(
            search=search or self.search,
            modifiers_per_level=p["modifiers_per_level"],
            uses_per_modifier=p["uses_per_modifier"],
            max_iterations=p["max_iterations"],
            thresholds=ThresholdConfig(
                target_cycles=p["threshold_target"],
                min_threshold=p["threshold_min"],
                max_threshold=p["threshold_max"]),
        )

    def _cache_path(self, *parts):
        tag = f"{self.preset_name}-s{self.master_seed}-{self.search}"
        path = os.path.join(self.cache_dir, tag, *parts)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        return path

    def record_sets(self, search=None):
        """Collected data per training benchmark, archive-cached."""
        if self._record_sets is not None and search is None:
            return self._record_sets
        config = self.collection_config(search)
        suffix = search or self.search
        out = {}
        for name in SPECJVM_TRAINING:
            path = self._cache_path("archives",
                                    f"{name}-{suffix}.trca")
            if os.path.exists(path):
                out[name] = read_archive(path)
                continue
            program = self.program("specjvm", name)
            session = CollectionSession(program, config,
                                        master_seed=self.master_seed)
            records = session.run()
            if session.crashed:
                continue
            write_archive(path, records)
            out[name] = records
        if search is None:
            self._record_sets = out
        return out

    # -- models ---------------------------------------------------------

    def model_sets(self):
        """The five leave-one-out model sets (H1..H5), disk-cached."""
        if self._model_sets is not None:
            return self._model_sets
        base = self._cache_path("models", "marker")
        models_dir = os.path.dirname(base)
        manifest = os.path.join(models_dir, "H1", "modelset.json")
        if os.path.exists(manifest):
            out = {}
            for k in range(1, len(SPECJVM_TRAINING) + 1):
                out[f"H{k}"] = ModelSet.load(
                    os.path.join(models_dir, f"H{k}"))
            self._model_sets = out
            return out
        out = leave_one_out_models(self.record_sets())
        for name, model_set in out.items():
            model_set.save(os.path.join(models_dir, name))
        self._model_sets = out
        return out

    # -- table 4 -------------------------------------------------------------

    def table4(self):
        return table4_statistics(self.record_sets())
