"""The experimental-evaluation harness (paper §8).

``measure`` runs benchmarks under a VM+JIT with seeded replications and
Student-t confidence intervals; ``evaluation`` implements the start-up /
throughput methodology including leave-one-out model assignment;
``context`` caches the expensive collect-and-train stage on disk so the
per-figure benchmark drivers can share it.
"""

from repro.experiments.measure import (
    MeasurementConfig,
    RunResult,
    Summary,
    measure,
    run_once,
    summarize,
)
from repro.experiments.evaluation import (
    EvaluationResult,
    evaluate_benchmark,
    evaluate_suite,
)
from repro.experiments.context import EvaluationContext
from repro.experiments.warmstart import (
    WarmStartResult,
    cold_vs_warm,
)

__all__ = [
    "WarmStartResult",
    "cold_vs_warm",
    "MeasurementConfig",
    "RunResult",
    "Summary",
    "measure",
    "run_once",
    "summarize",
    "EvaluationResult",
    "evaluate_benchmark",
    "evaluate_suite",
    "EvaluationContext",
]
