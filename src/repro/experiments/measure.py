"""Measurement methodology (paper §8.1).

A *JVM invocation* is one complete run of a benchmark program in a fresh
VM: start-up performance runs a single internal iteration, throughput
performance runs ten.  Every measurement is replicated (the paper uses
30 JVM invocations) and reported as mean with a 95% Student-t confidence
interval.

Replications differ through seeded disturbance models standing in for
the paper's OS-level noise: the sampling-profiler interval is jittered
(changing JIT timing decisions -- a real, structural perturbation) and a
small multiplicative timing noise models scheduler/GC interference.
"""

import dataclasses
import math

import numpy as np
from scipy import stats

from repro import telemetry
from repro.jit.compiler import JitCompiler
from repro.jit.control import CompilationManager
from repro.jvm.vm import DEFAULT_SAMPLE_INTERVAL, VirtualMachine
from repro.rng import RngStreams


@dataclasses.dataclass
class MeasurementConfig:
    """How to measure one configuration."""

    iterations: int = 1          # internal iterations per JVM invocation
    replications: int = 30       # independent JVM invocations
    entry_arg: int = 3
    #: Relative jitter applied to the sampling interval per replication.
    sample_jitter: float = 0.10
    #: Std-dev of the multiplicative timing noise per replication.
    timing_noise: float = 0.01
    master_seed: int = 0


@dataclasses.dataclass
class RunResult:
    """One JVM invocation's outcome."""

    total_cycles: float
    compile_cycles: int
    compilations: int
    result_value: object
    #: Code-cache counters for the run (None when no cache attached).
    cache_stats: dict = None


@dataclasses.dataclass
class Summary:
    """Replicated measurement: mean and 95% confidence interval."""

    mean: float
    ci95: float
    n: int
    samples: tuple

    @property
    def low(self):
        return self.mean - self.ci95

    @property
    def high(self):
        return self.mean + self.ci95


def summarize(samples):
    """Mean and 95% Student-t half-width of *samples*."""
    data = np.asarray(list(samples), dtype=np.float64)
    n = len(data)
    mean = float(data.mean())
    if n < 2:
        return Summary(mean, 0.0, n, tuple(data))
    sem = float(data.std(ddof=1)) / math.sqrt(n)
    half = float(stats.t.ppf(0.975, n - 1)) * sem
    return Summary(mean, half, n, tuple(data))


def run_once(program, strategy=None, iterations=1, entry_arg=3,
             sample_interval=DEFAULT_SAMPLE_INTERVAL, noise=1.0,
             control_config=None, code_cache=None, tracer=None):
    """One JVM invocation; returns a :class:`RunResult`.

    *code_cache*, when given, is a :class:`repro.codecache.CodeCache`
    the compilation manager probes before compiling and fills on
    misses -- the warm-start path.  The default (None) is the exact
    pre-cache behavior.

    *tracer*, when given, is installed as the active tracer for the
    duration of the run (the tracer observes but never advances the
    virtual clock, so traced and untraced runs are cycle-identical).
    None leaves the ambient tracer -- usually the null tracer -- in
    place.
    """
    with telemetry.tracing(tracer):
        vm = VirtualMachine(sample_interval=sample_interval)
        vm.load_program(program)

        def resolver(signature):
            try:
                return vm.lookup(signature)
            except Exception:
                return None

        compiler = JitCompiler(method_resolver=resolver)
        manager = CompilationManager(compiler, strategy=strategy,
                                     config=control_config,
                                     code_cache=code_cache)
        vm.attach_manager(manager)
        result = None
        with telemetry.get_tracer().span(
                "run", cat="experiment", benchmark=program.name,
                iterations=iterations):
            for _ in range(iterations):
                result = vm.call(program.entry, entry_arg)
        return RunResult(
            total_cycles=vm.clock.now() * noise,
            compile_cycles=manager.total_compile_cycles,
            compilations=manager.compilations(),
            result_value=result,
            cache_stats=(code_cache.stats.as_dict()
                         if code_cache is not None else None),
        )


def measure(program, strategy_factory=None, config=None):
    """Replicated measurement of one configuration.

    *strategy_factory*: callable returning a fresh strategy per
    replication (None = baseline: original plans only).

    Returns ``(time_summary, compile_summary, runs)``.
    """
    config = config or MeasurementConfig()
    streams = RngStreams(config.master_seed)
    rng = streams.get(f"measure:{program.name}:{config.iterations}")
    times = []
    compiles = []
    runs = []
    for _rep in range(config.replications):
        jitter = 1.0 + rng.uniform(-config.sample_jitter,
                                   config.sample_jitter)
        interval = max(1000, int(DEFAULT_SAMPLE_INTERVAL * jitter))
        noise = float(rng.normal(1.0, config.timing_noise))
        noise = max(0.9, min(1.1, noise))
        strategy = strategy_factory() if strategy_factory else None
        run = run_once(program, strategy=strategy,
                       iterations=config.iterations,
                       entry_arg=config.entry_arg,
                       sample_interval=interval, noise=noise)
        times.append(run.total_cycles)
        compiles.append(run.compile_cycles)
        runs.append(run)
    return summarize(times), summarize(compiles), runs


def relative(baseline, variant):
    """Performance of *variant* relative to *baseline* as the paper
    plots it (>1 = variant is faster), with a propagated 95% CI."""
    if variant.mean == 0:
        return Summary(float("inf"), 0.0, variant.n, ())
    ratio = baseline.mean / variant.mean
    # First-order error propagation on the ratio of independent means.
    rel_var = 0.0
    if baseline.mean != 0:
        rel_var += (baseline.ci95 / baseline.mean) ** 2
    rel_var += (variant.ci95 / variant.mean) ** 2
    return Summary(ratio, ratio * math.sqrt(rel_var),
                   min(baseline.n, variant.n), ())
