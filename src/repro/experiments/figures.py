"""Generators for every table and figure of the paper's evaluation.

Each function takes an :class:`~repro.experiments.context.
EvaluationContext`, produces the same rows/series the paper reports, and
returns a plain data structure plus a formatted text block.  The
benchmark drivers under ``benchmarks/`` call these one-to-one:

==============  ========================================================
``table4``      Table 4  -- training data-set sizes (merged vs ranked)
``figure6``     Figure 6 -- SPECjvm98 start-up performance
``figure7``     Figure 7 -- SPECjvm98 start-up compilation time
``figure8``     Figure 8 -- DaCapo start-up performance
``figure9``     Figure 9 -- DaCapo start-up compilation time
``figure10``    Figure 10 -- SPECjvm98 throughput performance
``figure11``    Figure 11 -- DaCapo throughput performance
``figure12``    Figure 12 -- SPECjvm98 relative compilation time
``figure13``    Figure 13 -- DaCapo relative compilation time
``kernel_study`` §6 -- linear vs RBF kernel training/prediction times
==============  ========================================================
"""

import time

import numpy as np

from repro.experiments.evaluation import evaluate_suite
from repro.jit.plans import OptLevel
from repro.ml.dataset import Scaling
from repro.ml.ranking import LabelTable, rank_records
from repro.ml.pipeline import merge_record_sets
from repro.ml.svm.linear import LinearSVC
from repro.ml.svm.rbf import KernelSVC

STARTUP_ITERATIONS = 1
THROUGHPUT_ITERATIONS = 10


def _suite_eval(ctx, suite, iterations, honor_loo):
    """Evaluate a whole suite; memoized on the context because pairs of
    figures (performance + compilation time) share one evaluation run."""
    cache = getattr(ctx, "_suite_eval_cache", None)
    if cache is None:
        cache = ctx._suite_eval_cache = {}
    key = (suite, iterations, honor_loo)
    if key in cache:
        return cache[key]
    programs = (ctx.spec_programs() if suite == "specjvm"
                else ctx.dacapo_programs())
    out = evaluate_suite(programs, ctx.model_sets(),
                         iterations=iterations,
                         replications=ctx.replications,
                         master_seed=ctx.master_seed,
                         honor_leave_one_out=honor_loo)
    cache[key] = out
    return out


def _metric_rows(results, metric):
    rows = {}
    for name, res in results.items():
        rows[name] = {}
        for model in res.models():
            if metric == "performance":
                summary = res.relative_performance(model)
            else:
                summary = res.relative_compile_time(model)
            rows[name][model] = (summary.mean, summary.ci95)
    return rows


def _format(title, rows, better):
    lines = [title, f"(relative to baseline; {better})"]
    for name in sorted(rows):
        cells = "  ".join(f"{m}={v[0]:5.3f}±{v[1]:.3f}"
                          for m, v in sorted(rows[name].items()))
        lines.append(f"  {name:12s} {cells}")
    return "\n".join(lines)


def _figure(ctx, suite, iterations, metric, title, better,
            honor_loo=True):
    from repro.experiments.report import ascii_figure
    results = _suite_eval(ctx, suite, iterations, honor_loo)
    rows = _metric_rows(results, metric)
    chart = ascii_figure(rows, title)
    return {"title": title, "rows": rows,
            "text": _format(title, rows, better) + "\n\n" + chart,
            "chart": chart,
            "results": results}


# -- the eight figures ------------------------------------------------------

def figure6(ctx):
    """SPECjvm98 start-up performance (higher bars are better)."""
    return _figure(ctx, "specjvm", STARTUP_ITERATIONS, "performance",
                   "Figure 6: start-up performance, SPECjvm98",
                   "higher is better")


def figure7(ctx):
    """SPECjvm98 start-up compilation time (lower bars are better)."""
    return _figure(ctx, "specjvm", STARTUP_ITERATIONS, "compile",
                   "Figure 7: start-up compilation time, SPECjvm98",
                   "lower is better")


def figure8(ctx):
    """DaCapo start-up performance: the generalization experiment."""
    return _figure(ctx, "dacapo", STARTUP_ITERATIONS, "performance",
                   "Figure 8: start-up performance, DaCapo",
                   "higher is better", honor_loo=False)


def figure9(ctx):
    """DaCapo start-up compilation time."""
    return _figure(ctx, "dacapo", STARTUP_ITERATIONS, "compile",
                   "Figure 9: start-up compilation time, DaCapo",
                   "lower is better", honor_loo=False)


def figure10(ctx):
    """SPECjvm98 throughput performance (10 iterations)."""
    return _figure(ctx, "specjvm", THROUGHPUT_ITERATIONS,
                   "performance",
                   "Figure 10: throughput performance, SPECjvm98",
                   "higher is better")


def figure11(ctx):
    """DaCapo throughput performance (10 iterations)."""
    return _figure(ctx, "dacapo", THROUGHPUT_ITERATIONS, "performance",
                   "Figure 11: throughput performance, DaCapo",
                   "higher is better", honor_loo=False)


def figure12(ctx):
    """SPECjvm98 relative compilation time (throughput mode)."""
    return _figure(ctx, "specjvm", THROUGHPUT_ITERATIONS, "compile",
                   "Figure 12: relative compilation time, SPECjvm98",
                   "lower is better")


def figure13(ctx):
    """DaCapo relative compilation time (throughput mode)."""
    return _figure(ctx, "dacapo", THROUGHPUT_ITERATIONS, "compile",
                   "Figure 13: relative compilation time, DaCapo",
                   "lower is better", honor_loo=False)


# -- Table 4 ---------------------------------------------------------------

def table4(ctx):
    """Training data-set sizes (merged vs ranked) per level."""
    stats = ctx.table4()
    lines = ["Table 4: data-set sizes (merged vs ranked)",
             f"{'level':10s} {'m.inst':>8s} {'m.cls':>8s} "
             f"{'m.fv':>6s} {'m.ratio':>9s} {'t.inst':>7s} "
             f"{'t.cls':>6s} {'t.fv':>6s} {'t.ratio':>8s}"]
    for level, row in stats.items():
        lines.append(
            f"{level.name:10s} {row['merged_instances']:8d} "
            f"{row['merged_classes']:8d} "
            f"{row['merged_feature_vectors']:6d} "
            f"1:{row['merged_ratio']:7.1f} "
            f"{row['training_instances']:7d} "
            f"{row['training_classes']:6d} "
            f"{row['training_feature_vectors']:6d} "
            f"1:{row['training_ratio']:6.2f}")
    return {"stats": stats, "text": "\n".join(lines)}


# -- the §6 kernel-selection study ----------------------------------------

def kernel_study(ctx, level=OptLevel.HOT, prediction_trials=200):
    """Linear vs RBF: training time and prediction latency.

    The paper found RBF trains in ~20% of the linear model's time but
    takes up to 660 ms per prediction versus 48 us for the linear model
    -- four orders of magnitude, disqualifying RBF for use inside a JIT.
    """
    merged = merge_record_sets(ctx.record_sets())
    ranked = rank_records(merged.records, level)
    X_raw = np.array([inst.features for inst in ranked.instances])
    table = LabelTable()
    y = np.array([table.label_for(inst.modifier_bits)
                  for inst in ranked.instances])
    scaling = Scaling.fit(X_raw)
    X = scaling.transform(X_raw)

    started = time.perf_counter()
    linear = LinearSVC(C=10.0).fit(X, y)
    linear_train = time.perf_counter() - started

    started = time.perf_counter()
    rbf = KernelSVC(C=10.0, gamma=0.5).fit(X, y)
    rbf_train = time.perf_counter() - started

    probe = X[0]
    started = time.perf_counter()
    for _ in range(prediction_trials):
        linear.predict(probe)
    linear_predict = (time.perf_counter() - started) / prediction_trials

    rbf_trials = max(10, prediction_trials // 10)
    started = time.perf_counter()
    for _ in range(rbf_trials):
        rbf.predict(probe)
    rbf_predict = (time.perf_counter() - started) / rbf_trials

    out = {
        "instances": len(y),
        "classes": len(set(y.tolist())),
        "linear_train_s": linear_train,
        "rbf_train_s": rbf_train,
        "train_ratio_rbf_over_linear": rbf_train / max(linear_train,
                                                       1e-9),
        "linear_predict_s": linear_predict,
        "rbf_predict_s": rbf_predict,
        "predict_ratio_rbf_over_linear":
            rbf_predict / max(linear_predict, 1e-12),
        "rbf_support_vectors": rbf.support_vector_count(),
    }
    out["text"] = (
        "Kernel study (§6): linear vs RBF\n"
        f"  {out['instances']} instances, {out['classes']} classes\n"
        f"  train:   linear {linear_train:8.3f}s   rbf "
        f"{rbf_train:8.3f}s  (rbf/linear = "
        f"{out['train_ratio_rbf_over_linear']:.2f})\n"
        f"  predict: linear {linear_predict*1e6:8.1f}us  rbf "
        f"{rbf_predict*1e6:8.1f}us  (rbf/linear = "
        f"{out['predict_ratio_rbf_over_linear']:.0f}x)")
    return out
