"""Cold-vs-warm start-up experiment: the AOT win, measured.

The paper's headline figures (6-9) are *start-up* numbers -- the cost of
compiling a workload's hot methods during its first run.  The real J9
VM attacks exactly that with its shared classes cache: a second JVM
invocation loads compiled bodies instead of recompiling them.  This
experiment reproduces that comparison for our persistent code cache:

1. **Cold run** -- a fresh VM executes the workload against an empty
   cache directory; every compilation misses and is stored.
2. **Warm run** -- a *new* VM (a separate "JVM invocation") executes
   the same workload against the now-populated directory; compilations
   hit and install for the relocation cost only.

Both runs use the same program, seed and controller configuration, so
the deltas in start-up time and JIT-thread compilation cycles are
attributable to the cache alone.  Results render in the same ASCII
style as the paper's figures and can be saved under the evaluation
cache's ``results/`` directory, where :func:`repro.experiments.report
.build_report` picks them up.
"""

import dataclasses
import os

from repro.codecache import CodeCache, CodeCacheConfig
from repro.experiments.measure import RunResult, run_once
from repro.jit.control import ControlConfig


@dataclasses.dataclass
class WarmStartResult:
    """Outcome of one cold-vs-warm pair."""

    benchmark: str
    iterations: int
    cold: RunResult
    warm: RunResult
    relocation_cycles: int
    cache_dir: str

    @property
    def startup_speedup(self):
        """Cold / warm total cycles (>1 = warm start is faster)."""
        if self.warm.total_cycles == 0:
            return float("inf")
        return self.cold.total_cycles / self.warm.total_cycles

    @property
    def compile_cycle_reduction(self):
        """Fraction of JIT-thread compile cycles the warm run avoided."""
        if self.cold.compile_cycles == 0:
            return 0.0
        return 1.0 - (self.warm.compile_cycles
                      / self.cold.compile_cycles)

    def render(self):
        cold_s, warm_s = self.cold.cache_stats, self.warm.cache_stats
        lines = [
            f"cold vs warm start-up -- {self.benchmark} "
            f"({self.iterations} iteration(s))",
            f"  cache directory: {self.cache_dir}",
            "",
            f"  {'':14s}{'cold':>16s}{'warm':>16s}",
            f"  {'total cycles':14s}{self.cold.total_cycles:>16,.0f}"
            f"{self.warm.total_cycles:>16,.0f}",
            f"  {'compile cyc':14s}{self.cold.compile_cycles:>16,}"
            f"{self.warm.compile_cycles:>16,}",
            f"  {'compilations':14s}{self.cold.compilations:>16,}"
            f"{self.warm.compilations:>16,}",
            f"  {'cache hits':14s}{cold_s['hits']:>16,}"
            f"{warm_s['hits']:>16,}",
            f"  {'cache stores':14s}{cold_s['stores']:>16,}"
            f"{warm_s['stores']:>16,}",
            "",
            f"  start-up speedup (cold/warm):   "
            f"{self.startup_speedup:6.3f}x",
            f"  compile-cycle reduction:        "
            f"{self.compile_cycle_reduction:6.1%}",
            f"  JIT cycles saved by the cache:  "
            f"{warm_s['cycles_saved']:,} "
            f"(relocation {self.relocation_cycles} cyc/hit)",
        ]
        return "\n".join(lines)


def cold_vs_warm(program, cache_dir, iterations=1, entry_arg=3,
                 control_config=None, max_bytes=None):
    """Run *program* twice against *cache_dir*; returns the pair.

    Each run opens its own :class:`CodeCache` instance, modelling two
    independent VM processes sharing one cache directory.  The cold
    run's result value is checked against the warm run's -- a cached
    body must never change program behavior.
    """
    config = control_config or ControlConfig()

    def cache():
        cfg = CodeCacheConfig(enabled=True, directory=cache_dir)
        if max_bytes is not None:
            cfg.max_bytes = max_bytes
        return CodeCache(cfg)

    cold = run_once(program, iterations=iterations, entry_arg=entry_arg,
                    control_config=config, code_cache=cache())
    warm = run_once(program, iterations=iterations, entry_arg=entry_arg,
                    control_config=config, code_cache=cache())
    if warm.result_value != cold.result_value:
        raise AssertionError(
            f"warm-start run changed the program result: "
            f"{warm.result_value!r} != {cold.result_value!r}")
    return WarmStartResult(
        benchmark=program.name, iterations=iterations, cold=cold,
        warm=warm, relocation_cycles=config.relocation_cycles,
        cache_dir=cache_dir)


def save_result(result, cache_dir):
    """Write the rendered report where build_report collects results."""
    results_dir = os.path.join(cache_dir, "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"warmstart_{result.benchmark}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(result.render() + "\n")
    return path
