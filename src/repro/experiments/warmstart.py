"""Cold-vs-warm start-up experiment: the AOT win, measured.

The paper's headline figures (6-9) are *start-up* numbers -- the cost of
compiling a workload's hot methods during its first run.  The real J9
VM attacks exactly that with its shared classes cache: a second JVM
invocation loads compiled bodies instead of recompiling them, then
recompiles the few that keep getting hotter.  This experiment
reproduces that comparison for our persistent code cache, in three
"JVM invocations" against one cache directory:

1. **Cold run** -- a fresh VM executes the workload against an empty
   cache directory; every compilation misses and is stored, and
   gathered branch profiles are written back into their entries.
2. **Warm run** -- a *new* VM executes the same workload against the
   now-populated directory with the plain (PR-1) policy: compilations
   hit and install for the relocation cost only, level by level.
3. **Warm + profiles run** -- a third VM with the cache-aware tiering
   policy: compile requests install the best cached level directly
   (skipping the COLD/WARM stepping stones) and seed branch
   instrumentation from persisted profiles, so the first scorching
   recompilation is profile-directed without a re-gathering phase --
   the full AOT-then-recompile shape.

All runs use the same program, seed and trigger configuration, so the
deltas in start-up time and JIT-thread compilation cycles are
attributable to the cache policy alone.  Results render in the same
ASCII style as the paper's figures and can be saved under the
evaluation cache's ``results/`` directory, where
:func:`repro.experiments.report.build_report` picks them up.
"""

import dataclasses
import os

from repro.codecache import CodeCache, CodeCacheConfig
from repro.experiments.measure import RunResult, run_once
from repro.jit.control import ControlConfig
from repro.telemetry.tracer import NULL_SPAN


@dataclasses.dataclass
class WarmStartResult:
    """Outcome of one cold/warm/warm-with-profiles triple."""

    benchmark: str
    iterations: int
    cold: RunResult
    warm: RunResult
    relocation_cycles: int
    cache_dir: str
    #: Third run under the cache-aware tiering + profile-seeding
    #: policy; None when the experiment ran cold-vs-warm only.
    warm_profiles: RunResult = None

    @property
    def startup_speedup(self):
        """Cold / warm total cycles (>1 = warm start is faster)."""
        return self._speedup(self.warm)

    @property
    def profile_startup_speedup(self):
        """Cold / warm-with-profiles total cycles (>1 = faster)."""
        if self.warm_profiles is None:
            return None
        return self._speedup(self.warm_profiles)

    def _speedup(self, run):
        if run.total_cycles == 0:
            return float("inf")
        return self.cold.total_cycles / run.total_cycles

    @property
    def compile_cycle_reduction(self):
        """Fraction of JIT-thread compile cycles the warm run avoided."""
        return self._reduction(self.warm)

    @property
    def profile_compile_cycle_reduction(self):
        if self.warm_profiles is None:
            return None
        return self._reduction(self.warm_profiles)

    def _reduction(self, run):
        if self.cold.compile_cycles == 0:
            return 0.0
        return 1.0 - (run.compile_cycles / self.cold.compile_cycles)

    def render(self):
        cold_s, warm_s = self.cold.cache_stats, self.warm.cache_stats
        runs = [("cold", self.cold, cold_s), ("warm", self.warm, warm_s)]
        if self.warm_profiles is not None:
            runs.append(("warm+prof", self.warm_profiles,
                         self.warm_profiles.cache_stats))
        lines = [
            f"cold vs warm start-up -- {self.benchmark} "
            f"({self.iterations} iteration(s))",
            f"  cache directory: {self.cache_dir}",
            "",
            "  " + f"{'':14s}" + "".join(f"{name:>16s}"
                                         for name, _r, _s in runs),
        ]

        def row(label, fmt, value_of):
            cells = "".join(format(value_of(r, s), fmt)
                            for _n, r, s in runs)
            lines.append(f"  {label:14s}{cells}")

        row("total cycles", "16,.0f", lambda r, s: r.total_cycles)
        row("compile cyc", "16,", lambda r, s: r.compile_cycles)
        row("compilations", "16,", lambda r, s: r.compilations)
        row("cache hits", "16,", lambda r, s: s["hits"])
        row("cache stores", "16,", lambda r, s: s["stores"])
        if self.warm_profiles is not None:
            row("tier skips", "16,", lambda r, s: s["tier_skips"])
            row("prof. seeds", "16,", lambda r, s: s["profile_seeds"])
        lines.append("")
        lines.append(f"  start-up speedup (cold/warm):   "
                     f"{self.startup_speedup:6.3f}x")
        if self.warm_profiles is not None:
            lines.append(f"  speedup (cold/warm+profiles):   "
                         f"{self.profile_startup_speedup:6.3f}x")
        lines.append(f"  compile-cycle reduction:        "
                     f"{self.compile_cycle_reduction:6.1%}")
        lines.append(f"  JIT cycles saved by the cache:  "
                     f"{warm_s['cycles_saved']:,} "
                     f"(relocation {self.relocation_cycles} cyc/hit)")
        return "\n".join(lines)


def cold_vs_warm(program, cache_dir, iterations=1, entry_arg=3,
                 control_config=None, max_bytes=None, profiles=True,
                 tracer=None):
    """Run *program* against *cache_dir*; returns the run triple.

    Each run opens its own :class:`CodeCache` instance, modelling
    independent VM processes sharing one cache directory.  The cold
    run's result value is checked against every warm run's -- a cached
    body (or a seeded profile) must never change program behavior.
    With *profiles* False only the cold/warm pair runs (the PR-1
    experiment).

    *tracer*, when given, captures all runs into one trace; each run is
    wrapped in a ``warmstart.<phase>`` span so the cold and warm
    compilation storms are separable in Perfetto.
    """
    config = control_config or ControlConfig()

    def variant(**overrides):
        return dataclasses.replace(config, **overrides)

    def cache():
        cfg = CodeCacheConfig(enabled=True, directory=cache_dir)
        if max_bytes is not None:
            cfg.max_bytes = max_bytes
        return CodeCache(cfg)

    def phase(name, **kwargs):
        span = (tracer.span(f"warmstart.{name}", cat="experiment",
                            benchmark=program.name)
                if tracer is not None else NULL_SPAN)
        with span:
            return run_once(program, iterations=iterations,
                            entry_arg=entry_arg, tracer=tracer,
                            **kwargs)

    # The cold run persists profiles (host-side only: write-backs do
    # not touch the virtual clock) so the third run can seed from them.
    cold = phase("cold", control_config=variant(cache_profiles=profiles),
                 code_cache=cache())
    warm = phase("warm", control_config=config, code_cache=cache())
    if warm.result_value != cold.result_value:
        raise AssertionError(
            f"warm-start run changed the program result: "
            f"{warm.result_value!r} != {cold.result_value!r}")
    warm_profiles = None
    if profiles:
        warm_profiles = phase(
            "warm_profiles",
            control_config=variant(cache_tiering=True,
                                   cache_profiles=True),
            code_cache=cache())
        if warm_profiles.result_value != cold.result_value:
            raise AssertionError(
                f"profile-seeded warm run changed the program result: "
                f"{warm_profiles.result_value!r} != "
                f"{cold.result_value!r}")
    return WarmStartResult(
        benchmark=program.name, iterations=iterations, cold=cold,
        warm=warm, relocation_cycles=config.relocation_cycles,
        cache_dir=cache_dir, warm_profiles=warm_profiles)


def save_result(result, cache_dir):
    """Write the rendered report where build_report collects results."""
    results_dir = os.path.join(cache_dir, "results")
    os.makedirs(results_dir, exist_ok=True)
    path = os.path.join(results_dir, f"warmstart_{result.benchmark}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(result.render() + "\n")
    return path
