"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the paper's workflow:

* ``run``       -- execute a benchmark under the adaptive JIT
* ``trace``     -- run a benchmark under the tracer; write a Chrome
                   trace-event JSON (loads in Perfetto)
* ``stats``     -- run a benchmark; print one unified metrics snapshot
                   (vm + controller + cache counters)
* ``collect``   -- run a data-collection session and write an archive
* ``train``     -- train the leave-one-out model sets from archives
* ``evaluate``  -- learned vs original plans on one benchmark
* ``figures``   -- regenerate a table/figure by name
* ``warmstart`` -- cold-vs-warm start-up against a shared code cache
* ``cache``     -- inspect/maintain a code-cache directory
                   (``stats``, ``verify``, ``prune``)
* ``list``      -- list available benchmarks and transformations

The global ``--log-level`` flag (before the subcommand) configures the
``repro`` logger via :mod:`repro.log`; ``--trace PATH`` on ``run``,
``warmstart`` and ``figures`` exports a Chrome trace of that command.
See ``docs/observability.md``.
"""

import argparse
import contextlib
import os
import sys


def _add_common(parser):
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed (default 0)")
    parser.add_argument("--preset", default=None,
                        choices=["tiny", "quick", "full"],
                        help="scale preset (default: $REPRO_PROFILE "
                             "or 'quick')")


def _context(args):
    from repro.experiments import EvaluationContext
    return EvaluationContext(preset=args.preset,
                             master_seed=args.seed)


def _program(name, seed):
    from repro.workloads import (DACAPO_BENCHMARKS, SPECJVM_BENCHMARKS,
                                 dacapo_program, specjvm_program)
    if name in SPECJVM_BENCHMARKS:
        return specjvm_program(name, master_seed=seed)
    if name in DACAPO_BENCHMARKS:
        return dacapo_program(name, master_seed=seed)
    raise SystemExit(f"unknown benchmark {name!r}")


@contextlib.contextmanager
def _traced(path, capacity=1 << 20):
    """Scope a recording tracer; export Chrome JSON to *path* on exit.

    Yields None (and traces nothing) when *path* is None, so callers
    thread an optional ``--trace`` flag without branching.
    """
    if path is None:
        yield None
        return
    from repro import telemetry
    from repro.telemetry.chrome import write_chrome_trace
    sink = telemetry.RingBufferSink(capacity=capacity)
    tracer = telemetry.Tracer(sink=sink)
    with telemetry.tracing(tracer):
        yield tracer
    count = write_chrome_trace(tracer.events(), path)
    note = (f" ({sink.dropped:,} older events dropped; raise the "
            f"buffer capacity)" if sink.dropped else "")
    print(f"trace: {count:,} events -> {path}{note}")


def cmd_list(args):
    """List benchmarks and the 58 transformations."""
    from repro.jit.opt.registry import transform_names
    from repro.workloads import DACAPO_BENCHMARKS, SPECJVM_BENCHMARKS
    print("SPECjvm98-like:", ", ".join(sorted(SPECJVM_BENCHMARKS)))
    print("DaCapo-like:   ", ", ".join(sorted(DACAPO_BENCHMARKS)))
    print(f"\n{len(transform_names())} controllable transformations:")
    for i, name in enumerate(transform_names()):
        print(f"  {i:2d}  {name}")


def _build_run(args, cache_dir=None, cache_readonly=False,
               interpret_only=False):
    """A loaded VM (+ manager, + cache) per the run-style CLI flags."""
    import os
    from repro.codecache import CodeCacheConfig
    from repro.jit.compiler import JitCompiler
    from repro.jit.control import CompilationManager, ControlConfig
    program = _program(args.benchmark, args.seed)
    from repro.jvm.vm import VirtualMachine
    vm = VirtualMachine()
    vm.load_program(program)
    manager = None
    code_cache = None
    if not interpret_only:
        if cache_dir:
            if cache_readonly and not os.path.isdir(cache_dir):
                raise SystemExit(
                    f"--cache-readonly: no such cache directory: "
                    f"{cache_dir}")
            code_cache = CodeCacheConfig(
                enabled=True, directory=cache_dir,
                read_only=cache_readonly).open()
        control = ControlConfig(
            cache_tiering=getattr(args, "cache_tiering", False),
            cache_profiles=getattr(args, "cache_profiles", False))
        manager = CompilationManager(
            JitCompiler(method_resolver=vm._methods.get),
            config=control, code_cache=code_cache)
        vm.attach_manager(manager)
    return program, vm, manager, code_cache


def cmd_run(args):
    """Run one benchmark under the adaptive JIT."""
    if (args.cache_tiering or args.cache_profiles) \
            and not args.cache_dir:
        raise SystemExit("--cache-tiering/--cache-profiles require "
                         "--cache-dir")
    with _traced(args.trace):
        program, vm, manager, code_cache = _build_run(
            args, cache_dir=args.cache_dir,
            cache_readonly=args.cache_readonly,
            interpret_only=args.interpret_only)
        result = None
        for _ in range(args.iterations):
            result = vm.call(program.entry, 3)
    print(f"{args.benchmark}: result {result}, "
          f"{vm.clock.now():,} cycles, "
          f"{vm.stats['invocations']:,} invocations")
    if manager is not None:
        print(f"{manager.compilations()} compilations, "
              f"{manager.total_compile_cycles:,} compile cycles")
    if code_cache is not None:
        print("code cache:")
        print(code_cache.stats.render(indent="  "))


def cmd_trace(args):
    """Trace one adaptive run; write Chrome trace-event JSON.

    Unless ``--no-cache`` (or an explicit ``--cache-dir``) says
    otherwise, the run compiles against a throwaway code cache so the
    trace shows all three instrumented layers at once: optimizer
    passes, the compilation lifecycle, and cache probes/stores.
    """
    import tempfile
    from repro import telemetry
    from repro.telemetry.chrome import summarize_events, \
        to_chrome_events, write_chrome_trace
    sink = telemetry.RingBufferSink(capacity=args.buffer)
    tracer = telemetry.Tracer(sink=sink)
    cache_dir = args.cache_dir
    tmp = None
    if cache_dir is None and not args.no_cache:
        tmp = tempfile.TemporaryDirectory(prefix="repro-trace-")
        cache_dir = tmp.name
    try:
        with telemetry.tracing(tracer):
            program, vm, manager, _cache = _build_run(
                args, cache_dir=cache_dir)
            with tracer.span("run", cat="experiment",
                             benchmark=args.benchmark,
                             iterations=args.iterations):
                result = None
                for _ in range(args.iterations):
                    result = vm.call(program.entry, 3)
    finally:
        if tmp is not None:
            tmp.cleanup()
    events = to_chrome_events(tracer.events())
    write_chrome_trace(tracer.events(), args.output)
    summary = summarize_events(events)
    print(f"{args.benchmark}: result {result}, "
          f"{vm.clock.now():,} cycles")
    print(f"{summary['events']:,} events -> {args.output} "
          f"(open in https://ui.perfetto.dev)")
    if sink.dropped:
        print(f"warning: ring buffer dropped {sink.dropped:,} oldest "
              f"events; re-run with a larger --buffer")
    cats = ", ".join(f"{cat}={n:,}" for cat, n
                     in sorted(summary["by_category"].items()))
    print(f"by category: {cats}")
    print("hottest spans (host time):")
    for row in summary["hottest_spans"]:
        print(f"  {row['total_us']:>12,.1f}us  "
              f"[{row['cat']}] {row['name']}")


def cmd_stats(args):
    """Run a benchmark; print one unified metrics snapshot."""
    from repro.telemetry import MetricsRegistry, standard_registry
    program, vm, _manager, _cache = _build_run(
        args, cache_dir=args.cache_dir,
        interpret_only=args.interpret_only)
    registry = standard_registry(vm=vm)
    result = None
    prev = None
    for _ in range(args.iterations):
        prev = registry.snapshot() if args.diff_last else None
        result = vm.call(program.entry, 3)
    print(f"{args.benchmark}: result {result} "
          f"({args.iterations} iteration(s))")
    snapshot = registry.snapshot()
    if args.diff_last:
        snapshot = MetricsRegistry.diff(prev, snapshot)
        print("(counter deltas for the final iteration only)")
    print(MetricsRegistry.render(snapshot))


def cmd_collect(args):
    """Run a data-collection session; write an archive."""
    from repro.collect.archive import write_archive
    from repro.collect.session import CollectionSession
    ctx = _context(args)
    program = _program(args.benchmark, args.seed)
    session = CollectionSession(program, ctx.collection_config(),
                                master_seed=args.seed)
    records = session.run()
    if session.crashed:
        raise SystemExit("session crashed; no archive written")
    size = write_archive(args.output, records)
    print(f"{len(records)} records -> {args.output} ({size:,} bytes)")


def cmd_train(args):
    """Train (or load) the five leave-one-out model sets."""
    ctx = _context(args)
    model_sets = ctx.model_sets()
    for name, model_set in sorted(model_sets.items()):
        print(f"{name}: excludes {model_set.excluded}, levels "
              f"{[lv.name for lv in model_set.models]}")
    print(f"models cached under {ctx.cache_dir}")


def cmd_evaluate(args):
    """Compare learned vs original plans on a benchmark."""
    from repro.experiments.evaluation import evaluate_benchmark
    ctx = _context(args)
    program = _program(args.benchmark, args.seed)
    result = evaluate_benchmark(
        program, ctx.model_sets(), iterations=args.iterations,
        replications=ctx.replications, master_seed=args.seed)
    print(f"{args.benchmark} ({args.iterations} iteration(s), "
          f"relative to baseline):")
    for model in result.models():
        perf = result.relative_performance(model)
        comp = result.relative_compile_time(model)
        print(f"  {model}: performance {perf.mean:5.3f}±{perf.ci95:.3f}"
              f"  compile time {comp.mean:5.3f}")


def cmd_figures(args):
    """Regenerate a named table/figure."""
    from repro.experiments import figures as F
    ctx = _context(args)
    known = {"table4": F.table4, "kernels": F.kernel_study}
    for n in range(6, 14):
        known[f"figure{n}"] = getattr(F, f"figure{n}")
    if args.name not in known:
        raise SystemExit(f"unknown figure {args.name!r}; choose from "
                         f"{sorted(known)}")
    with _traced(args.trace):
        print(known[args.name](ctx)["text"])


def cmd_warmstart(args):
    """Cold-vs-warm start-up experiment against a shared cache."""
    import tempfile
    from repro.experiments.warmstart import cold_vs_warm, save_result
    program = _program(args.benchmark, args.seed)
    cache_dir = args.cache_dir
    tmp = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-codecache-")
        cache_dir = tmp.name
    try:
        with _traced(args.trace) as tracer:
            result = cold_vs_warm(program, cache_dir,
                                  iterations=args.iterations,
                                  profiles=not args.no_profiles,
                                  tracer=tracer)
        print(result.render())
        if args.save:
            ctx = _context(args)
            path = save_result(result, ctx.cache_dir)
            print(f"\nsaved report section -> {path}")
    finally:
        if tmp is not None:
            tmp.cleanup()


def _open_cache(directory):
    from repro.codecache import CodeCache, CodeCacheConfig
    import os
    if not os.path.isdir(directory):
        raise SystemExit(f"no such cache directory: {directory}")
    return CodeCache(CodeCacheConfig(enabled=True, directory=directory))


def cmd_cache_stats(args):
    """Summarize a cache directory's contents."""
    cache = _open_cache(args.dir)
    total = cache.total_bytes()
    print(f"{args.dir}: {len(cache)} entries, {total:,} bytes "
          f"(cap {cache.config.max_bytes:,})")
    by_level = {}
    compressed = raw = profiles = 0
    ok, bad = cache.verify()
    for _entry, meta in ok:
        by_level[meta["level"].name] = \
            by_level.get(meta["level"].name, 0) + 1
        compressed += meta["bytes_compressed"]
        raw += meta["bytes_raw"]
        profiles += 1 if meta["has_profile"] else 0
    for name in sorted(by_level):
        print(f"  {name.lower():10s} {by_level[name]:6d} entries")
    if ok:
        ratio = compressed / raw if raw else 0.0
        print(f"  payload bytes: {compressed:,} compressed / "
              f"{raw:,} raw ({ratio:.0%} of raw)")
        print(f"  entries with profiles: {profiles}")
    if bad:
        print(f"  {len(bad)} corrupt entries (run `repro cache prune`)")


def cmd_cache_verify(args):
    """Deserialize-check every entry; list corrupt ones."""
    cache = _open_cache(args.dir)
    ok, bad = cache.verify()
    print(f"{len(ok)} entries ok, {len(bad)} corrupt")
    for entry, reason in bad:
        print(f"  BAD {entry.name}: {reason}")
    return 1 if bad else 0


def cmd_cache_prune(args):
    """Drop corrupt entries and LRU-evict down to a byte cap."""
    cache = _open_cache(args.dir)
    corrupt, evicted = cache.prune(max_bytes=args.max_bytes)
    print(f"removed {corrupt} corrupt, evicted {evicted}; "
          f"{len(cache)} entries, {cache.total_bytes():,} bytes remain")


def cmd_bench(args):
    """Host-perf benchmark of the dispatch engines."""
    import json
    from repro.experiments.hostperf import check_regression, render, \
        run_bench, save_json
    result = run_bench(quick=args.quick, master_seed=args.seed)
    print(render(result))
    path = save_json(result, args.output)
    print(f"\nwrote {path}")
    if args.check_against:
        with open(args.check_against, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        failures = check_regression(result, baseline)
        if failures:
            for line in failures:
                print(f"REGRESSION: {line}")
            return 1
        print(f"no regression vs {args.check_against}")
    return 0


def cmd_report(args):
    """Assemble saved benchmark results into markdown."""
    from repro.experiments.report import build_report
    ctx = _context(args)
    print(build_report(ctx.cache_dir, preset_name=ctx.preset_name,
                       master_seed=ctx.master_seed))


def main(argv=None):
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Using Machines to Learn "
                    "Method-Specific Compilation Strategies' "
                    "(CGO 2011)")
    parser.add_argument("--log-level", default=None,
                        help="logging level for the repro logger "
                             "(debug/info/warning/error; default "
                             "$REPRO_LOG_LEVEL or warning)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="benchmarks and transformations")
    p.set_defaults(fn=cmd_list)

    p = sub.add_parser("run", help="run a benchmark under the JIT")
    p.add_argument("benchmark")
    p.add_argument("--iterations", type=int, default=1)
    p.add_argument("--interpret-only", action="store_true")
    p.add_argument("--cache-dir", default=None,
                   help="persistent code-cache directory (warm start)")
    p.add_argument("--cache-readonly", action="store_true",
                   help="probe the cache but never store/evict")
    p.add_argument("--cache-tiering", action="store_true",
                   help="install the best cached level directly, "
                        "skipping cold/warm stepping stones")
    p.add_argument("--cache-profiles", action="store_true",
                   help="persist branch profiles with cached bodies "
                        "and seed instrumentation from them")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="export a Chrome trace of the run to PATH")
    _add_common(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("trace",
                       help="trace a run; write Chrome trace-event "
                            "JSON for Perfetto")
    p.add_argument("benchmark")
    p.add_argument("-o", "--output", default="trace.json",
                   help="output path (default trace.json)")
    p.add_argument("--iterations", type=int, default=1)
    p.add_argument("--cache-dir", default=None,
                   help="code-cache directory to run against "
                        "(default: throwaway temp dir)")
    p.add_argument("--no-cache", action="store_true",
                   help="run without any code cache (no cache spans)")
    p.add_argument("--buffer", type=int, default=1 << 20,
                   help="ring-buffer capacity in events "
                        "(default ~1M)")
    _add_common(p)
    p.set_defaults(fn=cmd_trace)

    p = sub.add_parser("stats",
                       help="run a benchmark; print one unified "
                            "vm/jit/cache counter snapshot")
    p.add_argument("benchmark")
    p.add_argument("--iterations", type=int, default=1)
    p.add_argument("--interpret-only", action="store_true")
    p.add_argument("--cache-dir", default=None,
                   help="code-cache directory to run against")
    p.add_argument("--diff-last", action="store_true",
                   help="print only the final iteration's deltas "
                        "(steady-state view)")
    _add_common(p)
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser("warmstart",
                       help="cold vs warm start-up via the code cache")
    p.add_argument("benchmark")
    p.add_argument("--iterations", type=int, default=1)
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default: fresh temp dir)")
    p.add_argument("--no-profiles", action="store_true",
                   help="skip the warm+profiles column (PR-1 "
                        "cold-vs-warm pair only)")
    p.add_argument("--save", action="store_true",
                   help="save the report section under the evaluation "
                        "cache's results/ directory")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="export a Chrome trace of all runs to PATH")
    _add_common(p)
    p.set_defaults(fn=cmd_warmstart)

    p = sub.add_parser("cache",
                       help="inspect/maintain a code-cache directory")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    c = cache_sub.add_parser("stats", help="entry counts and sizes")
    c.add_argument("--dir", required=True)
    c.set_defaults(fn=cmd_cache_stats)
    c = cache_sub.add_parser("verify",
                             help="decode-check every entry")
    c.add_argument("--dir", required=True)
    c.set_defaults(fn=cmd_cache_verify)
    c = cache_sub.add_parser("prune",
                             help="drop corrupt entries, evict to cap")
    c.add_argument("--dir", required=True)
    c.add_argument("--max-bytes", type=int, default=None)
    c.set_defaults(fn=cmd_cache_prune)

    p = sub.add_parser("collect", help="run a collection session")
    p.add_argument("benchmark")
    p.add_argument("--output", default="collection.trca")
    _add_common(p)
    p.set_defaults(fn=cmd_collect)

    p = sub.add_parser("train", help="train the leave-one-out models")
    _add_common(p)
    p.set_defaults(fn=cmd_train)

    p = sub.add_parser("evaluate",
                       help="learned vs original plans")
    p.add_argument("benchmark")
    p.add_argument("--iterations", type=int, default=1)
    _add_common(p)
    p.set_defaults(fn=cmd_evaluate)

    p = sub.add_parser("figures", help="regenerate a table/figure")
    p.add_argument("name", help="table4, figure6..figure13, kernels")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="export a Chrome trace of the figure's runs "
                        "to PATH")
    _add_common(p)
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser("bench",
                       help="host wall-clock benchmark of the "
                            "dispatch engines")
    p.add_argument("--quick", action="store_true",
                   help="one workload, fewer guest iterations "
                        "(CI smoke)")
    p.add_argument("--output", default="BENCH_hostperf.json",
                   help="result JSON path (default "
                        "BENCH_hostperf.json)")
    p.add_argument("--check-against", default=None,
                   help="baseline JSON; exit 1 if the interpreter "
                        "or superop speedup ratios regress more "
                        "than 25%%")
    p.add_argument("--seed", type=int, default=0,
                   help="master seed (default 0)")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser("report",
                       help="assemble saved results into markdown")
    _add_common(p)
    p.set_defaults(fn=cmd_report)

    # Accept --log-level after the subcommand too (`repro run x
    # --log-level debug`); SUPPRESS keeps a before-the-subcommand value
    # from being clobbered by the subparser's default.
    for sp in list(sub.choices.values()) + list(cache_sub.choices.values()):
        sp.add_argument("--log-level", dest="log_level",
                        default=argparse.SUPPRESS, help=argparse.SUPPRESS)

    args = parser.parse_args(argv)
    from repro.log import configure
    configure(args.log_level)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # stdout went away (e.g. piped into `head`); exit quietly like
        # a well-behaved unix tool instead of tracebacking.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
