"""Command-line interface: ``python -m repro <command>``.

Subcommands mirror the paper's workflow:

* ``run``       -- execute a benchmark under the adaptive JIT
* ``collect``   -- run a data-collection session and write an archive
* ``train``     -- train the leave-one-out model sets from archives
* ``evaluate``  -- learned vs original plans on one benchmark
* ``figures``   -- regenerate a table/figure by name
* ``warmstart`` -- cold-vs-warm start-up against a shared code cache
* ``cache``     -- inspect/maintain a code-cache directory
                   (``stats``, ``verify``, ``prune``)
* ``list``      -- list available benchmarks and transformations
"""

import argparse
import sys


def _add_common(parser):
    parser.add_argument("--seed", type=int, default=0,
                        help="master seed (default 0)")
    parser.add_argument("--preset", default=None,
                        choices=["tiny", "quick", "full"],
                        help="scale preset (default: $REPRO_PROFILE "
                             "or 'quick')")


def _context(args):
    from repro.experiments import EvaluationContext
    return EvaluationContext(preset=args.preset,
                             master_seed=args.seed)


def _program(name, seed):
    from repro.workloads import (DACAPO_BENCHMARKS, SPECJVM_BENCHMARKS,
                                 dacapo_program, specjvm_program)
    if name in SPECJVM_BENCHMARKS:
        return specjvm_program(name, master_seed=seed)
    if name in DACAPO_BENCHMARKS:
        return dacapo_program(name, master_seed=seed)
    raise SystemExit(f"unknown benchmark {name!r}")


def cmd_list(args):
    """List benchmarks and the 58 transformations."""
    from repro.jit.opt.registry import transform_names
    from repro.workloads import DACAPO_BENCHMARKS, SPECJVM_BENCHMARKS
    print("SPECjvm98-like:", ", ".join(sorted(SPECJVM_BENCHMARKS)))
    print("DaCapo-like:   ", ", ".join(sorted(DACAPO_BENCHMARKS)))
    print(f"\n{len(transform_names())} controllable transformations:")
    for i, name in enumerate(transform_names()):
        print(f"  {i:2d}  {name}")


def cmd_run(args):
    """Run one benchmark under the adaptive JIT."""
    import os
    from repro.codecache import CodeCacheConfig
    from repro.jit.compiler import JitCompiler
    from repro.jit.control import CompilationManager, ControlConfig
    from repro.jvm.vm import VirtualMachine
    if (args.cache_tiering or args.cache_profiles) \
            and not args.cache_dir:
        raise SystemExit("--cache-tiering/--cache-profiles require "
                         "--cache-dir")
    program = _program(args.benchmark, args.seed)
    vm = VirtualMachine()
    vm.load_program(program)
    manager = None
    code_cache = None
    if not args.interpret_only:
        if args.cache_dir:
            if args.cache_readonly \
                    and not os.path.isdir(args.cache_dir):
                raise SystemExit(
                    f"--cache-readonly: no such cache directory: "
                    f"{args.cache_dir}")
            code_cache = CodeCacheConfig(
                enabled=True, directory=args.cache_dir,
                read_only=args.cache_readonly).open()
        control = ControlConfig(cache_tiering=args.cache_tiering,
                                cache_profiles=args.cache_profiles)
        manager = CompilationManager(
            JitCompiler(method_resolver=vm._methods.get),
            config=control, code_cache=code_cache)
        vm.attach_manager(manager)
    result = None
    for _ in range(args.iterations):
        result = vm.call(program.entry, 3)
    print(f"{args.benchmark}: result {result}, "
          f"{vm.clock.now():,} cycles, "
          f"{vm.stats['invocations']:,} invocations")
    if manager is not None:
        print(f"{manager.compilations()} compilations, "
              f"{manager.total_compile_cycles:,} compile cycles")
    if code_cache is not None:
        print("code cache:")
        print(code_cache.stats.render(indent="  "))


def cmd_collect(args):
    """Run a data-collection session; write an archive."""
    from repro.collect.archive import write_archive
    from repro.collect.session import CollectionSession
    ctx = _context(args)
    program = _program(args.benchmark, args.seed)
    session = CollectionSession(program, ctx.collection_config(),
                                master_seed=args.seed)
    records = session.run()
    if session.crashed:
        raise SystemExit("session crashed; no archive written")
    size = write_archive(args.output, records)
    print(f"{len(records)} records -> {args.output} ({size:,} bytes)")


def cmd_train(args):
    """Train (or load) the five leave-one-out model sets."""
    ctx = _context(args)
    model_sets = ctx.model_sets()
    for name, model_set in sorted(model_sets.items()):
        print(f"{name}: excludes {model_set.excluded}, levels "
              f"{[lv.name for lv in model_set.models]}")
    print(f"models cached under {ctx.cache_dir}")


def cmd_evaluate(args):
    """Compare learned vs original plans on a benchmark."""
    from repro.experiments.evaluation import evaluate_benchmark
    ctx = _context(args)
    program = _program(args.benchmark, args.seed)
    result = evaluate_benchmark(
        program, ctx.model_sets(), iterations=args.iterations,
        replications=ctx.replications, master_seed=args.seed)
    print(f"{args.benchmark} ({args.iterations} iteration(s), "
          f"relative to baseline):")
    for model in result.models():
        perf = result.relative_performance(model)
        comp = result.relative_compile_time(model)
        print(f"  {model}: performance {perf.mean:5.3f}±{perf.ci95:.3f}"
              f"  compile time {comp.mean:5.3f}")


def cmd_figures(args):
    """Regenerate a named table/figure."""
    from repro.experiments import figures as F
    ctx = _context(args)
    known = {"table4": F.table4, "kernels": F.kernel_study}
    for n in range(6, 14):
        known[f"figure{n}"] = getattr(F, f"figure{n}")
    if args.name not in known:
        raise SystemExit(f"unknown figure {args.name!r}; choose from "
                         f"{sorted(known)}")
    print(known[args.name](ctx)["text"])


def cmd_warmstart(args):
    """Cold-vs-warm start-up experiment against a shared cache."""
    import tempfile
    from repro.experiments.warmstart import cold_vs_warm, save_result
    program = _program(args.benchmark, args.seed)
    cache_dir = args.cache_dir
    tmp = None
    if cache_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-codecache-")
        cache_dir = tmp.name
    try:
        result = cold_vs_warm(program, cache_dir,
                              iterations=args.iterations,
                              profiles=not args.no_profiles)
        print(result.render())
        if args.save:
            ctx = _context(args)
            path = save_result(result, ctx.cache_dir)
            print(f"\nsaved report section -> {path}")
    finally:
        if tmp is not None:
            tmp.cleanup()


def _open_cache(directory):
    from repro.codecache import CodeCache, CodeCacheConfig
    import os
    if not os.path.isdir(directory):
        raise SystemExit(f"no such cache directory: {directory}")
    return CodeCache(CodeCacheConfig(enabled=True, directory=directory))


def cmd_cache_stats(args):
    """Summarize a cache directory's contents."""
    cache = _open_cache(args.dir)
    total = cache.total_bytes()
    print(f"{args.dir}: {len(cache)} entries, {total:,} bytes "
          f"(cap {cache.config.max_bytes:,})")
    by_level = {}
    ok, bad = cache.verify()
    for _entry, meta in ok:
        by_level[meta["level"].name] = \
            by_level.get(meta["level"].name, 0) + 1
    for name in sorted(by_level):
        print(f"  {name.lower():10s} {by_level[name]:6d} entries")
    if bad:
        print(f"  {len(bad)} corrupt entries (run `repro cache prune`)")


def cmd_cache_verify(args):
    """Deserialize-check every entry; list corrupt ones."""
    cache = _open_cache(args.dir)
    ok, bad = cache.verify()
    print(f"{len(ok)} entries ok, {len(bad)} corrupt")
    for entry, reason in bad:
        print(f"  BAD {entry.name}: {reason}")
    return 1 if bad else 0


def cmd_cache_prune(args):
    """Drop corrupt entries and LRU-evict down to a byte cap."""
    cache = _open_cache(args.dir)
    corrupt, evicted = cache.prune(max_bytes=args.max_bytes)
    print(f"removed {corrupt} corrupt, evicted {evicted}; "
          f"{len(cache)} entries, {cache.total_bytes():,} bytes remain")


def cmd_bench(args):
    """Host-perf benchmark of the dispatch engines."""
    import json
    from repro.experiments.hostperf import check_regression, render, \
        run_bench, save_json
    result = run_bench(quick=args.quick, master_seed=args.seed)
    print(render(result))
    path = save_json(result, args.output)
    print(f"\nwrote {path}")
    if args.check_against:
        with open(args.check_against, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        failures = check_regression(result, baseline)
        if failures:
            for line in failures:
                print(f"REGRESSION: {line}")
            return 1
        print(f"no regression vs {args.check_against}")
    return 0


def cmd_report(args):
    """Assemble saved benchmark results into markdown."""
    from repro.experiments.report import build_report
    ctx = _context(args)
    print(build_report(ctx.cache_dir, preset_name=ctx.preset_name,
                       master_seed=ctx.master_seed))


def main(argv=None):
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Using Machines to Learn "
                    "Method-Specific Compilation Strategies' "
                    "(CGO 2011)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("list", help="benchmarks and transformations")
    p.set_defaults(fn=cmd_list)

    p = sub.add_parser("run", help="run a benchmark under the JIT")
    p.add_argument("benchmark")
    p.add_argument("--iterations", type=int, default=1)
    p.add_argument("--interpret-only", action="store_true")
    p.add_argument("--cache-dir", default=None,
                   help="persistent code-cache directory (warm start)")
    p.add_argument("--cache-readonly", action="store_true",
                   help="probe the cache but never store/evict")
    p.add_argument("--cache-tiering", action="store_true",
                   help="install the best cached level directly, "
                        "skipping cold/warm stepping stones")
    p.add_argument("--cache-profiles", action="store_true",
                   help="persist branch profiles with cached bodies "
                        "and seed instrumentation from them")
    _add_common(p)
    p.set_defaults(fn=cmd_run)

    p = sub.add_parser("warmstart",
                       help="cold vs warm start-up via the code cache")
    p.add_argument("benchmark")
    p.add_argument("--iterations", type=int, default=1)
    p.add_argument("--cache-dir", default=None,
                   help="cache directory (default: fresh temp dir)")
    p.add_argument("--no-profiles", action="store_true",
                   help="skip the warm+profiles column (PR-1 "
                        "cold-vs-warm pair only)")
    p.add_argument("--save", action="store_true",
                   help="save the report section under the evaluation "
                        "cache's results/ directory")
    _add_common(p)
    p.set_defaults(fn=cmd_warmstart)

    p = sub.add_parser("cache",
                       help="inspect/maintain a code-cache directory")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    c = cache_sub.add_parser("stats", help="entry counts and sizes")
    c.add_argument("--dir", required=True)
    c.set_defaults(fn=cmd_cache_stats)
    c = cache_sub.add_parser("verify",
                             help="decode-check every entry")
    c.add_argument("--dir", required=True)
    c.set_defaults(fn=cmd_cache_verify)
    c = cache_sub.add_parser("prune",
                             help="drop corrupt entries, evict to cap")
    c.add_argument("--dir", required=True)
    c.add_argument("--max-bytes", type=int, default=None)
    c.set_defaults(fn=cmd_cache_prune)

    p = sub.add_parser("collect", help="run a collection session")
    p.add_argument("benchmark")
    p.add_argument("--output", default="collection.trca")
    _add_common(p)
    p.set_defaults(fn=cmd_collect)

    p = sub.add_parser("train", help="train the leave-one-out models")
    _add_common(p)
    p.set_defaults(fn=cmd_train)

    p = sub.add_parser("evaluate",
                       help="learned vs original plans")
    p.add_argument("benchmark")
    p.add_argument("--iterations", type=int, default=1)
    _add_common(p)
    p.set_defaults(fn=cmd_evaluate)

    p = sub.add_parser("figures", help="regenerate a table/figure")
    p.add_argument("name", help="table4, figure6..figure13, kernels")
    _add_common(p)
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser("bench",
                       help="host wall-clock benchmark of the "
                            "dispatch engines")
    p.add_argument("--quick", action="store_true",
                   help="one workload, fewer guest iterations "
                        "(CI smoke)")
    p.add_argument("--output", default="BENCH_hostperf.json",
                   help="result JSON path (default "
                        "BENCH_hostperf.json)")
    p.add_argument("--check-against", default=None,
                   help="baseline JSON; exit 1 if the interpreter "
                        "speedup regresses more than 25%%")
    p.add_argument("--seed", type=int, default=0,
                   help="master seed (default 0)")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser("report",
                       help="assemble saved results into markdown")
    _add_common(p)
    p.set_defaults(fn=cmd_report)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
