"""Deterministic named random streams.

All stochastic behaviour in the library (program generation, modifier
generation, simulated TSC drift, thread migration, sampling jitter) draws
from named ``numpy.random.Generator`` streams derived from a single master
seed.  Two runs with the same master seed are bit-identical.

Usage::

    streams = RngStreams(master_seed=42)
    gen = streams.get("workload:compress")
    gen2 = streams.get("modifiers:cold")

Streams with different names are statistically independent (seeded via
``numpy.random.SeedSequence.spawn`` keyed on a stable hash of the name), and
requesting the same name twice returns the *same* generator object.
"""

import hashlib

import numpy as np


def _name_to_entropy(name):
    """Map a stream name to a stable 128-bit integer."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:16], "big")


class RngStreams:
    """A factory of independent, named, reproducible random generators."""

    def __init__(self, master_seed=0):
        self.master_seed = int(master_seed)
        self._streams = {}

    def get(self, name):
        """Return the generator for *name*, creating it on first use."""
        if name not in self._streams:
            seq = np.random.SeedSequence(
                entropy=self.master_seed, spawn_key=(_name_to_entropy(name),)
            )
            self._streams[name] = np.random.Generator(np.random.PCG64(seq))
        return self._streams[name]

    def fork(self, salt):
        """Return a new :class:`RngStreams` whose master seed mixes in *salt*.

        Useful for per-replication reseeding: ``streams.fork(run_index)``.
        """
        mixed = hashlib.sha256(
            f"{self.master_seed}:{salt}".encode("utf-8")
        ).digest()
        return RngStreams(master_seed=int.from_bytes(mixed[:8], "big"))


def default_streams():
    """The library-wide default stream factory (master seed 0)."""
    return RngStreams(master_seed=0)
