"""Central logging setup for the ``repro`` package.

Library modules obtain their logger through :func:`get_logger` and
never configure handlers themselves (no ``logging.basicConfig`` -- a
library that calls it hijacks the embedding application's logging).
Entry points -- the CLI, experiment drivers -- call :func:`configure`
exactly once, honoring the ``--log-level`` flag or the
``REPRO_LOG_LEVEL`` environment variable.
"""

import logging
import os

#: The package root logger every repro logger hangs off.
ROOT = "repro"

#: Environment override consulted when configure() gets no level.
ENV_VAR = "REPRO_LOG_LEVEL"

_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"


def get_logger(name=None):
    """The logger for component *name* (``repro.<name>``).

    ``get_logger()`` returns the package root logger; components pass
    their short name, e.g. ``get_logger("codecache")``.
    """
    if not name:
        return logging.getLogger(ROOT)
    if name.startswith(ROOT + ".") or name == ROOT:
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT}.{name}")


def parse_level(level):
    """A logging level from a name ('debug'), number or None."""
    if level is None:
        return logging.WARNING
    if isinstance(level, int):
        return level
    parsed = logging.getLevelName(str(level).upper())
    if not isinstance(parsed, int):
        raise ValueError(f"unknown log level {level!r}")
    return parsed


def configure(level=None, stream=None):
    """Attach one stream handler to the ``repro`` root logger.

    Idempotent: repeated calls adjust the level but never stack
    handlers.  *level* defaults to ``$REPRO_LOG_LEVEL`` or WARNING.
    Returns the configured root logger.
    """
    if level is None:
        level = os.environ.get(ENV_VAR)
    resolved = parse_level(level)
    root = logging.getLogger(ROOT)
    root.setLevel(resolved)
    handler = next((h for h in root.handlers
                    if getattr(h, "_repro_handler", False)), None)
    if handler is None:
        handler = logging.StreamHandler(stream)
        handler._repro_handler = True
        handler.setFormatter(logging.Formatter(_FORMAT))
        root.addHandler(handler)
    elif stream is not None:
        # setStream flushes the outgoing stream first; if the embedding
        # application (or test harness) already closed it, swap without
        # touching it.
        if getattr(handler.stream, "closed", False):
            handler.stream = stream
        else:
            handler.setStream(stream)
    # Our handler presents repro records; don't duplicate them through
    # whatever handlers the embedding application installed on the
    # logging root.
    root.propagate = False
    return root
