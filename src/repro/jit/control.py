"""Adaptive compilation control (the paper's Compilation Control box).

Decides *when* to compile or recompile each method and at which level,
from invocation counters plus timer-sampling ticks.  Per the paper's
footnote 6, every level has three distinct triggers -- methods without
loops, methods likely to have loops, and methods with many-iteration
loops -- with loopy methods compiled sooner.  The trigger values
``T_h`` are also the normalizer of the ranking function (Eq. 2).

Compilations run on an asynchronous JIT thread modelled in virtual time:
the compiled body installs at ``max(now, jit_free) + compile_cycles``,
until which the method keeps running in its previous tier.  A small
synchronous request overhead and a configurable contention factor charge
the application thread for sharing the machine with the compiler.
"""

import dataclasses

from repro.jit.plans import OptLevel
from repro.telemetry import get_tracer

#: Loop character classes (index into trigger tuples).
NO_LOOPS, HAS_LOOPS, MANY_ITER = 0, 1, 2


@dataclasses.dataclass
class ControlConfig:
    """Tunables of the adaptive controller.

    Trigger values are invocation-equivalents, scaled down from J9's
    thousands to keep simulated workloads tractable; their *ratios*
    (levels 𝗑 loop classes) follow the production shape.
    """

    triggers: dict = None
    #: Hotness contributed by one sampling tick, in invocation units.
    sample_weight: float = 25.0
    #: Cycles charged synchronously for issuing a compile request.
    request_overhead: int = 400
    #: Fraction of compile cycles charged to the application thread
    #: (cache/memory-bandwidth contention with the JIT thread).
    contention: float = 0.18
    #: Highest level the controller will escalate to.
    max_level: OptLevel = OptLevel.SCORCHING
    #: JIT-thread cycles charged to install a body loaded from the
    #: persistent code cache -- the AOT load-and-relocate cost, far
    #: below any real compilation (compare LOWER_COST_PER_NODE alone).
    relocation_cycles: int = 500
    #: Install compiled code immediately instead of modelling the
    #: asynchronous JIT thread (used by the data-collection mode, where
    #: throughput of experiments matters and timing is measured per
    #: invocation, not end to end).
    immediate_install: bool = False
    #: Cache-aware tiering (off by default): a compile request may
    #: install a cached body of a *higher* level directly, skipping the
    #: COLD/WARM stepping stones -- J9's AOT-then-recompile shape.  With
    #: a cold or absent cache this is a no-op: probes live outside the
    #: virtual clock, so decisions and cycle counts are untouched.
    cache_tiering: bool = False
    #: Profile persistence (off by default): gathered branch profiles
    #: are written back into the entry of the body that collected them,
    #: and warm hits seed live instrumentation from persisted profiles,
    #: so the first scorching recompilation is profile-directed without
    #: a full re-gathering phase.
    cache_profiles: bool = False
    #: Host-tier hook: bodies compiled at this level or above are fused
    #: into superop programs at install time (host-only work, zero
    #: virtual cycles; see :mod:`repro.jit.codegen.superop`).  COLD/WARM
    #: bodies run a handful of times and are not worth the fusion cost.
    superop_level: OptLevel = OptLevel.HOT

    def __post_init__(self):
        if self.triggers is None:
            # Cold compilation is invocation-count driven; upgrades to
            # higher levels need sustained hotness (sampling evidence),
            # so their triggers sit much higher -- most methods live and
            # die at cold/warm, a few key ones climb (paper §1).
            # Cold is a brief stepping stone: like Testarossa (whose
            # default initial compile level is warm), most methods are
            # (re)compiled at warm soon after they prove themselves.
            self.triggers = {
                OptLevel.COLD: (12, 6, 3),
                OptLevel.WARM: (26, 13, 7),
                OptLevel.HOT: (520, 260, 130),
                OptLevel.VERY_HOT: (1900, 950, 480),
                OptLevel.SCORCHING: (5600, 2800, 1400),
            }

    def trigger(self, level, loop_class):
        return self.triggers[level][loop_class]


def loop_class_of(method, features=None):
    """Classify a method's loop character for trigger selection."""
    from repro.features.vector import feature_index
    if features is not None:
        if features[feature_index("may_have_many_iteration_loops")] > 0 \
                or features[feature_index("many_iteration_loops")] > 0:
            return MANY_ITER
        if features[feature_index("may_have_loops")] > 0:
            return HAS_LOOPS
        return NO_LOOPS
    return HAS_LOOPS if method.has_backward_branch() else NO_LOOPS


class _MethodState:
    __slots__ = ("level", "active", "pending", "samples", "loop_class",
                 "compile_count", "disabled")

    def __init__(self):
        self.level = None        # OptLevel of the active version
        self.active = None       # installed CompiledMethod
        self.pending = None      # CompiledMethod awaiting install_time
        self.samples = 0
        self.loop_class = None
        self.compile_count = 0
        self.disabled = False    # no further recompilation


@dataclasses.dataclass
class CompileRecord:
    """One compilation event (feeds the compilation-time figures)."""

    signature: str
    level: OptLevel
    modifier: object
    compile_cycles: int
    requested_at: int
    installed_at: int


class CompilationManager:
    """The VM-facing controller: counts, samples, escalates, installs."""

    def __init__(self, compiler, strategy=None, config=None,
                 code_cache=None):
        self.compiler = compiler
        self.strategy = strategy
        self.config = config or ControlConfig()
        #: Optional persistent :class:`repro.codecache.CodeCache`.
        #: None (the default) leaves every code path untouched.
        self.code_cache = code_cache
        self.vm = None
        self.states = {}
        self.records = []
        self.jit_free = 0
        self.total_compile_cycles = 0
        self._model_digest = None  # lazily computed once per run
        # Propagate the host-tier threshold onto the compiler, which
        # owns the superop install point.
        if hasattr(compiler, "superop_level"):
            compiler.superop_level = self.config.superop_level

    # -- VM protocol ---------------------------------------------------------

    def on_attach(self, vm):
        self.vm = vm

    def on_invoke(self, method, count):
        state = self._state(method)
        if state.disabled:
            return
        self._install_if_due(state)
        if state.pending is not None:
            return
        hotness = count + state.samples * self.config.sample_weight
        target = self._target_level(state, hotness)
        if target is None:
            return
        current = -1 if state.level is None else int(state.level)
        if int(target) > current:
            self._request_compile(method, state, target)

    def on_sample(self, method):
        state = self._state(method)
        state.samples += 1

    def on_return(self, method, compiled):
        """Hook for instrumented subclasses; default: nothing."""

    def compiled_for(self, method, now):
        state = self.states.get(method.signature)
        if state is None:
            return None
        self._install_if_due(state)
        return state.active

    # -- internals ----------------------------------------------------------

    def _state(self, method):
        state = self.states.get(method.signature)
        if state is None:
            state = _MethodState()
            state.loop_class = loop_class_of(method)
            self.states[method.signature] = state
        return state

    def _install_if_due(self, state):
        if state.pending is not None \
                and self.vm.clock.now() >= state.pending.install_time:
            previous = state.level
            state.active = state.pending
            state.level = state.pending.level
            state.pending = None
            tracer = get_tracer()
            if tracer.enabled:
                tracer.instant(
                    "jit.tier_transition", cat="control",
                    method=state.active.method.signature,
                    from_level=(previous.name if previous is not None
                                else "INTERP"),
                    to_level=state.level.name)
            if state.level is OptLevel.VERY_HOT:
                # Arm the lightweight branch instrumentation: if this
                # method keeps heating up, the scorching recompilation
                # consumes the profile (feedback-directed optimization,
                # the instrumentation paper §8.1 says conflicts with
                # data collection).  A warm-started body may carry the
                # profile persisted with its cache entry: seed the
                # instrumentation from it, so the scorching
                # recompilation is profile-directed even before this
                # run re-gathers anything.
                seed = None
                if self.config.cache_profiles:
                    seed = state.active.persisted_profile
                if seed:
                    state.active.profile = dict(seed)
                    if self.code_cache is not None:
                        self.code_cache.stats.profile_seeds += 1
                else:
                    state.active.profile = {}

    def _target_level(self, state, hotness):
        """Highest level whose trigger this hotness reaches."""
        best = None
        for level in OptLevel:
            if level > self.config.max_level:
                break
            if hotness >= self.config.trigger(level, state.loop_class):
                best = level
        return best

    def _request_compile(self, method, state, level):
        vm = self.vm
        now = vm.clock.now()
        vm.clock.advance(self.config.request_overhead)
        with get_tracer().span("jit.request", cat="control",
                               method=method.signature,
                               level=level.name,
                               attempt=state.compile_count) as span:
            # Consulting a learned model costs real time on the
            # application thread (the linear-kernel prediction latency,
            # paper §6).
            prediction_cost = getattr(self.strategy,
                                      "prediction_cost_cycles", 0)
            if self.strategy is not None and prediction_cost:
                vm.clock.advance(prediction_cost)
            compiled = self.compile_method(method, level, state)
            if compiled is None:
                state.disabled = True
                span.set(outcome="disabled")
                return
            # Refine the loop classification now that features exist.
            state.loop_class = loop_class_of(method, compiled.features)
            if self.config.immediate_install:
                install = now
            else:
                install = max(now, self.jit_free) \
                    + compiled.compile_cycles
                self.jit_free = install
            compiled.install_time = install
            state.pending = compiled
            state.compile_count += 1
            self.total_compile_cycles += compiled.compile_cycles
            if self.config.contention > 0:
                vm.clock.advance(
                    int(compiled.compile_cycles * self.config.contention))
            self.records.append(CompileRecord(
                method.signature, compiled.level, compiled.modifier,
                compiled.compile_cycles, now, install))
            span.set(outcome="queued",
                     installed_level=compiled.level.name,
                     compile_cycles=compiled.compile_cycles,
                     install_at=install)
        self._install_if_due(state)

    def _strategy_digest(self):
        """Model-set digest for cache keying, computed once per run."""
        if self._model_digest is None:
            from repro.codecache.fingerprint import strategy_digest
            self._model_digest = strategy_digest(self.strategy)
        return self._model_digest

    def compile_method(self, method, level, state):
        """Run the actual compilation; overridable by the collection
        controller.  Returning None permanently disables compilation of
        the method (the graceful bail-out path).

        When a persistent code cache is attached, the cache is probed
        first: a hit installs the cached body for the (small)
        ``relocation_cycles`` of the control config instead of paying
        the full compilation, mirroring AOT load-and-relocate.  With
        ``cache_tiering`` enabled the probe walks *down* from the
        controller's maximum level, so a warm start installs the best
        persisted body directly instead of re-climbing through the
        COLD/WARM stepping stones -- J9's AOT-then-recompile behavior.

        Bodies compiled from a gathered branch profile are never
        *loaded* from the cache -- the profile-directed recompilation
        must consume this run's (possibly seeded) profile -- but with
        ``cache_profiles`` enabled the gathered profile is written back
        into the entry of the body that collected it, so later runs can
        seed their instrumentation from it.
        """
        profile = None
        if level is OptLevel.SCORCHING and state.active is not None:
            profile = state.active.profile
        cache = self.code_cache
        if cache is None or profile:
            if profile and cache is not None \
                    and self.config.cache_profiles:
                self._persist_profile(state, profile)
            return self.compiler.compile(method, level,
                                         strategy=self.strategy,
                                         profile=profile)
        resolver = self.compiler.method_resolver
        digest = self._strategy_digest()
        candidates = [level]
        if self.config.cache_tiering:
            candidates = [lv for lv in reversed(list(OptLevel))
                          if level < lv <= self.config.max_level]
            candidates.append(level)
        modifier = None
        for candidate in candidates:
            modifier = self.compiler.choose_modifier(method, candidate,
                                                     self.strategy)
            cached = cache.load(
                method, candidate, modifier, resolver=resolver,
                relocation_cycles=self.config.relocation_cycles,
                model_digest=digest)
            if cached is not None:
                if candidate > level:
                    cache.stats.tier_skips += 1
                    tracer = get_tracer()
                    if tracer.enabled:
                        tracer.instant(
                            "jit.tier_skip", cat="control",
                            method=method.signature,
                            requested=level.name,
                            installed=candidate.name)
                return cached
        compiled = self.compiler.compile(method, level,
                                         modifier=modifier,
                                         profile=profile)
        if compiled is not None:
            cache.store(compiled, resolver=resolver,
                        model_digest=digest)
        return compiled

    def _persist_profile(self, state, profile):
        """Write the gathered profile back to its collector's entry.

        Only bodies compiled *this run* are written back: a body loaded
        from the cache carries the relocation cost in
        ``compile_cycles`` (re-storing it would corrupt the
        cycles-saved accounting), and its entry already holds the
        profile it was seeded from.
        """
        active = state.active
        if active is None or active.persisted_profile is not None:
            return
        self.code_cache.store(
            active, resolver=self.compiler.method_resolver,
            model_digest=self._strategy_digest(), profile=profile)

    # -- reporting ---------------------------------------------------------

    def compile_time_total(self):
        return self.total_compile_cycles

    def compilations(self):
        return len(self.records)

    def queue_depth(self):
        """Compilations queued on the virtual JIT thread right now
        (pending bodies whose install time has not yet passed)."""
        return sum(1 for s in self.states.values()
                   if s.pending is not None)
