"""Whole-method dataflow transformations (5 of the 58).

The global propagation passes exploit *single-definition* slots (a slot
stored exactly once in the whole method -- very common after the IL
generator's anchoring and the local passes' temp introduction), for which
dominance of the definition makes substitution sound everywhere the value
is read.
"""

from repro.jit.ir.tree import ILOp, Node
from repro.jit.opt.base import Pass


def _all_defs(il):
    """slot -> list of (block, index, treetop) definitions."""
    defs = {}
    for block in il.blocks:
        for i, tt in enumerate(block.treetops):
            if tt.op is ILOp.STORE:
                defs.setdefault(tt.value, []).append((block, i, tt))
            elif tt.op is ILOp.INC:
                defs.setdefault(tt.value[0], []).append((block, i, tt))
    return defs


def _replace_loads_global(il, cfg, slot, make_replacement, def_block,
                          def_index):
    """Replace every load of a single-def *slot* whose position is
    dominated by the definition."""
    changes = 0
    for block in il.blocks:
        if block is def_block:
            treetops = block.treetops[def_index + 1:]
        elif cfg.dominates(def_block.bid, block.bid):
            treetops = block.treetops
        else:
            continue
        for tt in treetops:
            for child in tt.children:
                for node in child.walk():
                    if node.op is ILOp.LOAD and node.value == slot:
                        replacement = make_replacement(node)
                        if replacement is not None:
                            node.replace_with(replacement)
                            changes += 1
    return changes


class GlobalConstantPropagation(Pass):
    """Propagate constants from single-definition slots to every
    dominated load."""

    name = "globalConstantPropagation"
    cost_factor = 1.4

    def run(self, ctx):
        il = ctx.il
        cfg = ctx.cfg()
        defs = _all_defs(il)
        changes = 0
        for slot, dlist in defs.items():
            if len(dlist) != 1:
                continue
            block, index, tt = dlist[0]
            if tt.op is not ILOp.STORE:
                continue
            rhs = tt.children[0]
            if not rhs.is_const():
                continue
            const = rhs

            def make(node, const=const):
                if node.type == const.type:
                    return const.copy()
                return None

            changes += _replace_loads_global(il, cfg, slot, make,
                                             block, index)
        return changes > 0


class GlobalCopyPropagation(Pass):
    """Propagate ``s1 = arg`` copies when s1 is single-definition and the
    source is an argument that is never written (so its value is the same
    at the copy and at every load)."""

    name = "globalCopyPropagation"
    cost_factor = 1.4

    def run(self, ctx):
        il = ctx.il
        cfg = ctx.cfg()
        defs = _all_defs(il)
        changes = 0
        for slot, dlist in defs.items():
            if len(dlist) != 1:
                continue
            block, index, tt = dlist[0]
            if tt.op is not ILOp.STORE:
                continue
            rhs = tt.children[0]
            if rhs.op is not ILOp.LOAD or rhs.value == slot:
                continue
            src = rhs.value
            if not (src < il.method.num_args and src not in defs):
                continue  # only never-written arguments are stable

            def make(node, rhs=rhs):
                if node.type == rhs.type:
                    return rhs.copy()
                return None

            changes += _replace_loads_global(il, cfg, slot, make,
                                             block, index)
        return changes > 0


class GlobalCSE(Pass):
    """Dominator-based commoning of pure expressions whose operand slots
    are provably *value-stable*: arguments that are never written, or
    slots with a single definition that executes at most once (its block
    has loop depth zero) and dominates the expression's first occurrence.
    Under those conditions the expression evaluates to the same value at
    every dominated occurrence."""

    name = "globalCSE"
    cost_factor = 2.0
    min_size = 3

    def run(self, ctx):
        il = ctx.il
        cfg = ctx.cfg()
        defs = _all_defs(il)
        args_never_written = {
            s for s in range(il.method.num_args) if s not in defs}
        once_defs = {}
        for s, dlist in defs.items():
            if len(dlist) == 1:
                block, i, tt = dlist[0]
                if tt.op is ILOp.STORE \
                        and cfg.loop_depth.get(block.bid, 1) == 0:
                    once_defs[s] = (block.bid, i)

        def stable_at(slot, f_bid, f_i):
            if slot in args_never_written:
                return True
            d = once_defs.get(slot)
            if d is None:
                return False
            d_bid, d_i = d
            if d_bid == f_bid:
                return d_i < f_i
            return cfg.dominates(d_bid, f_bid)

        index = il.block_index()
        first = {}
        occurrences = {}
        for bid in cfg.rpo:
            block = index.get(bid)
            if block is None:
                continue
            for i, tt in enumerate(block.treetops):
                for child in tt.children:
                    for node in child.walk():
                        if not self._eligible(node):
                            continue
                        key = node.key()
                        occurrences.setdefault(key, []).append(
                            (bid, i, node))
                        if key not in first:
                            first[key] = (bid, i, node)
        changed = False
        for key, occ in occurrences.items():
            if len(occ) < 2:
                continue
            f_bid, f_i, f_node = first[key]
            if not all(stable_at(s, f_bid, f_i)
                       for s in f_node.loads_used()):
                continue
            dominated = [
                (bid, i, node) for bid, i, node in occ
                if node is not f_node
                and (cfg.dominates(f_bid, bid) if bid != f_bid
                     else i >= f_i)]
            if not dominated:
                continue
            # Guard against nested occurrences already rewritten.
            if f_node.op is ILOp.LOAD:
                continue
            temp = il.new_temp()
            store = Node(ILOp.STORE, f_node.type, (f_node.copy(),), temp)
            load = Node.load(temp, f_node.type)
            f_node.replace_with(load)
            for _bid, _i, node in dominated:
                if node.op is not ILOp.LOAD:  # skip nodes inside f_node
                    node.replace_with(load.copy())
            index[f_bid].treetops.insert(f_i, store)
            changed = True
        return changed

    def _eligible(self, node):
        if node.count_nodes() < self.min_size:
            return False
        return node.is_pure(allow_loads=True)


class GlobalDeadStoreElimination(Pass):
    """Liveness-based removal of stores to slots that are never loaded
    again on any path.  Conservative around exception handlers: any block
    covered by a handler keeps all its stores."""

    name = "globalDeadStoreElimination"
    cost_factor = 1.6

    def run(self, ctx):
        il = ctx.il
        cfg = ctx.cfg()
        # live_in[b] = slots whose value may be read before redefinition.
        use, defb = {}, {}
        for block in il.blocks:
            u, d = set(), set()
            for tt in block.treetops:
                read = set()
                for child in tt.children:
                    child.loads_used(read)
                if tt.op is ILOp.INC:
                    read.add(tt.value[0])
                u |= read - d
                if tt.op is ILOp.STORE:
                    d.add(tt.value)
            use[block.bid], defb[block.bid] = u, d
        live_in = {b.bid: set() for b in il.blocks}
        changed_lv = True
        while changed_lv:
            changed_lv = False
            for block in reversed(il.blocks):
                out = set()
                for s in cfg.succs.get(block.bid, ()):
                    out |= live_in.get(s, set())
                new_in = use[block.bid] | (out - defb[block.bid])
                if new_in != live_in[block.bid]:
                    live_in[block.bid] = new_in
                    changed_lv = True

        changed = False
        for block in il.blocks:
            if il.handlers_covering(block.bid):
                continue
            out = set()
            for s in cfg.succs.get(block.bid, ()):
                out |= live_in.get(s, set())
            live = set(out)
            kept = []
            for tt in reversed(block.treetops):
                if tt.op is ILOp.STORE:
                    slot = tt.value
                    rhs = tt.children[0]
                    if slot not in live and rhs.is_pure(allow_loads=True) \
                            and not rhs.can_throw():
                        changed = True
                        continue
                    live.discard(slot)
                read = set()
                for child in tt.children:
                    child.loads_used(read)
                if tt.op is ILOp.INC:
                    read.add(tt.value[0])
                live |= read
                kept.append(tt)
            kept.reverse()
            block.treetops[:] = kept
        return changed


class GlobalDCE(Pass):
    """Remove stores to compiler temps that are never loaded anywhere in
    the method (keeping impure right-hand sides as bare treetops)."""

    name = "globalDCE"
    cost_factor = 1.2

    def run(self, ctx):
        il = ctx.il
        loaded = set()
        inced = set()
        for _b, tt in il.iter_treetops():
            for child in tt.children:
                child.loads_used(loaded)
            if tt.op is ILOp.INC:
                inced.add(tt.value[0])
        changed = False
        first_temp = il.method.max_locals
        for block in il.blocks:
            new = []
            for tt in block.treetops:
                if tt.op is ILOp.STORE and tt.value >= first_temp \
                        and tt.value not in loaded \
                        and tt.value not in inced:
                    rhs = tt.children[0]
                    if rhs.is_pure(allow_loads=True) \
                            and not rhs.can_throw():
                        changed = True
                        continue
                    if rhs.op in (ILOp.CALL, ILOp.NEW, ILOp.NEWARRAY,
                                  ILOp.NEWMULTIARRAY, ILOp.GETFIELD,
                                  ILOp.ALOAD, ILOp.ARRAYLENGTH,
                                  ILOp.ARRAYCMP, ILOp.CATCH):
                        # Keep the effects, drop the store.
                        tt.replace_with(Node(ILOp.TREETOP, tt.type,
                                             (rhs,)))
                        changed = True
                new.append(tt)
            block.treetops[:] = new
        return changed
