"""Check- and object-related transformations (8 of the 58).

Removing a NULLCHK or BNDCHK treetop never changes observable behaviour in
this system: the native memory operations re-validate and raise the same
guest exception (the analogue of the hardware trap).  The passes therefore
only have to prove *redundancy* to harvest their cycles.

Escape analysis is an enabling pass: it computes which allocations never
escape the frame and records them in ``il.notes``; stack allocation and
monitor elision consume that information (and do nothing if escape
analysis was disabled by the plan modifier -- a real inter-pass dependence
the learning process can discover).
"""

from repro.jit.ir.tree import ILOp, Node
from repro.jit.opt.base import Pass

#: Dereferencing ops: successful execution proves the ref was non-null.
_DEREFS = frozenset({ILOp.GETFIELD, ILOp.ALOAD, ILOp.ARRAYLENGTH,
                     ILOp.MONITORENTER, ILOp.MONITOREXIT})


def _slots_stored(tt):
    if tt.op is ILOp.STORE:
        return (tt.value,)
    if tt.op is ILOp.INC:
        return (tt.value[0],)
    return ()


class NullCheckElimination(Pass):
    """Remove NULLCHKs of slots already proven non-null -- by an earlier
    check, a dereference, or a store of a fresh allocation -- within the
    block, and across blocks for never-written slots via dominators."""

    name = "nullCheckElimination"
    cost_factor = 1.0
    requires = ("has_checks",)

    def run(self, ctx):
        il = ctx.il
        cfg = ctx.cfg()
        defs = {}
        for _b, tt in il.iter_treetops():
            for s in _slots_stored(tt):
                defs[s] = defs.get(s, 0) + 1
        never_written = {s for s in range(il.num_locals)
                         if defs.get(s, 0) == 0}

        # Blocks that prove a never-written slot non-null (for dominators).
        proves = {b.bid: set() for b in il.blocks}
        for block in il.blocks:
            for tt in block.treetops:
                slot = self._proved_slot(tt)
                if slot is not None and slot in never_written:
                    proves[block.bid].add(slot)

        changed = False
        for block in il.blocks:
            known = set()
            for dom in cfg.dominators_of(block.bid):
                if dom != block.bid:
                    known |= proves.get(dom, set())
            kept = []
            for tt in block.treetops:
                if tt.op is ILOp.NULLCHK \
                        and tt.children[0].op is ILOp.LOAD \
                        and tt.children[0].value in known:
                    changed = True
                    continue
                slot = self._proved_slot(tt)
                if slot is not None:
                    known.add(slot)
                rhs_nonnull = False
                if tt.op is ILOp.STORE:
                    rhs = tt.children[0]
                    rhs_nonnull = (self._rhs_nonnull(tt)
                                   or (rhs.op is ILOp.LOAD
                                       and rhs.value in known))
                for s in _slots_stored(tt):
                    known.discard(s)
                if rhs_nonnull:
                    known.add(tt.value)
                kept.append(tt)
            block.treetops[:] = kept
        return changed

    @staticmethod
    def _proved_slot(tt):
        """Slot proven non-null by successfully executing *tt*."""
        if tt.op is ILOp.NULLCHK and tt.children[0].op is ILOp.LOAD:
            return tt.children[0].value
        for node in tt.walk():
            if node.op in _DEREFS and node.children \
                    and node.children[0].op is ILOp.LOAD:
                return node.children[0].value
        return None

    @staticmethod
    def _rhs_nonnull(tt):
        rhs = tt.children[0]
        return rhs.op in (ILOp.NEW, ILOp.NEWARRAY, ILOp.NEWMULTIARRAY)


class BoundsCheckElimination(Pass):
    """Remove BNDCHKs proven redundant by an identical dominating or
    preceding check (array lengths are immutable, so a check stays valid
    until the ref or index slots are redefined); a constant-index check
    also subsumes smaller constant indices on the same array."""

    name = "boundsCheckElimination"
    cost_factor = 1.2
    requires = ("has_arrays",)

    def run(self, ctx):
        il = ctx.il
        changed = False
        for block in il.blocks:
            valid = {}   # key -> True for exact checks
            consts = {}  # ref key -> max constant index proven
            kept = []
            for tt in block.treetops:
                if tt.op is ILOp.BNDCHK:
                    ref, idx = tt.children
                    if ref.is_pure(allow_loads=True) \
                            and idx.is_pure(allow_loads=True):
                        key = (ref.key(), idx.key())
                        rkey = ref.key()
                        if key in valid:
                            changed = True
                            continue
                        if idx.is_const() and isinstance(idx.value, int):
                            if consts.get(rkey, -1) >= idx.value >= 0:
                                changed = True
                                continue
                            consts[rkey] = max(consts.get(rkey, -1),
                                               idx.value)
                        valid[key] = True
                stored = _slots_stored(tt)
                if stored:
                    stored = set(stored)

                    def uses(keypair):
                        used = set()
                        for part in keypair:
                            _collect_key_loads(part, used)
                        return used

                    valid = {k: v for k, v in valid.items()
                             if not (uses(k) & stored)}
                    consts = {rk: v for rk, v in consts.items()
                              if not (_key_loads(rk) & stored)}
                kept.append(tt)
            block.treetops[:] = kept
        return changed


def _collect_key_loads(key, out):
    """Extract the local slots referenced by a Node.key() tuple."""
    op, _jt, value, children = key
    if op == int(ILOp.LOAD):
        out.add(value)
    for c in children:
        _collect_key_loads(c, out)


def _key_loads(key):
    out = set()
    _collect_key_loads(key, out)
    return out


class CheckcastElimination(Pass):
    """Remove CHECKCASTs already satisfied: duplicates of an earlier cast
    of the same slot to the same class, or casts of a slot holding a
    freshly allocated object of exactly that class."""

    name = "checkcastElimination"
    cost_factor = 0.8
    requires = ("has_checks",)

    def run(self, ctx):
        changed = False
        for block in ctx.il.blocks:
            proven = {}  # slot -> set of class names proven
            kept = []
            for tt in block.treetops:
                if tt.op is ILOp.CHECKCAST \
                        and tt.children[0].op is ILOp.LOAD:
                    slot = tt.children[0].value
                    cls = tt.value
                    if cls in proven.get(slot, ()):
                        changed = True
                        continue
                    proven.setdefault(slot, set()).add(cls)
                    kept.append(tt)
                    continue
                incoming = None
                if tt.op is ILOp.STORE:
                    rhs = tt.children[0]
                    if rhs.op is ILOp.NEW:
                        incoming = {rhs.value}
                    elif rhs.op is ILOp.LOAD:
                        incoming = set(proven.get(rhs.value, ()))
                for s in _slots_stored(tt):
                    proven.pop(s, None)
                if incoming:
                    proven[tt.value] = incoming
                kept.append(tt)
            block.treetops[:] = kept
        return changed


class InstanceofSimplification(Pass):
    """Fold ``instanceof`` on a slot known to hold a freshly allocated
    object of exactly the tested class."""

    name = "instanceofSimplification"
    cost_factor = 0.8

    def applicable(self, ctx):
        return any(n.op is ILOp.INSTANCEOF
                   for _b, t in ctx.il.iter_treetops()
                   for n in t.walk())

    def run(self, ctx):
        from repro.jvm.bytecode import JType
        changed = False
        for block in ctx.il.blocks:
            fresh = {}  # slot -> class name
            for tt in block.treetops:
                for child in tt.children:
                    for node in child.walk():
                        if node.op is ILOp.INSTANCEOF \
                                and node.children[0].op is ILOp.LOAD:
                            slot = node.children[0].value
                            if fresh.get(slot) == node.value:
                                node.replace_with(
                                    Node.const(JType.INT, 1))
                                changed = True
                incoming = None
                if tt.op is ILOp.STORE:
                    rhs = tt.children[0]
                    if rhs.op is ILOp.NEW:
                        incoming = rhs.value
                    elif rhs.op is ILOp.LOAD:
                        incoming = fresh.get(rhs.value)
                for s in _slots_stored(tt):
                    fresh.pop(s, None)
                if incoming is not None:
                    fresh[tt.value] = incoming
        return changed


class EscapeAnalysis(Pass):
    """Compute the set of allocations that never escape the frame.

    An allocation escapes when any alias of it is passed to a call,
    returned, thrown, stored into a field or an array element, or copied
    into another object.  Results are recorded in ``il.notes`` for the
    stackAllocation and monitorElision transformations."""

    name = "escapeAnalysis"
    cost_factor = 2.2
    requires = ("has_allocations",)

    def run(self, ctx):
        il = ctx.il
        allocations = []  # (alloc node, initial slot)
        for _b, tt in il.iter_treetops():
            if tt.op is ILOp.STORE and tt.children[0].op in (
                    ILOp.NEW, ILOp.NEWARRAY):
                allocations.append((tt.children[0], tt.value))
        if not allocations:
            return False

        # Alias closure: slot -> slots its value flows to via copies.
        copies = {}
        for _b, tt in il.iter_treetops():
            if tt.op is ILOp.STORE and tt.children[0].op is ILOp.LOAD:
                copies.setdefault(tt.children[0].value, set()).add(
                    tt.value)

        def alias_set(slot):
            out = {slot}
            work = [slot]
            while work:
                cur = work.pop()
                for nxt in copies.get(cur, ()):
                    if nxt not in out:
                        out.add(nxt)
                        work.append(nxt)
            return out

        escaping_slots = self._escaping_slots(il)

        stack_ids = set()
        nonescaping_slots = set()
        escaping_alias_union = set()
        for alloc, slot in allocations:
            aliases = alias_set(slot)
            if aliases & escaping_slots:
                escaping_alias_union |= aliases
            else:
                stack_ids.add(id(alloc))
                nonescaping_slots |= aliases
        nonescaping_slots -= escaping_alias_union
        il.notes["stack_alloc_candidates"] = stack_ids
        il.notes["nonescaping_slots"] = nonescaping_slots
        return True

    @staticmethod
    def _escaping_slots(il):
        escaping = set()
        for _b, tt in il.iter_treetops():
            for node in tt.walk():
                if node.op is ILOp.CALL:
                    for arg in node.children:
                        if arg.op is ILOp.LOAD:
                            escaping.add(arg.value)
            if tt.op is ILOp.RETURN and tt.children \
                    and tt.children[0].op is ILOp.LOAD:
                escaping.add(tt.children[0].value)
            elif tt.op is ILOp.ATHROW \
                    and tt.children[0].op is ILOp.LOAD:
                escaping.add(tt.children[0].value)
            elif tt.op is ILOp.PUTFIELD \
                    and tt.children[1].op is ILOp.LOAD:
                escaping.add(tt.children[1].value)
            elif tt.op is ILOp.ASTORE \
                    and tt.children[2].op is ILOp.LOAD:
                escaping.add(tt.children[2].value)
            elif tt.op is ILOp.ARRAYCOPY:
                for child in tt.children:
                    if child.op is ILOp.LOAD:
                        escaping.add(child.value)
        return escaping


class StackAllocation(Pass):
    """Allocate non-escaping objects on the stack: the code generator
    emits the cheap allocation form (no GC pressure) for allocations
    flagged by escape analysis."""

    name = "stackAllocation"
    cost_factor = 0.4
    requires = ("has_allocations",)

    def run(self, ctx):
        il = ctx.il
        candidates = il.notes.get("stack_alloc_candidates")
        if not candidates:
            return False
        flagged = il.notes.setdefault("codegen_stack_alloc", set())
        before = len(flagged)
        flagged |= candidates
        return len(flagged) > before


class MonitorElision(Pass):
    """Remove synchronization on objects that never escape the frame (no
    other thread can ever contend on them)."""

    name = "monitorElision"
    cost_factor = 0.8
    requires = ("has_monitors",)

    def run(self, ctx):
        il = ctx.il
        safe = il.notes.get("nonescaping_slots")
        if not safe:
            return False
        changed = False
        for block in il.blocks:
            kept = []
            for tt in block.treetops:
                if tt.op in (ILOp.MONITORENTER, ILOp.MONITOREXIT) \
                        and tt.children[0].op is ILOp.LOAD \
                        and tt.children[0].value in safe:
                    changed = True
                    continue
                kept.append(tt)
            block.treetops[:] = kept
        return changed


class ExceptionDirectedOptimization(Pass):
    """Resolve throws whose handler is known at compile time: an ATHROW
    of a freshly allocated exception whose innermost matching handler is
    in the same method becomes a direct branch (THROWTO), skipping the
    expensive unwind machinery."""

    name = "exceptionDirectedOptimization"
    cost_factor = 1.2
    reshapes_cfg = True
    requires = ("has_throws", "has_handlers")

    def run(self, ctx):
        il = ctx.il
        changed = False
        for block in il.blocks:
            term = block.terminator
            if term is None or term.op is not ILOp.ATHROW:
                continue
            ref = term.children[0]
            if ref.op is not ILOp.LOAD:
                continue
            cls = self._fresh_class(block, ref.value)
            if cls is None:
                continue
            target = None
            for h in il.handlers:
                if block.bid in h.covered and h.matches(cls):
                    target = h.handler_bid
                    break
            if target is None:
                continue
            term.replace_with(Node(ILOp.THROWTO, children=(),
                                   value=(target, cls)))
            changed = True
        return changed

    @staticmethod
    def _fresh_class(block, slot):
        """Class of the NEW assigned to *slot* in this block with no
        intervening redefinition before the terminator."""
        cls = None
        for tt in block.treetops[:-1]:
            if tt.op is ILOp.STORE and tt.value == slot:
                cls = tt.children[0].value \
                    if tt.children[0].op is ILOp.NEW else None
            elif tt.op is ILOp.INC and tt.value[0] == slot:
                cls = None
        return cls


CHECK_PASSES = (
    NullCheckElimination(),
    BoundsCheckElimination(),
    CheckcastElimination(),
    InstanceofSimplification(),
    EscapeAnalysis(),
    StackAllocation(),
    MonitorElision(),
    ExceptionDirectedOptimization(),
)
