"""Compiler introspection: pass tracing and CFG dumps.

Debugging a plan (or understanding what a learned modifier actually
changed) needs visibility into the optimizer.  :class:`TracingManager`
wraps the pass manager and records, per plan entry, whether it ran, what
it did to the IL size, and what it cost; ``cfg_to_dot`` renders a
method's control-flow graph in Graphviz format.
"""

import dataclasses

from repro.jit.opt.base import PassContext
from repro.jit.opt.registry import transform_by_name, transform_index


@dataclasses.dataclass
class PassTraceEntry:
    """What one plan entry did."""

    name: str
    ran: bool               # False when masked by the modifier
    applicable: bool        # method-characteristic gate
    changed: bool
    nodes_before: int
    nodes_after: int
    blocks_before: int
    blocks_after: int
    cost: int

    @property
    def node_delta(self):
        return self.nodes_after - self.nodes_before


class TracingManager:
    """A pass manager that records a :class:`PassTraceEntry` per entry.

    Same optimize() contract as
    :class:`repro.jit.opt.base.PassManager`, plus a ``trace`` list and
    a ``report()`` text renderer.
    """

    def __init__(self, plan_entries, modifier=None, resolver=None):
        self.plan_entries = list(plan_entries)
        self.modifier = modifier
        self.resolver = resolver
        self.trace = []

    def optimize(self, ilmethod):
        ctx = PassContext(ilmethod, resolver=self.resolver)
        self.trace = []
        for entry in self.plan_entries:
            pass_obj = transform_by_name(entry)
            masked = (self.modifier is not None
                      and self.modifier.disabled(transform_index(entry)))
            nodes_before = ilmethod.count_nodes()
            blocks_before = len(ilmethod.blocks)
            cost_before = ctx.cost
            applicable = False
            changed = False
            if not masked:
                applicable = pass_obj.applicable(ctx)
                changed = bool(pass_obj.execute(ctx))
            self.trace.append(PassTraceEntry(
                name=entry, ran=not masked, applicable=applicable,
                changed=changed,
                nodes_before=nodes_before,
                nodes_after=ilmethod.count_nodes(),
                blocks_before=blocks_before,
                blocks_after=len(ilmethod.blocks),
                cost=ctx.cost - cost_before))
        log = [(t.name, t.changed) for t in self.trace]
        return ilmethod, ctx.cost, log

    def report(self, only_changed=False):
        """A human-readable per-pass table."""
        lines = [f"{'pass':30s} {'ran':>4s} {'chg':>4s} "
                 f"{'nodes':>12s} {'blocks':>8s} {'cost':>8s}"]
        for t in self.trace:
            if only_changed and not t.changed:
                continue
            ran = "yes" if t.ran else "OFF"
            chg = "*" if t.changed else ""
            lines.append(
                f"{t.name:30s} {ran:>4s} {chg:>4s} "
                f"{t.nodes_before:5d}->{t.nodes_after:<5d} "
                f"{t.blocks_before:3d}->{t.blocks_after:<3d} "
                f"{t.cost:8d}")
        return "\n".join(lines)

    def changed_passes(self):
        return [t.name for t in self.trace if t.changed]

    def masked_passes(self):
        return [t.name for t in self.trace if not t.ran]


def cfg_to_dot(ilmethod, title=None):
    """Render the method's CFG as a Graphviz digraph string."""
    from repro.jit.ir.tree import ILOp
    name = title or ilmethod.method.signature
    lines = [f'digraph "{name}" {{',
             '  node [shape=box, fontname="monospace"];']
    for block in ilmethod.blocks:
        ops = [t.op.name.lower() for t in block.treetops]
        label = f"b{block.bid}\\n" + "\\n".join(ops[:8])
        if len(ops) > 8:
            label += f"\\n... (+{len(ops) - 8})"
        shape = ', style=filled, fillcolor="#ffe0e0"' \
            if block.is_handler else ""
        lines.append(f'  b{block.bid} [label="{label}"{shape}];')
        term = block.terminator
        for succ in block.successors():
            style = ""
            if term is not None and term.op is ILOp.IF \
                    and succ == term.value[1]:
                style = ' [label="taken"]'
            lines.append(f"  b{block.bid} -> b{succ}{style};")
    for handler in ilmethod.handlers:
        for covered in sorted(handler.covered):
            lines.append(f"  b{covered} -> b{handler.handler_bid} "
                         f'[style=dashed, color=red];')
    lines.append("}")
    return "\n".join(lines)
