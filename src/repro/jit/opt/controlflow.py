"""Control-flow transformations (8 of the 58).

These reshape the CFG: folding branches with known outcomes, threading
jumps through trivial blocks, deleting unreachable code, merging
straight-line chains, laying blocks out for fall-through, duplicating tiny
return blocks into their predecessors, reversing branch polarity to kill
trampoline blocks, and canonicalizing loops with dedicated preheaders
(an enabling transformation for the loop family).
"""

from repro.jit.ir.block import ILBlock
from repro.jit.ir.tree import ILOp, Node, RELOP_FN, RELOP_NEGATE
from repro.jit.opt.base import Pass


def _is_goto_only(block):
    return (len(block.treetops) == 1
            and block.treetops[0].op is ILOp.GOTO)


def _retarget(block, old, new):
    """Redirect every edge of *block* that points at *old* to *new*."""
    changed = False
    term = block.terminator
    if term is not None:
        if term.op is ILOp.GOTO and term.value == old:
            term.value = new
            changed = True
        elif term.op is ILOp.IF and term.value[1] == old:
            term.value = (term.value[0], new)
            changed = True
    if block.fallthrough == old:
        block.fallthrough = new
        changed = True
    return changed


class BranchFolding(Pass):
    """Resolve IF treetops whose condition is a constant."""

    name = "branchFolding"
    cost_factor = 0.5
    reshapes_cfg = True

    def run(self, ctx):
        changed = False
        for block in ctx.il.blocks:
            term = block.terminator
            if term is None or term.op is not ILOp.IF:
                continue
            cond = term.children[0]
            if not (cond.is_const() and isinstance(cond.value,
                                                   (int, float))):
                continue
            relop, target = term.value
            if RELOP_FN[relop](cond.value):
                term.replace_with(Node(ILOp.GOTO, term.type, (), target))
                block.fallthrough = None
            else:
                block.treetops.pop()
            changed = True
        return changed


class JumpThreading(Pass):
    """Thread control flow through blocks that only contain a GOTO."""

    name = "jumpThreading"
    cost_factor = 0.6
    reshapes_cfg = True

    def run(self, ctx):
        il = ctx.il
        index = il.block_index()
        # Resolve the final destination of every goto-only block,
        # guarding against goto cycles.
        final = {}
        for block in il.blocks:
            if not _is_goto_only(block) or block.is_handler:
                continue
            seen = {block.bid}
            cur = block.treetops[0].value
            while cur in index and _is_goto_only(index[cur]) \
                    and cur not in seen and not index[cur].is_handler:
                seen.add(cur)
                cur = index[cur].treetops[0].value
            if cur != block.bid:
                final[block.bid] = cur
        changed = False
        if not final:
            return False
        for block in il.blocks:
            term = block.terminator
            for old, new in final.items():
                if old == block.bid:
                    continue
                # Thread explicit branch targets only; fall-through
                # trampolines are branchReversal's and blockOrdering's
                # business (they can often do better than a retarget).
                if term is not None:
                    if term.op is ILOp.GOTO and term.value == old:
                        term.value = new
                        changed = True
                    elif term.op is ILOp.IF and term.value[1] == old:
                        term.value = (term.value[0], new)
                        changed = True
        return changed


class UnreachableCodeElimination(Pass):
    """Delete blocks not reachable from the entry (following exceptional
    edges), pruning handler scopes accordingly."""

    name = "unreachableCodeElimination"
    cost_factor = 0.6
    reshapes_cfg = True

    def run(self, ctx):
        il = ctx.il
        reachable = set(ctx.cfg().reachable)
        if len(reachable) == len(il.blocks):
            return False
        il.blocks = [b for b in il.blocks if b.bid in reachable]
        new_handlers = []
        for h in il.handlers:
            covered = h.covered & reachable
            if covered and h.handler_bid in reachable:
                h.covered = frozenset(covered)
                new_handlers.append(h)
        il.handlers = new_handlers
        return True


class EmptyBlockMerging(Pass):
    """Merge straight-line block chains: append B to A when A's sole
    normal successor is B and B's sole predecessor is A."""

    name = "emptyBlockMerging"
    cost_factor = 0.7
    reshapes_cfg = True

    def run(self, ctx):
        il = ctx.il
        changed = False
        merged = True
        while merged:
            merged = False
            cfg = ctx.cfg()
            index = il.block_index()
            for a in il.blocks:
                succs = a.successors()
                if len(succs) != 1:
                    continue
                b_id = succs[0]
                if b_id == a.bid or b_id not in index:
                    continue
                b = index[b_id]
                if b.is_handler or b is il.entry():
                    continue
                if cfg.preds.get(b_id, []) != [a.bid]:
                    continue
                cov_a = {id(h) for h in il.handlers_covering(a.bid)}
                cov_b = {id(h) for h in il.handlers_covering(b_id)}
                if cov_a != cov_b:
                    continue
                term = a.terminator
                if term is not None and term.op is ILOp.GOTO:
                    a.treetops.pop()
                a.treetops.extend(b.treetops)
                a.fallthrough = b.fallthrough
                il.blocks.remove(b)
                for h in il.handlers:
                    if b_id in h.covered:
                        h.covered = frozenset(h.covered - {b_id})
                for other in il.blocks:
                    _retarget(other, b_id, a.bid)
                ctx.invalidate()
                changed = True
                merged = True
                break
        return changed


class BlockOrdering(Pass):
    """Lay blocks out so branch targets follow their branches; the code
    generator elides a branch to the immediately following block, so good
    layout removes real instructions.

    When a branch profile is available (scorching's feedback-directed
    path, ``il.notes['branch_profile']``), conditional branches whose
    *taken* edge is hotter than their fall-through are inverted first,
    so the frequent path becomes the free fall-through."""

    name = "blockOrdering"
    cost_factor = 0.5
    reshapes_cfg = True

    def run(self, ctx):
        il = ctx.il
        changed_by_profile = self._apply_profile(il)
        index = il.block_index()
        placed = []
        placed_set = set()

        def place_chain(bid):
            while bid is not None and bid not in placed_set \
                    and bid in index:
                block = index[bid]
                placed.append(block)
                placed_set.add(bid)
                term = block.terminator
                if term is None or term.op is ILOp.IF:
                    bid = block.fallthrough
                elif term.op is ILOp.GOTO:
                    bid = term.value
                else:
                    bid = None

        place_chain(il.blocks[0].bid)
        for block in il.blocks:
            if block.bid not in placed_set:
                place_chain(block.bid)
        if [b.bid for b in placed] == [b.bid for b in il.blocks]:
            return changed_by_profile
        il.blocks = placed
        return True

    @staticmethod
    def _apply_profile(il):
        """Invert IFs whose taken edge dominates the fall-through."""
        profile = il.notes.get("branch_profile")
        if not profile:
            return False
        changed = False
        for block in il.blocks:
            term = block.terminator
            if term is None or term.op is not ILOp.IF:
                continue
            taken = profile.get((block.bc_start, True), 0)
            fall = profile.get((block.bc_start, False), 0)
            if taken <= fall or block.fallthrough is None:
                continue
            relop, target = term.value
            if target == block.fallthrough:
                continue
            term.value = (RELOP_NEGATE[relop], block.fallthrough)
            block.fallthrough = target
            changed = True
        return changed


class TailDuplication(Pass):
    """Copy a tiny return block into predecessors that jump to it,
    trading code size for the taken branch."""

    name = "tailDuplication"
    cost_factor = 0.8
    reshapes_cfg = True
    max_treetops = 2

    def run(self, ctx):
        il = ctx.il
        cfg = ctx.cfg()
        index = il.block_index()
        changed = False
        for block in list(il.blocks):
            term = block.terminator
            if term is None or term.op is not ILOp.GOTO:
                continue
            target = index.get(term.value)
            if target is None or target.is_handler:
                continue
            tterm = target.terminator
            if tterm is None or tterm.op is not ILOp.RETURN:
                continue
            if len(target.treetops) > self.max_treetops:
                continue
            if len(cfg.preds.get(target.bid, [])) < 2:
                continue
            cov_p = {id(h) for h in il.handlers_covering(block.bid)}
            cov_t = {id(h) for h in il.handlers_covering(target.bid)}
            if cov_p != cov_t:
                continue
            block.treetops.pop()  # the GOTO
            block.treetops.extend(t.copy() for t in target.treetops)
            block.fallthrough = None
            changed = True
        return changed


class BranchReversal(Pass):
    """Reverse an IF whose fall-through is a single-predecessor GOTO
    trampoline, eliminating the trampoline from the hot path."""

    name = "branchReversal"
    cost_factor = 0.5
    reshapes_cfg = True

    def run(self, ctx):
        il = ctx.il
        cfg = ctx.cfg()
        index = il.block_index()
        changed = False
        for block in il.blocks:
            term = block.terminator
            if term is None or term.op is not ILOp.IF:
                continue
            ft = index.get(block.fallthrough)
            if ft is None or not _is_goto_only(ft) or ft.is_handler:
                continue
            if cfg.preds.get(ft.bid, []) != [block.bid]:
                continue
            relop, taken = term.value
            goto_target = ft.treetops[0].value
            if goto_target == ft.bid:
                continue
            term.value = (RELOP_NEGATE[relop], goto_target)
            block.fallthrough = taken
            changed = True
        return changed


class LoopCanonicalization(Pass):
    """Give every loop header a dedicated preheader block, the landing
    pad that LICM, unrolling and field privatization hoist code into."""

    name = "loopCanonicalization"
    cost_factor = 0.7
    reshapes_cfg = True
    requires = ("has_loops",)

    def run(self, ctx):
        il = ctx.il
        changed = False
        for loop in list(ctx.cfg().loops):
            cfg = ctx.cfg()
            header = loop.header
            outside_preds = [p for p in cfg.preds.get(header, [])
                             if p not in loop.body]
            if not outside_preds:
                continue
            index = il.block_index()
            if len(outside_preds) == 1:
                pred = index[outside_preds[0]]
                if _is_goto_only(pred) and not pred.is_handler:
                    il.notes.setdefault("preheaders", {})[header] = \
                        pred.bid
                    continue
            pre = ILBlock(il.new_block_id(),
                          bc_start=index[header].bc_start)
            pre.append(Node(ILOp.GOTO, value=header))
            for pid in outside_preds:
                _retarget(index[pid], header, pre.bid)
            pos = il.blocks.index(index[header])
            il.blocks.insert(pos, pre)
            il.notes.setdefault("preheaders", {})[header] = pre.bid
            ctx.invalidate()
            changed = True
        return changed


CONTROLFLOW_PASSES = (
    BranchFolding(),
    JumpThreading(),
    UnreachableCodeElimination(),
    EmptyBlockMerging(),
    BlockOrdering(),
    TailDuplication(),
    BranchReversal(),
    LoopCanonicalization(),
)
