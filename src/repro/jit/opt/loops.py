"""Loop transformations (6 of the 58).

All six are gated on the method actually containing loops (paper §2:
"loop transformations are never applied to methods that do not contain
loops").  The structural ones recognize the *canonical counted loop* shape
the workload generator (and javac) produce:

    H:  if (exit-cond) goto E      ; header: test only, or test+work
    B:  ...body... ; goto H        ; single body block with the back edge

which keeps the duplication logic exact rather than heuristic.
"""

from repro.jit.ir.block import ILBlock
from repro.jit.ir.tree import ILOp, Node, RELOP_NEGATE
from repro.jit.opt.base import Pass


# -- shared helpers ---------------------------------------------------------

def ensure_preheader(ctx, header):
    """Return the preheader block id for *header*, creating one if the
    loopCanonicalization pass has not already run."""
    il = ctx.il
    pre = il.notes.get("preheaders", {}).get(header)
    if pre is not None and any(b.bid == pre for b in il.blocks):
        return pre
    cfg = ctx.cfg()
    loop = cfg.loop_of(header)
    body = loop.body if loop else {header}
    outside = [p for p in cfg.preds.get(header, []) if p not in body]
    index = il.block_index()
    pre_block = ILBlock(il.new_block_id(),
                        bc_start=index[header].bc_start)
    pre_block.append(Node(ILOp.GOTO, value=header))
    from repro.jit.opt.controlflow import _retarget
    for pid in outside:
        _retarget(index[pid], header, pre_block.bid)
    il.blocks.insert(il.blocks.index(index[header]), pre_block)
    il.notes.setdefault("preheaders", {})[header] = pre_block.bid
    ctx.invalidate()
    return pre_block.bid


def slots_defined_in(il, block_ids):
    """Local slots stored or incremented within the given blocks."""
    defs = {}
    index = il.block_index()
    for bid in block_ids:
        for tt in index[bid].treetops:
            if tt.op is ILOp.STORE:
                defs.setdefault(tt.value, []).append((bid, tt))
            elif tt.op is ILOp.INC:
                defs.setdefault(tt.value[0], []).append((bid, tt))
    return defs


def loop_contains(il, block_ids, ops):
    index = il.block_index()
    for bid in block_ids:
        for tt in index[bid].treetops:
            for n in tt.walk():
                if n.op in ops:
                    return True
    return False


def match_two_block_loop(ctx, loop):
    """Recognize the canonical {header, body} counted-loop shape; returns
    ``(header_block, body_block, exit_bid)`` or None."""
    il = ctx.il
    if len(loop.body) != 2:
        return None
    index = il.block_index()
    header = index.get(loop.header)
    if header is None or header.is_handler:
        return None
    term = header.terminator
    if term is None or term.op is not ILOp.IF:
        return None
    _relop, exit_bid = term.value
    if exit_bid in loop.body:
        return None
    body_bid = header.fallthrough
    if body_bid not in loop.body or body_bid == loop.header:
        return None
    body = index.get(body_bid)
    if body is None or body.is_handler:
        return None
    bterm = body.terminator
    if bterm is None or bterm.op is not ILOp.GOTO \
            or bterm.value != loop.header:
        return None
    cond = term.children[0]
    if not cond.is_pure(allow_loads=True) or cond.can_throw():
        return None
    return header, body, exit_bid


def _same_coverage(il, a_bid, b_bid):
    return ({id(h) for h in il.handlers_covering(a_bid)}
            == {id(h) for h in il.handlers_covering(b_bid)})


def first_throwing(node):
    """The first node, in evaluation order, that may throw; or None."""
    for child in node.children:
        found = first_throwing(child)
        if found is not None:
            return found
    if node.can_throw() and all(not c.can_throw()
                                for c in node.children):
        return node
    return None


# -- the passes -------------------------------------------------------------

class LoopInvariantCodeMotion(Pass):
    """Hoist stores of loop-invariant pure expressions into the
    preheader, from any loop block that executes on every iteration
    (i.e. dominates every back-edge source)."""

    name = "loopInvariantCodeMotion"
    cost_factor = 1.6
    reshapes_cfg = True
    requires = ("has_loops",)

    def run(self, ctx):
        changed = False
        for loop in list(ctx.cfg().loops):
            if self._hoist_loop(ctx, loop):
                changed = True
        return changed

    def _hoist_loop(self, ctx, loop):
        il = ctx.il
        cfg = ctx.cfg()
        index = il.block_index()
        defs = slots_defined_in(il, loop.body)
        loads_outside = set()
        for block in il.blocks:
            if block.bid in loop.body:
                continue
            for tt in block.treetops:
                for child in tt.children:
                    child.loads_used(loads_outside)

        # Blocks on every iteration's path: they dominate all back edges.
        every_iteration = [
            bid for bid in loop.body
            if all(cfg.dominates(bid, tail)
                   for tail, _h in loop.back_edges)]

        hoistable = []  # (block, treetop index)
        for bid in every_iteration:
            block = index.get(bid)
            if block is None:
                continue
            for i, tt in enumerate(block.treetops):
                if tt.op is not ILOp.STORE:
                    continue
                slot = tt.value
                rhs = tt.children[0]
                if not rhs.is_pure(allow_loads=True) or rhs.can_throw():
                    continue
                if len(defs.get(slot, ())) != 1:
                    continue
                if slot in loads_outside:
                    continue
                if any(s in defs for s in rhs.loads_used()):
                    continue
                # Every in-loop read of the slot must observe this
                # store's (invariant) value: no read may precede the
                # store within its own block, and reads elsewhere must
                # be dominated by the store's block.
                if not self._loads_follow(il, cfg, loop, block, i,
                                          slot):
                    continue
                hoistable.append((block, tt))
        if not hoistable:
            return False
        pre_bid = ensure_preheader(ctx, loop.header)
        pre = il.block(pre_bid)
        insert_at = len(pre.treetops) - 1  # before the GOTO
        for offset, (block, tt) in enumerate(hoistable):
            # Remove by identity: indices shift when a block donates
            # more than one store.
            block.treetops.remove(tt)
            pre.treetops.insert(insert_at + offset, tt)
        return True

    @staticmethod
    def _loads_follow(il, cfg, loop, store_block, store_index, slot):
        index = il.block_index()
        for bid in loop.body:
            block = index.get(bid)
            if block is None:
                continue
            if block is store_block:
                # Reads at or before the store (including its own rhs)
                # would observe the pre-loop value on iteration one.
                for tt in block.treetops[:store_index + 1]:
                    used = set()
                    for child in tt.children:
                        child.loads_used(used)
                    if slot in used:
                        return False
            else:
                used = set()
                for tt in block.treetops:
                    for child in tt.children:
                        child.loads_used(used)
                if slot in used \
                        and not cfg.dominates(store_block.bid, bid):
                    return False
        return True


class LoopUnrolling(Pass):
    """Unroll canonical counted loops by a factor of two, re-testing the
    exit condition between the copies (always safe); the payoff is one
    fewer taken back edge per pair of iterations plus a doubled window
    for the local passes."""

    name = "loopUnrolling"
    cost_factor = 2.0
    reshapes_cfg = True
    requires = ("has_loops",)
    max_body_treetops = 14

    def run(self, ctx):
        changed = False
        for loop in list(ctx.cfg().loops):
            if self._unroll_self_loop(ctx, loop):
                changed = True
                continue
            match = match_two_block_loop(ctx, loop)
            if match is None:
                continue
            header, body, exit_bid = match
            if len(body.treetops) > self.max_body_treetops:
                continue
            if not _same_coverage(ctx.il, header.bid, body.bid):
                continue
            il = ctx.il
            term = header.terminator
            cond = term.children[0]
            relop, _ = term.value
            second = ILBlock(il.new_block_id(), bc_start=body.bc_start)
            for tt in body.treetops[:-1]:
                second.append(tt.copy())
            second.append(Node(ILOp.GOTO, value=loop.header))
            body.treetops.pop()  # the GOTO back edge
            body.append(Node(ILOp.IF, children=(cond.copy(),),
                             value=(relop, exit_bid)))
            body.fallthrough = second.bid
            il.blocks.insert(il.blocks.index(body) + 1, second)
            for h in il.handlers:
                if body.bid in h.covered:
                    h.covered = frozenset(h.covered | {second.bid})
            ctx.invalidate()
            changed = True
        return changed

    def _unroll_self_loop(self, ctx, loop):
        """Unroll a bottom-tested single-block self loop (the shape loop
        inversion produces): duplicate the body with an early-exit test
        between the copies."""
        il = ctx.il
        if len(loop.body) != 1:
            return False
        index = il.block_index()
        body = index.get(loop.header)
        if body is None or body.is_handler:
            return False
        term = body.terminator
        if term is None or term.op is not ILOp.IF \
                or term.value[1] != body.bid:
            return False
        if body.fallthrough is None or body.fallthrough in loop.body:
            return False
        if len(body.treetops) > self.max_body_treetops:
            return False
        stay_relop, _ = term.value
        cond = term.children[0]
        if not cond.is_pure(allow_loads=True) or cond.can_throw():
            return False
        exit_bid = body.fallthrough

        second = ILBlock(il.new_block_id(), bc_start=body.bc_start)
        for tt in body.treetops[:-1]:
            second.append(tt.copy())
        second.append(Node(ILOp.IF, children=(cond.copy(),),
                           value=(stay_relop, body.bid)))
        second.fallthrough = exit_bid

        # The original block now exits early when the stay-condition
        # fails, and otherwise falls into the duplicated body.
        body.treetops.pop()
        body.append(Node(ILOp.IF, children=(cond.copy(),),
                         value=(RELOP_NEGATE[stay_relop], exit_bid)))
        body.fallthrough = second.bid
        il.blocks.insert(il.blocks.index(body) + 1, second)
        for h in il.handlers:
            if body.bid in h.covered:
                h.covered = frozenset(h.covered | {second.bid})
        ctx.invalidate()
        return True


class LoopPeeling(Pass):
    """Peel the first iteration of a canonical loop into straight-line
    code before the loop, exposing the entry values to the global
    propagation passes."""

    name = "loopPeeling"
    cost_factor = 1.8
    reshapes_cfg = True
    requires = ("has_loops",)
    max_body_treetops = 10

    def run(self, ctx):
        changed = False
        for loop in list(ctx.cfg().loops):
            match = match_two_block_loop(ctx, loop)
            if match is None:
                continue
            header, body, exit_bid = match
            il = ctx.il
            if len(body.treetops) + len(header.treetops) \
                    > self.max_body_treetops:
                continue
            if not _same_coverage(il, header.bid, body.bid):
                continue
            if il.notes.setdefault("peeled", set()) & {loop.header}:
                continue
            cfg = ctx.cfg()
            outside = [p for p in cfg.preds.get(loop.header, [])
                       if p not in loop.body]
            if not outside:
                continue
            index = il.block_index()
            relop, _ = header.terminator.value
            cond = header.terminator.children[0]
            h_copy = ILBlock(il.new_block_id(), bc_start=header.bc_start)
            for tt in header.treetops[:-1]:
                h_copy.append(tt.copy())
            h_copy.append(Node(ILOp.IF, children=(cond.copy(),),
                               value=(relop, exit_bid)))
            b_copy = ILBlock(h_copy.bid + 1, bc_start=body.bc_start)
            for tt in body.treetops[:-1]:
                b_copy.append(tt.copy())
            b_copy.append(Node(ILOp.GOTO, value=loop.header))
            h_copy.fallthrough = b_copy.bid
            from repro.jit.opt.controlflow import _retarget
            for pid in outside:
                _retarget(index[pid], loop.header, h_copy.bid)
            pos = il.blocks.index(header)
            il.blocks.insert(pos, b_copy)
            il.blocks.insert(pos, h_copy)
            for h in il.handlers:
                extra = set()
                if header.bid in h.covered:
                    extra.add(h_copy.bid)
                if body.bid in h.covered:
                    extra.add(b_copy.bid)
                if extra:
                    h.covered = frozenset(h.covered | extra)
            il.notes["peeled"].add(loop.header)
            # Invalidate stale preheader note: entry now goes through the
            # peeled copy.
            il.notes.get("preheaders", {}).pop(loop.header, None)
            ctx.invalidate()
            changed = True
        return changed


class InductionVariableElimination(Pass):
    """Strength-reduce ``i * c`` inside a counted loop into an additive
    induction temp updated in lockstep with ``i``'s increments."""

    name = "inductionVariableElimination"
    cost_factor = 1.6
    reshapes_cfg = True
    requires = ("has_loops",)

    def run(self, ctx):
        from repro.jvm.bytecode import JType
        changed = False
        for loop in list(ctx.cfg().loops):
            il = ctx.il
            index = il.block_index()
            defs = slots_defined_in(il, loop.body)
            # Basic induction variables: every in-loop def is an INC.
            basics = {s: ds for s, ds in defs.items()
                      if all(tt.op is ILOp.INC for _b, tt in ds)}
            if not basics:
                continue
            for slot, incs in basics.items():
                muls = self._find_muls(il, loop, index, slot)
                if not muls:
                    continue
                const = muls[0].children[1].value \
                    if muls[0].children[1].is_const() \
                    else muls[0].children[0].value
                if not all(self._const_of(m) == const for m in muls):
                    continue
                iv = il.new_temp()
                pre_bid = ensure_preheader(ctx, loop.header)
                index = il.block_index()
                pre = index[pre_bid]
                init = Node(ILOp.STORE, JType.INT, (
                    Node(ILOp.MUL, JType.INT,
                         (Node.load(slot, JType.INT),
                          Node.const(JType.INT, const))),), iv)
                pre.treetops.insert(len(pre.treetops) - 1, init)
                for mul in muls:
                    mul.replace_with(Node.load(iv, JType.INT))
                for bid, inc in incs:
                    block = index[bid]
                    pos = block.treetops.index(inc)
                    step = inc.value[1]
                    block.treetops.insert(
                        pos + 1,
                        Node(ILOp.INC, JType.INT, (),
                             (iv, step * const)))
                ctx.invalidate()
                changed = True
        return changed

    @staticmethod
    def _const_of(mul):
        a, b = mul.children
        return b.value if b.is_const() else a.value

    @staticmethod
    def _find_muls(il, loop, index, slot):
        from repro.jvm.bytecode import JType
        muls = []
        for bid in loop.body:
            for tt in index[bid].treetops:
                for child in tt.children:
                    for node in child.walk():
                        if node.op is ILOp.MUL \
                                and node.type is JType.INT:
                            a, b = node.children
                            if a.op is ILOp.LOAD and a.value == slot \
                                    and a.type is JType.INT \
                                    and b.is_const() \
                                    and isinstance(b.value, int):
                                muls.append(node)
                            elif b.op is ILOp.LOAD \
                                    and b.value == slot \
                                    and b.type is JType.INT \
                                    and a.is_const() \
                                    and isinstance(a.value, int):
                                muls.append(node)
        return muls


class LoopInversion(Pass):
    """Rotate a test-at-top loop into a guarded test-at-bottom loop,
    saving the unconditional back-edge branch every iteration."""

    name = "loopInversion"
    cost_factor = 1.2
    reshapes_cfg = True
    requires = ("has_loops",)

    def run(self, ctx):
        changed = False
        for loop in list(ctx.cfg().loops):
            match = match_two_block_loop(ctx, loop)
            if match is None:
                continue
            header, body, exit_bid = match
            if len(header.treetops) != 1:
                continue  # test-only headers keep the duplication free
            il = ctx.il
            if not _same_coverage(il, header.bid, body.bid):
                continue
            relop, _ = header.terminator.value
            cond = header.terminator.children[0]
            body.treetops.pop()  # goto header
            body.append(Node(ILOp.IF, children=(cond.copy(),),
                             value=(RELOP_NEGATE[relop], body.bid)))
            body.fallthrough = exit_bid
            ctx.invalidate()
            changed = True
        return changed


class FieldPrivatization(Pass):
    """Scalar replacement: hoist a loop-invariant field read out of the
    loop when the loop cannot write the field (no calls, no stores to the
    field, no synchronization) and the hoisted read faults at the same
    point the original would (it is the first faulting operation of the
    header)."""

    name = "fieldPrivatization"
    cost_factor = 1.8
    reshapes_cfg = True
    requires = ("has_loops",)

    def run(self, ctx):
        changed = False
        for loop in list(ctx.cfg().loops):
            if self._privatize(ctx, loop):
                changed = True
        return changed

    def _privatize(self, ctx, loop):
        il = ctx.il
        index = il.block_index()
        header = index.get(loop.header)
        if header is None:
            return False
        if loop_contains(il, loop.body,
                         (ILOp.CALL, ILOp.MONITORENTER, ILOp.MONITOREXIT)):
            return False
        written_fields = {
            tt.value for bid in loop.body
            for tt in index[bid].treetops if tt.op is ILOp.PUTFIELD}
        defs = slots_defined_in(il, loop.body)
        target = self._header_candidate(header, defs, written_fields)
        if target is None:
            target = self._nonnull_candidate(ctx, loop, index, defs,
                                             written_fields)
        if target is None:
            return False
        field = target.value
        ref_slot = target.children[0].value
        temp = il.new_temp()
        pre_bid = ensure_preheader(ctx, loop.header)
        index = il.block_index()
        pre = index[pre_bid]
        hoisted = Node(ILOp.STORE, target.type,
                       (target.copy(),), temp)
        pre.treetops.insert(len(pre.treetops) - 1, hoisted)
        replaced = 0
        for bid in loop.body:
            for tt in index[bid].treetops:
                for child in tt.children:
                    for node in child.walk():
                        if node.op is ILOp.GETFIELD \
                                and node.value == field \
                                and node.children[0].op is ILOp.LOAD \
                                and node.children[0].value == ref_slot:
                            node.replace_with(
                                Node.load(temp, node.type))
                            replaced += 1
        ctx.invalidate()
        return replaced > 0

    @staticmethod
    def _header_candidate(header, defs, written_fields):
        """The first potentially-faulting operation of the header must
        be a GETFIELD(load s, f) with s, f invariant; NULLCHKs of the
        same slot before it raise the same NPE and are permitted."""
        for i, tt in enumerate(header.treetops):
            throwing = first_throwing(tt)
            if throwing is None:
                continue
            if tt.op is ILOp.NULLCHK:
                continue  # examined via the slot check below
            if throwing.op is ILOp.GETFIELD:
                ref = throwing.children[0]
                if ref.op is ILOp.LOAD and ref.value not in defs \
                        and throwing.value not in written_fields \
                        and FieldPrivatization._only_nullchk_before(
                            header, i, ref.value):
                    return throwing
            break
        return None

    def _nonnull_candidate(self, ctx, loop, index, defs,
                           written_fields):
        """A GETFIELD anywhere in the loop whose base slot is *provably
        non-null* (assigned a fresh allocation, possibly via copies, in
        blocks dominating the loop) cannot fault, so hoisting it cannot
        introduce an exception on the zero-trip path."""
        il = ctx.il
        cfg = ctx.cfg()
        nonnull = self._nonnull_slots_before(il, cfg, loop)
        for bid in loop.body:
            block = index.get(bid)
            if block is None:
                continue
            for tt in block.treetops:
                for child in tt.children:
                    for node in child.walk():
                        if node.op is not ILOp.GETFIELD:
                            continue
                        ref = node.children[0]
                        if ref.op is ILOp.LOAD \
                                and ref.value in nonnull \
                                and ref.value not in defs \
                                and node.value not in written_fields:
                            return node
        return None

    @staticmethod
    def _nonnull_slots_before(il, cfg, loop):
        """Slots holding a fresh allocation at loop entry: single-def
        slots whose store (of a NEW, or a copy of such a slot) sits in a
        block outside the loop that dominates the loop header."""
        defs = {}
        for block in il.blocks:
            for tt in block.treetops:
                if tt.op is ILOp.STORE:
                    defs.setdefault(tt.value, []).append((block, tt))
                elif tt.op is ILOp.INC:
                    defs.setdefault(tt.value[0], []).append((block, tt))
        nonnull = set()
        changed = True
        while changed:
            changed = False
            for slot, dlist in defs.items():
                if slot in nonnull or len(dlist) != 1:
                    continue
                block, tt = dlist[0]
                if tt.op is not ILOp.STORE:
                    continue
                if block.bid in loop.body \
                        or not cfg.dominates(block.bid, loop.header):
                    continue
                rhs = tt.children[0]
                fresh = rhs.op in (ILOp.NEW, ILOp.NEWARRAY) or (
                    rhs.op is ILOp.LOAD and rhs.value in nonnull)
                if fresh:
                    nonnull.add(slot)
                    changed = True
        return nonnull

    @staticmethod
    def _only_nullchk_before(header, idx, ref_slot):
        for tt in header.treetops[:idx]:
            if not tt.can_throw():
                continue
            if tt.op is ILOp.NULLCHK \
                    and tt.children[0].op is ILOp.LOAD \
                    and tt.children[0].value == ref_slot:
                continue
            return False
        return True


LOOP_PASSES = (
    LoopInvariantCodeMotion(),
    LoopUnrolling(),
    LoopPeeling(),
    InductionVariableElimination(),
    LoopInversion(),
    FieldPrivatization(),
)
