"""Block-local dataflow transformations (7 of the 58).

These work within a single basic block, maintaining small environments
that are killed at the obvious barriers (redefinitions, calls, heap
writes, synchronization).
"""

from repro.jit.ir.tree import HEAP_READS, ILOp, Node
from repro.jit.opt.base import Pass

#: Treetop ops that write the heap or synchronize: they invalidate
#: remembered heap reads.
_HEAP_KILLERS = frozenset({ILOp.PUTFIELD, ILOp.ASTORE, ILOp.ARRAYCOPY,
                           ILOp.MONITORENTER, ILOp.MONITOREXIT})


def _slots_stored(treetop):
    """Local slots (re)defined by a treetop."""
    if treetop.op is ILOp.STORE:
        return (treetop.value,)
    if treetop.op is ILOp.INC:
        return (treetop.value[0],)
    return ()


def _contains_call(treetop):
    return treetop.contains_op(ILOp.CALL)


def _replace_loads(node, env, counter):
    """Replace LOAD nodes that have a mapping in *env*, bottom-up."""
    for child in node.children:
        _replace_loads(child, env, counter)
    if node.op is ILOp.LOAD and node.value in env:
        replacement = env[node.value]
        if replacement.type == node.type:
            node.replace_with(replacement.copy())
            counter.append(1)


class _PropagationPass(Pass):
    """Shared machinery for local constant/copy propagation."""

    track_consts = False
    track_copies = False

    def run(self, ctx):
        changes = []
        for block in ctx.il.blocks:
            env = {}
            for tt in block.treetops:
                # Uses first (the rhs refers to pre-store values).
                for child in tt.children:
                    _replace_loads(child, env, changes)
                # Then effects.
                for slot in _slots_stored(tt):
                    env.pop(slot, None)
                    env = {s: v for s, v in env.items()
                           if not (v.op is ILOp.LOAD and v.value == slot)}
                if tt.op is ILOp.STORE:
                    rhs = tt.children[0]
                    if self.track_consts and rhs.is_const():
                        env[tt.value] = rhs
                    elif self.track_copies and rhs.op is ILOp.LOAD \
                            and rhs.value != tt.value:
                        env[tt.value] = rhs
        return bool(changes)


class LocalConstantPropagation(_PropagationPass):
    """Within a block, replace loads of slots holding known constants."""

    name = "localConstantPropagation"
    cost_factor = 0.6
    track_consts = True


class LocalCopyPropagation(_PropagationPass):
    """Within a block, forward ``store s1 = load s2`` through later loads
    of s1 (until either slot is redefined)."""

    name = "localCopyPropagation"
    cost_factor = 0.6
    track_copies = True


class _CommoningPass(Pass):
    """Shared machinery for local CSE and redundant-load elimination.

    Finds a repeated expression within a block (with kill rules supplied
    by the subclass), stores its first occurrence to a temp, and replaces
    later occurrences with loads of the temp.  One commoning per scan;
    scans repeat until a fixed point.
    """

    #: Minimum node count for an expression to be worth a temp.
    min_size = 3
    max_rounds = 25

    def _eligible(self, node):
        raise NotImplementedError

    def _killed_by(self, treetop, key_node):
        raise NotImplementedError

    def run(self, ctx):
        changed = False
        for block in ctx.il.blocks:
            for _ in range(self.max_rounds):
                if not self._common_one(ctx.il, block):
                    break
                changed = True
        return changed

    def _common_one(self, il, block):
        seen = {}  # key -> (treetop index, node)
        for i, tt in enumerate(block.treetops):
            for child in tt.children:
                for node in child.walk():
                    if not self._eligible(node):
                        continue
                    key = node.key()
                    if key in seen:
                        first_i, first_node = seen[key]
                        if first_node is node:
                            continue
                        return self._materialize(
                            il, block, first_i, first_node, node)
                    seen[key] = (i, node)
            # Apply kills after the treetop's uses.
            seen = {k: v for k, v in seen.items()
                    if not self._killed_by(tt, v[1])}
        return False

    def _materialize(self, il, block, first_i, first_node, second_node):
        temp = il.new_temp()
        store = Node(ILOp.STORE, first_node.type,
                     (first_node.copy(),), temp)
        load = Node.load(temp, first_node.type)
        first_node.replace_with(load)
        second_node.replace_with(load.copy())
        block.treetops.insert(first_i, store)
        return True


class LocalCSE(_CommoningPass):
    """Common pure subexpressions within a block."""

    name = "localCSE"
    cost_factor = 1.2

    def _eligible(self, node):
        return (node.count_nodes() >= self.min_size
                and node.is_pure(allow_loads=True, allow_heap_reads=False))

    def _killed_by(self, treetop, key_node):
        stored = _slots_stored(treetop)
        if not stored:
            return False
        used = key_node.loads_used()
        return any(s in used for s in stored)


class RedundantLoadElimination(_CommoningPass):
    """Common repeated field/array reads within a block; killed by heap
    writes, calls and synchronization."""

    name = "redundantLoadElimination"
    cost_factor = 1.2
    min_size = 1

    def applicable(self, ctx):
        facts = ctx.facts()
        return facts["has_arrays"] or self._has_field_reads(ctx)

    @staticmethod
    def _has_field_reads(ctx):
        return any(n.op is ILOp.GETFIELD
                   for _b, t in ctx.il.iter_treetops()
                   for n in t.walk())

    def _eligible(self, node):
        if node.op not in HEAP_READS or node.op is ILOp.ARRAYCMP:
            return False
        return node.is_pure(allow_loads=True, allow_heap_reads=True)

    def _killed_by(self, treetop, key_node):
        if treetop.op in _HEAP_KILLERS or _contains_call(treetop):
            return True
        stored = _slots_stored(treetop)
        if stored:
            used = key_node.loads_used()
            if any(s in used for s in stored):
                return True
        return False


class LocalDeadStoreElimination(Pass):
    """Remove a store whose slot is overwritten later in the same block
    with no intervening read.  Skipped in blocks covered by an exception
    handler (the handler could observe the stored value)."""

    name = "localDeadStoreElimination"
    cost_factor = 0.8

    def run(self, ctx):
        il = ctx.il
        changed = False
        for block in il.blocks:
            if il.handlers_covering(block.bid):
                continue
            dead = []
            for i, tt in enumerate(block.treetops):
                if tt.op is not ILOp.STORE:
                    continue
                rhs = tt.children[0]
                if not rhs.is_pure(allow_loads=True) or rhs.can_throw():
                    continue
                slot = tt.value
                for later in block.treetops[i + 1:]:
                    used = set()
                    for child in later.children:
                        child.loads_used(used)
                    if slot in used:
                        break
                    if later.op is ILOp.INC and later.value[0] == slot:
                        break
                    if later.op is ILOp.STORE and later.value == slot:
                        dead.append(i)
                        break
            for i in reversed(dead):
                del block.treetops[i]
                changed = True
        return changed


class LocalDCE(Pass):
    """Remove treetops that evaluate a pure, non-throwing expression for
    no effect (typically left behind by other transformations)."""

    name = "localDCE"
    cost_factor = 0.5

    def run(self, ctx):
        changed = False
        for block in ctx.il.blocks:
            kept = []
            for tt in block.treetops:
                if tt.op is ILOp.TREETOP:
                    child = tt.children[0]
                    if child.is_pure(allow_loads=True) \
                            and not child.can_throw():
                        changed = True
                        continue
                kept.append(tt)
            block.treetops[:] = kept
        return changed


class ArrayOpSimplification(Pass):
    """Array-operation algebra: drop zero-length array copies and fold
    comparisons of an array against itself (null checks for the operands
    remain as their own treetops, so exception behaviour is preserved)."""

    name = "arrayOpSimplification"
    cost_factor = 0.4
    requires = ("has_arrays",)

    def run(self, ctx):
        changed = False
        for block in ctx.il.blocks:
            kept = []
            for tt in block.treetops:
                if tt.op is ILOp.ARRAYCOPY:
                    count = tt.children[4]
                    # Only offset 0 is provably in range for a
                    # zero-length copy (offset > length still throws).
                    offs_ok = all(
                        c.is_const() and c.value == 0
                        for c in (tt.children[1], tt.children[3]))
                    if count.is_const() and count.value == 0 and offs_ok:
                        changed = True
                        continue
                kept.append(tt)
            block.treetops[:] = kept
            for tt in block.treetops:
                for child in tt.children:
                    for node in child.walk():
                        if node.op is ILOp.ARRAYCMP:
                            a, b = node.children
                            if a.op is ILOp.LOAD and b.op is ILOp.LOAD \
                                    and a.value == b.value:
                                node.replace_with(
                                    Node.const(node.type, 0))
                                changed = True
        return changed


LOCAL_PASSES = (
    LocalConstantPropagation(),
    LocalCopyPropagation(),
    LocalCSE(),
    RedundantLoadElimination(),
    LocalDeadStoreElimination(),
    LocalDCE(),
    ArrayOpSimplification(),
)
