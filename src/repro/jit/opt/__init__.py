"""The optimizer: 58 controllable code transformations.

Each transformation is a :class:`~repro.jit.opt.base.Pass` registered in
:mod:`repro.jit.opt.registry` under a stable index in ``[0, 58)`` -- the
bit positions that compilation-plan modifiers mask (paper §5: "there are 58
distinct code transformations that are controllable").

A compilation plan (see :mod:`repro.jit.plans`) is an ordered list of
transformation names, with cleanup passes repeated; before a pass runs,
its ``applicable`` predicate checks method characteristics ("loop
transformations are never applied to methods that do not contain loops").
"""

from repro.jit.opt.base import Pass, PassContext, PassManager
from repro.jit.opt.registry import (
    ALL_TRANSFORMS,
    NUM_TRANSFORMS,
    transform_by_name,
    transform_index,
)

__all__ = [
    "Pass",
    "PassContext",
    "PassManager",
    "ALL_TRANSFORMS",
    "NUM_TRANSFORMS",
    "transform_by_name",
    "transform_index",
]
