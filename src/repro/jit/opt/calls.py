"""Call transformations (3 IL-level of the 58; leaf-frame analysis is a
codegen flag registered alongside them).

Inlining needs a *resolver* (signature -> JMethod), supplied by the
compiler through the :class:`~repro.jit.opt.base.PassContext`; without one
(e.g. unit tests on a bare pass manager) the inliners are inert.
Argument passing is modelled faithfully: the inliner emits explicit stores
(with casts to the declared parameter types), so an inlined call computes
bit-identical results to a real one.
"""

from repro.jvm.bytecode import JType
from repro.jvm.classfile import is_intrinsic
from repro.jit.ir.block import ILBlock
from repro.jit.ir.tree import ILOp, Node
from repro.jit.opt.base import Pass

#: Pure math intrinsics: no side effects, no guest exceptions.
_PURE_INTRINSICS = frozenset({
    "java/lang/Math.sqrt", "java/lang/Math.sin", "java/lang/Math.cos",
    "java/lang/Math.abs", "java/lang/Math.max", "java/lang/Math.min",
})


def _remap_slots(node, mapping):
    for n in node.walk():
        if n.op is ILOp.LOAD or n.op is ILOp.STORE:
            n.value = mapping[n.value]
        elif n.op is ILOp.INC:
            slot, amount = n.value
            n.value = (mapping[slot], amount)


def _call_site(treetop):
    """Return (call node, result slot or None) when *treetop* is an
    anchored call, else None."""
    if treetop.op is ILOp.STORE and treetop.children[0].op is ILOp.CALL:
        return treetop.children[0], treetop.value
    if treetop.op is ILOp.TREETOP \
            and treetop.children[0].op is ILOp.CALL:
        return treetop.children[0], None
    return None


def _arg_stores(il, call, callee, mapping):
    """Stores materializing the arguments into the callee's (remapped)
    parameter slots, with casts to the declared types."""
    stores = []
    for i, (arg, ptype) in enumerate(zip(call.children,
                                         callee.param_types)):
        rhs = arg.copy()
        if rhs.type != ptype and not ptype.is_reference \
                and ptype is not JType.VOID:
            rhs = Node(ILOp.CAST, ptype, (rhs,))
        stores.append(Node(ILOp.STORE, ptype, (rhs,), mapping[i]))
    return stores


def _result_treetop(ret, result_slot, return_type):
    """Convert a callee RETURN into caller-side treetops."""
    if not ret.children:
        return []
    expr = ret.children[0]
    if result_slot is not None:
        if expr.type != return_type and not return_type.is_reference:
            expr = Node(ILOp.CAST, return_type, (expr,))
        return [Node(ILOp.STORE, return_type, (expr,), result_slot)]
    if not expr.is_pure(allow_loads=True, allow_heap_reads=True):
        return [Node(ILOp.TREETOP, JType.VOID, (expr,))]
    return []


class _InliningBase(Pass):
    max_inlines = 8

    def _callee_il(self, ctx, signature):
        from repro.jit.ir.ilgen import generate_il
        resolver = ctx.resolver
        if resolver is None:
            return None
        callee = resolver(signature)
        if callee is None:
            return None

        def rtypes(sig):
            m = resolver(sig)
            return m.return_type if m is not None else JType.INT

        il, cost = generate_il(callee, resolve_return_type=rtypes)
        ctx.cost += cost  # generating callee IL is real compile effort
        return il

    def run(self, ctx):
        il = ctx.il
        budget = self.max_inlines
        changed = False
        progress = True
        while progress and budget > 0:
            progress = False
            for block in list(il.blocks):
                for i, tt in enumerate(block.treetops):
                    site = _call_site(tt)
                    if site is None:
                        continue
                    call, result_slot = site
                    if is_intrinsic(call.value) \
                            or call.value == il.method.signature:
                        continue
                    callee_il = self._callee_il(ctx, call.value)
                    if callee_il is None \
                            or not self._inlinable(callee_il):
                        continue
                    self._splice(ctx, block, i, call, result_slot,
                                 callee_il)
                    budget -= 1
                    changed = True
                    progress = True
                    break
                if progress:
                    break
        return changed

    def _inlinable(self, callee_il):
        raise NotImplementedError

    def _splice(self, ctx, block, index, call, result_slot, callee_il):
        raise NotImplementedError


class TrivialInlining(_InliningBase):
    """Inline single-block, call-free, handler-free callees of at most 8
    treetops directly into the calling block."""

    name = "trivialInlining"
    cost_factor = 2.0
    requires = ("has_calls",)
    max_treetops = 8

    def _inlinable(self, callee_il):
        if len(callee_il.blocks) != 1 or callee_il.handlers:
            return False
        entry = callee_il.blocks[0]
        if len(entry.treetops) > self.max_treetops:
            return False
        term = entry.terminator
        if term is None or term.op is not ILOp.RETURN:
            return False
        return not any(n.op is ILOp.CALL for t in entry.treetops
                       for n in t.walk())

    def _splice(self, ctx, block, index, call, result_slot, callee_il):
        il = ctx.il
        callee = callee_il.method
        mapping = {k: il.new_temp()
                   for k in range(callee_il.num_locals)}
        new_tts = _arg_stores(il, call, callee, mapping)
        body = callee_il.blocks[0].treetops
        for tt in body[:-1]:
            copy = tt.copy()
            _remap_slots(copy, mapping)
            new_tts.append(copy)
        ret = body[-1].copy()
        _remap_slots(ret, mapping)
        new_tts.extend(_result_treetop(ret, result_slot,
                                       callee.return_type))
        block.treetops[index:index + 1] = new_tts


class AggressiveInlining(_InliningBase):
    """Inline multi-block callees (up to 5 blocks / 24 treetops, no
    handlers) by splitting the calling block and splicing the callee's
    CFG between the halves."""

    name = "aggressiveInlining"
    cost_factor = 3.0
    reshapes_cfg = True
    requires = ("has_calls",)
    max_inlines = 4
    max_blocks = 5
    max_treetops = 24

    def _inlinable(self, callee_il):
        if callee_il.handlers or len(callee_il.blocks) > self.max_blocks:
            return False
        total = sum(len(b.treetops) for b in callee_il.blocks)
        if total > self.max_treetops:
            return False
        return True

    def _splice(self, ctx, block, index, call, result_slot, callee_il):
        il = ctx.il
        callee = callee_il.method
        slot_map = {k: il.new_temp()
                    for k in range(callee_il.num_locals)}
        next_bid = il.new_block_id()
        bid_map = {b.bid: next_bid + j
                   for j, b in enumerate(callee_il.blocks)}
        cont_bid = next_bid + len(callee_il.blocks)

        # Continuation: the tail of the calling block.
        cont = ILBlock(cont_bid, bc_start=block.bc_start)
        cont.treetops = block.treetops[index + 1:]
        cont.fallthrough = block.fallthrough
        block.treetops = block.treetops[:index]
        block.treetops.extend(_arg_stores(il, call, callee, slot_map))
        block.fallthrough = bid_map[callee_il.blocks[0].bid]

        new_blocks = []
        for cb in callee_il.blocks:
            nb = ILBlock(bid_map[cb.bid], bc_start=block.bc_start)
            nb.fallthrough = (bid_map[cb.fallthrough]
                              if cb.fallthrough is not None else None)
            for tt in cb.treetops:
                copy = tt.copy()
                _remap_slots(copy, slot_map)
                if copy.op is ILOp.GOTO:
                    copy.value = bid_map[copy.value]
                elif copy.op is ILOp.IF:
                    copy.value = (copy.value[0], bid_map[copy.value[1]])
                if copy.op is ILOp.RETURN:
                    nb.treetops.extend(_result_treetop(
                        copy, result_slot, callee.return_type))
                    nb.append(Node(ILOp.GOTO, value=cont_bid))
                else:
                    nb.append(copy)
            new_blocks.append(nb)

        pos = il.blocks.index(block) + 1
        il.blocks[pos:pos] = new_blocks + [cont]
        # Inherited exception coverage: code inlined into this block is
        # protected by whatever protects the call site.
        for h in il.handlers:
            if block.bid in h.covered:
                h.covered = frozenset(
                    h.covered | set(bid_map.values()) | {cont_bid})
        ctx.invalidate()


class PureCallElimination(Pass):
    """Remove calls to pure math intrinsics whose results are discarded
    (typically left behind after other passes forwarded the value)."""

    name = "pureCallElimination"
    cost_factor = 0.5
    requires = ("has_calls",)

    def run(self, ctx):
        changed = False
        for block in ctx.il.blocks:
            kept = []
            for tt in block.treetops:
                if tt.op is ILOp.TREETOP:
                    child = tt.children[0]
                    if child.op is ILOp.CALL \
                            and child.value in _PURE_INTRINSICS \
                            and all(a.is_pure(allow_loads=True)
                                    for a in child.children):
                        changed = True
                        continue
                kept.append(tt)
            block.treetops[:] = kept
        return changed


CALL_PASSES = (
    TrivialInlining(),
    AggressiveInlining(),
    PureCallElimination(),
)
