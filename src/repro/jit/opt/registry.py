"""The registry of the 58 controllable code transformations.

Every transformation has a stable index in ``[0, NUM_TRANSFORMS)``; a
compilation-plan modifier (paper §5) is a bit vector over these indices,
where a set bit *disables* every occurrence of that transformation in the
plan.  The search space is therefore 2^58 per method, matching the paper.

Indices are append-only: models map class labels back to modifiers through
these indices, so reordering them would silently corrupt trained models.
"""

from repro.errors import CompilationError
from repro.jit.opt.base import CodegenFlagPass
from repro.jit.opt.calls import CALL_PASSES
from repro.jit.opt.checks import CHECK_PASSES
from repro.jit.opt.controlflow import CONTROLFLOW_PASSES
from repro.jit.opt.globalopts import (
    GlobalCSE,
    GlobalConstantPropagation,
    GlobalCopyPropagation,
    GlobalDCE,
    GlobalDeadStoreElimination,
)
from repro.jit.opt.localopts import LOCAL_PASSES
from repro.jit.opt.loops import LOOP_PASSES
from repro.jit.opt.simplify import SIMPLIFY_PASSES

#: Codegen-level controllable transformations (flags consumed by
#: :class:`repro.jit.codegen.lower.CodegenOptions`).
CODEGEN_FLAG_PASSES = (
    CodegenFlagPass("peepholeOptimization", "peephole"),
    CodegenFlagPass("instructionScheduling", "scheduling",
                    cost_factor=0.5),
    CodegenFlagPass("registerCoalescing", "coalescing",
                    cost_factor=0.3),
    CodegenFlagPass("addressModeFolding", "address_mode_folding"),
    CodegenFlagPass("immediateOperandFolding", "const_operand_folding"),
    CodegenFlagPass("compactNullChecks", "compact_null_checks",
                    requires=("has_checks",)),
    CodegenFlagPass("rematerialization", "rematerialization",
                    cost_factor=0.3),
    CodegenFlagPass("leafRoutineAnalysis", "leaf_frames",
                    cost_factor=0.2),
)

GLOBAL_PASSES = (
    GlobalConstantPropagation(),
    GlobalCopyPropagation(),
    GlobalCSE(),
    GlobalDeadStoreElimination(),
    GlobalDCE(),
)

#: The full ordered registry.  58 transformations, exactly as many as the
#: paper's Testarossa exposes to plan control.
ALL_TRANSFORMS = (
    SIMPLIFY_PASSES        # 13 (indices 0-12)
    + LOCAL_PASSES         # 7  (13-19)
    + GLOBAL_PASSES        # 5  (20-24)
    + CONTROLFLOW_PASSES   # 8  (25-32)
    + LOOP_PASSES          # 6  (33-38)
    + CHECK_PASSES         # 8  (39-46)
    + CALL_PASSES          # 3  (47-49)
    + CODEGEN_FLAG_PASSES  # 8  (50-57)
)

NUM_TRANSFORMS = len(ALL_TRANSFORMS)

_BY_NAME = {p.name: p for p in ALL_TRANSFORMS}
_INDEX = {p.name: i for i, p in enumerate(ALL_TRANSFORMS)}

if len(_BY_NAME) != NUM_TRANSFORMS:
    raise CompilationError("duplicate transformation names in registry")


def transform_by_name(name):
    pass_obj = _BY_NAME.get(name)
    if pass_obj is None:
        raise CompilationError(f"unknown transformation {name!r}")
    return pass_obj


def transform_index(name):
    index = _INDEX.get(name)
    if index is None:
        raise CompilationError(f"unknown transformation {name!r}")
    return index


def transform_names():
    return [p.name for p in ALL_TRANSFORMS]
