"""Pass framework.

A :class:`Pass` transforms an :class:`~repro.jit.ir.block.ILMethod` in
place and reports whether it changed anything.  The
:class:`PassManager` runs the plan's ordered transformation list, skipping
entries disabled by the active modifier or inapplicable to the method, and
charges deterministic compile cycles per pass in proportion to the IL size
it had to examine (plus each pass's relative cost factor) -- that charge is
the "compilation effort" side of the paper's central trade-off.
"""

from repro.errors import CompilationError
from repro.jit.ir.cfg import CFGInfo
from repro.telemetry import get_tracer

#: Base compile-cycles charged per IL node examined per pass.
COST_PER_NODE = 18


class PassContext:
    """Shared state across the passes of one compilation.

    Caches CFG facts (invalidated by passes that reshape control flow) and
    accumulates compile cost.  ``resolver`` maps a call signature to the
    callee :class:`~repro.jvm.classfile.JMethod` (used by inlining);
    ``debug_check`` re-validates IL integrity after every pass.
    """

    def __init__(self, ilmethod, resolver=None, debug_check=False):
        self.il = ilmethod
        self.resolver = resolver
        self.debug_check = debug_check
        self.cost = 0
        self._cfg = None
        #: Method-characteristic facts computed once (and refreshed when
        #: the CFG changes); used by ``Pass.applicable``.
        self._facts = None

    def cfg(self):
        if self._cfg is None:
            self._cfg = CFGInfo(self.il)
        return self._cfg

    def invalidate(self):
        self._cfg = None
        self._facts = None

    def facts(self):
        if self._facts is None:
            self._facts = _method_facts(self.il, self.cfg())
        return self._facts

    def charge(self, pass_obj, nodes):
        self.cost += int(COST_PER_NODE * pass_obj.cost_factor
                         * max(nodes, 1))


def _method_facts(il, cfg):
    from repro.jit.ir.tree import ILOp
    has_loops = bool(cfg.loops)
    has_allocs = False
    has_monitors = False
    has_calls = False
    has_checks = False
    has_throws = False
    has_arrays = False
    for _b, t in il.iter_treetops():
        for n in t.walk():
            op = n.op
            if op in (ILOp.NEW, ILOp.NEWARRAY, ILOp.NEWMULTIARRAY):
                has_allocs = True
            elif op in (ILOp.MONITORENTER, ILOp.MONITOREXIT):
                has_monitors = True
            elif op is ILOp.CALL:
                has_calls = True
            elif op in (ILOp.NULLCHK, ILOp.BNDCHK, ILOp.CHECKCAST):
                has_checks = True
            elif op is ILOp.ATHROW:
                has_throws = True
            elif op in (ILOp.ALOAD, ILOp.ASTORE, ILOp.ARRAYLENGTH,
                        ILOp.ARRAYCOPY, ILOp.ARRAYCMP):
                has_arrays = True
    return {
        "has_loops": has_loops,
        "has_allocations": has_allocs,
        "has_monitors": has_monitors,
        "has_calls": has_calls,
        "has_checks": has_checks,
        "has_throws": has_throws,
        "has_arrays": has_arrays,
        "is_strictfp": il.method.is_strictfp,
        "has_handlers": bool(il.handlers),
    }


class Pass:
    """Base class of all IL-level transformations."""

    #: Stable transformation name (used in plans and the registry).
    name = "abstract"
    #: Relative compile-cost multiplier (cheap pattern passes < 1,
    #: whole-CFG dataflow passes > 1).
    cost_factor = 1.0
    #: Fact names from ``PassContext.facts()`` that must all be true for
    #: this pass to be worth running at all.
    requires = ()
    #: Whether the pass may reshape the CFG (blocks/edges), forcing CFG
    #: facts to be recomputed.
    reshapes_cfg = False

    def applicable(self, ctx):
        facts = ctx.facts()
        return all(facts.get(r, False) for r in self.requires)

    def run(self, ctx):
        """Transform ``ctx.il``; return True when something changed."""
        raise NotImplementedError

    def execute(self, ctx):
        ctx.charge(self, ctx.il.count_nodes())
        if not self.applicable(ctx):
            return False
        changed = bool(self.run(ctx))
        if changed and self.reshapes_cfg:
            ctx.invalidate()
        if changed and ctx.debug_check:
            try:
                ctx.il.check()
            except CompilationError as exc:
                raise CompilationError(
                    f"pass {self.name} corrupted IL: {exc}") from exc
        return changed

    def __repr__(self):
        return f"<Pass {self.name}>"


class CodegenFlagPass(Pass):
    """A controllable transformation realized inside the code generator.

    Running it merely records the corresponding flag in
    ``il.notes['codegen_flags']``; the compiler translates the collected
    flags into :class:`~repro.jit.codegen.lower.CodegenOptions`.
    """

    cost_factor = 0.1
    flag = None

    def __init__(self, name, flag, cost_factor=0.1, requires=()):
        self.name = name
        self.flag = flag
        self.cost_factor = cost_factor
        self.requires = tuple(requires)

    def run(self, ctx):
        flags = ctx.il.notes.setdefault("codegen_flags", set())
        if self.flag in flags:
            return False
        flags.add(self.flag)
        return True


class PassTimer:
    """Times pass executions for the active tracer.

    One instance covers one compilation: because every pass funnels
    through :meth:`run` inside the :class:`PassManager` loop, all 58
    registry transformations are observable without touching a single
    pass implementation.  Each span records the pass's host time plus
    the virtual compile cycles it charged and whether it changed the
    IL.  With the null tracer, :meth:`run` is a single attribute check
    on top of the untimed call.
    """

    __slots__ = ("tracer", "method_sig")

    def __init__(self, tracer, ilmethod):
        self.tracer = tracer
        self.method_sig = ilmethod.method.signature

    def run(self, pass_obj, ctx):
        """Execute *pass_obj* under a ``pass`` span; returns changed."""
        tracer = self.tracer
        if not tracer.enabled:
            return pass_obj.execute(ctx)
        before = ctx.cost
        with tracer.span("pass." + pass_obj.name, cat="pass",
                         method=self.method_sig) as span:
            changed = pass_obj.execute(ctx)
            span.set(changed=bool(changed),
                     cost_cycles=ctx.cost - before)
        return changed


class PassManager:
    """Runs a compilation plan's transformations under a modifier mask."""

    def __init__(self, plan_entries, modifier=None, resolver=None,
                 debug_check=False):
        """*plan_entries*: ordered list of transformation names.

        *modifier*: a :class:`repro.jit.modifiers.Modifier` (or None for
        the unmodified plan); a disabled bit suppresses every occurrence
        of that transformation in the plan.
        """
        self.plan_entries = list(plan_entries)
        self.modifier = modifier
        self.resolver = resolver
        self.debug_check = debug_check

    def optimize(self, ilmethod):
        """Run the plan; returns ``(ilmethod, compile_cost, log)``."""
        from repro.jit.opt.registry import transform_by_name, \
            transform_index
        ctx = PassContext(ilmethod, resolver=self.resolver,
                          debug_check=self.debug_check)
        timer = PassTimer(get_tracer(), ilmethod)
        log = []
        for entry in self.plan_entries:
            pass_obj = transform_by_name(entry)
            if self.modifier is not None and self.modifier.disabled(
                    transform_index(entry)):
                continue
            changed = timer.run(pass_obj, ctx)
            log.append((entry, changed))
        return ilmethod, ctx.cost, log
