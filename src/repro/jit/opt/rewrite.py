"""Shared machinery for tree-rewriting passes.

``TreeRewriter`` applies a node-level rewrite function bottom-up to every
tree in the method and counts changes.  ``fold_binary``/``fold_unary``
evaluate constant subtrees with exactly the interpreter's semantics
(masking, truncation toward zero, NaN ordering), so folding can never
change observable behaviour.
"""

import math

from repro.jvm.bytecode import JType, convert_to_integral, mask_integral
from repro.jvm.interpreter import coerce
from repro.jit.ir.tree import ILOp, Node


def fold_binary(op, jtype, a, b):
    """Evaluate a binary ALU op on constants; None when not foldable."""
    if op is ILOp.ADD:
        return coerce(a + b, jtype)
    if op is ILOp.SUB:
        return coerce(a - b, jtype)
    if op is ILOp.MUL:
        return coerce(a * b, jtype)
    if op in (ILOp.DIV, ILOp.REM):
        if jtype.is_floating:
            if b == 0:
                if op is ILOp.REM:
                    return math.nan
                return (math.inf if a > 0 else -math.inf if a < 0
                        else math.nan)
            return a / b if op is ILOp.DIV else math.fmod(a, b)
        if b == 0:
            return None  # must throw at run time
        q = abs(a) // abs(b)
        if (a < 0) != (b < 0):
            q = -q
        return coerce(q if op is ILOp.DIV else a - q * b, jtype)
    if op in (ILOp.SHL, ILOp.SHR):
        bits = 63 if jtype is JType.LONG else 31
        t = jtype if jtype is JType.LONG else JType.INT
        r = (int(a) << (int(b) & bits) if op is ILOp.SHL
             else int(a) >> (int(b) & bits))
        return mask_integral(r, t)
    if op is ILOp.OR:
        return coerce(int(a) | int(b), jtype)
    if op is ILOp.AND:
        return coerce(int(a) & int(b), jtype)
    if op is ILOp.XOR:
        return coerce(int(a) ^ int(b), jtype)
    if op is ILOp.CMP:
        if isinstance(a, float) and math.isnan(a):
            return -1
        if isinstance(b, float) and math.isnan(b):
            return -1
        return (a > b) - (a < b)
    return None


def fold_unary(op, jtype, a):
    if op is ILOp.NEG:
        return coerce(-a, jtype)
    if op is ILOp.CAST:
        if jtype.is_floating:
            return float(a)
        return convert_to_integral(a, jtype)
    return None


class TreeRewriter:
    """Applies ``rewrite(node) -> Node | None`` bottom-up to the method."""

    def __init__(self, rewrite):
        self.rewrite = rewrite
        self.changes = 0

    def apply(self, ilmethod):
        for _block, treetop in ilmethod.iter_treetops():
            self._visit_children(treetop)
        return self.changes

    def _visit_children(self, node):
        for child in node.children:
            self._visit(child)

    def _visit(self, node):
        self._visit_children(node)
        replacement = self.rewrite(node)
        if replacement is not None and replacement is not node:
            node.replace_with(replacement)
            self.changes += 1
            # The replacement may expose further opportunities directly
            # at this node (e.g. neg(neg(x)) introduced by a rewrite).
            again = self.rewrite(node)
            if again is not None and again is not node:
                node.replace_with(again)
                self.changes += 1


def is_power_of_two(value):
    return isinstance(value, int) and value > 0 and (value & (value - 1)) == 0


def log2(value):
    return value.bit_length() - 1
