"""Tree-level simplification transformations (12 of the 58).

Each pass rewrites expression trees bottom-up using semantics-preserving
algebraic identities.  They are deliberately split finely -- constant
folding for integer, floating-point and BCD-decimal types are *separate
controllable transformations* (floating-point folding must respect
``strictfp``), mirroring the granularity at which a production compiler
exposes its optimizer to plan control.
"""

from repro.jvm.bytecode import JType
from repro.jvm.intrinsics import INTRINSICS
from repro.jit.ir.tree import (
    BINARY_ALU,
    ILOp,
    Node,
    RELOP_NEGATE,
)
from repro.jit.opt.base import Pass
from repro.jit.opt.rewrite import (
    TreeRewriter,
    fold_binary,
    fold_unary,
    is_power_of_two,
    log2,
)


class _RewritePass(Pass):
    """Base for passes expressible as a single bottom-up rewrite."""

    def run(self, ctx):
        rewriter = TreeRewriter(self.rewrite)
        return rewriter.apply(ctx.il) > 0

    def rewrite(self, node):
        raise NotImplementedError


def _both_const(node):
    return (len(node.children) == 2 and node.children[0].is_const()
            and node.children[1].is_const())


class ConstantFolding(_RewritePass):
    """Fold integral ALU expressions with constant operands."""

    name = "constantFolding"
    cost_factor = 0.5

    def rewrite(self, node):
        if node.op in BINARY_ALU and _both_const(node) \
                and (node.type.is_integral or node.op is ILOp.CMP):
            a, b = node.children
            if not (isinstance(a.value, (int, float))
                    and isinstance(b.value, (int, float))):
                return None
            folded = fold_binary(node.op, node.type, a.value, b.value)
            if folded is not None:
                out_type = JType.INT if node.op is ILOp.CMP else node.type
                return Node.const(out_type, folded)
        if node.op is ILOp.NEG and node.children[0].is_const() \
                and node.type.is_integral:
            return Node.const(node.type,
                              fold_unary(ILOp.NEG, node.type,
                                         node.children[0].value))
        return None


class FPConstantFolding(_RewritePass):
    """Fold floating-point ALU expressions (not under ``strictfp``)."""

    name = "fpConstantFolding"
    cost_factor = 0.5

    def applicable(self, ctx):
        return not ctx.facts()["is_strictfp"]

    def rewrite(self, node):
        if node.op in BINARY_ALU and node.type.is_floating \
                and _both_const(node):
            a, b = node.children
            folded = fold_binary(node.op, node.type, a.value, b.value)
            if folded is not None:
                return Node.const(node.type, folded)
        if node.op is ILOp.NEG and node.type.is_floating \
                and node.children[0].is_const():
            return Node.const(node.type, -float(node.children[0].value))
        return None


class DecimalConstantFolding(_RewritePass):
    """Fold packed/zoned BCD-decimal ALU expressions."""

    name = "decimalConstantFolding"
    cost_factor = 0.5

    def rewrite(self, node):
        if node.op in BINARY_ALU and node.type.is_decimal \
                and _both_const(node):
            a, b = node.children
            folded = fold_binary(node.op, node.type, a.value, b.value)
            if folded is not None:
                return Node.const(node.type, folded)
        return None


class ArithmeticSimplification(_RewritePass):
    """Identity elimination: x+0, x-0, x*1, x/1, x|0, x^0, x&-1, shifts
    by zero."""

    name = "arithmeticSimplification"
    cost_factor = 0.5

    def rewrite(self, node):
        if len(node.children) != 2:
            return None
        a, b = node.children
        op = node.op
        if b.is_const() and isinstance(b.value, (int, float)):
            v = b.value
            if op in (ILOp.ADD, ILOp.SUB, ILOp.OR, ILOp.XOR, ILOp.SHL,
                      ILOp.SHR) and v == 0 and a.type == node.type:
                return a
            if op in (ILOp.MUL, ILOp.DIV) and v == 1 \
                    and a.type == node.type:
                return a
            if op is ILOp.AND and v == -1 and a.type == node.type:
                return a
        if a.is_const() and isinstance(a.value, (int, float)):
            v = a.value
            if op in (ILOp.ADD, ILOp.OR, ILOp.XOR) and v == 0 \
                    and b.type == node.type:
                return b
            if op is ILOp.MUL and v == 1 and b.type == node.type:
                return b
        return None


class ZeroPropagation(_RewritePass):
    """Annihilators: x*0 -> 0, x&0 -> 0, x-x -> 0, x^x -> 0, x|x -> x,
    x&x -> x (pure x only: the discarded operand must have no effects)."""

    name = "zeroPropagation"
    cost_factor = 0.5

    def rewrite(self, node):
        if len(node.children) != 2:
            return None
        a, b = node.children
        op = node.op
        pure_a = a.is_pure(allow_loads=True)
        pure_b = b.is_pure(allow_loads=True)
        if op in (ILOp.MUL, ILOp.AND) and node.type.is_integral:
            if b.is_const() and b.value == 0 and pure_a:
                return Node.const(node.type, 0)
            if a.is_const() and a.value == 0 and pure_b:
                return Node.const(node.type, 0)
        if pure_a and pure_b and a.key() == b.key() \
                and node.type.is_integral:
            if op in (ILOp.SUB, ILOp.XOR):
                return Node.const(node.type, 0)
            if op in (ILOp.OR, ILOp.AND):
                return a
        return None


class MulToShift(_RewritePass):
    """Strength reduction: integral multiply by 2^k -> left shift."""

    name = "mulToShift"
    cost_factor = 0.4

    def rewrite(self, node):
        if node.op is ILOp.MUL and node.type in (JType.INT, JType.LONG):
            a, b = node.children
            if b.is_const() and is_power_of_two(b.value) and b.value > 1:
                return Node(ILOp.SHL, node.type,
                            (a, Node.const(JType.INT, log2(b.value))))
            if a.is_const() and is_power_of_two(a.value) and a.value > 1:
                return Node(ILOp.SHL, node.type,
                            (b, Node.const(JType.INT, log2(a.value))))
        return None


class DivRemToShiftMask(_RewritePass):
    """Strength reduction of division/remainder by 2^k for operands that
    are provably non-negative (array lengths, masked values, comparison
    results); Java's truncate-toward-zero semantics forbid a plain
    arithmetic shift for possibly-negative operands."""

    name = "divRemToShiftMask"
    cost_factor = 0.4

    @staticmethod
    def _non_negative(node):
        if node.op is ILOp.ARRAYLENGTH:
            return True
        if node.op is ILOp.CONST and isinstance(node.value, int):
            return node.value >= 0
        if node.op is ILOp.AND:
            return any(c.is_const() and isinstance(c.value, int)
                       and c.value >= 0 for c in node.children)
        if node.op in (ILOp.REM,):
            d = node.children[1]
            return d.is_const() and d.value > 0 and \
                DivRemToShiftMask._non_negative(node.children[0])
        if node.op is ILOp.SHR:
            return DivRemToShiftMask._non_negative(node.children[0])
        return False

    def rewrite(self, node):
        if node.op not in (ILOp.DIV, ILOp.REM):
            return None
        if node.type not in (JType.INT, JType.LONG):
            return None
        a, b = node.children
        if not (b.is_const() and is_power_of_two(b.value) and b.value > 1):
            return None
        if not self._non_negative(a):
            return None
        if node.op is ILOp.DIV:
            return Node(ILOp.SHR, node.type,
                        (a, Node.const(JType.INT, log2(b.value))))
        return Node(ILOp.AND, node.type,
                    (a, Node.const(node.type, b.value - 1)))


class Reassociation(_RewritePass):
    """Constant re-grouping: (x op c1) op c2 -> x op (c1 op c2) for
    associative integral ADD/MUL/AND/OR/XOR."""

    name = "reassociation"
    cost_factor = 0.5

    _ASSOC = (ILOp.ADD, ILOp.MUL, ILOp.AND, ILOp.OR, ILOp.XOR)

    def rewrite(self, node):
        op = node.op
        if op not in self._ASSOC or not node.type.is_integral:
            return None
        a, b = node.children
        if not b.is_const():
            return None
        if a.op is op and a.type == node.type \
                and a.children[1].is_const():
            inner_x, c1 = a.children
            folded = fold_binary(op, node.type, c1.value, b.value)
            if folded is not None:
                return Node(op, node.type,
                            (inner_x, Node.const(node.type, folded)))
        return None


class CmpSimplification(_RewritePass):
    """``cmp(x, 0)`` feeding a sign test is redundant for integral x: the
    comparison result has the same sign as x, so the IF can test x
    directly.  Also folds constant-vs-constant comparisons."""

    name = "cmpSimplification"
    cost_factor = 0.5

    def run(self, ctx):
        changed = TreeRewriter(self.rewrite).apply(ctx.il)
        # IF(relop, cmp(x, const 0)) -> IF(relop, x) for integral x.
        for _block, tt in ctx.il.iter_treetops():
            if tt.op is ILOp.IF:
                cond = tt.children[0]
                if cond.op is ILOp.CMP:
                    x, zero = cond.children
                    if zero.is_const() and zero.value == 0 \
                            and x.type in (JType.INT, JType.LONG,
                                           JType.BYTE, JType.SHORT):
                        tt.children[0] = x
                        changed += 1
        return changed > 0

    def rewrite(self, node):
        if node.op is ILOp.CMP and _both_const(node):
            a, b = node.children
            if isinstance(a.value, (int, float)) \
                    and isinstance(b.value, (int, float)):
                folded = fold_binary(ILOp.CMP, JType.INT,
                                     a.value, b.value)
                return Node.const(JType.INT, folded)
        return None


class NegSimplification(_RewritePass):
    """neg(neg(x)) -> x; 0 - x -> neg(x); x + neg(y) -> x - y."""

    name = "negSimplification"
    cost_factor = 0.4

    def rewrite(self, node):
        if node.op is ILOp.NEG:
            inner = node.children[0]
            if inner.op is ILOp.NEG and inner.type == node.type:
                return inner.children[0]
        if node.op is ILOp.SUB:
            a, b = node.children
            if a.is_const() and a.value == 0 and b.type == node.type:
                return Node(ILOp.NEG, node.type, (b,))
        if node.op is ILOp.ADD:
            a, b = node.children
            if b.op is ILOp.NEG and b.type == node.type:
                return Node(ILOp.SUB, node.type, (a, b.children[0]))
        return None


class CastSimplification(_RewritePass):
    """Drop identity casts; fold casts of constants; collapse a widening
    cast chain that returns to the original type."""

    name = "castSimplification"
    cost_factor = 0.4

    _WIDENS = {
        (JType.BYTE, JType.SHORT), (JType.BYTE, JType.INT),
        (JType.BYTE, JType.LONG), (JType.SHORT, JType.INT),
        (JType.SHORT, JType.LONG), (JType.INT, JType.LONG),
        (JType.FLOAT, JType.DOUBLE),
    }

    def rewrite(self, node):
        if node.op is not ILOp.CAST:
            return None
        inner = node.children[0]
        if inner.type == node.type:
            return inner
        if inner.is_const() and isinstance(inner.value, (int, float)) \
                and (node.type.is_integral or node.type.is_floating
                     or node.type.is_decimal):
            return Node.const(node.type,
                              fold_unary(ILOp.CAST, node.type,
                                         inner.value))
        if inner.op is ILOp.CAST:
            # cast_T(cast_W(x)) == cast_T(x) when x -> W was widening.
            src = inner.children[0]
            if (src.type, inner.type) in self._WIDENS:
                return Node(ILOp.CAST, node.type, (src,))
        return None


class MathSimplification(_RewritePass):
    """Algebra on math intrinsics: fold constant-argument calls and
    collapse max/min with structurally identical operands."""

    name = "mathSimplification"
    cost_factor = 0.4

    _FOLDABLE = ("java/lang/Math.sqrt", "java/lang/Math.abs",
                 "java/lang/Math.max", "java/lang/Math.min",
                 "java/lang/Math.sin", "java/lang/Math.cos")

    def rewrite(self, node):
        if node.op is not ILOp.CALL or node.value not in self._FOLDABLE:
            return None
        args = node.children
        if all(a.is_const() and isinstance(a.value, (int, float))
               for a in args):
            _n, rtype, _cost, fn = INTRINSICS[node.value]
            return Node.const(rtype,
                              float(fn(*[a.value for a in args])))
        if node.value in ("java/lang/Math.max", "java/lang/Math.min") \
                and len(args) == 2:
            a, b = args
            if a.is_pure(allow_loads=True) and a.key() == b.key():
                if a.type == node.type:
                    return a
                return Node(ILOp.CAST, node.type, (a,))
        return None


class TreeCleanup(Pass):
    """Composite cleanup: one round of constant folding plus identity and
    comparison simplification.  Larger plans repeat this after each major
    structural pass (the "multiple application of some transformations
    that are used as cleanup steps" of paper §2)."""

    name = "treeCleanup"
    cost_factor = 0.8

    def __init__(self):
        self._parts = (ConstantFolding(), ArithmeticSimplification(),
                       ZeroPropagation(), CmpSimplification(),
                       CastSimplification())

    def run(self, ctx):
        changed = False
        for part in self._parts:
            if part.applicable(ctx) and part.run(ctx):
                changed = True
        return changed


SIMPLIFY_PASSES = (
    ConstantFolding(),
    FPConstantFolding(),
    DecimalConstantFolding(),
    ArithmeticSimplification(),
    ZeroPropagation(),
    MulToShift(),
    DivRemToShiftMask(),
    Reassociation(),
    CmpSimplification(),
    NegSimplification(),
    CastSimplification(),
    MathSimplification(),
    TreeCleanup(),
)
