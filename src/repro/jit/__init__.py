"""The JIT compiler (the Testarossa analogue).

Pipeline: bytecode -> tree-form IL (`ir`), an ordered list of code
transformations selected by the active compilation plan and filtered by a
compilation-plan *modifier* (`opt`, `plans`, `modifiers`), then lowering to
a virtual native ISA with register allocation (`codegen`).  `control`
implements the adaptive compilation controller (five optimization levels,
invocation counters + sampling), and `compiler` is the facade tying it all
together.

Public names are re-exported lazily (PEP 562) so that subsystems such as
the feature extractor can import IL definitions without triggering the
full compiler import chain.
"""

_EXPORTS = {
    "JitCompiler": ("repro.jit.compiler", "JitCompiler"),
    "CompiledMethod": ("repro.jit.compiler", "CompiledMethod"),
    "OptLevel": ("repro.jit.plans", "OptLevel"),
    "CompilationPlan": ("repro.jit.plans", "CompilationPlan"),
    "default_plans": ("repro.jit.plans", "default_plans"),
    "Modifier": ("repro.jit.modifiers", "Modifier"),
    "ModifierQueue": ("repro.jit.modifiers", "ModifierQueue"),
    "CompilationManager": ("repro.jit.control", "CompilationManager"),
    "ControlConfig": ("repro.jit.control", "ControlConfig"),
}

__all__ = list(_EXPORTS)


def __getattr__(name):
    entry = _EXPORTS.get(name)
    if entry is None:
        raise AttributeError(f"module 'repro.jit' has no attribute "
                             f"{name!r}")
    import importlib
    module = importlib.import_module(entry[0])
    value = getattr(module, entry[1])
    globals()[name] = value
    return value
