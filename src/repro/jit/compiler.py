"""The JIT compiler facade.

``JitCompiler.compile`` runs the full pipeline of the paper's Figure 1 for
one method: IL generation, feature extraction (just prior to the
optimization stage, §4.1), the optimizer under the selected plan and
modifier, then code generation.  The returned :class:`CompiledMethod`
carries the compile-cycle cost -- the "compilation effort" half of the
trade-off the learned models optimize.
"""

from repro.errors import CompilationError
from repro.features import extract_features
from repro.jit.codegen import native as native_mod
from repro.jit.codegen.lower import CodegenOptions, lower_method
from repro.jit.codegen.superop import SUPEROP_LEVEL
from repro.jit.ir.cfg import CFGInfo
from repro.jit.ir.ilgen import generate_il
from repro.jit.modifiers import Modifier
from repro.jit.opt.base import PassManager
from repro.jit.plans import OptLevel, default_plans
from repro.telemetry import get_tracer


class CompiledMethod:
    """A compiled method version: executable code plus provenance."""

    __slots__ = ("method", "level", "modifier", "native",
                 "compile_cycles", "features", "install_time",
                 "pass_log", "profile", "persisted_profile")

    def __init__(self, method, level, modifier, native, compile_cycles,
                 features, pass_log=()):
        self.method = method
        self.level = level
        self.modifier = modifier
        self.native = native
        self.compile_cycles = compile_cycles
        self.features = features
        self.install_time = 0  # set by the compilation manager
        self.pass_log = pass_log
        # When the controller arms branch profiling (pre-scorching),
        # it installs the profile dict here; executions feed it.
        self.profile = None
        # Set by the code cache on loaded bodies: the branch profile
        # persisted with the entry ({} when the entry carried none).
        # None means "compiled fresh this run, not loaded".
        self.persisted_profile = None

    def execute(self, vm, args):
        return self.native.execute(vm, args, profile=self.profile)

    def __repr__(self):
        return (f"CompiledMethod({self.method.signature}, "
                f"{self.level.name}, {self.compile_cycles} cyc, "
                f"{self.native.size()} instrs)")


class JitCompiler:
    """Compiles guest methods at one of five optimization levels.

    Parameters
    ----------
    method_resolver:
        Callable ``signature -> JMethod`` used to type call results and to
        feed the inliners; usually ``vm.lookup`` wrapped to return None
        for missing methods.
    plans:
        Level -> :class:`~repro.jit.plans.CompilationPlan`; defaults to
        the hand-tuned plans.
    debug_check:
        Re-validate IL integrity after every pass (slow; for tests).
    """

    def __init__(self, method_resolver=None, plans=None,
                 debug_check=False):
        self.method_resolver = method_resolver
        self.plans = plans or default_plans()
        self.debug_check = debug_check
        self.stats = {"compilations": 0, "compile_cycles": 0,
                      "superop_compilations": 0}
        # Host-tier hook: bodies compiled at this level or above are
        # fused into superop programs at install time (see
        # :mod:`repro.jit.codegen.superop`).  The adaptive controller
        # syncs :attr:`ControlConfig.superop_level` onto this.
        self.superop_level = SUPEROP_LEVEL

    # -- helpers ---------------------------------------------------------

    def _resolve_return_type(self, signature):
        if self.method_resolver is None:
            return None
        method = self.method_resolver(signature)
        return method.return_type if method is not None else None

    def extract_method_features(self, method):
        """Features as the data-collection path sees them (fresh IL)."""
        il, _ = generate_il(method, self._rtype_fn())
        return extract_features(il)

    def choose_modifier(self, method, level, strategy):
        """Resolve the plan modifier exactly as :meth:`compile` would.

        Runs IL generation and feature extraction but not the optimizer
        or codegen.  The code-cache probe uses this to learn the cache
        key *before* deciding whether a compilation is needed at all;
        passing the result back to :meth:`compile` as the explicit
        *modifier* keeps stateful strategies at one ``choose_modifier``
        call per compilation, same as the uncached path.
        """
        if strategy is None:
            return Modifier.null()
        il, _ = generate_il(method, self._rtype_fn())
        features = extract_features(il, cfg=CFGInfo(il))
        modifier = strategy.choose_modifier(method, level, features)
        return modifier if modifier is not None else Modifier.null()

    def _rtype_fn(self):
        if self.method_resolver is None:
            return None

        def fn(signature):
            rtype = self._resolve_return_type(signature)
            if rtype is None:
                raise CompilationError(
                    f"cannot resolve return type of {signature}")
            return rtype

        return fn

    # -- the pipeline ---------------------------------------------------------

    def compile(self, method, level, modifier=None, strategy=None,
                profile=None):
        """Compile *method* at *level*.

        The plan modifier comes from, in priority order: the explicit
        *modifier* argument, the *strategy* object (its
        ``choose_modifier(method, level, features)`` is called with the
        freshly extracted features -- this is where the learned model or
        the data-collection exploration plugs in), or the null modifier.

        *profile*, when supplied, is a branch profile gathered by the
        previous compiled version's instrumentation (keys:
        ``(block bytecode pc, taken) -> count``); the scorching-level
        feedback-directed transformations consume it.
        """
        if not isinstance(level, OptLevel):
            raise CompilationError(f"not an OptLevel: {level!r}")
        tracer = get_tracer()
        with tracer.span("jit.compile", cat="jit",
                         method=method.signature,
                         level=level.name) as span:
            with tracer.span("jit.ilgen", cat="jit",
                             method=method.signature):
                il, ilgen_cost = generate_il(method, self._rtype_fn())
            features = extract_features(il, cfg=CFGInfo(il))
            if modifier is None and strategy is not None:
                modifier = strategy.choose_modifier(method, level,
                                                    features)
            if modifier is None:
                modifier = Modifier.null()

            plan = self.plans[level]
            manager = PassManager(plan.entries, modifier,
                                  resolver=self.method_resolver,
                                  debug_check=self.debug_check)
            if profile:
                il.notes["branch_profile"] = dict(profile)
            with tracer.span("jit.optimize", cat="jit",
                             method=method.signature,
                             plan_entries=len(plan.entries)):
                il, opt_cost, pass_log = manager.optimize(il)

            options = self._codegen_options(il)
            with tracer.span("jit.codegen", cat="jit",
                             method=method.signature):
                native, lower_cost = lower_method(il, options)

            total = ilgen_cost + opt_cost + lower_cost
            self.stats["compilations"] += 1
            self.stats["compile_cycles"] += total
            # Predecode eagerly: install time is the one place we know
            # the body is final, and paying it here keeps the first
            # compiled invocation off the slow path.
            native.predecode()
            # Host tier: fuse hot bodies into superop programs, also off
            # the hot path.  Host-only work -- no virtual cycles charged.
            if native_mod.USE_SUPEROP and level >= self.superop_level:
                with tracer.span("jit.superop", cat="jit",
                                 method=method.signature,
                                 level=level.name) as sspan:
                    program = native.superop()
                    sspan.set(blocks=len(program.blocks),
                              fused=program.n_fused,
                              handler_calls=program.n_handler_calls)
                self.stats["superop_compilations"] += 1
            span.set(compile_cycles=total,
                     modifier_bits=int(modifier.bits),
                     fdo=bool(profile),
                     instructions=native.size())
            return CompiledMethod(method, level, modifier, native,
                                  total, features, pass_log)

    @staticmethod
    def _codegen_options(il):
        flags = il.notes.get("codegen_flags", set())
        return CodegenOptions(
            const_operand_folding="const_operand_folding" in flags,
            address_mode_folding="address_mode_folding" in flags,
            leaf_frames="leaf_frames" in flags,
            compact_null_checks="compact_null_checks" in flags,
            peephole="peephole" in flags,
            scheduling="scheduling" in flags,
            coalescing="coalescing" in flags,
            rematerialization="rematerialization" in flags,
            stack_alloc_ids=frozenset(
                il.notes.get("codegen_stack_alloc", ())),
        )
