"""IL generation: bytecode -> tree-form IL.

Classic abstract interpretation of the operand stack.  Design rules that
the optimizer relies on:

* Side-effecting value producers (calls, allocations) are *anchored*: the
  IL generator stores their result to a fresh temp in a dedicated treetop
  and pushes a LOAD of that temp, so expressions beneath treetops contain
  only computation and heap reads.
* Null checks and array-bounds checks are materialized as explicit NULLCHK
  / BNDCHK treetops immediately before the access, exactly like
  Testarossa's check trees; check-elimination passes delete them.  Safety
  does not depend on them: the native simulator re-validates on access
  (the moral analogue of the hardware trap), so removing a check never
  changes observable behaviour, only cost.
* Each local slot has a single static type, established by the method
  signature and the first store; the synthetic workload generator and the
  assembler-built tests respect this invariant (mirroring javac output).

The generator also assigns each block its bytecode start pc so handler
scopes can be mapped to block sets.
"""

from repro.errors import CompilationError
from repro.jvm.bytecode import COND_BRANCHES, JType, Op
from repro.jvm.interpreter import promote
from repro.jit.ir.tree import ILOp, Node
from repro.jit.ir.block import ILBlock, ILHandler, ILMethod

#: Cost in compile-cycles charged per bytecode translated (Figure 1's IL
#: Generator stage).
ILGEN_COST_PER_BYTECODE = 28

_COND_TO_RELOP = {
    Op.IFEQ: "eq", Op.IFNE: "ne", Op.IFLT: "lt",
    Op.IFLE: "le", Op.IFGT: "gt", Op.IFGE: "ge",
}

_ALU_BINOPS = {
    Op.ADD: ILOp.ADD, Op.SUB: ILOp.SUB, Op.MUL: ILOp.MUL,
    Op.DIV: ILOp.DIV, Op.REM: ILOp.REM, Op.SHL: ILOp.SHL,
    Op.SHR: ILOp.SHR, Op.OR: ILOp.OR, Op.AND: ILOp.AND, Op.XOR: ILOp.XOR,
}

#: Guest field-name convention establishing static field types (the
#: substitute for the constant pool's field descriptors): ``*_d`` double,
#: ``*_f`` float, ``*_l`` long, ``*_o`` object, ``*_a`` array, else int.
_FIELD_SUFFIX_TYPES = {
    "_d": JType.DOUBLE, "_f": JType.FLOAT, "_l": JType.LONG,
    "_o": JType.OBJECT, "_a": JType.ADDRESS,
}


def field_type(name):
    """Static type of a guest field, derived from its descriptor suffix."""
    return _FIELD_SUFFIX_TYPES.get(name[-2:], JType.INT)


def _leaders(method):
    """Bytecode pcs that start a basic block."""
    leaders = {0}
    code = method.code
    for pc, ins in enumerate(code):
        if ins.op is Op.GOTO or ins.op in COND_BRANCHES:
            leaders.add(ins.a)
            if pc + 1 < len(code):
                leaders.add(pc + 1)
        elif ins.op in (Op.RET, Op.RETVAL, Op.ATHROW):
            if pc + 1 < len(code):
                leaders.add(pc + 1)
    for h in method.handlers:
        leaders.add(h.handler_pc)
        leaders.add(h.start_pc)
        if h.end_pc < len(code):
            leaders.add(h.end_pc)
    return sorted(leaders)


class _BlockBuilder:
    """Per-block simulation state."""

    def __init__(self, ilgen, block):
        self.g = ilgen
        self.block = block
        self.stack = []

    def push(self, node):
        self.stack.append(node)

    def pop(self):
        if not self.stack:
            raise CompilationError(
                f"{self.g.method.signature}: operand stack underflow "
                f"in block b{self.block.bid}")
        return self.stack.pop()

    def emit(self, node):
        self.block.append(node)

    def anchor(self, node):
        """Return a cheap pure node for *node*, storing it if needed."""
        if node.op in (ILOp.LOAD, ILOp.CONST, ILOp.CATCH):
            return node
        temp = self.g.new_temp()
        self.emit(Node(ILOp.STORE, node.type, (node,), temp))
        return Node.load(temp, node.type)

    def anchor_if_impure(self, node):
        if node.is_pure(allow_loads=True, allow_heap_reads=False):
            return node
        return self.anchor(node)


class ILGenerator:
    """Translates one :class:`JMethod` to an :class:`ILMethod`."""

    def __init__(self, method):
        self.method = method
        self.num_locals = method.max_locals
        self.slot_types = list(method.param_types) + (
            [JType.INT] * method.num_temps)
        # Element type per slot known to hold an array (for typed ALOADs).
        self.elem_types = dict(getattr(method, "array_elems", None) or {})
        self.cost = 0

    def new_temp(self):
        self.num_locals += 1
        self.slot_types.append(JType.INT)
        return self.num_locals - 1

    def slot_type(self, slot):
        return self.slot_types[slot]

    def note_store_type(self, slot, jtype):
        if slot >= self.method.num_args and jtype is not JType.VOID:
            self.slot_types[slot] = jtype

    # -- main ---------------------------------------------------------

    def generate(self, resolve_return_type=None):
        """Build the ILMethod.

        *resolve_return_type*: callable(signature) -> JType for non
        intrinsic call targets; defaults to looking only at intrinsics and
        raising for unknown targets is avoided by assuming INT.
        """
        method = self.method
        self.resolve_return_type = resolve_return_type
        self.cost += ILGEN_COST_PER_BYTECODE * len(method.code)

        leaders = _leaders(method)
        pc_to_bid = {pc: i for i, pc in enumerate(leaders)}
        bounds = leaders + [len(method.code)]
        blocks = [ILBlock(i, bc_start=pc) for i, pc in enumerate(leaders)]
        handler_bids = {pc_to_bid[h.handler_pc] for h in method.handlers}
        for bid in handler_bids:
            blocks[bid].is_handler = True

        # Entry stack depth per block (pending values across block edges).
        entry_depth = {0: 0}
        pending_slots = []  # temp slot per stack depth index
        pending_types = {}

        def pending_slot(i, jtype):
            while len(pending_slots) <= i:
                pending_slots.append(self.new_temp())
            if i in pending_types and pending_types[i] != jtype:
                raise CompilationError(
                    f"{method.signature}: inconsistent cross-block stack "
                    f"type at depth {i}")
            pending_types[i] = jtype
            return pending_slots[i]

        for i, block in enumerate(blocks):
            bb = _BlockBuilder(self, block)
            if block.is_handler:
                if entry_depth.get(i, 0) != 0:
                    raise CompilationError(
                        f"{method.signature}: handler block b{i} entered "
                        "with non-empty stack")
                bb.push(Node(ILOp.CATCH, JType.OBJECT))
            else:
                depth = entry_depth.get(i, 0)
                for d in range(depth):
                    slot = pending_slot(d, pending_types.get(d, JType.INT))
                    bb.push(Node.load(slot, pending_types.get(d, JType.INT)))

            start, end = bounds[i], bounds[i + 1]
            terminated = False
            for pc in range(start, end):
                ins = method.code[pc]
                terminated = self._translate(bb, ins, pc, pc_to_bid)
                if terminated:
                    break

            if not terminated:
                # Fell through: spill remaining stack, record succ depth.
                self._finish_edge(bb, i + 1, entry_depth, pending_slot)
                block.fallthrough = i + 1
            else:
                term = block.terminator
                if term is not None and term.op is ILOp.IF:
                    block.fallthrough = i + 1

        handlers = []
        for h in method.handlers:
            covered = {bid for bid, pc in
                       ((pc_to_bid[p], p) for p in leaders)
                       if h.start_pc <= pc < h.end_pc}
            handlers.append(ILHandler(covered, pc_to_bid[h.handler_pc],
                                      h.class_name))

        il = ILMethod(method, blocks, self.num_locals, handlers)
        il.check()
        return il

    def _finish_edge(self, bb, succ_bid, entry_depth, pending_slot):
        """Spill the simulated stack into pending temps for the successor."""
        depth = len(bb.stack)
        known = entry_depth.get(succ_bid)
        if known is not None and known != depth:
            raise CompilationError(
                f"{self.method.signature}: stack depth mismatch entering "
                f"b{succ_bid}: {known} vs {depth}")
        entry_depth[succ_bid] = depth
        for d in reversed(range(depth)):
            node = bb.stack[d]
            slot = pending_slot(d, node.type)
            bb.emit(Node(ILOp.STORE, node.type, (node,), slot))
        bb.stack.clear()

    # -- translation of one bytecode -----------------------------------------

    def _translate(self, bb, ins, pc, pc_to_bid):
        """Translate one instruction; True when the block is terminated."""
        op = ins.op
        g = self

        if op in _ALU_BINOPS:
            b = bb.pop()
            a = bb.pop()
            t = promote(a.type, b.type)
            if op in (Op.SHL, Op.SHR, Op.OR, Op.AND, Op.XOR):
                t = a.type if a.type is JType.LONG else JType.INT
            bb.push(Node(_ALU_BINOPS[op], t, (a, b)))
            return False
        if op is Op.NEG:
            a = bb.pop()
            bb.push(Node(ILOp.NEG, a.type, (a,)))
            return False
        if op is Op.CMP:
            b = bb.pop()
            a = bb.pop()
            bb.push(Node(ILOp.CMP, JType.INT, (a, b)))
            return False
        if op is Op.INC:
            bb.emit(Node(ILOp.INC, g.slot_type(ins.a), (),
                         (ins.a, ins.b)))
            return False

        if op is Op.CAST:
            a = bb.pop()
            bb.push(Node(ILOp.CAST, ins.a, (a,)))
            return False
        if op is Op.CHECKCAST:
            ref = bb.anchor(bb.pop())
            bb.emit(Node(ILOp.CHECKCAST, JType.VOID, (ref.copy(),), ins.a))
            bb.push(ref)
            return False

        if op is Op.LOAD:
            bb.push(Node.load(ins.a, g.slot_type(ins.a)))
            return False
        if op is Op.LOADCONST:
            bb.push(Node.const(ins.a, ins.b))
            return False
        if op is Op.STORE:
            rhs = bb.pop()
            g.note_store_type(ins.a, rhs.type)
            if rhs.op is ILOp.LOAD and rhs.value in g.elem_types:
                g.elem_types[ins.a] = g.elem_types[rhs.value]
            bb.emit(Node(ILOp.STORE, rhs.type, (rhs,), ins.a))
            return False
        if op is Op.GETFIELD:
            ref = bb.anchor(bb.pop())
            bb.emit(Node(ILOp.NULLCHK, JType.VOID, (ref.copy(),)))
            bb.push(Node(ILOp.GETFIELD, field_type(ins.a), (ref,), ins.a))
            return False
        if op is Op.PUTFIELD:
            value = bb.anchor_if_impure(bb.pop())
            ref = bb.anchor(bb.pop())
            bb.emit(Node(ILOp.NULLCHK, JType.VOID, (ref.copy(),)))
            bb.emit(Node(ILOp.PUTFIELD, value.type, (ref, value), ins.a))
            return False
        if op is Op.ALOAD:
            idx = bb.anchor_if_impure(bb.pop())
            ref = bb.anchor(bb.pop())
            bb.emit(Node(ILOp.NULLCHK, JType.VOID, (ref.copy(),)))
            bb.emit(Node(ILOp.BNDCHK, JType.VOID,
                         (ref.copy(), idx.copy())))
            elem = JType.INT
            if ref.op is ILOp.LOAD:
                elem = g.elem_types.get(ref.value, JType.INT)
            bb.push(Node(ILOp.ALOAD, elem, (ref, idx)))
            return False
        if op is Op.ASTORE:
            value = bb.anchor_if_impure(bb.pop())
            idx = bb.anchor_if_impure(bb.pop())
            ref = bb.anchor(bb.pop())
            bb.emit(Node(ILOp.NULLCHK, JType.VOID, (ref.copy(),)))
            bb.emit(Node(ILOp.BNDCHK, JType.VOID,
                         (ref.copy(), idx.copy())))
            bb.emit(Node(ILOp.ASTORE, value.type, (ref, idx, value)))
            return False

        if op is Op.NEW:
            bb.push(bb.anchor(Node(ILOp.NEW, JType.OBJECT, (), ins.a)))
            return False
        if op is Op.NEWARRAY:
            length = bb.pop()
            anchored = bb.anchor(Node(ILOp.NEWARRAY, JType.ADDRESS,
                                      (length,), ins.a))
            if anchored.op is ILOp.LOAD:
                g.elem_types[anchored.value] = ins.a
            bb.push(anchored)
            return False
        if op is Op.NEWMULTIARRAY:
            dims = [bb.pop() for _ in range(ins.b)]
            dims.reverse()
            bb.push(bb.anchor(Node(ILOp.NEWMULTIARRAY, JType.ADDRESS,
                                   dims, (ins.a, ins.b))))
            return False

        if op is Op.GOTO:
            bb.emit(Node(ILOp.GOTO, JType.VOID, (), pc_to_bid[ins.a]))
            bb.stack.clear()
            return True
        if op in COND_BRANCHES:
            cond = bb.pop()
            if bb.stack:
                raise CompilationError(
                    f"{g.method.signature}: conditional branch at pc {pc} "
                    "with residual stack values")
            bb.emit(Node(ILOp.IF, JType.VOID, (cond,),
                         (_COND_TO_RELOP[op], pc_to_bid[ins.a])))
            return True
        if op is Op.CALL:
            nargs = ins.b
            args = [bb.pop() for _ in range(nargs)]
            args.reverse()
            rtype = self._return_type(ins.a)
            call = Node(ILOp.CALL, rtype, args, ins.a)
            if rtype is JType.VOID:
                bb.emit(Node(ILOp.TREETOP, JType.VOID, (call,)))
            else:
                bb.push(bb.anchor(call))
            return False
        if op is Op.RET:
            bb.emit(Node(ILOp.RETURN, JType.VOID))
            bb.stack.clear()
            return True
        if op is Op.RETVAL:
            value = bb.pop()
            bb.emit(Node(ILOp.RETURN, value.type, (value,)))
            bb.stack.clear()
            return True

        if op is Op.INSTANCEOF:
            ref = bb.anchor_if_impure(bb.pop())
            bb.push(Node(ILOp.INSTANCEOF, JType.INT, (ref,), ins.a))
            return False
        if op is Op.MONITORENTER:
            ref = bb.anchor_if_impure(bb.pop())
            bb.emit(Node(ILOp.NULLCHK, JType.VOID, (ref.copy(),)))
            bb.emit(Node(ILOp.MONITORENTER, JType.VOID, (ref,)))
            return False
        if op is Op.MONITOREXIT:
            ref = bb.anchor_if_impure(bb.pop())
            bb.emit(Node(ILOp.NULLCHK, JType.VOID, (ref.copy(),)))
            bb.emit(Node(ILOp.MONITOREXIT, JType.VOID, (ref,)))
            return False
        if op is Op.ATHROW:
            ref = bb.anchor_if_impure(bb.pop())
            bb.emit(Node(ILOp.NULLCHK, JType.VOID, (ref.copy(),)))
            bb.emit(Node(ILOp.ATHROW, JType.VOID, (ref,)))
            bb.stack.clear()
            return True

        if op is Op.ARRAYLENGTH:
            ref = bb.anchor(bb.pop())
            bb.emit(Node(ILOp.NULLCHK, JType.VOID, (ref.copy(),)))
            bb.push(Node(ILOp.ARRAYLENGTH, JType.INT, (ref,)))
            return False
        if op is Op.ARRAYCOPY:
            count = bb.anchor_if_impure(bb.pop())
            dstoff = bb.anchor_if_impure(bb.pop())
            dst = bb.anchor(bb.pop())
            srcoff = bb.anchor_if_impure(bb.pop())
            src = bb.anchor(bb.pop())
            bb.emit(Node(ILOp.NULLCHK, JType.VOID, (src.copy(),)))
            bb.emit(Node(ILOp.NULLCHK, JType.VOID, (dst.copy(),)))
            bb.emit(Node(ILOp.ARRAYCOPY, JType.VOID,
                         (src, srcoff, dst, dstoff, count)))
            return False
        if op is Op.ARRAYCMP:
            b = bb.anchor(bb.pop())
            a = bb.anchor(bb.pop())
            bb.emit(Node(ILOp.NULLCHK, JType.VOID, (a.copy(),)))
            bb.emit(Node(ILOp.NULLCHK, JType.VOID, (b.copy(),)))
            bb.push(Node(ILOp.ARRAYCMP, JType.INT, (a, b)))
            return False

        if op is Op.DUP:
            top = bb.pop()
            if top.is_pure(allow_loads=True, allow_heap_reads=False):
                bb.push(top)
                bb.push(top.copy())
            else:
                anchored = bb.anchor(top)
                bb.push(anchored)
                bb.push(anchored.copy())
            return False
        if op is Op.POP:
            top = bb.pop()
            if not top.is_pure(allow_loads=True, allow_heap_reads=True):
                bb.emit(Node(ILOp.TREETOP, JType.VOID, (top,)))
            return False
        if op is Op.SWAP:
            b = bb.anchor_if_impure(bb.pop())
            a = bb.anchor_if_impure(bb.pop())
            bb.push(b)
            bb.push(a)
            return False
        if op is Op.NOP:
            return False

        raise CompilationError(f"ILGen: unhandled opcode {op!r}")

    def _return_type(self, signature):
        from repro.jvm.classfile import is_intrinsic
        from repro.jvm.intrinsics import INTRINSICS
        if is_intrinsic(signature):
            return INTRINSICS[signature][1]
        if self.resolve_return_type is not None:
            return self.resolve_return_type(signature)
        return JType.INT


def generate_il(method, resolve_return_type=None):
    """Generate IL for *method*; returns ``(ILMethod, compile_cost)``."""
    gen = ILGenerator(method)
    il = gen.generate(resolve_return_type)
    return il, gen.cost
