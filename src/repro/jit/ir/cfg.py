"""Control-flow analyses: reachability, dominators, natural loops.

Dominators use the iterative algorithm of Cooper, Harvey & Kennedy
("A Simple, Fast Dominance Algorithm"), which is robust on the modest CFGs
our methods have.  Loop discovery finds back edges (``t -> h`` with ``h``
dominating ``t``) and their natural loop bodies; per-block loop depth
drives LICM, unrolling and the compilation-control loop triggers.

Exceptional edges (block -> handler) are included in predecessor/successor
sets for safety of the *global* dataflow passes, but are excluded from
loop discovery.
"""


class Loop:
    """A natural loop: header block id and the set of member block ids."""

    __slots__ = ("header", "body", "back_edges")

    def __init__(self, header, body, back_edges):
        self.header = header
        self.body = frozenset(body)
        self.back_edges = tuple(back_edges)

    def __repr__(self):
        return f"Loop(header=b{self.header}, body={sorted(self.body)})"


class CFGInfo:
    """All control-flow facts for one :class:`ILMethod`, computed eagerly."""

    def __init__(self, ilmethod, include_exceptional=True):
        self.ilmethod = ilmethod
        blocks = ilmethod.blocks
        self.ids = [b.bid for b in blocks]
        index = {b.bid: b for b in blocks}
        self.succs = {}
        self.preds = {bid: [] for bid in self.ids}
        for b in blocks:
            succ = list(b.successors())
            if include_exceptional:
                for h in ilmethod.handlers_covering(b.bid):
                    if h.handler_bid not in succ:
                        succ.append(h.handler_bid)
            self.succs[b.bid] = succ
        for bid, ss in self.succs.items():
            for s in ss:
                self.preds[s].append(bid)
        self.entry = blocks[0].bid
        self.rpo = self._reverse_postorder(index)
        self.reachable = set(self.rpo)
        self.idom = self._dominators()
        self.loops = self._natural_loops()
        self.loop_depth = self._loop_depths()

    # -- orders ---------------------------------------------------------

    def _reverse_postorder(self, index):
        seen = set()
        post = []

        def dfs(bid):
            stack = [(bid, iter(self.succs[bid]))]
            seen.add(bid)
            while stack:
                cur, it = stack[-1]
                advanced = False
                for s in it:
                    if s not in seen:
                        seen.add(s)
                        stack.append((s, iter(self.succs[s])))
                        advanced = True
                        break
                if not advanced:
                    post.append(cur)
                    stack.pop()

        dfs(self.entry)
        return list(reversed(post))

    # -- dominators ---------------------------------------------------------

    def _dominators(self):
        rpo_index = {bid: i for i, bid in enumerate(self.rpo)}
        idom = {self.entry: self.entry}

        def intersect(a, b):
            while a != b:
                while rpo_index[a] > rpo_index[b]:
                    a = idom[a]
                while rpo_index[b] > rpo_index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for bid in self.rpo:
                if bid == self.entry:
                    continue
                new_idom = None
                for p in self.preds[bid]:
                    if p in idom:
                        new_idom = (p if new_idom is None
                                    else intersect(p, new_idom))
                if new_idom is not None and idom.get(bid) != new_idom:
                    idom[bid] = new_idom
                    changed = True
        return idom

    def dominates(self, a, b):
        """True when block *a* dominates block *b*."""
        if b not in self.idom:
            return False
        cur = b
        while True:
            if cur == a:
                return True
            nxt = self.idom.get(cur)
            if nxt is None or nxt == cur:
                return cur == a
            cur = nxt

    def dominators_of(self, bid):
        """All blocks dominating *bid*, from bid up to entry."""
        out = []
        cur = bid
        while cur in self.idom:
            out.append(cur)
            nxt = self.idom[cur]
            if nxt == cur:
                break
            cur = nxt
        return out

    # -- loops ---------------------------------------------------------

    def _normal_succs(self, bid):
        block = self.ilmethod.block(bid)
        return block.successors()

    def _natural_loops(self):
        loops = {}
        for bid in self.rpo:
            for s in self._normal_succs(bid):
                if s in self.reachable and self.dominates(s, bid):
                    # back edge bid -> s
                    body = set(loops[s].body) if s in loops else {s}
                    edges = (list(loops[s].back_edges)
                             if s in loops else [])
                    edges.append((bid, s))
                    work = [bid]
                    while work:
                        cur = work.pop()
                        if cur in body:
                            continue
                        body.add(cur)
                        work.extend(p for p in self.preds[cur]
                                    if p in self.reachable)
                    loops[s] = Loop(s, body, edges)
        return list(loops.values())

    def _loop_depths(self):
        depth = {bid: 0 for bid in self.ids}
        for loop in self.loops:
            for bid in loop.body:
                depth[bid] += 1
        return depth

    def max_loop_depth(self):
        return max(self.loop_depth.values()) if self.loop_depth else 0

    def loop_of(self, header):
        for loop in self.loops:
            if loop.header == header:
                return loop
        return None
