"""Tree-form intermediate language (IL).

Mirrors the Testarossa design sketched in the paper's Figure 1: methods are
lists of basic blocks, each holding a list of *treetops* (statement-level
trees); expressions hang beneath the treetops.  The IL is both the input
and the output of every optimization pass.
"""

from repro.jit.ir.tree import ILOp, Node, RELOPS
from repro.jit.ir.block import ILBlock, ILMethod
from repro.jit.ir.cfg import CFGInfo
from repro.jit.ir.ilgen import generate_il

__all__ = [
    "ILOp",
    "Node",
    "RELOPS",
    "ILBlock",
    "ILMethod",
    "CFGInfo",
    "generate_il",
]
