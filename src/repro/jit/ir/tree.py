"""IL tree nodes.

A :class:`Node` is an operation with a result type, child nodes, and an
operation-specific ``value`` (constant, local slot, signature, class name,
relational operator, or branch target).  Statement-level nodes are called
*treetops*; expression nodes live beneath them.

Purity matters to the optimizer: a *pure* expression has no side effects
and reads no mutable state, so it can be folded, commoned and hoisted.
Loads of locals are pure within a region where the slot is not redefined;
field and array reads are "read-only impure" (killed by stores and calls);
calls and allocations are anchored in their own treetops by the IL
generator, so they never appear mid-expression.
"""

import enum

from repro.jvm.bytecode import JType


class ILOp(enum.IntEnum):
    # Expressions ------------------------------------------------------
    CONST = 1       # value: constant
    LOAD = 2        # value: local slot
    ADD = 3
    SUB = 4
    MUL = 5
    DIV = 6
    REM = 7
    NEG = 8
    SHL = 9
    SHR = 10
    OR = 11
    AND = 12
    XOR = 13
    CMP = 14
    CAST = 15       # type is the target type
    GETFIELD = 16   # value: field name; child: ref
    ALOAD = 17      # children: ref, index
    ARRAYLENGTH = 18
    ARRAYCMP = 19
    INSTANCEOF = 20  # value: class name; child: ref
    NEW = 21         # value: class name (anchored under a store treetop)
    NEWARRAY = 22    # value: elem type; child: length
    NEWMULTIARRAY = 23  # value: (elem type, ndims); children: lengths
    CALL = 24        # value: signature (anchored under a treetop)
    CATCH = 25       # handler entry: the incoming exception object

    # Treetops ----------------------------------------------------------
    STORE = 40       # value: local slot; child: rhs
    INC = 41         # value: (slot, amount) -- no children
    PUTFIELD = 42    # value: field name; children: ref, rhs
    ASTORE = 43      # children: ref, index, rhs
    TREETOP = 44     # child evaluated for side effects (e.g. void call)
    RETURN = 45      # zero or one child
    GOTO = 46        # value: target block id
    IF = 47          # value: (relop, target block id); child: int expr
    ATHROW = 48      # child: exception ref
    MONITORENTER = 49
    MONITOREXIT = 50
    ARRAYCOPY = 51   # children: src, srcoff, dst, dstoff, count
    CHECKCAST = 52   # value: class name; child: ref
    NULLCHK = 53     # child: ref
    BNDCHK = 54      # children: array ref, index
    THROWTO = 55     # value: (handler block id, class name) -- a throw
                     # whose handler was resolved at compile time (EDO)


#: Relational operators used by IF nodes (compare child against zero).
RELOPS = ("eq", "ne", "lt", "le", "gt", "ge")

#: relop -> Python predicate on the (integer) condition value.
RELOP_FN = {
    "eq": lambda v: v == 0,
    "ne": lambda v: v != 0,
    "lt": lambda v: v < 0,
    "le": lambda v: v <= 0,
    "gt": lambda v: v > 0,
    "ge": lambda v: v >= 0,
}

#: relop -> relop testing the opposite outcome.
RELOP_NEGATE = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
                "le": "gt", "gt": "le"}

TREETOP_OPS = frozenset({
    ILOp.STORE, ILOp.INC, ILOp.PUTFIELD, ILOp.ASTORE, ILOp.TREETOP,
    ILOp.RETURN, ILOp.GOTO, ILOp.IF, ILOp.ATHROW, ILOp.MONITORENTER,
    ILOp.MONITOREXIT, ILOp.ARRAYCOPY, ILOp.CHECKCAST, ILOp.NULLCHK,
    ILOp.BNDCHK, ILOp.THROWTO,
})

#: Expressions with no side effects and no reads of mutable state
#: (local LOADs are handled separately by the passes that need them).
_ALWAYS_PURE = frozenset({
    ILOp.CONST, ILOp.ADD, ILOp.SUB, ILOp.MUL, ILOp.NEG, ILOp.SHL, ILOp.SHR,
    ILOp.OR, ILOp.AND, ILOp.XOR, ILOp.CMP, ILOp.CAST, ILOp.INSTANCEOF,
    ILOp.CATCH,
})

#: Expressions that read heap state: pure for reordering among themselves
#: but killed by stores, calls and allocations.
HEAP_READS = frozenset({ILOp.GETFIELD, ILOp.ALOAD, ILOp.ARRAYLENGTH,
                        ILOp.ARRAYCMP})

BINARY_ALU = frozenset({ILOp.ADD, ILOp.SUB, ILOp.MUL, ILOp.DIV, ILOp.REM,
                        ILOp.SHL, ILOp.SHR, ILOp.OR, ILOp.AND, ILOp.XOR,
                        ILOp.CMP})

COMMUTATIVE = frozenset({ILOp.ADD, ILOp.MUL, ILOp.OR, ILOp.AND, ILOp.XOR})


class Node:
    """One IL tree node."""

    __slots__ = ("op", "type", "children", "value")

    def __init__(self, op, jtype=JType.VOID, children=(), value=None):
        self.op = op
        self.type = jtype
        self.children = list(children)
        self.value = value

    # -- construction helpers ---------------------------------------------

    @staticmethod
    def const(jtype, value):
        return Node(ILOp.CONST, jtype, (), value)

    @staticmethod
    def load(slot, jtype):
        return Node(ILOp.LOAD, jtype, (), slot)

    @staticmethod
    def store(slot, rhs):
        return Node(ILOp.STORE, rhs.type, (rhs,), slot)

    # -- structural properties ---------------------------------------------

    def is_treetop(self):
        return self.op in TREETOP_OPS

    def is_const(self):
        return self.op is ILOp.CONST

    def is_pure(self, allow_loads=True, allow_heap_reads=False):
        """Whether this whole tree is free of side effects.

        ``allow_loads``: treat local LOADs as pure (true within a region
        with no redefinition).  ``allow_heap_reads``: additionally treat
        field/array reads as pure (true within a region with no stores,
        calls or allocations).  DIV/REM are never pure: they can throw.
        """
        op = self.op
        if op is ILOp.LOAD:
            ok = allow_loads
        elif op in _ALWAYS_PURE:
            ok = True
        elif op in HEAP_READS:
            ok = allow_heap_reads
        else:
            return False
        if not ok:
            return False
        return all(c.is_pure(allow_loads, allow_heap_reads)
                   for c in self.children)

    def can_throw(self):
        """Whether evaluating this tree may raise a guest exception."""
        op = self.op
        if op in (ILOp.DIV, ILOp.REM):
            # Integral division by zero throws.
            if self.type.is_integral or self.type.is_decimal:
                return True
        if op in (ILOp.GETFIELD, ILOp.ALOAD, ILOp.ARRAYLENGTH, ILOp.ARRAYCMP,
                  ILOp.CALL, ILOp.NEWARRAY, ILOp.NEWMULTIARRAY, ILOp.ATHROW,
                  ILOp.ASTORE, ILOp.PUTFIELD, ILOp.NULLCHK, ILOp.BNDCHK,
                  ILOp.CHECKCAST, ILOp.ARRAYCOPY, ILOp.MONITORENTER,
                  ILOp.MONITOREXIT):
            return True
        return any(c.can_throw() for c in self.children)

    def key(self):
        """Structural identity for value numbering / CSE."""
        return (int(self.op), int(self.type), self.value,
                tuple(c.key() for c in self.children))

    def loads_used(self, out=None):
        """Set of local slots read anywhere in this tree."""
        if out is None:
            out = set()
        if self.op is ILOp.LOAD:
            out.add(self.value)
        for c in self.children:
            c.loads_used(out)
        return out

    def contains_op(self, op):
        if self.op is op:
            return True
        return any(c.contains_op(op) for c in self.children)

    def count_nodes(self):
        return 1 + sum(c.count_nodes() for c in self.children)

    def walk(self):
        """Yield every node of the tree, preorder."""
        yield self
        for c in self.children:
            yield from c.walk()

    def copy(self):
        """Deep copy of the tree."""
        return Node(self.op, self.type,
                    [c.copy() for c in self.children], self.value)

    def replace_with(self, other):
        """Mutate this node in place to become *other* (keeps identity)."""
        self.op = other.op
        self.type = other.type
        self.children = list(other.children)
        self.value = other.value

    def __repr__(self):
        return self._fmt(0)

    def _fmt(self, depth):
        pad = "  " * depth
        head = f"{pad}{self.op.name.lower()}"
        if self.value is not None:
            head += f" {self.value!r}"
        head += f" [{self.type.name.lower()}]"
        lines = [head]
        for c in self.children:
            lines.append(c._fmt(depth + 1))
        return "\n".join(lines)
