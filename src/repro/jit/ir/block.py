"""Basic blocks and the per-method IL container."""

from repro.errors import CompilationError
from repro.jit.ir.tree import ILOp


class ILBlock:
    """A basic block: an id, a treetop list, and explicit control flow.

    Control transfer at the end of a block is encoded by its final treetop
    (GOTO / IF / RETURN / ATHROW); a block whose last treetop is an IF (or a
    plain statement) additionally falls through to ``fallthrough``.
    """

    __slots__ = ("bid", "treetops", "fallthrough", "bc_start", "is_handler")

    def __init__(self, bid, bc_start=0):
        self.bid = bid
        self.treetops = []
        self.fallthrough = None   # block id or None
        self.bc_start = bc_start  # first bytecode pc covered (for handlers)
        self.is_handler = False

    def append(self, treetop):
        if not treetop.is_treetop():
            raise CompilationError(
                f"block {self.bid}: {treetop.op.name} is not a treetop")
        self.treetops.append(treetop)
        return treetop

    @property
    def terminator(self):
        """The last treetop if it transfers control, else None."""
        if self.treetops:
            last = self.treetops[-1]
            if last.op in (ILOp.GOTO, ILOp.IF, ILOp.RETURN, ILOp.ATHROW,
                           ILOp.THROWTO):
                return last
        return None

    def successors(self):
        """Block ids reachable by normal (non-exceptional) control flow."""
        out = []
        term = self.terminator
        if term is None:
            if self.fallthrough is not None:
                out.append(self.fallthrough)
            return out
        if term.op is ILOp.GOTO:
            out.append(term.value)
        elif term.op is ILOp.IF:
            out.append(term.value[1])
            if self.fallthrough is not None:
                out.append(self.fallthrough)
        elif term.op is ILOp.THROWTO:
            out.append(term.value[0])
        # RETURN / ATHROW: no normal successors
        return out

    def count_nodes(self):
        return sum(t.count_nodes() for t in self.treetops)

    def __repr__(self):
        return (f"ILBlock(b{self.bid}, {len(self.treetops)} treetops, "
                f"fallthrough={self.fallthrough})")


class ILHandler:
    """Exception-handler scope in block terms."""

    __slots__ = ("covered", "handler_bid", "class_name")

    def __init__(self, covered, handler_bid, class_name):
        self.covered = frozenset(covered)  # block ids protected
        self.handler_bid = handler_bid
        self.class_name = class_name

    def matches(self, thrown_class):
        return (self.class_name == "java/lang/Throwable"
                or self.class_name == thrown_class)


class ILMethod:
    """The IL form of one method: blocks + locals layout + handler scopes.

    Local slots: ``[0, num_args)`` arguments, then original temporaries,
    then compiler-generated temps allocated through :meth:`new_temp`.
    """

    def __init__(self, method, blocks, num_locals, handlers=(),
                 exception_temp=None):
        self.method = method
        self.blocks = list(blocks)
        self.num_locals = num_locals
        self.handlers = list(handlers)
        # Slot receiving the in-flight exception at handler entries.
        self.exception_temp = exception_temp
        # Populated by analyses/passes, purely informational:
        self.notes = {}

    # -- locals ---------------------------------------------------------

    def new_temp(self):
        slot = self.num_locals
        self.num_locals += 1
        return slot

    # -- navigation ---------------------------------------------------------

    def block(self, bid):
        for b in self.blocks:
            if b.bid == bid:
                return b
        raise CompilationError(f"no block b{bid}")

    def block_index(self):
        return {b.bid: b for b in self.blocks}

    def entry(self):
        return self.blocks[0]

    def iter_treetops(self):
        for b in self.blocks:
            for t in b.treetops:
                yield b, t

    def count_nodes(self):
        return sum(b.count_nodes() for b in self.blocks)

    def handlers_covering(self, bid):
        return [h for h in self.handlers if bid in h.covered]

    def new_block_id(self):
        return 1 + max(b.bid for b in self.blocks)

    # -- integrity ---------------------------------------------------------

    def check(self):
        """Structural invariants; raises CompilationError on violation.

        Passes call this (in tests and under ``ILMethod.check`` in the pass
        manager's debug mode) to catch IL corruption early.
        """
        ids = [b.bid for b in self.blocks]
        if len(set(ids)) != len(ids):
            raise CompilationError(f"duplicate block ids: {ids}")
        idset = set(ids)
        for b in self.blocks:
            for i, t in enumerate(b.treetops):
                if not t.is_treetop():
                    raise CompilationError(
                        f"b{b.bid}[{i}]: {t.op.name} not a treetop")
                if t.op in (ILOp.GOTO, ILOp.IF, ILOp.RETURN, ILOp.ATHROW,
                            ILOp.THROWTO) \
                        and i != len(b.treetops) - 1:
                    raise CompilationError(
                        f"b{b.bid}[{i}]: terminator {t.op.name} "
                        "not at block end")
                for n in t.walk():
                    if n is not t and n.is_treetop():
                        raise CompilationError(
                            f"b{b.bid}[{i}]: nested treetop {n.op.name}")
                    if n.op is ILOp.LOAD and not (
                            0 <= n.value < self.num_locals):
                        raise CompilationError(
                            f"b{b.bid}[{i}]: load of bad slot {n.value}")
            for s in b.successors():
                if s not in idset:
                    raise CompilationError(
                        f"b{b.bid}: successor b{s} does not exist")
            term = b.terminator
            if term is None or term.op is ILOp.IF:
                if b.fallthrough is None:
                    raise CompilationError(
                        f"b{b.bid}: missing fallthrough")
        for h in self.handlers:
            if h.handler_bid not in idset:
                raise CompilationError(
                    f"handler block b{h.handler_bid} does not exist")
        return True

    def __repr__(self):
        return (f"ILMethod({self.method.signature}, "
                f"{len(self.blocks)} blocks, {self.count_nodes()} nodes)")

    def dump(self):
        """Human-readable listing of the whole method."""
        lines = [f"; {self.method.signature} "
                 f"locals={self.num_locals}"]
        for b in self.blocks:
            flags = " (handler)" if b.is_handler else ""
            lines.append(f"b{b.bid}:{flags}  ; fallthrough="
                         f"{b.fallthrough}")
            for t in b.treetops:
                lines.append("\n".join("  " + ln
                                       for ln in repr(t).splitlines()))
        for h in self.handlers:
            lines.append(f"; handler {sorted(h.covered)} -> "
                         f"b{h.handler_bid} ({h.class_name})")
        return "\n".join(lines)
