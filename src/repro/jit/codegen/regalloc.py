"""Linear-scan register allocation.

By construction of the lowerer every virtual register is defined once and
all of its uses are in the same basic block (values crossing blocks flow
through locals), so live intervals are exact under a linear scan.

The allocator maps virtual registers onto ``PHYS_REGS - SCRATCH_REGS``
allocatable physical registers.  Intervals that do not fit are spilled:
their definition is followed by a real ``SPST`` store to a spill slot and
each use is preceded by a real ``SPLD`` into a scratch register -- spill
traffic costs actual cycles in the native simulator.

When *rematerialize* is enabled (the ``rematerialization`` transformation
of the plan), a spilled value whose definition was a constant is not stored
at all: each use re-materializes the constant (1 cycle) instead of
reloading from the spill slot (3 cycles), exactly the trade the paper's
footnote 2 describes.
"""

from repro.jit.codegen.isa import (
    NInstr,
    NOp,
    PHYS_REGS,
    SCRATCH_REGS,
)

#: Compile-cycles charged per instruction processed by the allocator.
REGALLOC_COST_PER_INSTR = 13


def _intervals(instrs):
    """vreg -> [def_index, last_use_index]."""
    start = {}
    end = {}
    for i, ins in enumerate(instrs):
        if ins.dst is not None and ins.dst not in start:
            start[ins.dst] = i
            end[ins.dst] = i
        for s in ins.srcs:
            end[s] = i
    return start, end


def allocate(instrs, rematerialize=False):
    """Run linear scan; returns ``(new_instrs, compile_cost)``."""
    cost = REGALLOC_COST_PER_INSTR * len(instrs)
    start, end = _intervals(instrs)
    allocatable = PHYS_REGS - SCRATCH_REGS
    scratch_base = allocatable  # scratch phys ids follow the allocatables

    # Pass 1: decide assignment.
    mapping = {}
    spilled = set()
    free = list(range(allocatable))
    active = []  # (end, vreg) sorted by end
    for vreg in sorted(start, key=lambda v: start[v]):
        s = start[vreg]
        # Expire intervals that ended before this definition.
        still = []
        for e, v in active:
            if e < s:
                free.append(mapping[v])
            else:
                still.append((e, v))
        active = sorted(still)
        if free:
            mapping[vreg] = free.pop()
            active.append((end[vreg], vreg))
            active.sort()
        else:
            # Spill the interval with the furthest end point.
            far_end, far_vreg = active[-1]
            if far_end > end[vreg]:
                mapping[vreg] = mapping[far_vreg]
                spilled.add(far_vreg)
                del mapping[far_vreg]
                active[-1] = (end[vreg], vreg)
                active.sort()
            else:
                spilled.add(vreg)

    # Pass 2: rewrite instructions, inserting spill traffic.
    slot_of = {}
    remat_const = {}
    out = []
    for ins in instrs:
        # Rewrite spilled sources via scratch registers.
        new_srcs = []
        scratch_used = 0
        for s in ins.srcs:
            if s in spilled:
                if s in remat_const:
                    imm, jtype = remat_const[s]
                    scr = scratch_base + scratch_used
                    scratch_used = (scratch_used + 1) % SCRATCH_REGS
                    out.append(NInstr(NOp.CONST, scr, (), imm, jtype,
                                      None, ins.block))
                    new_srcs.append(scr)
                else:
                    scr = scratch_base + scratch_used
                    scratch_used = (scratch_used + 1) % SCRATCH_REGS
                    out.append(NInstr(NOp.SPLD, scr, (),
                                      None, None, slot_of[s], ins.block))
                    new_srcs.append(scr)
            else:
                new_srcs.append(mapping[s])
        ins.srcs = tuple(new_srcs)

        if ins.dst is not None and ins.dst in spilled:
            vreg = ins.dst
            if (rematerialize and ins.op is NOp.CONST):
                # Don't store at all; every use re-materializes.
                remat_const[vreg] = (ins.imm, ins.type)
                continue
            slot = slot_of.setdefault(vreg, len(slot_of))
            ins.dst = scratch_base
            out.append(ins)
            out.append(NInstr(NOp.SPST, None, (scratch_base,), None,
                              None, slot, ins.block))
            continue
        if ins.dst is not None:
            ins.dst = mapping[ins.dst]
        out.append(ins)
    return out, cost
