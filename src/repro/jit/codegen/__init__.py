"""Code generation: tree IL -> virtual native ISA -> executable code.

`isa` defines the linear virtual instruction set and its cycle costs,
`lower` translates IL trees into it, `regalloc` runs linear-scan register
allocation (emitting real spill code), `peephole` holds the native-level
cleanup passes, and `native` is the register-machine simulator that
executes compiled methods, advancing the VM clock.
"""

from repro.jit.codegen.isa import NOp, NInstr
from repro.jit.codegen.lower import lower_method, CodegenOptions
from repro.jit.codegen.native import NativeCode

__all__ = ["NOp", "NInstr", "lower_method", "CodegenOptions", "NativeCode"]
