"""The native simulator: executes compiled code, cycle-accurately.

A :class:`NativeCode` is the executable form of a compiled method.  Its
semantics are bit-identical to the interpreter's (same masking, same
division rules, same guest exceptions) -- property tests in
``tests/jit/test_equivalence.py`` enforce this -- but its *cost* is what
the optimizer earned: fewer instructions at 1-4 cycles each instead of
8-15 cycles of dispatch per bytecode.

The simulator also models one micro-architectural effect: a one-cycle
forwarding stall whenever an instruction consumes the result of its
immediate predecessor.  The ``instructionScheduling`` transformation
exists to reduce exactly these stalls.
"""

import math

from repro.errors import JavaThrow, VMError
from repro.jvm.bytecode import JType, convert_to_integral, mask_integral
from repro.jvm.classfile import is_intrinsic
from repro.jvm.interpreter import coerce
from repro.jvm.intrinsics import call_intrinsic
from repro.jvm.objects import JArray, JObject, make_multiarray, null_check
from repro.jit.codegen.isa import (
    FRAME_COST,
    LEAF_FRAME_COST,
    NATIVE_COST,
    NOp,
    STACK_ALLOC_COST,
    STALL_COST,
)

MAX_NATIVE_STEPS = 20_000_000

_SIMPLE_ALU = {
    NOp.ADD: lambda a, b: a + b,
    NOp.SUB: lambda a, b: a - b,
    NOp.MUL: lambda a, b: a * b,
    NOp.OR: lambda a, b: int(a) | int(b),
    NOp.AND: lambda a, b: int(a) & int(b),
    NOp.XOR: lambda a, b: int(a) ^ int(b),
}


class NativeCode:
    """Executable compiled form of one method."""

    def __init__(self, ilmethod, instrs, leaf=False):
        self.method = ilmethod.method
        self.num_locals = ilmethod.num_locals
        self.instrs = list(instrs)
        self.leaf = leaf
        self.handlers = list(ilmethod.handlers)
        self.labels = {ins.aux: i for i, ins in enumerate(self.instrs)
                       if ins.op is NOp.LABEL}
        self.frame_cost = LEAF_FRAME_COST if leaf else FRAME_COST
        # block id -> original bytecode start pc: the stable key used by
        # branch profiles, which must survive recompilation (block ids
        # are compile-local, bytecode offsets are not).
        self.block_bc = {b.bid: b.bc_start for b in ilmethod.blocks}

    @classmethod
    def from_parts(cls, method, num_locals, instrs, leaf, handlers,
                   block_bc):
        """Rebuild a :class:`NativeCode` from persisted parts.

        Used by the code cache (:mod:`repro.codecache.serialize`) to
        reconstitute a body without the original ILMethod; the derived
        fields (label map, frame cost) are recomputed exactly as
        ``__init__`` computes them.
        """
        self = cls.__new__(cls)
        self.method = method
        self.num_locals = num_locals
        self.instrs = list(instrs)
        self.leaf = leaf
        self.handlers = list(handlers)
        self.labels = {ins.aux: i for i, ins in enumerate(self.instrs)
                       if ins.op is NOp.LABEL}
        self.frame_cost = LEAF_FRAME_COST if leaf else FRAME_COST
        self.block_bc = dict(block_bc)
        return self

    def size(self):
        """Number of native instructions (code-size proxy)."""
        return sum(1 for i in self.instrs if i.op is not NOp.LABEL)

    def _dispatch_exception(self, ins, thrown_class):
        """Find the handler label for an exception raised at *ins*."""
        for h in self.handlers:
            if ins.block in h.covered and h.matches(thrown_class):
                return self.labels[h.handler_bid]
        return None

    # -- execution ----------------------------------------------------------

    def execute(self, vm, args, profile=None):
        """Run the compiled method; returns ``(value, return_jtype)``.

        When *profile* (a dict) is supplied, every conditional branch
        records ``(bytecode_pc_of_block, taken) -> count`` -- the
        lightweight branch instrumentation that feeds scorching's
        feedback-directed block layout.  Profiled branches cost one
        extra cycle each (the counter update).
        """
        method = self.method
        if len(args) != method.num_args:
            raise VMError(f"{method.signature}: expected "
                          f"{method.num_args} args, got {len(args)}")
        locals_ = [0] * self.num_locals
        for i, ((value, _jt), ptype) in enumerate(
                zip(args, method.param_types)):
            locals_[i] = value if ptype.is_reference \
                else coerce(value, ptype)

        regs = {}
        mem = {}
        clk = vm.clock
        clk.advance(self.frame_cost)
        instrs = self.instrs
        n = len(instrs)
        ip = 0
        steps = 0
        prev_dst = None
        pending_exc = None

        while True:
            steps += 1
            if steps > MAX_NATIVE_STEPS:
                raise VMError(f"{method.signature}: native step limit")
            if ip >= n:
                raise VMError(f"{method.signature}: fell off native code")
            ins = instrs[ip]
            op = ins.op
            if op is NOp.LABEL:
                ip += 1
                continue
            cost = NATIVE_COST[op]
            if prev_dst is not None and prev_dst in ins.srcs:
                cost += STALL_COST
            clk.cycles += cost

            try:
                jump = None
                if op is NOp.CONST:
                    regs[ins.dst] = coerce(ins.imm, ins.type)
                elif op is NOp.MOV:
                    regs[ins.dst] = regs[ins.srcs[0]]
                elif op is NOp.LDLOC:
                    regs[ins.dst] = locals_[ins.imm]
                elif op is NOp.STLOC:
                    locals_[ins.imm] = regs[ins.srcs[0]]
                elif op is NOp.INCLOC:
                    locals_[ins.aux] = coerce(locals_[ins.aux] + ins.imm,
                                              ins.type)
                elif op in _SIMPLE_ALU:
                    a = regs[ins.srcs[0]]
                    b = regs[ins.srcs[1]]
                    regs[ins.dst] = coerce(_SIMPLE_ALU[op](a, b), ins.type)
                elif op is NOp.ALUI:
                    a = regs[ins.srcs[0]]
                    regs[ins.dst] = self._alui(a, ins)
                elif op is NOp.ADDI:
                    regs[ins.dst] = coerce(regs[ins.srcs[0]] + ins.imm,
                                           ins.type)
                elif op is NOp.DIV or op is NOp.REM:
                    a = regs[ins.srcs[0]]
                    b = regs[ins.srcs[1]]
                    regs[ins.dst] = _divrem(a, b, ins.type,
                                            op is NOp.DIV)
                elif op is NOp.NEG:
                    regs[ins.dst] = coerce(-regs[ins.srcs[0]], ins.type)
                elif op is NOp.SHL or op is NOp.SHR:
                    a = int(regs[ins.srcs[0]])
                    b = int(regs[ins.srcs[1]])
                    bits = 63 if ins.type is JType.LONG else 31
                    t = ins.type if ins.type is JType.LONG else JType.INT
                    r = a << (b & bits) if op is NOp.SHL \
                        else a >> (b & bits)
                    regs[ins.dst] = mask_integral(r, t)
                elif op is NOp.CMP:
                    a = regs[ins.srcs[0]]
                    b = regs[ins.srcs[1]]
                    if isinstance(a, float) and math.isnan(a):
                        regs[ins.dst] = -1
                    elif isinstance(b, float) and math.isnan(b):
                        regs[ins.dst] = -1
                    else:
                        regs[ins.dst] = (a > b) - (a < b)
                elif op is NOp.CAST:
                    v = regs[ins.srcs[0]]
                    to = ins.type
                    if to.is_floating:
                        regs[ins.dst] = float(v)
                    else:
                        regs[ins.dst] = convert_to_integral(v, to)
                elif op is NOp.GETF:
                    ref = null_check(regs[ins.srcs[0]])
                    regs[ins.dst] = ref.getfield(ins.aux)
                elif op is NOp.PUTF:
                    ref = null_check(regs[ins.srcs[0]])
                    ref.putfield(ins.aux, regs[ins.srcs[1]])
                elif op is NOp.ALD:
                    ref = null_check(regs[ins.srcs[0]])
                    idx = ins.imm if len(ins.srcs) == 1 \
                        else regs[ins.srcs[1]]
                    regs[ins.dst] = ref.load(int(idx))
                elif op is NOp.AST:
                    ref = null_check(regs[ins.srcs[0]])
                    if ins.aux == "imm_idx":
                        idx, val = ins.imm, regs[ins.srcs[1]]
                    else:
                        idx, val = regs[ins.srcs[1]], regs[ins.srcs[2]]
                    ref.store(int(idx), coerce(val, ref.elem_type))
                elif op is NOp.ALEN:
                    ref = null_check(regs[ins.srcs[0]])
                    regs[ins.dst] = ref.length
                elif op is NOp.ACOPY:
                    self._acopy(vm, regs, ins)
                elif op is NOp.ACMP:
                    a = null_check(regs[ins.srcs[0]])
                    b = null_check(regs[ins.srcs[1]])
                    regs[ins.dst] = (a.data > b.data) - (a.data < b.data)
                    clk.cycles += min(a.length, b.length)
                elif op is NOp.NEW:
                    obj = JObject(ins.aux)
                    if ins.imm == 1:
                        obj.stack_allocated = True
                        clk.cycles += STACK_ALLOC_COST - NATIVE_COST[op]
                    else:
                        vm.on_allocation()
                    regs[ins.dst] = obj
                elif op is NOp.NEWARR:
                    length = int(regs[ins.srcs[0]])
                    if ins.imm == 1:
                        clk.cycles += STACK_ALLOC_COST - NATIVE_COST[op]
                    else:
                        vm.on_allocation()
                    regs[ins.dst] = JArray(ins.aux, length)
                elif op is NOp.NEWMULTI:
                    elem, _nd = ins.aux
                    dims = [int(regs[s]) for s in ins.srcs]
                    vm.on_allocation()
                    regs[ins.dst] = make_multiarray(elem, dims)
                elif op is NOp.INST:
                    ref = regs[ins.srcs[0]]
                    regs[ins.dst] = int(
                        isinstance(ref, JObject)
                        and ref.isinstance_of(ins.aux, vm.classes))
                elif op is NOp.CCAST:
                    ref = regs[ins.srcs[0]]
                    if ref is not None and isinstance(ref, JObject):
                        if not ref.isinstance_of(ins.aux, vm.classes):
                            raise JavaThrow(
                                "java/lang/ClassCastException",
                                f"{ref.class_name} -> {ins.aux}")
                elif op is NOp.MONE:
                    null_check(regs[ins.srcs[0]])
                    vm.on_monitor(enter=True)
                elif op is NOp.MONX:
                    null_check(regs[ins.srcs[0]])
                    vm.on_monitor(enter=False)
                elif op is NOp.THROW:
                    ref = null_check(regs[ins.srcs[0]])
                    raise JavaThrow(ref.class_name)
                elif op is NOp.NULLCHK:
                    null_check(regs[ins.srcs[0]])
                elif op is NOp.BNDCHK:
                    ref = null_check(regs[ins.srcs[0]])
                    idx = int(regs[ins.srcs[1]])
                    if not 0 <= idx < ref.length:
                        raise JavaThrow(
                            "java/lang/ArrayIndexOutOfBoundsException",
                            str(idx))
                elif op is NOp.CALL:
                    sig, argtypes, rtype = ins.aux
                    vals = [regs[s] for s in ins.srcs]
                    if is_intrinsic(sig):
                        value, rt, icost = call_intrinsic(sig, vals)
                        clk.cycles += icost
                    else:
                        value, rt = vm.invoke(
                            sig, list(zip(vals, argtypes)))
                    if ins.dst is not None:
                        regs[ins.dst] = value
                elif op is NOp.RET:
                    if ins.srcs:
                        return (regs[ins.srcs[0]], method.return_type)
                    return (None, JType.VOID)
                elif op is NOp.BR:
                    jump = self.labels[ins.aux]
                elif op is NOp.BC:
                    relop, target = ins.aux
                    v = regs[ins.srcs[0]]
                    taken = _relop_taken(relop, v)
                    if taken:
                        jump = self.labels[target]
                        # Taken conditional branches redirect the
                        # pipeline; fall-through is free.  This is the
                        # cycle the profile-guided layout recovers.
                        clk.cycles += 1
                    if profile is not None:
                        key = (self.block_bc.get(ins.block, -1), taken)
                        profile[key] = profile.get(key, 0) + 1
                        clk.cycles += 1
                elif op is NOp.THROWLOCAL:
                    target, class_name = ins.aux
                    pending_exc = JObject(class_name)
                    jump = self.labels[target]
                elif op is NOp.CATCH:
                    regs[ins.dst] = pending_exc
                elif op is NOp.SPST:
                    mem[ins.aux] = regs[ins.srcs[0]]
                elif op is NOp.SPLD:
                    regs[ins.dst] = mem[ins.aux]
                else:
                    raise VMError(f"native: unhandled op {op!r}")
            except JavaThrow as thrown:
                target = self._dispatch_exception(ins, thrown.class_name)
                if target is None:
                    raise
                pending_exc = JObject(thrown.class_name)
                ip = target
                prev_dst = None
                continue

            prev_dst = ins.dst
            if jump is not None:
                if jump <= ip:
                    vm.on_backward_branch(method)
                ip = jump
            else:
                ip += 1

    @staticmethod
    def _alui(a, ins):
        base = ins.aux
        imm = ins.imm
        if base is NOp.ADD:
            return coerce(a + imm, ins.type)
        if base is NOp.SUB:
            return coerce(a - imm, ins.type)
        if base is NOp.MUL:
            return coerce(a * imm, ins.type)
        if base is NOp.OR:
            return coerce(int(a) | int(imm), ins.type)
        if base is NOp.AND:
            return coerce(int(a) & int(imm), ins.type)
        if base is NOp.XOR:
            return coerce(int(a) ^ int(imm), ins.type)
        bits = 63 if ins.type is JType.LONG else 31
        t = ins.type if ins.type is JType.LONG else JType.INT
        if base is NOp.SHL:
            return mask_integral(int(a) << (int(imm) & bits), t)
        if base is NOp.SHR:
            return mask_integral(int(a) >> (int(imm) & bits), t)
        raise VMError(f"alui: bad base op {base!r}")

    def _acopy(self, vm, regs, ins):
        src = null_check(regs[ins.srcs[0]])
        srcoff = int(regs[ins.srcs[1]])
        dst = null_check(regs[ins.srcs[2]])
        dstoff = int(regs[ins.srcs[3]])
        count = int(regs[ins.srcs[4]])
        if (count < 0 or srcoff < 0 or dstoff < 0
                or srcoff + count > src.length
                or dstoff + count > dst.length):
            raise JavaThrow("java/lang/ArrayIndexOutOfBoundsException",
                            "arraycopy")
        dst.data[dstoff:dstoff + count] = src.data[srcoff:srcoff + count]
        vm.clock.cycles += 2 * count

    def __repr__(self):
        return (f"NativeCode({self.method.signature}, "
                f"{self.size()} instrs, leaf={self.leaf})")

    def listing(self):
        return "\n".join(f"{i:4d}  {ins!r}"
                         for i, ins in enumerate(self.instrs))


def _relop_taken(relop, v):
    if relop == "eq":
        return v == 0
    if relop == "ne":
        return v != 0
    if relop == "lt":
        return v < 0
    if relop == "le":
        return v <= 0
    if relop == "gt":
        return v > 0
    return v >= 0


def _divrem(a, b, jtype, is_div):
    if jtype.is_floating:
        if b == 0:
            if is_div:
                return (math.inf if a > 0 else -math.inf if a < 0
                        else math.nan)
            return math.nan
        return a / b if is_div else math.fmod(a, b)
    if b == 0:
        raise JavaThrow("java/lang/ArithmeticException", "/ by zero")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    r = q if is_div else a - q * b
    return coerce(r, jtype)
