"""The native simulator: executes compiled code, cycle-accurately.

A :class:`NativeCode` is the executable form of a compiled method.  Its
semantics are bit-identical to the interpreter's (same masking, same
division rules, same guest exceptions) -- property tests in
``tests/jit/test_equivalence.py`` enforce this -- but its *cost* is what
the optimizer earned: fewer instructions at 1-4 cycles each instead of
8-15 cycles of dispatch per bytecode.

The simulator also models one micro-architectural effect: a one-cycle
forwarding stall whenever an instruction consumes the result of its
immediate predecessor.  The ``instructionScheduling`` transformation
exists to reduce exactly these stalls.

Like the interpreter, dispatch is table-driven and **predecoded**: the
first execution (or an eager :meth:`NativeCode.predecode` call at
install / cache-load time) flattens the instruction stream into tuples
``(handler, cost, srcs, dst, a)``.  ``LABEL`` pseudo-instructions are
stripped (branch targets are remapped with an order-preserving index
map, so backward-branch detection -- ``jump <= ip`` -- is unchanged),
immediate-form constants are pre-coerced, ``ALUI``/``CALL``/``BC``
variants are resolved to specialized handlers, and a sentinel end entry
replaces the per-step bounds check.  Virtual-cycle accounting is
bit-identical to the retained legacy if/elif loop, which
``tests/jvm/test_dispatch_parity.py`` verifies.
"""

import math
import os

from repro.errors import JavaThrow, StepBudgetExceeded, VMError
from repro.jvm.bytecode import JType, convert_to_integral, mask_integral
from repro.jvm.classfile import is_intrinsic
from repro.jvm.interpreter import coerce
from repro.jvm.intrinsics import call_intrinsic
from repro.jvm.objects import JArray, JObject, make_multiarray, null_check
from repro.jit.codegen.isa import (
    FRAME_COST,
    LEAF_FRAME_COST,
    NATIVE_COST,
    NOp,
    STACK_ALLOC_COST,
    STALL_COST,
)

MAX_NATIVE_STEPS = 20_000_000

#: Mirror of :data:`repro.jvm.interpreter.USE_PREDECODE` for the native
#: tier; ``REPRO_DISPATCH=legacy`` switches both loops at once.
_DISPATCH_MODE = os.environ.get("REPRO_DISPATCH", "").lower()
USE_PREDECODE = _DISPATCH_MODE != "legacy"

#: Third engine (:mod:`repro.jit.codegen.superop`): bodies that carry a
#: fused superop program run block-at-a-time through its trampoline.
#: On by default (the hybrid mode: superops for host-tier bodies,
#: the predecoded loop for everything else); ``REPRO_DISPATCH=predecode``
#: pins the predecoded loop, ``legacy`` pins the if/elif loop.
USE_SUPEROP = _DISPATCH_MODE not in ("legacy", "predecode")

_SIMPLE_ALU = {
    NOp.ADD: lambda a, b: a + b,
    NOp.SUB: lambda a, b: a - b,
    NOp.MUL: lambda a, b: a * b,
    NOp.OR: lambda a, b: int(a) | int(b),
    NOp.AND: lambda a, b: int(a) & int(b),
    NOp.XOR: lambda a, b: int(a) ^ int(b),
}


class NativeFrame:
    """Mutable per-activation state shared by the predecoded handlers."""

    __slots__ = ("vm", "clock", "locals", "mem", "pending", "profile")

    def __init__(self, vm, locals_, profile):
        self.vm = vm
        self.clock = vm.clock
        self.locals = locals_
        self.mem = {}        # spill slots
        self.pending = None  # in-flight exception object (CATCH reads it)
        self.profile = profile


# -- predecoded handlers -----------------------------------------------------
#
# Signature ``(regs, frame, a)`` where ``a`` is the per-instruction operand
# tuple built once at predecode time.  Return protocol: ``None`` falls
# through, an ``int`` jumps to that (label-stripped) index, and the tuple
# ``("ret", (value, jtype))`` leaves the method.  The loop charges the
# entry's cost (plus any forwarding stall) *before* calling the handler,
# exactly as the legacy loop does.

def _n_const(regs, frame, a):
    dst, v = a
    regs[dst] = v


def _n_mov(regs, frame, a):
    dst, s0 = a
    regs[dst] = regs[s0]


def _n_ldloc(regs, frame, a):
    dst, slot = a
    regs[dst] = frame.locals[slot]


def _n_stloc(regs, frame, a):
    slot, s0 = a
    frame.locals[slot] = regs[s0]


def _n_incloc(regs, frame, a):
    slot, imm, t = a
    frame.locals[slot] = coerce(frame.locals[slot] + imm, t)


def _n_add(regs, frame, a):
    dst, s0, s1, t = a
    regs[dst] = coerce(regs[s0] + regs[s1], t)


def _n_sub(regs, frame, a):
    dst, s0, s1, t = a
    regs[dst] = coerce(regs[s0] - regs[s1], t)


def _n_mul(regs, frame, a):
    dst, s0, s1, t = a
    regs[dst] = coerce(regs[s0] * regs[s1], t)


def _n_or(regs, frame, a):
    dst, s0, s1, t = a
    regs[dst] = coerce(int(regs[s0]) | int(regs[s1]), t)


def _n_and(regs, frame, a):
    dst, s0, s1, t = a
    regs[dst] = coerce(int(regs[s0]) & int(regs[s1]), t)


def _n_xor(regs, frame, a):
    dst, s0, s1, t = a
    regs[dst] = coerce(int(regs[s0]) ^ int(regs[s1]), t)


def _n_div(regs, frame, a):
    dst, s0, s1, t = a
    regs[dst] = _divrem(regs[s0], regs[s1], t, True)


def _n_rem(regs, frame, a):
    dst, s0, s1, t = a
    regs[dst] = _divrem(regs[s0], regs[s1], t, False)


def _n_neg(regs, frame, a):
    dst, s0, t = a
    regs[dst] = coerce(-regs[s0], t)


def _n_shl(regs, frame, a):
    dst, s0, s1, bits, t = a
    regs[dst] = mask_integral(int(regs[s0]) << (int(regs[s1]) & bits), t)


def _n_shr(regs, frame, a):
    dst, s0, s1, bits, t = a
    regs[dst] = mask_integral(int(regs[s0]) >> (int(regs[s1]) & bits), t)


def _n_cmp(regs, frame, a):
    dst, s0, s1 = a
    x = regs[s0]
    y = regs[s1]
    if isinstance(x, float) and math.isnan(x):
        regs[dst] = -1
    elif isinstance(y, float) and math.isnan(y):
        regs[dst] = -1
    else:
        regs[dst] = (x > y) - (x < y)


def _n_addi(regs, frame, a):
    dst, s0, imm, t = a
    regs[dst] = coerce(regs[s0] + imm, t)


def _n_alui_add(regs, frame, a):
    dst, s0, imm, t = a
    regs[dst] = coerce(regs[s0] + imm, t)


def _n_alui_sub(regs, frame, a):
    dst, s0, imm, t = a
    regs[dst] = coerce(regs[s0] - imm, t)


def _n_alui_mul(regs, frame, a):
    dst, s0, imm, t = a
    regs[dst] = coerce(regs[s0] * imm, t)


def _n_alui_or(regs, frame, a):
    dst, s0, imm, t = a
    regs[dst] = coerce(int(regs[s0]) | imm, t)


def _n_alui_and(regs, frame, a):
    dst, s0, imm, t = a
    regs[dst] = coerce(int(regs[s0]) & imm, t)


def _n_alui_xor(regs, frame, a):
    dst, s0, imm, t = a
    regs[dst] = coerce(int(regs[s0]) ^ imm, t)


def _n_alui_shl(regs, frame, a):
    dst, s0, shift, t = a
    regs[dst] = mask_integral(int(regs[s0]) << shift, t)


def _n_alui_shr(regs, frame, a):
    dst, s0, shift, t = a
    regs[dst] = mask_integral(int(regs[s0]) >> shift, t)


def _n_cast_float(regs, frame, a):
    dst, s0 = a
    regs[dst] = float(regs[s0])


def _n_cast_int(regs, frame, a):
    dst, s0, to = a
    regs[dst] = convert_to_integral(regs[s0], to)


def _n_getf(regs, frame, a):
    dst, s0, field = a
    ref = null_check(regs[s0])
    regs[dst] = ref.getfield(field)


def _n_putf(regs, frame, a):
    s0, s1, field = a
    ref = null_check(regs[s0])
    ref.putfield(field, regs[s1])


def _n_ald_imm(regs, frame, a):
    dst, s0, idx = a
    ref = null_check(regs[s0])
    regs[dst] = ref.load(idx)


def _n_ald_reg(regs, frame, a):
    dst, s0, s1 = a
    ref = null_check(regs[s0])
    regs[dst] = ref.load(int(regs[s1]))


def _n_ast_imm(regs, frame, a):
    s0, idx, s1 = a
    ref = null_check(regs[s0])
    ref.store(idx, coerce(regs[s1], ref.elem_type))


def _n_ast_reg(regs, frame, a):
    s0, s1, s2 = a
    ref = null_check(regs[s0])
    ref.store(int(regs[s1]), coerce(regs[s2], ref.elem_type))


def _n_alen(regs, frame, a):
    dst, s0 = a
    ref = null_check(regs[s0])
    regs[dst] = ref.length


def _n_acopy(regs, frame, a):
    s_src, s_srcoff, s_dst, s_dstoff, s_count = a
    src = null_check(regs[s_src])
    srcoff = int(regs[s_srcoff])
    dst = null_check(regs[s_dst])
    dstoff = int(regs[s_dstoff])
    count = int(regs[s_count])
    if (count < 0 or srcoff < 0 or dstoff < 0
            or srcoff + count > src.length
            or dstoff + count > dst.length):
        raise JavaThrow("java/lang/ArrayIndexOutOfBoundsException",
                        "arraycopy")
    dst.data[dstoff:dstoff + count] = src.data[srcoff:srcoff + count]
    frame.clock.cycles += 2 * count


def _n_acmp(regs, frame, a):
    dst, s0, s1 = a
    x = null_check(regs[s0])
    y = null_check(regs[s1])
    regs[dst] = (x.data > y.data) - (x.data < y.data)
    frame.clock.cycles += min(x.length, y.length)


def _n_new_heap(regs, frame, a):
    dst, class_name = a
    frame.vm.on_allocation()
    regs[dst] = JObject(class_name)


def _n_new_stack(regs, frame, a):
    # Entry cost is STACK_ALLOC_COST (folded in at predecode), matching
    # the legacy loop's NATIVE_COST + (STACK_ALLOC_COST - NATIVE_COST).
    dst, class_name = a
    obj = JObject(class_name)
    obj.stack_allocated = True
    regs[dst] = obj


def _n_newarr_heap(regs, frame, a):
    dst, s0, elem = a
    length = int(regs[s0])
    frame.vm.on_allocation()
    regs[dst] = JArray(elem, length)


def _n_newarr_stack(regs, frame, a):
    dst, s0, elem = a
    regs[dst] = JArray(elem, int(regs[s0]))


def _n_newmulti(regs, frame, a):
    dst, srcs, elem = a
    dims = [int(regs[s]) for s in srcs]
    frame.vm.on_allocation()
    regs[dst] = make_multiarray(elem, dims)


def _n_inst(regs, frame, a):
    dst, s0, class_name = a
    ref = regs[s0]
    regs[dst] = int(isinstance(ref, JObject)
                    and ref.isinstance_of(class_name, frame.vm.classes))


def _n_ccast(regs, frame, a):
    s0, class_name = a
    ref = regs[s0]
    if ref is not None and isinstance(ref, JObject):
        if not ref.isinstance_of(class_name, frame.vm.classes):
            raise JavaThrow("java/lang/ClassCastException",
                            f"{ref.class_name} -> {class_name}")


def _n_mone(regs, frame, a):
    null_check(regs[a])
    frame.vm.on_monitor(enter=True)


def _n_monx(regs, frame, a):
    null_check(regs[a])
    frame.vm.on_monitor(enter=False)


def _n_throw(regs, frame, a):
    ref = null_check(regs[a])
    raise JavaThrow(ref.class_name)


def _n_nullchk(regs, frame, a):
    null_check(regs[a])


def _n_bndchk(regs, frame, a):
    s0, s1 = a
    ref = null_check(regs[s0])
    idx = int(regs[s1])
    if not 0 <= idx < ref.length:
        raise JavaThrow("java/lang/ArrayIndexOutOfBoundsException",
                        str(idx))


def _n_call_intrinsic(regs, frame, a):
    dst, srcs, sig = a
    value, _rt, icost = call_intrinsic(sig, [regs[s] for s in srcs])
    frame.clock.cycles += icost
    if dst is not None:
        regs[dst] = value


def _n_call_guest(regs, frame, a):
    dst, srcs, sig, argtypes = a
    vals = [regs[s] for s in srcs]
    value, _rt = frame.vm.invoke(sig, list(zip(vals, argtypes)))
    if dst is not None:
        regs[dst] = value


def _n_ret_void(regs, frame, a):
    return a  # the precomputed ("ret", (None, VOID)) sentinel


def _n_ret_val(regs, frame, a):
    s0, rtype = a
    return ("ret", (regs[s0], rtype))


def _n_br(regs, frame, a):
    return a


def _bc_body(frame, taken, bc_pc, target):
    if taken:
        # Taken conditional branches redirect the pipeline;
        # fall-through is free.  This is the cycle the profile-guided
        # layout recovers.
        frame.clock.cycles += 1
    prof = frame.profile
    if prof is not None:
        key = (bc_pc, taken)
        prof[key] = prof.get(key, 0) + 1
        frame.clock.cycles += 1
    return target if taken else None


def _n_bc_eq(regs, frame, a):
    s0, target, bc_pc = a
    return _bc_body(frame, regs[s0] == 0, bc_pc, target)


def _n_bc_ne(regs, frame, a):
    s0, target, bc_pc = a
    return _bc_body(frame, regs[s0] != 0, bc_pc, target)


def _n_bc_lt(regs, frame, a):
    s0, target, bc_pc = a
    return _bc_body(frame, regs[s0] < 0, bc_pc, target)


def _n_bc_le(regs, frame, a):
    s0, target, bc_pc = a
    return _bc_body(frame, regs[s0] <= 0, bc_pc, target)


def _n_bc_gt(regs, frame, a):
    s0, target, bc_pc = a
    return _bc_body(frame, regs[s0] > 0, bc_pc, target)


def _n_bc_ge(regs, frame, a):
    s0, target, bc_pc = a
    return _bc_body(frame, regs[s0] >= 0, bc_pc, target)


_BC_HANDLERS = {"eq": _n_bc_eq, "ne": _n_bc_ne, "lt": _n_bc_lt,
                "le": _n_bc_le, "gt": _n_bc_gt, "ge": _n_bc_ge}

_ALUI_HANDLERS = {NOp.ADD: _n_alui_add, NOp.SUB: _n_alui_sub,
                  NOp.MUL: _n_alui_mul, NOp.OR: _n_alui_or,
                  NOp.AND: _n_alui_and, NOp.XOR: _n_alui_xor,
                  NOp.SHL: _n_alui_shl, NOp.SHR: _n_alui_shr}


def _n_throwlocal(regs, frame, a):
    target, class_name = a
    frame.pending = JObject(class_name)
    return target


def _n_catch(regs, frame, a):
    regs[a] = frame.pending


def _n_spst(regs, frame, a):
    slot, s0 = a
    frame.mem[slot] = regs[s0]


def _n_spld(regs, frame, a):
    dst, slot = a
    regs[dst] = frame.mem[slot]


def _n_fell_off(regs, frame, a):
    # Sentinel entry appended past the last real instruction; replaces
    # the legacy loop's per-step ``ip >= n`` check.
    raise VMError(f"{a}: fell off native code")


#: Opcode-indexed handler table for the ops that need no per-instruction
#: specialization; predecode refines CONST/CAST/ALUI/ALD/AST/NEW/NEWARR/
#: CALL/RET/BC/SHL/SHR to the specialized handlers above.
N_HANDLERS = {
    NOp.MOV: _n_mov, NOp.LDLOC: _n_ldloc, NOp.STLOC: _n_stloc,
    NOp.INCLOC: _n_incloc,
    NOp.ADD: _n_add, NOp.SUB: _n_sub, NOp.MUL: _n_mul,
    NOp.OR: _n_or, NOp.AND: _n_and, NOp.XOR: _n_xor,
    NOp.DIV: _n_div, NOp.REM: _n_rem, NOp.NEG: _n_neg, NOp.CMP: _n_cmp,
    NOp.ADDI: _n_addi,
    NOp.GETF: _n_getf, NOp.PUTF: _n_putf, NOp.ALEN: _n_alen,
    NOp.ACOPY: _n_acopy, NOp.ACMP: _n_acmp, NOp.NEWMULTI: _n_newmulti,
    NOp.INST: _n_inst, NOp.CCAST: _n_ccast,
    NOp.MONE: _n_mone, NOp.MONX: _n_monx, NOp.THROW: _n_throw,
    NOp.NULLCHK: _n_nullchk, NOp.BNDCHK: _n_bndchk,
    NOp.BR: _n_br, NOp.THROWLOCAL: _n_throwlocal, NOp.CATCH: _n_catch,
    NOp.SPST: _n_spst, NOp.SPLD: _n_spld,
}


class NativeCode:
    """Executable compiled form of one method."""

    def __init__(self, ilmethod, instrs, leaf=False):
        self.method = ilmethod.method
        self.num_locals = ilmethod.num_locals
        self.instrs = list(instrs)
        self.leaf = leaf
        self.handlers = list(ilmethod.handlers)
        self.labels = {ins.aux: i for i, ins in enumerate(self.instrs)
                       if ins.op is NOp.LABEL}
        self.frame_cost = LEAF_FRAME_COST if leaf else FRAME_COST
        # block id -> original bytecode start pc: the stable key used by
        # branch profiles, which must survive recompilation (block ids
        # are compile-local, bytecode offsets are not).
        self.block_bc = {b.bid: b.bc_start for b in ilmethod.blocks}
        self._predecoded = None
        self._superop = None

    @classmethod
    def from_parts(cls, method, num_locals, instrs, leaf, handlers,
                   block_bc):
        """Rebuild a :class:`NativeCode` from persisted parts.

        Used by the code cache (:mod:`repro.codecache.serialize`) to
        reconstitute a body without the original ILMethod; the derived
        fields (label map, frame cost) are recomputed exactly as
        ``__init__`` computes them.
        """
        self = cls.__new__(cls)
        self.method = method
        self.num_locals = num_locals
        self.instrs = list(instrs)
        self.leaf = leaf
        self.handlers = list(handlers)
        self.labels = {ins.aux: i for i, ins in enumerate(self.instrs)
                       if ins.op is NOp.LABEL}
        self.frame_cost = LEAF_FRAME_COST if leaf else FRAME_COST
        self.block_bc = dict(block_bc)
        self._predecoded = None
        self._superop = None
        return self

    def size(self):
        """Number of native instructions (code-size proxy)."""
        return sum(1 for i in self.instrs if i.op is not NOp.LABEL)

    def invalidate_predecode(self):
        """Drop the cached predecoded body (call after editing
        ``instrs``; recompilation builds a fresh :class:`NativeCode`, so
        this is only needed for in-place surgery, e.g. in tests).  The
        fused superop program is derived from the predecoded stream, so
        it is dropped too."""
        self._predecoded = None
        self._superop = None

    def superop(self):
        """Build (and cache) the fused superop form of this body.

        Off the hot path: the install points (``JitCompiler.compile``
        and ``deserialize_compiled``) call this for host-tier bodies;
        ``execute`` only *uses* a program that is already attached.
        """
        if self._superop is None:
            from repro.jit.codegen.superop import build_superop
            self._superop = build_superop(self)
        return self._superop

    # -- predecoding -------------------------------------------------------

    def predecode(self):
        """Build (and cache) the flat dispatch form of this body.

        Returns ``(entries, pd_instrs, label_newidx)``: ``entries`` is a
        tuple of ``(handler, cost, srcs, dst, a)`` per non-``LABEL``
        instruction plus a trailing fell-off sentinel, ``pd_instrs``
        maps each entry index back to its :class:`NInstr` (exception
        dispatch needs the originating block), and ``label_newidx``
        remaps block-id labels to entry indices.  The remap is
        order-preserving, so ``jump <= ip`` detects exactly the
        backward branches the label-bearing loop detects.
        """
        if self._predecoded is not None:
            return self._predecoded
        old_to_new = []
        real = []
        for ins in self.instrs:
            old_to_new.append(len(real))
            if ins.op is not NOp.LABEL:
                real.append(ins)
        label_newidx = {aux: old_to_new[i] for aux, i in self.labels.items()}
        entries = [self._build_entry(ins, label_newidx) for ins in real]
        entries.append((_n_fell_off, 0, (), None, self.method.signature))
        self._predecoded = (tuple(entries), tuple(real), label_newidx)
        return self._predecoded

    def _build_entry(self, ins, label_newidx):
        """Predecode one instruction into ``(handler, cost, srcs, dst, a)``.

        All the per-step decode work of the legacy loop happens here
        once: immediate coercion, ALUI base-op and BC relop resolution,
        intrinsic-vs-guest call routing, addressing-mode selection and
        label remapping.
        """
        op = ins.op
        cost = NATIVE_COST[op]
        dst = ins.dst
        srcs = ins.srcs
        t = ins.type
        if op is NOp.CONST:
            return (_n_const, cost, srcs, dst, (dst, coerce(ins.imm, t)))
        if op is NOp.MOV:
            return (_n_mov, cost, srcs, dst, (dst, srcs[0]))
        if op is NOp.LDLOC:
            return (_n_ldloc, cost, srcs, dst, (dst, ins.imm))
        if op is NOp.STLOC:
            return (_n_stloc, cost, srcs, dst, (ins.imm, srcs[0]))
        if op is NOp.INCLOC:
            return (_n_incloc, cost, srcs, dst, (ins.aux, ins.imm, t))
        if op in _SIMPLE_ALU or op is NOp.DIV or op is NOp.REM:
            return (N_HANDLERS[op], cost, srcs, dst,
                    (dst, srcs[0], srcs[1], t))
        if op is NOp.ALUI:
            handler = _ALUI_HANDLERS[ins.aux]
            if ins.aux in (NOp.SHL, NOp.SHR):
                bits = 63 if t is JType.LONG else 31
                st = t if t is JType.LONG else JType.INT
                return (handler, cost, srcs, dst,
                        (dst, srcs[0], int(ins.imm) & bits, st))
            return (handler, cost, srcs, dst, (dst, srcs[0], ins.imm, t))
        if op is NOp.ADDI:
            return (_n_addi, cost, srcs, dst, (dst, srcs[0], ins.imm, t))
        if op is NOp.NEG:
            return (_n_neg, cost, srcs, dst, (dst, srcs[0], t))
        if op is NOp.SHL or op is NOp.SHR:
            bits = 63 if t is JType.LONG else 31
            st = t if t is JType.LONG else JType.INT
            handler = _n_shl if op is NOp.SHL else _n_shr
            return (handler, cost, srcs, dst,
                    (dst, srcs[0], srcs[1], bits, st))
        if op is NOp.CMP:
            return (_n_cmp, cost, srcs, dst, (dst, srcs[0], srcs[1]))
        if op is NOp.CAST:
            if t.is_floating:
                return (_n_cast_float, cost, srcs, dst, (dst, srcs[0]))
            return (_n_cast_int, cost, srcs, dst, (dst, srcs[0], t))
        if op is NOp.GETF:
            return (_n_getf, cost, srcs, dst, (dst, srcs[0], ins.aux))
        if op is NOp.PUTF:
            return (_n_putf, cost, srcs, dst, (srcs[0], srcs[1], ins.aux))
        if op is NOp.ALD:
            if len(srcs) == 1:
                return (_n_ald_imm, cost, srcs, dst,
                        (dst, srcs[0], int(ins.imm)))
            return (_n_ald_reg, cost, srcs, dst, (dst, srcs[0], srcs[1]))
        if op is NOp.AST:
            if ins.aux == "imm_idx":
                return (_n_ast_imm, cost, srcs, dst,
                        (srcs[0], int(ins.imm), srcs[1]))
            return (_n_ast_reg, cost, srcs, dst,
                    (srcs[0], srcs[1], srcs[2]))
        if op is NOp.ALEN:
            return (_n_alen, cost, srcs, dst, (dst, srcs[0]))
        if op is NOp.ACOPY:
            return (_n_acopy, cost, srcs, dst, tuple(srcs))
        if op is NOp.ACMP:
            return (_n_acmp, cost, srcs, dst, (dst, srcs[0], srcs[1]))
        if op is NOp.NEW:
            if ins.imm == 1:
                return (_n_new_stack, STACK_ALLOC_COST, srcs, dst,
                        (dst, ins.aux))
            return (_n_new_heap, cost, srcs, dst, (dst, ins.aux))
        if op is NOp.NEWARR:
            if ins.imm == 1:
                return (_n_newarr_stack, STACK_ALLOC_COST, srcs, dst,
                        (dst, srcs[0], ins.aux))
            return (_n_newarr_heap, cost, srcs, dst,
                    (dst, srcs[0], ins.aux))
        if op is NOp.NEWMULTI:
            elem, _nd = ins.aux
            return (_n_newmulti, cost, srcs, dst, (dst, srcs, elem))
        if op is NOp.INST:
            return (_n_inst, cost, srcs, dst, (dst, srcs[0], ins.aux))
        if op is NOp.CCAST:
            return (_n_ccast, cost, srcs, dst, (srcs[0], ins.aux))
        if op is NOp.MONE or op is NOp.MONX:
            return (N_HANDLERS[op], cost, srcs, dst, srcs[0])
        if op is NOp.THROW or op is NOp.NULLCHK:
            return (N_HANDLERS[op], cost, srcs, dst, srcs[0])
        if op is NOp.BNDCHK:
            return (_n_bndchk, cost, srcs, dst, (srcs[0], srcs[1]))
        if op is NOp.CALL:
            sig, argtypes, _rtype = ins.aux
            if is_intrinsic(sig):
                return (_n_call_intrinsic, cost, srcs, dst,
                        (dst, srcs, sig))
            return (_n_call_guest, cost, srcs, dst,
                    (dst, srcs, sig, tuple(argtypes)))
        if op is NOp.RET:
            if srcs:
                return (_n_ret_val, cost, srcs, dst,
                        (srcs[0], self.method.return_type))
            return (_n_ret_void, cost, srcs, dst,
                    ("ret", (None, JType.VOID)))
        if op is NOp.BR:
            return (_n_br, cost, srcs, dst, label_newidx[ins.aux])
        if op is NOp.BC:
            relop, target = ins.aux
            return (_BC_HANDLERS[relop], cost, srcs, dst,
                    (srcs[0], label_newidx[target],
                     self.block_bc.get(ins.block, -1)))
        if op is NOp.THROWLOCAL:
            target, class_name = ins.aux
            return (_n_throwlocal, cost, srcs, dst,
                    (label_newidx[target], class_name))
        if op is NOp.CATCH:
            return (_n_catch, cost, srcs, dst, dst)
        if op is NOp.SPST:
            return (_n_spst, cost, srcs, dst, (ins.aux, srcs[0]))
        if op is NOp.SPLD:
            return (_n_spld, cost, srcs, dst, (dst, ins.aux))
        raise VMError(f"native: unhandled op {op!r}")

    def _dispatch_exception(self, ins, thrown_class):
        """Find the handler label for an exception raised at *ins*."""
        for h in self.handlers:
            if ins.block in h.covered and h.matches(thrown_class):
                return self.labels[h.handler_bid]
        return None

    # -- execution ----------------------------------------------------------

    def execute(self, vm, args, profile=None):
        """Run the compiled method; returns ``(value, return_jtype)``.

        When *profile* (a dict) is supplied, every conditional branch
        records ``(bytecode_pc_of_block, taken) -> count`` -- the
        lightweight branch instrumentation that feeds scorching's
        feedback-directed block layout.  Profiled branches cost one
        extra cycle each (the counter update).
        """
        method = self.method
        if len(args) != method.num_args:
            raise VMError(f"{method.signature}: expected "
                          f"{method.num_args} args, got {len(args)}")
        locals_ = [0] * self.num_locals
        for i, ((value, _jt), ptype) in enumerate(
                zip(args, method.param_types)):
            locals_[i] = value if ptype.is_reference \
                else coerce(value, ptype)
        if USE_SUPEROP and self._superop is not None:
            return self._superop.run(self, vm, locals_, profile)
        if USE_PREDECODE:
            return self._run(vm, locals_, profile)
        return self._run_legacy(vm, locals_, profile)

    def _run(self, vm, locals_, profile):
        entries, pd_instrs, label_newidx = self.predecode()
        method = self.method
        handlers = self.handlers
        frame = NativeFrame(vm, locals_, profile)
        regs = {}
        clk = vm.clock
        clk.advance(self.frame_cost)
        stats = vm.stats
        ip = 0
        budget = MAX_NATIVE_STEPS
        prev_dst = None
        try:
            while True:
                budget -= 1
                if budget < 0:
                    raise StepBudgetExceeded(method.signature,
                                             MAX_NATIVE_STEPS, "native")
                handler, cost, srcs, dst, a = entries[ip]
                if prev_dst is not None and prev_dst in srcs:
                    clk.cycles += cost + STALL_COST
                else:
                    clk.cycles += cost
                try:
                    jump = handler(regs, frame, a)
                except JavaThrow as thrown:
                    target = None
                    block = pd_instrs[ip].block
                    for h in handlers:
                        if block in h.covered \
                                and h.matches(thrown.class_name):
                            target = label_newidx[h.handler_bid]
                            break
                    if target is None:
                        raise
                    frame.pending = JObject(thrown.class_name)
                    ip = target
                    prev_dst = None
                    continue
                prev_dst = dst
                if jump is None:
                    ip += 1
                elif jump.__class__ is int:
                    if jump <= ip:
                        vm.on_backward_branch(method)
                    ip = jump
                else:  # ("ret", (value, jtype)) sentinel
                    return jump[1]
        finally:
            steps = MAX_NATIVE_STEPS - budget
            stats["host_steps"] += steps
            stats["retired_instructions"] += steps

    def _run_legacy(self, vm, locals_, profile):
        method = self.method
        regs = {}
        mem = {}
        clk = vm.clock
        clk.advance(self.frame_cost)
        instrs = self.instrs
        n = len(instrs)
        ip = 0
        steps = 0
        labels_seen = 0
        prev_dst = None
        pending_exc = None

        try:
            while True:
                steps += 1
                if steps > MAX_NATIVE_STEPS:
                    raise StepBudgetExceeded(method.signature,
                                             MAX_NATIVE_STEPS, "native")
                if ip >= n:
                    raise VMError(f"{method.signature}: "
                                  "fell off native code")
                ins = instrs[ip]
                op = ins.op
                if op is NOp.LABEL:
                    labels_seen += 1
                    ip += 1
                    continue
                cost = NATIVE_COST[op]
                if prev_dst is not None and prev_dst in ins.srcs:
                    cost += STALL_COST
                clk.cycles += cost

                try:
                    jump = None
                    if op is NOp.CONST:
                        regs[ins.dst] = coerce(ins.imm, ins.type)
                    elif op is NOp.MOV:
                        regs[ins.dst] = regs[ins.srcs[0]]
                    elif op is NOp.LDLOC:
                        regs[ins.dst] = locals_[ins.imm]
                    elif op is NOp.STLOC:
                        locals_[ins.imm] = regs[ins.srcs[0]]
                    elif op is NOp.INCLOC:
                        locals_[ins.aux] = coerce(
                            locals_[ins.aux] + ins.imm, ins.type)
                    elif op in _SIMPLE_ALU:
                        a = regs[ins.srcs[0]]
                        b = regs[ins.srcs[1]]
                        regs[ins.dst] = coerce(_SIMPLE_ALU[op](a, b),
                                               ins.type)
                    elif op is NOp.ALUI:
                        a = regs[ins.srcs[0]]
                        regs[ins.dst] = self._alui(a, ins)
                    elif op is NOp.ADDI:
                        regs[ins.dst] = coerce(
                            regs[ins.srcs[0]] + ins.imm, ins.type)
                    elif op is NOp.DIV or op is NOp.REM:
                        a = regs[ins.srcs[0]]
                        b = regs[ins.srcs[1]]
                        regs[ins.dst] = _divrem(a, b, ins.type,
                                                op is NOp.DIV)
                    elif op is NOp.NEG:
                        regs[ins.dst] = coerce(-regs[ins.srcs[0]],
                                               ins.type)
                    elif op is NOp.SHL or op is NOp.SHR:
                        a = int(regs[ins.srcs[0]])
                        b = int(regs[ins.srcs[1]])
                        bits = 63 if ins.type is JType.LONG else 31
                        t = ins.type if ins.type is JType.LONG \
                            else JType.INT
                        r = a << (b & bits) if op is NOp.SHL \
                            else a >> (b & bits)
                        regs[ins.dst] = mask_integral(r, t)
                    elif op is NOp.CMP:
                        a = regs[ins.srcs[0]]
                        b = regs[ins.srcs[1]]
                        if isinstance(a, float) and math.isnan(a):
                            regs[ins.dst] = -1
                        elif isinstance(b, float) and math.isnan(b):
                            regs[ins.dst] = -1
                        else:
                            regs[ins.dst] = (a > b) - (a < b)
                    elif op is NOp.CAST:
                        v = regs[ins.srcs[0]]
                        to = ins.type
                        if to.is_floating:
                            regs[ins.dst] = float(v)
                        else:
                            regs[ins.dst] = convert_to_integral(v, to)
                    elif op is NOp.GETF:
                        ref = null_check(regs[ins.srcs[0]])
                        regs[ins.dst] = ref.getfield(ins.aux)
                    elif op is NOp.PUTF:
                        ref = null_check(regs[ins.srcs[0]])
                        ref.putfield(ins.aux, regs[ins.srcs[1]])
                    elif op is NOp.ALD:
                        ref = null_check(regs[ins.srcs[0]])
                        idx = ins.imm if len(ins.srcs) == 1 \
                            else regs[ins.srcs[1]]
                        regs[ins.dst] = ref.load(int(idx))
                    elif op is NOp.AST:
                        ref = null_check(regs[ins.srcs[0]])
                        if ins.aux == "imm_idx":
                            idx, val = ins.imm, regs[ins.srcs[1]]
                        else:
                            idx, val = regs[ins.srcs[1]], regs[ins.srcs[2]]
                        ref.store(int(idx), coerce(val, ref.elem_type))
                    elif op is NOp.ALEN:
                        ref = null_check(regs[ins.srcs[0]])
                        regs[ins.dst] = ref.length
                    elif op is NOp.ACOPY:
                        self._acopy(vm, regs, ins)
                    elif op is NOp.ACMP:
                        a = null_check(regs[ins.srcs[0]])
                        b = null_check(regs[ins.srcs[1]])
                        regs[ins.dst] = ((a.data > b.data)
                                         - (a.data < b.data))
                        clk.cycles += min(a.length, b.length)
                    elif op is NOp.NEW:
                        obj = JObject(ins.aux)
                        if ins.imm == 1:
                            obj.stack_allocated = True
                            clk.cycles += STACK_ALLOC_COST - NATIVE_COST[op]
                        else:
                            vm.on_allocation()
                        regs[ins.dst] = obj
                    elif op is NOp.NEWARR:
                        length = int(regs[ins.srcs[0]])
                        if ins.imm == 1:
                            clk.cycles += STACK_ALLOC_COST - NATIVE_COST[op]
                        else:
                            vm.on_allocation()
                        regs[ins.dst] = JArray(ins.aux, length)
                    elif op is NOp.NEWMULTI:
                        elem, _nd = ins.aux
                        dims = [int(regs[s]) for s in ins.srcs]
                        vm.on_allocation()
                        regs[ins.dst] = make_multiarray(elem, dims)
                    elif op is NOp.INST:
                        ref = regs[ins.srcs[0]]
                        regs[ins.dst] = int(
                            isinstance(ref, JObject)
                            and ref.isinstance_of(ins.aux, vm.classes))
                    elif op is NOp.CCAST:
                        ref = regs[ins.srcs[0]]
                        if ref is not None and isinstance(ref, JObject):
                            if not ref.isinstance_of(ins.aux, vm.classes):
                                raise JavaThrow(
                                    "java/lang/ClassCastException",
                                    f"{ref.class_name} -> {ins.aux}")
                    elif op is NOp.MONE:
                        null_check(regs[ins.srcs[0]])
                        vm.on_monitor(enter=True)
                    elif op is NOp.MONX:
                        null_check(regs[ins.srcs[0]])
                        vm.on_monitor(enter=False)
                    elif op is NOp.THROW:
                        ref = null_check(regs[ins.srcs[0]])
                        raise JavaThrow(ref.class_name)
                    elif op is NOp.NULLCHK:
                        null_check(regs[ins.srcs[0]])
                    elif op is NOp.BNDCHK:
                        ref = null_check(regs[ins.srcs[0]])
                        idx = int(regs[ins.srcs[1]])
                        if not 0 <= idx < ref.length:
                            raise JavaThrow(
                                "java/lang/ArrayIndexOutOfBoundsException",
                                str(idx))
                    elif op is NOp.CALL:
                        sig, argtypes, rtype = ins.aux
                        vals = [regs[s] for s in ins.srcs]
                        if is_intrinsic(sig):
                            value, rt, icost = call_intrinsic(sig, vals)
                            clk.cycles += icost
                        else:
                            value, rt = vm.invoke(
                                sig, list(zip(vals, argtypes)))
                        if ins.dst is not None:
                            regs[ins.dst] = value
                    elif op is NOp.RET:
                        if ins.srcs:
                            return (regs[ins.srcs[0]], method.return_type)
                        return (None, JType.VOID)
                    elif op is NOp.BR:
                        jump = self.labels[ins.aux]
                    elif op is NOp.BC:
                        relop, target = ins.aux
                        v = regs[ins.srcs[0]]
                        taken = _relop_taken(relop, v)
                        if taken:
                            jump = self.labels[target]
                            # Taken conditional branches redirect the
                            # pipeline; fall-through is free.  This is the
                            # cycle the profile-guided layout recovers.
                            clk.cycles += 1
                        if profile is not None:
                            key = (self.block_bc.get(ins.block, -1), taken)
                            profile[key] = profile.get(key, 0) + 1
                            clk.cycles += 1
                    elif op is NOp.THROWLOCAL:
                        target, class_name = ins.aux
                        pending_exc = JObject(class_name)
                        jump = self.labels[target]
                    elif op is NOp.CATCH:
                        regs[ins.dst] = pending_exc
                    elif op is NOp.SPST:
                        mem[ins.aux] = regs[ins.srcs[0]]
                    elif op is NOp.SPLD:
                        regs[ins.dst] = mem[ins.aux]
                    else:
                        raise VMError(f"native: unhandled op {op!r}")
                except JavaThrow as thrown:
                    target = self._dispatch_exception(ins,
                                                      thrown.class_name)
                    if target is None:
                        raise
                    pending_exc = JObject(thrown.class_name)
                    ip = target
                    prev_dst = None
                    continue

                prev_dst = ins.dst
                if jump is not None:
                    if jump <= ip:
                        vm.on_backward_branch(method)
                    ip = jump
                else:
                    ip += 1
        finally:
            # ``steps`` includes LABEL pseudo-instructions (they cost a
            # loop iteration on this engine); the retired count does not,
            # keeping it comparable across engines.
            vm.stats["host_steps"] += steps
            vm.stats["retired_instructions"] += steps - labels_seen

    @staticmethod
    def _alui(a, ins):
        base = ins.aux
        imm = ins.imm
        if base is NOp.ADD:
            return coerce(a + imm, ins.type)
        if base is NOp.SUB:
            return coerce(a - imm, ins.type)
        if base is NOp.MUL:
            return coerce(a * imm, ins.type)
        if base is NOp.OR:
            return coerce(int(a) | int(imm), ins.type)
        if base is NOp.AND:
            return coerce(int(a) & int(imm), ins.type)
        if base is NOp.XOR:
            return coerce(int(a) ^ int(imm), ins.type)
        bits = 63 if ins.type is JType.LONG else 31
        t = ins.type if ins.type is JType.LONG else JType.INT
        if base is NOp.SHL:
            return mask_integral(int(a) << (int(imm) & bits), t)
        if base is NOp.SHR:
            return mask_integral(int(a) >> (int(imm) & bits), t)
        raise VMError(f"alui: bad base op {base!r}")

    def _acopy(self, vm, regs, ins):
        src = null_check(regs[ins.srcs[0]])
        srcoff = int(regs[ins.srcs[1]])
        dst = null_check(regs[ins.srcs[2]])
        dstoff = int(regs[ins.srcs[3]])
        count = int(regs[ins.srcs[4]])
        if (count < 0 or srcoff < 0 or dstoff < 0
                or srcoff + count > src.length
                or dstoff + count > dst.length):
            raise JavaThrow("java/lang/ArrayIndexOutOfBoundsException",
                            "arraycopy")
        dst.data[dstoff:dstoff + count] = src.data[srcoff:srcoff + count]
        vm.clock.cycles += 2 * count

    def __repr__(self):
        return (f"NativeCode({self.method.signature}, "
                f"{self.size()} instrs, leaf={self.leaf})")

    def listing(self):
        return "\n".join(f"{i:4d}  {ins!r}"
                         for i, ins in enumerate(self.instrs))


def _relop_taken(relop, v):
    if relop == "eq":
        return v == 0
    if relop == "ne":
        return v != 0
    if relop == "lt":
        return v < 0
    if relop == "le":
        return v <= 0
    if relop == "gt":
        return v > 0
    return v >= 0


def _divrem(a, b, jtype, is_div):
    if jtype.is_floating:
        if b == 0:
            if is_div:
                return (math.inf if a > 0 else -math.inf if a < 0
                        else math.nan)
            return math.nan
        return a / b if is_div else math.fmod(a, b)
    if b == 0:
        raise JavaThrow("java/lang/ArithmeticException", "/ by zero")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    r = q if is_div else a - q * b
    return coerce(r, jtype)
