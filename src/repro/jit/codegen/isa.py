"""The virtual native instruction set.

Compiled methods run on a register machine with an unbounded register
namespace; the register allocator maps virtual registers onto a small
physical set and emits real spill traffic.  Per-instruction cycle costs are
what make compiled code faster than interpretation: the interpreter pays
~8-15 cycles of dispatch per bytecode, native instructions cost 1-4 cycles
(division, allocation and calls excepted).
"""

import enum


class NOp(enum.IntEnum):
    CONST = 1     # dst <- imm (typed)
    MOV = 2       # dst <- src
    ADD = 3
    SUB = 4
    MUL = 5
    DIV = 6
    REM = 7
    NEG = 8
    SHL = 9
    SHR = 10
    OR = 11
    AND = 12
    XOR = 13
    CMP = 14
    ADDI = 15     # dst <- src + imm (immediate form)
    ALUI = 16     # dst <- src <aux-op> imm (immediate ALU, aux=NOp of op)
    CAST = 17
    LDLOC = 18    # dst <- locals[imm]
    STLOC = 19    # locals[imm] <- src
    INCLOC = 20   # locals[aux] += imm
    GETF = 21     # dst <- src.field(aux)
    PUTF = 22     # srcs=(ref, val); aux=field
    ALD = 23      # dst <- srcs[0][srcs[1]]
    AST = 24      # srcs=(ref, idx, val)
    ALEN = 25
    ACOPY = 26    # srcs=(src, srcoff, dst, dstoff, count)
    ACMP = 27
    NEW = 28      # aux=class name; imm=1 when stack-allocated
    NEWARR = 29   # aux=elem type; srcs=(len,); imm=1 when stack-allocated
    NEWMULTI = 30  # aux=(elem type, ndims); srcs=lens
    INST = 31     # dst <- src instanceof aux
    CCAST = 32    # checkcast src against aux
    MONE = 33
    MONX = 34
    THROW = 35
    NULLCHK = 36
    BNDCHK = 37
    CALL = 38     # aux=(signature, argtypes, rtype); dst may be None
    RET = 39      # srcs=() or (val,)
    BR = 40       # aux=target label (block id)
    BC = 41       # aux=(relop, target label); srcs=(cond,)
    CATCH = 42    # dst <- in-flight exception object
    SPST = 43     # spill store: mem[aux] <- src
    SPLD = 44     # spill load: dst <- mem[aux]
    LABEL = 45    # aux=block id marker (zero cost, not executed)
    THROWLOCAL = 46  # aux=(target label, class): compile-time-resolved
                     # throw to a handler in the same frame (EDO)


#: Cycle cost per native instruction.
NATIVE_COST = {
    NOp.CONST: 1, NOp.MOV: 1,
    NOp.ADD: 1, NOp.SUB: 1, NOp.MUL: 3, NOp.DIV: 20, NOp.REM: 20,
    NOp.NEG: 1, NOp.SHL: 1, NOp.SHR: 1, NOp.OR: 1, NOp.AND: 1, NOp.XOR: 1,
    NOp.CMP: 1, NOp.ADDI: 1, NOp.ALUI: 1, NOp.CAST: 1,
    NOp.LDLOC: 2, NOp.STLOC: 2, NOp.INCLOC: 2,
    NOp.GETF: 3, NOp.PUTF: 3, NOp.ALD: 3, NOp.AST: 3, NOp.ALEN: 2,
    NOp.ACOPY: 8, NOp.ACMP: 4,
    NOp.NEW: 30, NOp.NEWARR: 30, NOp.NEWMULTI: 60,
    NOp.INST: 4, NOp.CCAST: 5,
    NOp.MONE: 10, NOp.MONX: 10, NOp.THROW: 40,
    NOp.NULLCHK: 1, NOp.BNDCHK: 1,
    NOp.CALL: 8, NOp.RET: 2, NOp.BR: 1, NOp.BC: 2, NOp.CATCH: 1,
    NOp.SPST: 3, NOp.SPLD: 3, NOp.LABEL: 0, NOp.THROWLOCAL: 3,
}

#: Cost of NEW/NEWARR when escape analysis proved the allocation local
#: (object header on the stack, no GC pressure).
STACK_ALLOC_COST = 6

#: Number of physical registers available to the allocator (two of which
#: are reserved as spill scratch).
PHYS_REGS = 12
SCRATCH_REGS = 2

#: Method prologue/epilogue overhead charged per compiled invocation.
FRAME_COST = 12
LEAF_FRAME_COST = 4

#: Extra cycle charged when an instruction consumes the result of the
#: immediately preceding instruction (pipeline forwarding stall); the
#: instruction-scheduling transformation exists to avoid these.
STALL_COST = 1


class NInstr:
    """One native instruction."""

    __slots__ = ("op", "dst", "srcs", "imm", "type", "aux", "block")

    def __init__(self, op, dst=None, srcs=(), imm=None, jtype=None,
                 aux=None, block=0):
        self.op = op
        self.dst = dst
        self.srcs = tuple(srcs)
        self.imm = imm
        self.type = jtype
        self.aux = aux
        self.block = block  # originating IL block (for handler scopes)

    def regs_read(self):
        return self.srcs

    def __repr__(self):
        parts = [self.op.name.lower()]
        if self.dst is not None:
            parts.append(f"r{self.dst}")
        parts.extend(f"r{s}" for s in self.srcs)
        if self.imm is not None:
            parts.append(f"#{self.imm!r}")
        if self.aux is not None:
            parts.append(f"<{self.aux!r}>")
        return " ".join(parts)


#: Instructions with side effects or ordering constraints: the scheduler
#: and peephole passes never move or delete these relative to one another.
SIDE_EFFECT_OPS = frozenset({
    NOp.STLOC, NOp.INCLOC, NOp.PUTF, NOp.AST, NOp.ACOPY, NOp.NEW,
    NOp.NEWARR, NOp.NEWMULTI, NOp.MONE, NOp.MONX, NOp.THROW, NOp.NULLCHK,
    NOp.BNDCHK, NOp.CALL, NOp.RET, NOp.BR, NOp.BC, NOp.CATCH, NOp.SPST,
    NOp.SPLD, NOp.LABEL, NOp.CCAST, NOp.DIV, NOp.REM,
    NOp.GETF, NOp.ALD, NOp.ALEN, NOp.ACMP, NOp.LDLOC, NOp.THROWLOCAL,
})

#: The subset of side-effecting ops that only *read* state; these may move
#: past pure computation but not past writes/calls.
READ_ONLY_OPS = frozenset({NOp.GETF, NOp.ALD, NOp.ALEN, NOp.ACMP,
                           NOp.LDLOC})
