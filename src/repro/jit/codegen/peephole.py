"""Native-level cleanup transformations.

These run on the linear instruction list.  All four are *controllable*
code transformations in the plan:

* ``coalesce_moves`` -- store-to-load forwarding through locals: a
  ``LDLOC`` that re-reads a slot just written in the same block becomes a
  register ``MOV`` (locals are frame-private, so no call can invalidate
  the forwarded value).
* ``compact_null_checks`` -- drop an explicit ``NULLCHK`` when the guarded
  access itself traps immediately afterwards with the same exception.
* ``peephole`` -- algebraic no-ops and dead pure definitions.
* ``schedule`` -- forwarding-stall avoidance by hoisting an independent
  instruction between a producer and its immediate consumer.
"""

from repro.jit.codegen.isa import NInstr, NOp, SIDE_EFFECT_OPS

#: Compile-cycles per instruction scanned by each of these passes.
PASS_COST_PER_INSTR = 5

#: Pure, freely movable computation (no memory, no traps).
_PURE_COMPUTE = frozenset({
    NOp.CONST, NOp.MOV, NOp.ADD, NOp.SUB, NOp.MUL, NOp.NEG, NOp.SHL,
    NOp.SHR, NOp.OR, NOp.AND, NOp.XOR, NOp.CMP, NOp.ADDI, NOp.ALUI,
    NOp.CAST,
})

#: Memory accesses that trap on a null base register (first source).
_NULL_TRAPPING = frozenset({
    NOp.GETF, NOp.PUTF, NOp.ALD, NOp.AST, NOp.ALEN, NOp.MONE, NOp.MONX,
})


def coalesce_moves(instrs):
    """Forward STLOC values to subsequent LDLOCs of the same slot."""
    out = []
    available = {}  # slot -> register currently holding its value
    for ins in instrs:
        op = ins.op
        if op is NOp.LABEL or op is NOp.BR or op is NOp.BC \
                or op is NOp.CALL or op is NOp.CATCH:
            # Control flow joins and calls end the forwarding window
            # (calls may re-enter this frame only via recursion into a
            # *different* frame, but a conservative kill is cheapest).
            available = {}
            out.append(ins)
            continue
        if op is NOp.STLOC:
            available[ins.imm] = ins.srcs[0]
            out.append(ins)
            continue
        if op is NOp.INCLOC:
            available.pop(ins.aux, None)
            out.append(ins)
            continue
        if op is NOp.LDLOC and ins.imm in available:
            out.append(NInstr(NOp.MOV, ins.dst, (available[ins.imm],),
                              None, ins.type, None, ins.block))
            continue
        if ins.dst is not None:
            # The forwarded register may be overwritten.
            available = {s: r for s, r in available.items()
                         if r != ins.dst}
        out.append(ins)
    return out, PASS_COST_PER_INSTR * len(instrs)


def compact_null_checks(instrs):
    """Remove NULLCHKs subsumed by an immediately following trapping access.

    Only pure computation may sit between the check and the access, so the
    externally observable state at the (identical) exception is unchanged.
    Runs pre-allocation where registers are single-definition, so a
    register loaded from a local slot can be identified with any other
    register loaded from the same slot (any intervening store ends the
    scan window, keeping the identification sound).
    """
    defs = {}
    for ins in instrs:
        if ins.dst is not None and ins.dst not in defs:
            defs[ins.dst] = ins

    def provenance(reg):
        d = defs.get(reg)
        if d is not None and d.op is NOp.LDLOC:
            return ("loc", d.imm)
        return ("reg", reg)

    out = []
    n = len(instrs)
    for i, ins in enumerate(instrs):
        if ins.op is NOp.NULLCHK:
            ref_prov = provenance(ins.srcs[0])
            subsumed = False
            for j in range(i + 1, min(i + 6, n)):
                nxt = instrs[j]
                if nxt.op in _NULL_TRAPPING and nxt.srcs \
                        and provenance(nxt.srcs[0]) == ref_prov:
                    subsumed = True
                    break
                if nxt.op in _PURE_COMPUTE or nxt.op is NOp.LDLOC:
                    continue
                break  # side effect / trap / control flow: stop
            if subsumed:
                continue
        out.append(ins)
    return out, PASS_COST_PER_INSTR * len(instrs)


def peephole(instrs):
    """Algebraic no-ops and dead pure definitions (runs pre-allocation,
    where every virtual register has a single definition)."""
    # Algebraic identities on immediate forms.
    out = []
    for ins in instrs:
        if ins.op is NOp.ALUI and ins.imm == 0 and ins.aux in (
                NOp.ADD, NOp.SUB, NOp.OR, NOp.XOR, NOp.SHL, NOp.SHR):
            out.append(NInstr(NOp.MOV, ins.dst, ins.srcs, None, ins.type,
                              None, ins.block))
        elif ins.op is NOp.MOV and ins.dst == ins.srcs[0]:
            continue
        else:
            out.append(ins)
    # Dead pure definitions: single-def registers never read.
    changed = True
    while changed:
        changed = False
        uses = {}
        for ins in out:
            for s in ins.srcs:
                uses[s] = uses.get(s, 0) + 1
        kept = []
        for ins in out:
            if (ins.dst is not None and ins.op in _PURE_COMPUTE
                    and uses.get(ins.dst, 0) == 0):
                changed = True
                continue
            kept.append(ins)
        out = kept
    return out, PASS_COST_PER_INSTR * len(instrs)


def schedule(instrs):
    """Reduce forwarding stalls: when instruction B consumes the result of
    its immediate predecessor A, try to move an independent pure
    instruction C between them."""
    out = list(instrs)
    cost = PASS_COST_PER_INSTR * len(instrs)
    i = 0
    while i + 2 < len(out):
        a, b, c = out[i], out[i + 1], out[i + 2]
        stall = a.dst is not None and a.dst in b.srcs
        if stall and c.op in _PURE_COMPUTE:
            # C may move before B if they are independent.
            indep = (c.dst not in b.srcs
                     and (b.dst is None or (b.dst not in c.srcs
                                            and b.dst != c.dst))
                     and c.dst != b.dst
                     and c.dst is not None and c.dst not in a.srcs
                     and c.dst != a.dst
                     and (a.dst is None or a.dst not in c.srcs)
                     and b.op not in (NOp.BR, NOp.BC, NOp.RET,
                                      NOp.LABEL))
            if indep and b.op not in SIDE_EFFECT_OPS:
                out[i + 1], out[i + 2] = c, b
                i += 2
                continue
        i += 1
    return out, cost


def elide_fallthrough_branches(instrs):
    """Remove BRs that target the label immediately following them."""
    out = []
    for i, ins in enumerate(instrs):
        if (ins.op is NOp.BR and i + 1 < len(instrs)
                and instrs[i + 1].op is NOp.LABEL
                and instrs[i + 1].aux == ins.aux):
            continue
        out.append(ins)
    return out
