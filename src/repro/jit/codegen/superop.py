"""The superinstruction host compiler: fuse hot blocks into closures.

The third execution engine.  The predecoded loop (PR 3) removed operand
decoding from the hot path but still pays one Python-level dispatch --
tuple unpack, stall test, cost add, handler call, jump-protocol check --
per retired guest instruction.  This module removes that too, the same
move template JITs make over interpreter loops: each **basic block** of
a :class:`~repro.jit.codegen.native.NativeCode` body is translated once,
off the hot path, into one Python closure (``exec``-compiled source)
that performs the whole straight-line run -- register reads/writes, ALU
ops, constant loads, field/array traffic -- with zero per-instruction
dispatch.  A thin **block trampoline** regains control only at block
boundaries: branches, guest calls, returns, and the backward-branch
safepoint polls.

Cost accounting is the non-negotiable part (``docs/host-performance.md``):
virtual cycles must stay bit-identical to the legacy and predecoded
engines.  Three mechanisms make that possible:

* the block's per-instruction costs **and** its internal forwarding
  stalls are statically known at fusion time, so the trampoline charges
  the whole block in one add before running the closure; the stall of a
  block's *first* instruction against the previous block's last write is
  the one dynamic bit, applied at the boundary (``prev_dst``/
  ``first_srcs``), exactly like the per-step loops do;
* dynamic costs (taken-branch +1, branch-profile +1, intrinsic cost,
  allocation, arraycopy) stay where they were -- inside the fused code
  or the trampoline's terminator step -- so they accrue only when
  executed;
* a guest exception escaping mid-closure is located by walking the
  traceback to the generated frame: each fused instruction occupies
  exactly one source line, so ``tb_lineno`` names the faulting
  instruction and the trampoline refunds the cycles of the unexecuted
  suffix before dispatching to the handler.  The happy path pays nothing
  for this.

Fusion rules: simple ops are emitted as inline statements (sharing the
exact helper functions -- ``coerce``, ``mask_integral``, ``null_check``
-- the predecoded handlers use, so semantics cannot drift); the few
heavyweight ops (``ACOPY``, ``ACMP``, ``NEWMULTI``, ``CCAST``, intrinsic
``CALL``) call their prebound predecoded handler from the generated
line, which is still cheaper than the loop (no table walk, no stall
test, no jump check).  Conditional-branch tests and return-value reads
are fused into the closure's final ``return``.  Guest ``CALL``s
terminate blocks and re-enter through the trampoline, keeping VM
re-entry out of generated frames.

Registers live in a ``regs`` dict shared across blocks, but a
whole-body liveness pass keeps most traffic out of it: only registers
that some block reads before writing (live-in anywhere), that a
handler-call instruction touches, or that the trampoline itself reads
(guest-call arguments) are written through to the dict -- everything
else is a plain Python local of its block's closure.  Write-through
writes keep the dict current at every instruction boundary, which is
what makes mid-block exception dispatch correct.

Gating: :meth:`NativeCode.superop` is built eagerly at the same install
points that predecode eagerly -- ``JitCompiler.compile()`` and
``deserialize_compiled()`` -- for bodies at :data:`SUPEROP_LEVEL`
(``HOT``) and above, under a ``jit.superop`` telemetry span, and dropped
by ``invalidate_predecode()``.  ``REPRO_DISPATCH=superop`` (the default
hybrid mode) runs eligible bodies through the trampoline; bodies below
the host tier fall back to the predecoded loop.
"""

from repro.errors import JavaThrow, StepBudgetExceeded, VMError
from repro.jit.plans import OptLevel
from repro.jvm.bytecode import INTEGRAL_BITS, JType
from repro.jvm.interpreter import coerce
from repro.jvm.objects import JArray, JObject, null_check
from repro.jit.codegen.isa import STALL_COST
from repro.jit.codegen.native import (
    _BC_HANDLERS,
    _n_add,
    _n_addi,
    _n_alen,
    _n_ald_imm,
    _n_ald_reg,
    _n_alui_add,
    _n_alui_and,
    _n_alui_mul,
    _n_alui_or,
    _n_alui_shl,
    _n_alui_shr,
    _n_alui_sub,
    _n_alui_xor,
    _n_and,
    _n_ast_imm,
    _n_ast_reg,
    _n_bndchk,
    _n_br,
    _n_call_guest,
    _n_cast_float,
    _n_cast_int,
    _n_catch,
    _n_cmp,
    _n_const,
    _n_div,
    _n_getf,
    _n_incloc,
    _n_inst,
    _n_ldloc,
    _n_mone,
    _n_monx,
    _n_mov,
    _n_mul,
    _n_neg,
    _n_new_heap,
    _n_new_stack,
    _n_newarr_heap,
    _n_newarr_stack,
    _n_nullchk,
    _n_or,
    _n_putf,
    _n_rem,
    _n_ret_val,
    _n_ret_void,
    _n_shl,
    _n_shr,
    _n_spld,
    _n_spst,
    _n_stloc,
    _n_sub,
    _n_throw,
    _n_throwlocal,
    _n_xor,
    MAX_NATIVE_STEPS,
    NativeFrame,
    _divrem,
)

#: Lowest optimization level whose bodies are fused into superblocks.
#: The adaptive controller's host-tier hook (``ControlConfig
#: .superop_level``) defaults to this; COLD/WARM bodies -- compiled in
#: bulk, run a handful of times -- are not worth the fusion cost.
SUPEROP_LEVEL = OptLevel.HOT

# -- block terminator kinds --------------------------------------------------

K_FALL = 0    # fall through into the next block (a label boundary)
K_BR = 1      # unconditional branch
K_BC = 2      # conditional branch (taken/profile cycles are dynamic)
K_RET = 3     # leave the method
K_TLOCAL = 4  # compile-time-resolved throw to a same-frame handler
K_CALL = 5    # guest call: the trampoline re-enters the VM

#: Fused comparison suffix per relop (the closure returns the test).
_RELOP_EXPRS = {"eq": "== 0", "ne": "!= 0", "lt": "< 0",
                "le": "<= 0", "gt": "> 0", "ge": ">= 0"}

_BC_RELOPS = {handler: relop for relop, handler in _BC_HANDLERS.items()}
_TERMINATORS = (frozenset(_BC_HANDLERS.values())
                | {_n_br, _n_ret_val, _n_ret_void, _n_throwlocal,
                   _n_call_guest})


def _bounds_check(ref, idx):
    """Shared BNDCHK body (identical to ``_n_bndchk``)."""
    ref = null_check(ref)
    i = int(idx)
    if not 0 <= i < ref.length:
        raise JavaThrow("java/lang/ArrayIndexOutOfBoundsException",
                        str(i))


# -- type-specialized numeric helpers ----------------------------------------
#
# ``coerce``/``convert_to_integral``/``mask_integral`` take the target
# JType at runtime and re-derive its bit width, bounds and signedness on
# every call.  In fused code the type is a *compile-time* constant, so
# each integral type gets one closure with all of that precomputed --
# value-identical to the generic helpers (the float path follows Java's
# d2i/d2l saturation rules, the int path two's-complement wrapping),
# just without the per-call type dispatch.

_COERCERS = {}
_MASKERS = {}


def _integral_coercer(jtype):
    """Specialized ``coerce(value, jtype)`` for an integral/decimal type.

    Also exactly ``convert_to_integral(value, jtype)`` -- for these
    types the two generic helpers agree.
    """
    fn = _COERCERS.get(jtype)
    if fn is not None:
        return fn
    target = jtype if jtype in INTEGRAL_BITS else JType.LONG
    bits = INTEGRAL_BITS[target]
    mask = (1 << bits) - 1
    sign_bit = 1 << (bits - 1)
    wrap = 1 << bits
    if target is JType.CHAR:
        lo, hi = 0, mask

        def fn(value):
            if isinstance(value, float):
                if value != value:
                    return 0
                if value <= lo:
                    return lo
                if value >= hi:
                    return hi
                return int(value)
            return int(value) & mask
    else:
        lo, hi = -sign_bit, sign_bit - 1

        def fn(value):
            if isinstance(value, float):
                if value != value:
                    return 0
                if value <= lo:
                    return lo
                if value >= hi:
                    return hi
                return int(value)
            v = int(value) & mask
            return v - wrap if v >= sign_bit else v
    _COERCERS[jtype] = fn
    return fn


def _integral_masker(jtype):
    """Specialized ``mask_integral(value, jtype)`` (int input only)."""
    fn = _MASKERS.get(jtype)
    if fn is not None:
        return fn
    bits = INTEGRAL_BITS[jtype]
    mask = (1 << bits) - 1
    sign_bit = 1 << (bits - 1)
    wrap = 1 << bits
    if jtype is JType.CHAR:
        def fn(v):
            return v & mask
    else:
        def fn(v):
            v &= mask
            return v - wrap if v >= sign_bit else v
    _MASKERS[jtype] = fn
    return fn


class SuperBlock:
    """One fused basic block plus its precomputed trampoline metadata."""

    __slots__ = (
        "fn",          # compiled closure (None only for fusion-free blocks)
        "code",        # fn.__code__, for traceback-based trap location
        "first_line",  # module line of the first fused instruction
        "start",       # first entry index (into the predecoded stream)
        "length",      # retired instructions in this block (incl. terminator)
        "cost",        # static virtual cycles: base costs + internal stalls
        "prefix",      # prefix[k] = static cycles through instruction k
        "first_srcs",  # srcs of the first instruction (entry-stall test)
        "exit_dst",    # dst carried into the next block on fall-through
        "kind",        # K_* terminator kind
        "target",      # successor block index (BR/THROWLOCAL)
        "backward",    # BR/THROWLOCAL jump is a loop back-edge
        "taken",       # BC: taken-successor block index
        "taken_backward",  # BC: taken edge is a back-edge
        "bc_pc",       # BC: bytecode pc of the owning block (profile key)
        "ret_type",    # RET: return JType
        "call_args",   # CALL: prebound (dst, srcs, sig, argtypes)
        "cls",         # THROWLOCAL: exception class name
    )

    def __init__(self):
        for name in self.__slots__:
            setattr(self, name, None)


class SuperProgram:
    """The fused form of one :class:`NativeCode`: blocks + entry map."""

    __slots__ = ("blocks", "block_at", "n_fused", "n_handler_calls")

    def __init__(self, blocks, block_at, n_fused, n_handler_calls):
        self.blocks = blocks
        self.block_at = block_at          # entry index -> block index
        self.n_fused = n_fused            # instructions fused inline
        self.n_handler_calls = n_handler_calls

    def run(self, native, vm, locals_, profile):
        return _execute(self, native, vm, locals_, profile)


# -- liveness: which registers must live in the shared dict ------------------


def _dict_required(entries, bounds):
    """Registers that must be written through to the ``regs`` dict.

    A register can stay a closure-local Python variable only if every
    read of it is preceded, in the same block, by an inline write.  The
    dict is required for a register that is live-in to any block (read
    before written there -- including via a mid-block exception entering
    a handler block), read or written by any handler-call instruction
    (handlers touch the dict directly), or read by the trampoline
    (guest-call arguments).
    """
    required = set()
    for bi, start in enumerate(bounds[:-1]):
        end = bounds[bi + 1]
        has_term = entries[end - 1][0] in _TERMINATORS
        written = set()
        for i in range(start, end):
            handler, _cost, srcs, dst, _a = entries[i]
            if has_term and i == end - 1:
                if handler in _BC_RELOPS or handler is _n_ret_val:
                    # Fused into the closure's return: a plain read.
                    for s in srcs:
                        if s not in written:
                            required.add(s)
                elif handler is _n_call_guest:
                    # The trampoline invokes the handler on the dict.
                    required.update(srcs)
                    if dst is not None:
                        required.add(dst)
                # BR / THROWLOCAL / RET-void touch no registers.
            elif handler in _INLINE:
                for s in srcs:
                    if s not in written:
                        required.add(s)
                if dst is not None:
                    written.add(dst)
            else:
                # Handler call inside the body: reads and writes go
                # straight to the dict.
                required.update(srcs)
                if dst is not None:
                    required.add(dst)
                    written.add(dst)
    return required


# -- source emission ---------------------------------------------------------


class _Emitter:
    """Emits one block's straight-line body, one instruction per line.

    Dict-required register writes go through the shared ``regs`` dict
    *and* (when read again later in the block) a block-local variable
    (``regs[5] = _r5 = ...``): the dict stays authoritative at every
    instruction boundary -- which is what makes mid-block exception
    dispatch and handler-written registers correct -- while later reads
    hit the fast local.  Registers outside the required set skip the
    dict entirely.
    """

    def __init__(self, pool, required):
        self.pool = pool
        self.required = required
        self.lines = []
        self.cache = {}        # reg -> local name, valid within the block
        self.read_counts = {}  # reg -> remaining reads in the block
        self.fused = 0
        self.handler_calls = 0
        self.prefix_stmts = []

    def tally_reads(self, srcs):
        for s in srcs:
            self.read_counts[s] = self.read_counts.get(s, 0) + 1

    # -- operand helpers -------------------------------------------------

    def lit(self, v):
        """A literal for *v*: inline when round-trip-safe, else pooled."""
        if v is None or v is True or v is False:
            return repr(v)
        if type(v) is int:
            return repr(v)
        if type(v) is str:
            return repr(v)
        return self.pool(v)

    def read(self, r):
        name = self.cache.get(r)
        if name is not None:
            self.read_counts[r] -= 1
            return name
        left = self.read_counts.get(r, 0)
        self.read_counts[r] = left - 1
        if left > 1:
            # Read again later in this block: promote to a local now.
            name = f"_r{r}"
            self.prefix_stmts.append(f"{name} = regs[{r}]")
            self.cache[r] = name
            return name
        return f"regs[{r}]"

    def write(self, d, expr):
        if d in self.required:
            if self.read_counts.get(d, 0) > 0:
                name = f"_r{d}"
                self.cache[d] = name
                return f"regs[{d}] = {name} = {expr}"
            self.cache.pop(d, None)
            return f"regs[{d}] = {expr}"
        name = f"_r{d}"
        self.cache[d] = name
        return f"{name} = {expr}"

    def coerced(self, expr, t):
        """``coerce(expr, t)`` with the type resolved at fusion time."""
        if t.is_floating:
            return f"float({expr})"
        if t.is_integral or t.is_decimal:
            return f"{self.pool(_integral_coercer(t))}({expr})"
        return expr  # reference types pass through unchanged

    def masked(self, expr, t):
        """``mask_integral(expr, t)`` specialized for *t*."""
        return f"{self.pool(_integral_masker(t))}({expr})"

    def handler_call(self, entry):
        """Fallback: call the prebound predecoded handler inline."""
        handler, _cost, _srcs, dst, a = entry
        if dst is not None:
            # The handler writes the dict directly; any cached local
            # for dst is stale from here on.
            self.cache.pop(dst, None)
        self.handler_calls += 1
        return f"{self.pool(handler)}(regs, frame, {self.pool(a)})"

    # -- per-instruction emission ----------------------------------------

    def emit(self, entry):
        """Append exactly one source line for *entry*."""
        self.prefix_stmts = []
        stmt = self._emit_stmt(entry)
        self.prefix_stmts.append(stmt)
        self.lines.append("; ".join(self.prefix_stmts))

    def _emit_stmt(self, entry):
        handler, _cost, _srcs, _dst, a = entry
        emitter = _INLINE.get(handler)
        if emitter is None:
            return self.handler_call(entry)
        self.fused += 1
        return emitter(self, a)

    def emit_terminator(self, entry):
        """One ``return`` line for a fusable terminator (BC / RET-val)."""
        handler, _cost, _srcs, _dst, a = entry
        self.prefix_stmts = []
        if handler is _n_ret_val:
            stmt = f"return {self.read(a[0])}"
        else:
            relop = _BC_RELOPS[handler]
            stmt = f"return {self.read(a[0])} {_RELOP_EXPRS[relop]}"
        self.prefix_stmts.append(stmt)
        self.lines.append("; ".join(self.prefix_stmts))


def _e_const(e, a):
    d, v = a
    return e.write(d, e.lit(v))


def _e_mov(e, a):
    d, s0 = a
    return e.write(d, e.read(s0))


def _e_ldloc(e, a):
    d, slot = a
    return e.write(d, f"_L[{slot}]")


def _e_stloc(e, a):
    slot, s0 = a
    return f"_L[{slot}] = {e.read(s0)}"


def _e_incloc(e, a):
    slot, imm, t = a
    return (f"_L[{slot}] = "
            + e.coerced(f"_L[{slot}] + {e.lit(imm)}", t))


def _e_binop(op):
    def emit(e, a):
        d, s0, s1, t = a
        return e.write(d, e.coerced(f"{e.read(s0)} {op} {e.read(s1)}",
                                    t))
    return emit


def _e_bitop(op):
    def emit(e, a):
        d, s0, s1, t = a
        return e.write(d, e.coerced(f"int({e.read(s0)}) {op} "
                                    f"int({e.read(s1)})", t))
    return emit


def _e_divrem(is_div):
    def emit(e, a):
        d, s0, s1, t = a
        return e.write(d, f"_divrem({e.read(s0)}, {e.read(s1)}, "
                          f"{e.pool(t)}, {is_div})")
    return emit


def _e_neg(e, a):
    d, s0, t = a
    return e.write(d, e.coerced(f"-{e.read(s0)}", t))


def _e_shift(op):
    def emit(e, a):
        d, s0, s1, bits, t = a
        return e.write(d, e.masked(f"int({e.read(s0)}) {op} "
                                   f"(int({e.read(s1)}) & {bits})", t))
    return emit


def _e_cmp(e, a):
    d, s0, s1 = a
    return (f"_x = {e.read(s0)}; _y = {e.read(s1)}; "
            + e.write(d, "-1 if (isinstance(_x, float) and _x != _x)"
                         " or (isinstance(_y, float) and _y != _y)"
                         " else (_x > _y) - (_x < _y)"))


def _e_addimm(op):
    def emit(e, a):
        d, s0, imm, t = a
        return e.write(d, e.coerced(f"{e.read(s0)} {op} {e.lit(imm)}",
                                    t))
    return emit


def _e_bitimm(op):
    def emit(e, a):
        d, s0, imm, t = a
        return e.write(d, e.coerced(f"int({e.read(s0)}) {op} "
                                    f"{e.lit(imm)}", t))
    return emit


def _e_shiftimm(op):
    def emit(e, a):
        d, s0, shift, t = a
        return e.write(d, e.masked(f"int({e.read(s0)}) {op} {shift}",
                                   t))
    return emit


def _e_cast_float(e, a):
    d, s0 = a
    return e.write(d, f"float({e.read(s0)})")


def _e_cast_int(e, a):
    d, s0, to = a
    return e.write(d, f"{e.pool(_integral_coercer(to))}({e.read(s0)})")


def _e_getf(e, a):
    d, s0, field = a
    return e.write(d, f"null_check({e.read(s0)}).getfield({e.lit(field)})")


def _e_putf(e, a):
    s0, s1, field = a
    return (f"null_check({e.read(s0)}).putfield({e.lit(field)}, "
            f"{e.read(s1)})")


def _e_ald_imm(e, a):
    d, s0, idx = a
    return e.write(d, f"null_check({e.read(s0)}).load({idx})")


def _e_ald_reg(e, a):
    d, s0, s1 = a
    return e.write(d, f"null_check({e.read(s0)}).load(int({e.read(s1)}))")


def _e_ast_imm(e, a):
    s0, idx, s1 = a
    return (f"_o = null_check({e.read(s0)}); _o.store({idx}, "
            f"coerce({e.read(s1)}, _o.elem_type))")


def _e_ast_reg(e, a):
    s0, s1, s2 = a
    return (f"_o = null_check({e.read(s0)}); _o.store(int({e.read(s1)}), "
            f"coerce({e.read(s2)}, _o.elem_type))")


def _e_alen(e, a):
    d, s0 = a
    return e.write(d, f"null_check({e.read(s0)}).length")


def _e_new_heap(e, a):
    d, cls = a
    return (f"frame.vm.on_allocation(); "
            + e.write(d, f"JObject({e.lit(cls)})"))


def _e_new_stack(e, a):
    d, cls = a
    return (f"_o = JObject({e.lit(cls)}); _o.stack_allocated = True; "
            + e.write(d, "_o"))


def _e_newarr_heap(e, a):
    d, s0, elem = a
    return (f"_n = int({e.read(s0)}); frame.vm.on_allocation(); "
            + e.write(d, f"JArray({e.pool(elem)}, _n)"))


def _e_newarr_stack(e, a):
    d, s0, elem = a
    return e.write(d, f"JArray({e.pool(elem)}, int({e.read(s0)}))")


def _e_inst(e, a):
    d, s0, cls = a
    return (f"_o = {e.read(s0)}; "
            + e.write(d, f"int(isinstance(_o, JObject) and "
                         f"_o.isinstance_of({e.lit(cls)}, "
                         f"frame.vm.classes))"))


def _e_mone(e, a):
    return (f"null_check({e.read(a)}); "
            f"frame.vm.on_monitor(enter=True)")


def _e_monx(e, a):
    return (f"null_check({e.read(a)}); "
            f"frame.vm.on_monitor(enter=False)")


def _e_throw(e, a):
    return f"raise JavaThrow(null_check({e.read(a)}).class_name)"


def _e_nullchk(e, a):
    return f"null_check({e.read(a)})"


def _e_bndchk(e, a):
    s0, s1 = a
    return f"_bounds_check({e.read(s0)}, {e.read(s1)})"


def _e_catch(e, a):
    return e.write(a, "frame.pending")


def _e_spst(e, a):
    slot, s0 = a
    return f"_M[{e.lit(slot)}] = {e.read(s0)}"


def _e_spld(e, a):
    d, slot = a
    return e.write(d, f"_M[{e.lit(slot)}]")


#: Handler -> inline emitter.  Ops absent here (ACOPY, ACMP, NEWMULTI,
#: CCAST, intrinsic CALL) fall back to calling their prebound predecoded
#: handler from the generated line.
_INLINE = {
    _n_const: _e_const, _n_mov: _e_mov,
    _n_ldloc: _e_ldloc, _n_stloc: _e_stloc, _n_incloc: _e_incloc,
    _n_add: _e_binop("+"), _n_sub: _e_binop("-"), _n_mul: _e_binop("*"),
    _n_or: _e_bitop("|"), _n_and: _e_bitop("&"), _n_xor: _e_bitop("^"),
    _n_div: _e_divrem(True), _n_rem: _e_divrem(False),
    _n_neg: _e_neg,
    _n_shl: _e_shift("<<"), _n_shr: _e_shift(">>"),
    _n_cmp: _e_cmp,
    _n_addi: _e_addimm("+"),
    _n_alui_add: _e_addimm("+"), _n_alui_sub: _e_addimm("-"),
    _n_alui_mul: _e_addimm("*"),
    _n_alui_or: _e_bitimm("|"), _n_alui_and: _e_bitimm("&"),
    _n_alui_xor: _e_bitimm("^"),
    _n_alui_shl: _e_shiftimm("<<"), _n_alui_shr: _e_shiftimm(">>"),
    _n_cast_float: _e_cast_float, _n_cast_int: _e_cast_int,
    _n_getf: _e_getf, _n_putf: _e_putf,
    _n_ald_imm: _e_ald_imm, _n_ald_reg: _e_ald_reg,
    _n_ast_imm: _e_ast_imm, _n_ast_reg: _e_ast_reg,
    _n_alen: _e_alen,
    _n_new_heap: _e_new_heap, _n_new_stack: _e_new_stack,
    _n_newarr_heap: _e_newarr_heap, _n_newarr_stack: _e_newarr_stack,
    _n_inst: _e_inst,
    _n_mone: _e_mone, _n_monx: _e_monx,
    _n_throw: _e_throw, _n_nullchk: _e_nullchk, _n_bndchk: _e_bndchk,
    _n_catch: _e_catch,
    _n_spst: _e_spst, _n_spld: _e_spld,
}

#: Base namespace every generated module sees (the same helpers the
#: predecoded handlers call, so fused semantics cannot drift).
_BASE_NAMESPACE = {
    "coerce": coerce,
    "null_check": null_check,
    "JObject": JObject,
    "JArray": JArray,
    "JavaThrow": JavaThrow,
    "_divrem": _divrem,
    "_bounds_check": _bounds_check,
}


# -- fusion ------------------------------------------------------------------


def build_superop(native):
    """Fuse *native*'s predecoded stream into a :class:`SuperProgram`."""
    entries, pd_instrs, label_newidx = native.predecode()
    n_real = len(entries) - 1  # drop the fell-off sentinel

    starts = {0}
    for idx in label_newidx.values():
        if idx < n_real:
            starts.add(idx)
    for i in range(n_real):
        if entries[i][0] in _TERMINATORS:
            starts.add(i + 1)
    starts.discard(n_real)
    bounds = sorted(starts) + [n_real]

    block_at = {}
    for bi, start in enumerate(bounds[:-1]):
        block_at[start] = bi
    # Jumps to a label sitting past the last real instruction (or the
    # sentinel itself) fall off the end, like the per-step loops do.
    nblocks = len(bounds) - 1
    for aux, idx in label_newidx.items():
        if idx >= n_real:
            block_at[idx] = nblocks

    required = _dict_required(entries, bounds)

    namespace = dict(_BASE_NAMESPACE)
    pool_names = {}

    def pool(obj):
        key = id(obj)
        name = pool_names.get(key)
        if name is None:
            name = f"_k{len(pool_names)}"
            pool_names[key] = name
            namespace[name] = obj
        return name

    blocks = []
    src_lines = []
    line = 1  # compile() numbers lines from 1
    n_fused = 0
    n_handler_calls = 0
    for bi, start in enumerate(bounds[:-1]):
        end = bounds[bi + 1]
        b = SuperBlock()
        b.start = start
        b.length = end - start
        term = None
        body_end = end
        if entries[end - 1][0] in _TERMINATORS:
            term = entries[end - 1]
            body_end = end - 1

        # Static cost: base costs plus every internal forwarding stall.
        prefix = []
        total = 0
        for i in range(start, end):
            cost = entries[i][1]
            if i > start and entries[i - 1][3] is not None \
                    and entries[i - 1][3] in entries[i][2]:
                cost += STALL_COST
            total += cost
            prefix.append(total)
        b.cost = total
        b.prefix = tuple(prefix)
        b.first_srcs = entries[start][2]

        term_fused = term is not None and (
            term[0] in _BC_RELOPS or term[0] is _n_ret_val)

        # Straight-line body -> one closure, one line per instruction.
        # BC tests and RET-value reads become the closure's return.
        if body_end > start or term_fused:
            emitter = _Emitter(pool, required)
            for i in range(start, body_end):
                if entries[i][0] in _INLINE:
                    emitter.tally_reads(entries[i][2])
            if term_fused:
                emitter.tally_reads(term[2])
            for i in range(start, body_end):
                emitter.emit(entries[i])
            if term_fused:
                emitter.emit_terminator(term)
                n_fused += 1
            src_lines.append(f"def _b{bi}(regs, frame, _L, _M):")
            line += 1
            b.first_line = line
            src_lines.extend("    " + ln for ln in emitter.lines)
            line += len(emitter.lines)
            n_fused += emitter.fused
            n_handler_calls += emitter.handler_calls

        # Terminator metadata for the trampoline.
        if term is None:
            b.kind = K_FALL
            b.exit_dst = entries[end - 1][3]
        else:
            handler, _cost, srcs, dst, a = term
            tidx = end - 1
            if handler is _n_br:
                b.kind = K_BR
                b.target = block_at[a]
                b.backward = a <= tidx
            elif handler in _BC_RELOPS:
                b.kind = K_BC
                s0, target, bc_pc = a
                b.taken = block_at[target]
                b.taken_backward = target <= tidx
                b.bc_pc = bc_pc
            elif handler is _n_ret_void:
                b.kind = K_RET
                b.ret_type = a[1][1]
            elif handler is _n_ret_val:
                b.kind = K_RET
                b.ret_type = a[1]
            elif handler is _n_throwlocal:
                b.kind = K_TLOCAL
                target, cls = a
                b.target = block_at[target]
                b.backward = target <= tidx
                b.cls = cls
            else:  # guest call
                b.kind = K_CALL
                b.call_args = a
                b.exit_dst = dst
        blocks.append(b)

    if src_lines:
        source = "\n".join(src_lines) + "\n"
        code = compile(source,
                       f"<superop:{native.method.signature}>", "exec")
        exec(code, namespace)
    for bi, b in enumerate(blocks):
        fn = namespace.get(f"_b{bi}")
        if fn is not None:
            b.fn = fn
            b.code = fn.__code__

    return SuperProgram(tuple(blocks), block_at, n_fused,
                        n_handler_calls)


# -- execution ---------------------------------------------------------------


def _trap_index(exc, block):
    """Instruction index (within *block*) where *exc* left the closure."""
    code = block.code
    tb = exc.__traceback__
    while tb is not None:
        if tb.tb_frame.f_code is code:
            k = tb.tb_lineno - block.first_line
            if 0 <= k < len(block.prefix):
                return k
            break
        tb = tb.tb_next
    raise VMError("superop: cannot locate trap site "
                  f"in block at entry {block.start}")


def _handler_block(native, program, pd_instrs, label_newidx, entry_idx,
                   thrown):
    """Exception dispatch: handler's block index, or None to propagate."""
    il_block = pd_instrs[entry_idx].block
    for h in native.handlers:
        if il_block in h.covered and h.matches(thrown.class_name):
            return program.block_at[label_newidx[h.handler_bid]]
    return None


def _execute(program, native, vm, locals_, profile):
    """The block trampoline.  Mirrors ``NativeCode._run`` block-wise."""
    _entries, pd_instrs, label_newidx = native.predecode()
    blocks = program.blocks
    nblocks = len(blocks)
    method = native.method
    frame = NativeFrame(vm, locals_, profile)
    regs = {}
    _L = frame.locals
    _M = frame.mem
    clk = vm.clock
    clk.advance(native.frame_cost)
    stats = vm.stats
    bi = 0
    budget = MAX_NATIVE_STEPS
    prev_dst = None
    blocks_run = 0
    retired = 0
    try:
        while True:
            if bi >= nblocks:
                raise VMError(f"{method.signature}: fell off native code")
            b = blocks[bi]
            blocks_run += 1
            budget -= b.length
            if budget < 0:
                raise StepBudgetExceeded(method.signature,
                                         MAX_NATIVE_STEPS, "native")
            if prev_dst is not None and prev_dst in b.first_srcs:
                clk.cycles += b.cost + STALL_COST
            else:
                clk.cycles += b.cost
            fn = b.fn
            ret = None
            if fn is not None:
                try:
                    ret = fn(regs, frame, _L, _M)
                except JavaThrow as thrown:
                    k = _trap_index(thrown, b)
                    # Refund the statically charged, never-executed
                    # suffix; everything through the faulting
                    # instruction stays charged, as in the loops.
                    clk.cycles -= b.cost - b.prefix[k]
                    budget += b.length - (k + 1)
                    retired += k + 1
                    target = _handler_block(native, program, pd_instrs,
                                            label_newidx, b.start + k,
                                            thrown)
                    if target is None:
                        raise
                    frame.pending = JObject(thrown.class_name)
                    bi = target
                    prev_dst = None
                    continue
            retired += b.length
            kind = b.kind
            if kind == 0:            # K_FALL
                prev_dst = b.exit_dst
                bi += 1
            elif kind == 2:          # K_BC (closure returned the test)
                if ret:
                    # Taken conditional branches redirect the pipeline;
                    # fall-through is free (see ``_bc_body``).
                    clk.cycles += 1
                if profile is not None:
                    key = (b.bc_pc, ret)
                    profile[key] = profile.get(key, 0) + 1
                    clk.cycles += 1
                prev_dst = None
                if ret:
                    if b.taken_backward:
                        vm.on_backward_branch(method)
                    bi = b.taken
                else:
                    bi += 1
            elif kind == 3:          # K_RET (closure returned the value)
                return (ret, b.ret_type)
            elif kind == 1:          # K_BR
                prev_dst = None
                if b.backward:
                    vm.on_backward_branch(method)
                bi = b.target
            elif kind == 5:          # K_CALL
                try:
                    _n_call_guest(regs, frame, b.call_args)
                except JavaThrow as thrown:
                    target = _handler_block(
                        native, program, pd_instrs, label_newidx,
                        b.start + b.length - 1, thrown)
                    if target is None:
                        raise
                    frame.pending = JObject(thrown.class_name)
                    bi = target
                    prev_dst = None
                    continue
                prev_dst = b.exit_dst
                bi += 1
            else:                    # K_TLOCAL
                frame.pending = JObject(b.cls)
                prev_dst = None
                if b.backward:
                    vm.on_backward_branch(method)
                bi = b.target
    finally:
        stats["host_steps"] += blocks_run
        stats["retired_instructions"] += retired
        stats["superop_blocks"] += blocks_run
        stats["superop_steps"] += retired
