"""Lowering: tree IL -> linear virtual native code.

The lowerer walks each block's treetops, recursively materializing
expression trees into virtual registers.  Several *controllable* codegen
transformations are applied here when enabled by the compilation plan (and
not masked by the plan modifier):

* ``const_operand_folding`` -- use immediate ALU forms for constant
  right-hand operands instead of materializing the constant.
* ``address_mode_folding`` -- fold constant array indices into the memory
  instruction.
* ``leaf_frames`` -- methods making no calls get a cheap prologue.

The remaining native-level transformations (peephole, compact null checks,
scheduling, coalescing, rematerialization) are applied afterwards by
:mod:`repro.jit.codegen.peephole` and :mod:`repro.jit.codegen.regalloc`.
"""

import dataclasses

from repro.errors import CompilationError
from repro.jvm.bytecode import JType
from repro.jit.ir.tree import ILOp
from repro.jit.codegen.isa import NInstr, NOp

#: Compile-cycles charged per IL node lowered (the Code Generator stage).
LOWER_COST_PER_NODE = 20

_BIN_NOPS = {
    ILOp.ADD: NOp.ADD, ILOp.SUB: NOp.SUB, ILOp.MUL: NOp.MUL,
    ILOp.DIV: NOp.DIV, ILOp.REM: NOp.REM, ILOp.SHL: NOp.SHL,
    ILOp.SHR: NOp.SHR, ILOp.OR: NOp.OR, ILOp.AND: NOp.AND,
    ILOp.XOR: NOp.XOR, ILOp.CMP: NOp.CMP,
}

#: ALU ops eligible for the immediate form.
_IMM_FOLDABLE = frozenset({NOp.ADD, NOp.SUB, NOp.MUL, NOp.SHL, NOp.SHR,
                           NOp.OR, NOp.AND, NOp.XOR})


@dataclasses.dataclass
class CodegenOptions:
    """Codegen-level transformation switches (set by the plan/modifier)."""

    const_operand_folding: bool = False
    address_mode_folding: bool = False
    leaf_frames: bool = False
    compact_null_checks: bool = False
    peephole: bool = False
    scheduling: bool = False
    coalescing: bool = False
    rematerialization: bool = False
    #: ids of NEW/NEWARRAY nodes proven non-escaping by escape analysis.
    stack_alloc_ids: frozenset = frozenset()


class _Lowerer:
    def __init__(self, ilmethod, options):
        self.il = ilmethod
        self.opts = options
        self.instrs = []
        self.next_reg = 0
        self.cost = 0
        self.block = 0

    def reg(self):
        r = self.next_reg
        self.next_reg += 1
        return r

    def emit(self, op, dst=None, srcs=(), imm=None, jtype=None, aux=None):
        ins = NInstr(op, dst, srcs, imm, jtype, aux, self.block)
        self.instrs.append(ins)
        return ins

    # -- expressions ---------------------------------------------------------

    def expr(self, node):
        self.cost += LOWER_COST_PER_NODE
        op = node.op
        if op is ILOp.CONST:
            r = self.reg()
            self.emit(NOp.CONST, r, (), node.value, node.type)
            return r
        if op is ILOp.LOAD:
            r = self.reg()
            self.emit(NOp.LDLOC, r, (), node.value, node.type)
            return r
        if op in _BIN_NOPS:
            a, b = node.children
            nop = _BIN_NOPS[op]
            if (self.opts.const_operand_folding and b.is_const()
                    and nop in _IMM_FOLDABLE):
                ra = self.expr(a)
                r = self.reg()
                self.emit(NOp.ALUI, r, (ra,), b.value, node.type, nop)
                return r
            ra = self.expr(a)
            rb = self.expr(b)
            r = self.reg()
            self.emit(nop, r, (ra, rb), None, node.type)
            return r
        if op is ILOp.NEG:
            ra = self.expr(node.children[0])
            r = self.reg()
            self.emit(NOp.NEG, r, (ra,), None, node.type)
            return r
        if op is ILOp.CAST:
            ra = self.expr(node.children[0])
            r = self.reg()
            self.emit(NOp.CAST, r, (ra,), None, node.type)
            return r
        if op is ILOp.GETFIELD:
            ra = self.expr(node.children[0])
            r = self.reg()
            self.emit(NOp.GETF, r, (ra,), None, node.type, node.value)
            return r
        if op is ILOp.ALOAD:
            ref, idx = node.children
            rref = self.expr(ref)
            if self.opts.address_mode_folding and idx.is_const():
                r = self.reg()
                self.emit(NOp.ALD, r, (rref,), idx.value, node.type)
                return r
            ridx = self.expr(idx)
            r = self.reg()
            self.emit(NOp.ALD, r, (rref, ridx), None, node.type)
            return r
        if op is ILOp.ARRAYLENGTH:
            ra = self.expr(node.children[0])
            r = self.reg()
            self.emit(NOp.ALEN, r, (ra,), None, JType.INT)
            return r
        if op is ILOp.ARRAYCMP:
            ra = self.expr(node.children[0])
            rb = self.expr(node.children[1])
            r = self.reg()
            self.emit(NOp.ACMP, r, (ra, rb), None, JType.INT)
            return r
        if op is ILOp.INSTANCEOF:
            ra = self.expr(node.children[0])
            r = self.reg()
            self.emit(NOp.INST, r, (ra,), None, JType.INT, node.value)
            return r
        if op is ILOp.NEW:
            r = self.reg()
            stack = 1 if id(node) in self.opts.stack_alloc_ids else 0
            self.emit(NOp.NEW, r, (), stack, JType.OBJECT, node.value)
            return r
        if op is ILOp.NEWARRAY:
            rlen = self.expr(node.children[0])
            r = self.reg()
            stack = 1 if id(node) in self.opts.stack_alloc_ids else 0
            self.emit(NOp.NEWARR, r, (rlen,), stack, JType.ADDRESS,
                      node.value)
            return r
        if op is ILOp.NEWMULTIARRAY:
            rdims = tuple(self.expr(c) for c in node.children)
            r = self.reg()
            self.emit(NOp.NEWMULTI, r, rdims, None, JType.ADDRESS,
                      node.value)
            return r
        if op is ILOp.CALL:
            return self.call(node, want_result=True)
        if op is ILOp.CATCH:
            r = self.reg()
            self.emit(NOp.CATCH, r, (), None, JType.OBJECT)
            return r
        raise CompilationError(f"lower: unhandled expression {op.name}")

    def call(self, node, want_result):
        argregs = tuple(self.expr(c) for c in node.children)
        argtypes = tuple(c.type for c in node.children)
        dst = self.reg() if want_result and node.type is not JType.VOID \
            else None
        self.emit(NOp.CALL, dst, argregs, None, node.type,
                  (node.value, argtypes, node.type))
        return dst

    # -- treetops ---------------------------------------------------------

    def treetop(self, node):
        self.cost += LOWER_COST_PER_NODE
        op = node.op
        if op is ILOp.STORE:
            r = self.expr(node.children[0])
            self.emit(NOp.STLOC, None, (r,), node.value, node.type)
            return
        if op is ILOp.INC:
            slot, amount = node.value
            self.emit(NOp.INCLOC, None, (), amount, node.type, slot)
            return
        if op is ILOp.PUTFIELD:
            ref, val = node.children
            rref = self.expr(ref)
            rval = self.expr(val)
            self.emit(NOp.PUTF, None, (rref, rval), None, node.type,
                      node.value)
            return
        if op is ILOp.ASTORE:
            ref, idx, val = node.children
            rref = self.expr(ref)
            if self.opts.address_mode_folding and idx.is_const():
                rval = self.expr(val)
                self.emit(NOp.AST, None, (rref, rval), idx.value,
                          node.type, "imm_idx")
                return
            ridx = self.expr(idx)
            rval = self.expr(val)
            self.emit(NOp.AST, None, (rref, ridx, rval), None, node.type)
            return
        if op is ILOp.TREETOP:
            child = node.children[0]
            if child.op is ILOp.CALL:
                self.call(child, want_result=False)
            elif child.op is ILOp.CATCH:
                pass  # exception already delivered; nothing to evaluate
            else:
                self.expr(child)
            return
        if op is ILOp.RETURN:
            if node.children:
                r = self.expr(node.children[0])
                self.emit(NOp.RET, None, (r,), None, node.type)
            else:
                self.emit(NOp.RET, None, (), None, JType.VOID)
            return
        if op is ILOp.GOTO:
            self.emit(NOp.BR, None, (), None, None, node.value)
            return
        if op is ILOp.IF:
            relop, target = node.value
            r = self.expr(node.children[0])
            self.emit(NOp.BC, None, (r,), None, None, (relop, target))
            return
        if op is ILOp.ATHROW:
            r = self.expr(node.children[0])
            self.emit(NOp.THROW, None, (r,))
            return
        if op is ILOp.THROWTO:
            target, class_name = node.value
            self.emit(NOp.THROWLOCAL, None, (), None, None,
                      (target, class_name))
            return
        if op is ILOp.MONITORENTER:
            r = self.expr(node.children[0])
            self.emit(NOp.MONE, None, (r,))
            return
        if op is ILOp.MONITOREXIT:
            r = self.expr(node.children[0])
            self.emit(NOp.MONX, None, (r,))
            return
        if op is ILOp.ARRAYCOPY:
            regs = tuple(self.expr(c) for c in node.children)
            self.emit(NOp.ACOPY, None, regs)
            return
        if op is ILOp.CHECKCAST:
            r = self.expr(node.children[0])
            self.emit(NOp.CCAST, None, (r,), None, None, node.value)
            return
        if op is ILOp.NULLCHK:
            r = self.expr(node.children[0])
            self.emit(NOp.NULLCHK, None, (r,))
            return
        if op is ILOp.BNDCHK:
            rref = self.expr(node.children[0])
            ridx = self.expr(node.children[1])
            self.emit(NOp.BNDCHK, None, (rref, ridx))
            return
        raise CompilationError(f"lower: unhandled treetop {op.name}")


def lower_method(ilmethod, options=None):
    """Lower an :class:`ILMethod`; returns ``(NativeCode, compile_cost)``."""
    from repro.jit.codegen.native import NativeCode
    from repro.jit.codegen import peephole as ph
    from repro.jit.codegen.regalloc import allocate

    opts = options or CodegenOptions()
    lo = _Lowerer(ilmethod, opts)
    for block in ilmethod.blocks:
        lo.block = block.bid
        lo.emit(NOp.LABEL, None, (), None, None, block.bid)
        for tt in block.treetops:
            lo.treetop(tt)
        term = block.terminator
        if term is None or term.op is ILOp.IF:
            lo.emit(NOp.BR, None, (), None, None, block.fallthrough)
    instrs = lo.instrs
    cost = lo.cost

    if opts.coalescing:
        instrs, c = ph.coalesce_moves(instrs)
        cost += c
    if opts.compact_null_checks:
        instrs, c = ph.compact_null_checks(instrs)
        cost += c
    if opts.peephole:
        instrs, c = ph.peephole(instrs)
        cost += c

    instrs, c = allocate(instrs, rematerialize=opts.rematerialization)
    cost += c

    if opts.scheduling:
        instrs, c = ph.schedule(instrs)
        cost += c

    instrs = ph.elide_fallthrough_branches(instrs)

    is_leaf = not any(i.op is NOp.CALL for i in instrs)
    code = NativeCode(ilmethod, instrs,
                      leaf=(is_leaf and opts.leaf_frames))
    return code, cost
