"""Compilation plans: the five adaptive optimization levels.

Testarossa's levels are named after temperatures (paper §2): *cold, warm,
hot, very hot, scorching*.  Each level is an ordered list of code
transformations; higher levels apply more transformations and repeat
cleanup passes between the structural ones ("a plan may apply from 20
transformations (cold) to more than 170 (scorching), including the
multiple application of some transformations that are used as cleanup
steps").
"""

import enum


class OptLevel(enum.IntEnum):
    COLD = 0
    WARM = 1
    HOT = 2
    VERY_HOT = 3
    SCORCHING = 4

    @property
    def label(self):
        return self.name.lower().replace("_", " ")


class CompilationPlan:
    """An ordered transformation list for one optimization level."""

    def __init__(self, level, entries):
        from repro.jit.opt.registry import transform_by_name
        self.level = level
        self.entries = list(entries)
        for name in self.entries:
            transform_by_name(name)  # validate eagerly

    def __len__(self):
        return len(self.entries)

    def distinct_transforms(self):
        return sorted(set(self.entries))

    def __repr__(self):
        return (f"CompilationPlan({self.level.name}, "
                f"{len(self.entries)} entries, "
                f"{len(set(self.entries))} distinct)")


_CLEANUP = ["treeCleanup", "localDCE", "localConstantPropagation",
            "localCopyPropagation"]

_COLD = [
    "constantFolding",
    "arithmeticSimplification",
    "zeroPropagation",
    "cmpSimplification",
    "negSimplification",
    "castSimplification",
    "localConstantPropagation",
    "localCopyPropagation",
    "localDeadStoreElimination",
    "localDCE",
    "branchFolding",
    "jumpThreading",
    "unreachableCodeElimination",
    "blockOrdering",
    "nullCheckElimination",
    "treeCleanup",
    "registerCoalescing",
    "immediateOperandFolding",
    "compactNullChecks",
    "leafRoutineAnalysis",
]

_WARM_EXTRA = [
    "fpConstantFolding",
    "decimalConstantFolding",
    "mulToShift",
    "divRemToShiftMask",
    "reassociation",
    "mathSimplification",
    "localCSE",
    "redundantLoadElimination",
    "arrayOpSimplification",
    "boundsCheckElimination",
    "checkcastElimination",
    "instanceofSimplification",
    "emptyBlockMerging",
    "branchReversal",
    "loopCanonicalization",
    "loopInvariantCodeMotion",
    "globalConstantPropagation",
    "globalDCE",
    "trivialInlining",
    "peepholeOptimization",
    "addressModeFolding",
]

_HOT_EXTRA = [
    "globalCopyPropagation",
    "globalCSE",
    "globalDeadStoreElimination",
    "loopInversion",
    "loopUnrolling",
    "inductionVariableElimination",
    "fieldPrivatization",
    "escapeAnalysis",
    "stackAllocation",
    "monitorElision",
    "exceptionDirectedOptimization",
    "aggressiveInlining",
    "pureCallElimination",
    "tailDuplication",
    "instructionScheduling",
    "rematerialization",
]

_VERY_HOT_EXTRA = [
    "loopPeeling",
]


def _build_cold():
    return list(_COLD)


def _build_warm():
    plan = list(_COLD)
    plan += _WARM_EXTRA
    plan += _CLEANUP
    return plan


def _build_hot():
    plan = _build_warm()
    plan += ["trivialInlining", "aggressiveInlining"]
    plan += _CLEANUP
    plan += _HOT_EXTRA
    plan += _CLEANUP
    plan += ["branchFolding", "jumpThreading",
             "unreachableCodeElimination", "emptyBlockMerging",
             "blockOrdering", "nullCheckElimination",
             "boundsCheckElimination"]
    plan += _CLEANUP[:2]
    return plan


def _build_very_hot():
    plan = _build_hot()
    plan += _VERY_HOT_EXTRA
    plan += ["loopInvariantCodeMotion", "globalCSE",
             "globalConstantPropagation", "globalCopyPropagation"]
    plan += _CLEANUP
    plan += ["loopUnrolling", "inductionVariableElimination",
             "redundantLoadElimination", "localCSE",
             "globalDeadStoreElimination", "globalDCE"]
    plan += _CLEANUP
    plan += ["blockOrdering"]
    return plan


def _build_scorching():
    plan = _build_very_hot()
    # A third full round of the structural passes with cleanups between:
    # scorching spends compile time freely.
    plan += ["trivialInlining", "aggressiveInlining"]
    plan += _CLEANUP
    plan += ["loopCanonicalization", "loopPeeling", "loopUnrolling",
             "loopInvariantCodeMotion", "inductionVariableElimination",
             "loopInversion", "fieldPrivatization"]
    plan += _CLEANUP
    plan += ["escapeAnalysis", "stackAllocation", "monitorElision",
             "exceptionDirectedOptimization", "globalCSE",
             "globalConstantPropagation", "globalCopyPropagation",
             "globalDeadStoreElimination", "globalDCE",
             "redundantLoadElimination", "localCSE",
             "localDeadStoreElimination"]
    plan += _CLEANUP
    plan += ["branchFolding", "jumpThreading",
             "unreachableCodeElimination", "emptyBlockMerging",
             "branchReversal", "tailDuplication", "blockOrdering",
             "nullCheckElimination", "boundsCheckElimination",
             "checkcastElimination", "instanceofSimplification",
             "arrayOpSimplification", "mathSimplification",
             "pureCallElimination"]
    plan += _CLEANUP
    # A final convergence round: cheap pattern passes until stable, then
    # the codegen-level transformations.
    plan += ["constantFolding", "fpConstantFolding",
             "decimalConstantFolding", "arithmeticSimplification",
             "zeroPropagation", "mulToShift", "divRemToShiftMask",
             "reassociation", "cmpSimplification", "negSimplification",
             "castSimplification", "localDeadStoreElimination",
             "globalDCE"]
    plan += _CLEANUP
    plan += ["peepholeOptimization", "instructionScheduling",
             "registerCoalescing", "rematerialization",
             "addressModeFolding", "immediateOperandFolding",
             "compactNullChecks", "leafRoutineAnalysis"]
    return plan


def default_plans():
    """The hand-tuned plans, keyed by :class:`OptLevel`."""
    return {
        OptLevel.COLD: CompilationPlan(OptLevel.COLD, _build_cold()),
        OptLevel.WARM: CompilationPlan(OptLevel.WARM, _build_warm()),
        OptLevel.HOT: CompilationPlan(OptLevel.HOT, _build_hot()),
        OptLevel.VERY_HOT: CompilationPlan(OptLevel.VERY_HOT,
                                           _build_very_hot()),
        OptLevel.SCORCHING: CompilationPlan(OptLevel.SCORCHING,
                                            _build_scorching()),
    }
