"""Compilation-plan modifiers (paper §5).

A modifier is a bit vector over the 58 controllable transformations: a set
bit *disables* every occurrence of that transformation in the active plan.
Modifiers never add or reorder transformations ("transformations may be
removed from the original compilation plan but no transformations are
added and transformations are not reordered").

Two generation strategies are implemented, exactly as in the paper:

* **Randomized search** -- M modifiers drawn ahead of time with aggressive
  exploration; each is used for 50 compilations and then retired.
* **Progressive randomized search** -- the i-th modifier disables each
  transformation independently with probability
  ``D_i = i * 0.25 / L`` (Eq. 1), so exploration starts at the original
  plan (D_0 = 0) and drifts away at 0.000125 per round up to D_L = 0.25.
"""

from repro.jit.opt.registry import NUM_TRANSFORMS

#: Modifiers are retired after this many compilations (paper §5).
USES_PER_MODIFIER = 50

#: Default number of progressive-search rounds (paper: L = 2000).
DEFAULT_L = 2000

#: Upper bound of the progressive disabling probability (Eq. 1).
PROGRESSIVE_CAP = 0.25


class Modifier:
    """An immutable compilation-plan modifier."""

    __slots__ = ("bits",)

    def __init__(self, bits=0):
        self.bits = int(bits) & ((1 << NUM_TRANSFORMS) - 1)

    @staticmethod
    def null():
        """The null modifier: the original, unmodified plan."""
        return Modifier(0)

    @staticmethod
    def disabling(indices):
        bits = 0
        for i in indices:
            if not 0 <= i < NUM_TRANSFORMS:
                raise ValueError(f"transformation index {i} out of range")
            bits |= 1 << i
        return Modifier(bits)

    def disabled(self, index):
        return bool(self.bits >> index & 1)

    def disabled_indices(self):
        return [i for i in range(NUM_TRANSFORMS) if self.disabled(i)]

    def count_disabled(self):
        return bin(self.bits).count("1")

    def is_null(self):
        return self.bits == 0

    def __eq__(self, other):
        return isinstance(other, Modifier) and self.bits == other.bits

    def __hash__(self):
        return hash(self.bits)

    def __repr__(self):
        return f"Modifier({self.bits:#016x}, {self.count_disabled()} off)"


def random_modifiers(rng, count, min_p=0.05, max_p=0.5):
    """Pure randomized search with aggressive exploration: each modifier
    draws its own disabling probability from [min_p, max_p]."""
    out = []
    for _ in range(count):
        p = rng.uniform(min_p, max_p)
        mask = rng.random(NUM_TRANSFORMS) < p
        bits = 0
        for i, on in enumerate(mask):
            if on:
                bits |= 1 << i
        out.append(Modifier(bits))
    return out


def progressive_modifiers(rng, count, total_rounds=DEFAULT_L,
                          start_round=0):
    """Progressive randomized search (Eq. 1): round i disables each
    transformation with probability ``i * PROGRESSIVE_CAP / L``."""
    out = []
    for i in range(start_round, start_round + count):
        round_index = min(i, total_rounds)
        p = round_index * PROGRESSIVE_CAP / total_rounds
        mask = rng.random(NUM_TRANSFORMS) < p
        bits = 0
        for j, on in enumerate(mask):
            if on:
                bits |= 1 << j
        out.append(Modifier(bits))
    return out


class ModifierQueue:
    """The strategy-control queue of pre-computed modifiers.

    Each modifier is handed out for :data:`USES_PER_MODIFIER` compilations
    and then retired.  Every third compilation receives the null modifier
    instead ("a special null modifier ... is tried with every compiled
    method to ensure that the machine-learned model will be exposed to the
    original compilation strategy").
    """

    def __init__(self, modifiers, uses_per_modifier=USES_PER_MODIFIER,
                 null_every=3):
        self._queue = list(modifiers)
        self.uses_per_modifier = uses_per_modifier
        self.null_every = null_every
        self._position = 0
        self._uses_of_current = 0
        self._dispensed = 0
        self._null = Modifier.null()

    def exhausted(self):
        return self._position >= len(self._queue)

    def remaining(self):
        return max(0, len(self._queue) - self._position)

    def next_modifier(self):
        """The modifier for the next compilation (None when exhausted)."""
        self._dispensed += 1
        if self.null_every and self._dispensed % self.null_every == 0:
            return self._null
        if self.exhausted():
            return None
        modifier = self._queue[self._position]
        self._uses_of_current += 1
        if self._uses_of_current >= self.uses_per_modifier:
            self._position += 1
            self._uses_of_current = 0
        return modifier
