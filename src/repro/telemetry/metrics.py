"""The metrics registry: one snapshot over every counter in the system.

The VM, the compilation controller and the code cache each grew their
own counter bags (``vm.stats`` dicts, :class:`~repro.codecache.stats
.CacheStats`, ``CompilationManager`` totals).  The registry does not
replace them -- they stay the cheap plain attributes the hot paths
bump -- it *names* them: each component registers a source callable,
and :meth:`MetricsRegistry.snapshot` flattens everything into one
``{"vm.invocations": 123, "cache.hits": 4, ...}`` dict.

Naming convention: ``<component>.<counter>``, lower_snake_case leaves,
dots only as the component separator.  Components in this repo:
``vm``, ``jit`` (controller + compiler), ``cache``, ``service``.

Snapshots are plain dicts, so differencing two of them
(:meth:`MetricsRegistry.diff`) measures any interval -- per benchmark
iteration, per experiment phase -- without resetting anything.
"""


class MetricsRegistry:
    """Named counter sources with a flat snapshot/diff API."""

    def __init__(self):
        self._sources = {}

    def register(self, component, source):
        """Register *source* under *component*.

        *source* is a zero-argument callable returning a flat dict of
        counter name -> value; non-numeric values are carried through
        snapshots but ignored by :meth:`diff`.  Registering the same
        component again replaces the source (a fresh VM run supersedes
        the finished one).
        """
        if not callable(source):
            raise TypeError(f"source for {component!r} must be callable")
        self._sources[component] = source

    def unregister(self, component):
        self._sources.pop(component, None)

    def components(self):
        return sorted(self._sources)

    def snapshot(self):
        """One flat dict over every registered source, read now."""
        out = {}
        for component in sorted(self._sources):
            values = self._sources[component]()
            for key, value in values.items():
                out[f"{component}.{key}"] = value
        return out

    @staticmethod
    def diff(before, after):
        """Numeric deltas ``after - before`` over the shared keys."""
        out = {}
        for key, end in after.items():
            start = before.get(key, 0)
            if isinstance(end, (int, float)) \
                    and isinstance(start, (int, float)) \
                    and not isinstance(end, bool):
                out[key] = end - start
        return out

    @staticmethod
    def render(snapshot, indent=""):
        """Aligned text grouped by component, for CLI output."""
        groups = {}
        for key in sorted(snapshot):
            component, _, leaf = key.partition(".")
            groups.setdefault(component, []).append((leaf, snapshot[key]))
        lines = []
        for component in sorted(groups):
            lines.append(f"{indent}{component}:")
            width = max(len(leaf) for leaf, _v in groups[component])
            for leaf, value in groups[component]:
                if isinstance(value, float):
                    shown = f"{value:,.3f}"
                elif isinstance(value, int) and not isinstance(value, bool):
                    shown = f"{value:,}"
                else:
                    shown = str(value)
                lines.append(f"{indent}  {leaf:<{width}s}  {shown:>14s}")
        return "\n".join(lines)


def _vm_source(vm):
    def read():
        out = dict(vm.stats)
        out["cycles"] = vm.clock.now()
        out["methods_loaded"] = len(vm.methods())
        return out
    return read


def _manager_source(manager):
    def read():
        out = {
            "compilations": manager.compilations(),
            "compile_cycles": manager.total_compile_cycles,
            "jit_free_at": manager.jit_free,
            "methods_tracked": len(manager.states),
        }
        by_level = {}
        for record in manager.records:
            by_level[record.level.name.lower()] = \
                by_level.get(record.level.name.lower(), 0) + 1
        for name, count in sorted(by_level.items()):
            out[f"compilations_{name}"] = count
        disabled = sum(1 for s in manager.states.values() if s.disabled)
        if disabled:
            out["methods_disabled"] = disabled
        return out
    return read


def _cache_source(cache):
    def read():
        return cache.stats.as_dict()
    return read


def standard_registry(vm=None, manager=None, cache=None):
    """The registry every CLI/experiment entry point wants: ``vm`` from
    the VM's stats + clock, ``jit`` from the compilation manager,
    ``cache`` from the code cache.  Pass only what the run has; absent
    components simply contribute no keys."""
    registry = MetricsRegistry()
    if vm is not None:
        registry.register("vm", _vm_source(vm))
        if manager is None:
            manager = vm.manager
    if manager is not None:
        registry.register("jit", _manager_source(manager))
        if cache is None:
            cache = getattr(manager, "code_cache", None)
    if cache is not None:
        registry.register("cache", _cache_source(cache))
    return registry
