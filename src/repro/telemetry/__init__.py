"""``repro.telemetry`` -- tracing and metrics for the VM/JIT pipeline.

Zero-dependency observability: a :class:`~repro.telemetry.tracer
.Tracer` records spans/instants/counters on both the host clock and
the virtual clock, sinks buffer or stream them, and the Chrome
trace-event exporter makes them loadable in Perfetto.  The
:class:`~repro.telemetry.metrics.MetricsRegistry` unifies the
counter bags scattered across ``vm.stats``, the compilation manager
and :class:`~repro.codecache.stats.CacheStats` behind one
snapshot/diff API.  See ``docs/observability.md``.

The module holds the *active tracer*: instrumentation points across
the VM, JIT, controller, code cache and model-service client fetch it
via :func:`get_tracer` at use time.  It defaults to
:data:`~repro.telemetry.tracer.NULL_TRACER`, whose every operation is
a no-op -- a run that never installs a tracer executes the exact same
virtual-time decisions as one that does (enforced by
``tests/telemetry/test_invariance.py``).

Install a tracer for a scope with::

    from repro import telemetry
    tracer = telemetry.Tracer()
    with telemetry.tracing(tracer):
        ...  # run the workload
    events = tracer.events()
"""

import contextlib

from repro.telemetry.chrome import (chrome_trace, validate_chrome_trace,
                                    write_chrome_trace)
from repro.telemetry.metrics import MetricsRegistry, standard_registry
from repro.telemetry.sinks import JsonlSink, RingBufferSink, TeeSink
from repro.telemetry.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "JsonlSink", "MetricsRegistry", "NULL_TRACER", "NullTracer",
    "RingBufferSink", "TeeSink", "Tracer", "chrome_trace", "get_tracer",
    "set_tracer", "standard_registry", "tracing",
    "validate_chrome_trace", "write_chrome_trace",
]

_active = NULL_TRACER


def get_tracer():
    """The tracer instrumentation points should report to, right now."""
    return _active


def set_tracer(tracer):
    """Install *tracer* (None restores the null tracer); returns the
    previously active one.  Prefer the :func:`tracing` context manager,
    which restores the previous tracer on exit."""
    global _active
    previous = _active
    _active = NULL_TRACER if tracer is None else tracer
    return previous


@contextlib.contextmanager
def tracing(tracer):
    """Scope *tracer* as the active tracer.

    ``tracing(None)`` is a no-op scope (the active tracer stays
    whatever it was), so call sites can thread an optional tracer
    without branching.
    """
    if tracer is None:
        yield get_tracer()
        return
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
