"""Chrome trace-event export (loads in Perfetto / chrome://tracing).

The exporter maps tracer records onto the trace-event JSON format's
"JSON object" flavor: complete ("X"), instant ("i") and counter ("C")
phases, timestamps in microseconds.  Virtual-clock stamps ride along in
each event's ``args`` (``vcycles`` / ``vcycles_dur``) so a span's guest
cost is one click away in the Perfetto detail pane.

:func:`validate_chrome_trace` is the schema check used by the tests and
the CI trace-smoke step: it returns a list of problem strings (empty =
valid) instead of raising, so a smoke failure reports everything wrong
at once.
"""

import json

#: pid/tid under which all events are filed (single-process simulator;
#: the modelled JIT thread is virtual, not a host thread).
TRACE_PID = 1
TRACE_TID = 1


def to_chrome_events(records, pid=TRACE_PID, tid=TRACE_TID):
    """Convert tracer records to trace-event dicts, sorted by ts."""
    out = []
    for rec in records:
        event = {
            "name": rec["name"],
            "cat": rec.get("cat") or "repro",
            "ph": rec["ph"],
            "ts": rec["ts"] / 1000.0,  # ns -> us
            "pid": pid,
            "tid": tid,
        }
        args = dict(rec.get("args") or {})
        if rec.get("vts") is not None:
            args["vcycles"] = rec["vts"]
        if rec.get("vdur") is not None:
            args["vcycles_dur"] = rec["vdur"]
        ph = rec["ph"]
        if ph == "X":
            event["dur"] = rec.get("dur", 0) / 1000.0
        elif ph == "i":
            event["s"] = "t"  # thread-scoped instant
        elif ph == "C":
            # Counter events plot their args directly.
            args = {rec["name"]: args.get("value", 0)}
        event["args"] = args
        out.append(event)
    out.sort(key=lambda e: e["ts"])
    return out


def chrome_trace(records, pid=TRACE_PID, tid=TRACE_TID):
    """The full trace-event JSON object for *records*."""
    return {
        "traceEvents": to_chrome_events(records, pid=pid, tid=tid),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.telemetry",
            "clock_note": ("ts/dur are host microseconds; "
                           "args.vcycles[_dur] are virtual cycles"),
        },
    }


def write_chrome_trace(records, path, pid=TRACE_PID, tid=TRACE_TID):
    """Export *records* to *path*; returns the event count."""
    trace = chrome_trace(records, pid=pid, tid=tid)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return len(trace["traceEvents"])


_KNOWN_PHASES = {"X", "B", "E", "i", "I", "C", "M"}


def validate_chrome_trace(trace):
    """Schema-check a trace-event JSON object; returns problem strings.

    Checks the invariants Perfetto's importer relies on: a
    ``traceEvents`` list, per-event name/ph/ts/pid/tid, non-negative
    ``dur`` on complete events, globally sorted timestamps, and
    balanced ``B``/``E`` nesting per (pid, tid) for traces that use the
    begin/end flavor (our exporter emits only ``X``).
    """
    problems = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    last_ts = None
    stacks = {}
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        for field in ("name", "ph", "ts", "pid", "tid"):
            if field not in event:
                problems.append(f"{where}: missing {field!r}")
        ph = event.get("ph")
        if ph not in _KNOWN_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: ts must be numeric")
            continue
        if last_ts is not None and ts < last_ts:
            problems.append(
                f"{where}: ts {ts} out of order (previous {last_ts})")
        last_ts = ts
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(
                    f"{where}: complete event needs dur >= 0, "
                    f"got {dur!r}")
        elif ph in ("B", "E"):
            key = (event.get("pid"), event.get("tid"))
            stack = stacks.setdefault(key, [])
            if ph == "B":
                stack.append(event.get("name"))
            elif not stack:
                problems.append(f"{where}: E without matching B")
            else:
                stack.pop()
    for key, stack in stacks.items():
        if stack:
            problems.append(
                f"unclosed B events on pid/tid {key}: {stack}")
    return problems


def load_chrome_trace(path):
    """Read a trace file back (for validation / summaries)."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


def summarize_events(events, top=5):
    """Per-category counts and hottest spans by host time.

    Works on exporter output (``dur`` in us) and is what the
    ``repro trace`` CLI prints after writing the file.
    """
    by_cat = {}
    span_time = {}
    for event in events:
        cat = event.get("cat", "")
        by_cat[cat] = by_cat.get(cat, 0) + 1
        if event.get("ph") == "X":
            key = (cat, event["name"])
            span_time[key] = span_time.get(key, 0.0) + event.get("dur", 0)
    hottest = sorted(span_time.items(), key=lambda kv: -kv[1])[:top]
    return {
        "events": len(events),
        "by_category": by_cat,
        "hottest_spans": [
            {"cat": cat, "name": name, "total_us": round(us, 1)}
            for (cat, name), us in hottest],
    }
