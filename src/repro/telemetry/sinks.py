"""Event sinks: where tracer records go.

A sink is any object with ``emit(record)``, ``events()`` and
``close()``.  Three are provided:

* :class:`RingBufferSink` -- bounded in-memory buffer, the default.
  Oldest records fall off the end; ``dropped`` counts them so a
  truncated trace is never mistaken for a complete one.
* :class:`JsonlSink` -- streams one JSON object per line to a file;
  for high-volume captures that should not be capped by memory.
* :class:`TeeSink` -- fans records out to several sinks (e.g. keep a
  ring for the CLI summary while streaming the full JSONL).
"""

import json
from collections import deque


class RingBufferSink:
    """Keep the most recent *capacity* records in memory."""

    def __init__(self, capacity=65536):
        self._buf = deque(maxlen=capacity)
        self.capacity = capacity
        #: Records discarded because the ring was full.
        self.dropped = 0

    def emit(self, record):
        if len(self._buf) == self.capacity:
            self.dropped += 1
        self._buf.append(record)

    def events(self):
        return list(self._buf)

    def close(self):
        pass

    def __len__(self):
        return len(self._buf)


class JsonlSink:
    """Stream records to *path*, one JSON object per line."""

    def __init__(self, path):
        self.path = path
        self._fh = open(path, "w", encoding="utf-8")
        self.emitted = 0

    def emit(self, record):
        self._fh.write(json.dumps(record, sort_keys=True))
        self._fh.write("\n")
        self.emitted += 1

    def events(self):
        """JSONL sinks do not retain records in memory."""
        return []

    def close(self):
        if not self._fh.closed:
            self._fh.flush()
            self._fh.close()


class TeeSink:
    """Duplicate every record into each of *sinks*."""

    def __init__(self, *sinks):
        self.sinks = list(sinks)

    def emit(self, record):
        for sink in self.sinks:
            sink.emit(record)

    def events(self):
        for sink in self.sinks:
            events = sink.events()
            if events:
                return events
        return []

    def close(self):
        for sink in self.sinks:
            sink.close()


def read_jsonl(path):
    """Load a :class:`JsonlSink` file back into a record list."""
    records = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
