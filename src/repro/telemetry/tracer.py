"""The tracer: spans, instants and counters on two clocks at once.

Every record carries *host* time (``time.perf_counter_ns``, relative to
the tracer's construction) and, when a :class:`~repro.clock
.VirtualClock` is bound, *virtual* time as well.  Host time answers
"where did the simulator's CPU cycles go"; virtual time answers "where
did the guest's cycles go" -- the two questions this repository keeps
deliberately separate (see ``docs/host-performance.md``), now visible
side by side in one trace.

Records are plain dicts handed to a sink (see :mod:`repro.telemetry
.sinks`)::

    {"name": str, "cat": str, "ph": "X" | "i" | "C",
     "ts": int,          # host ns since the tracer epoch
     "dur": int,         # host ns, complete ("X") records only
     "vts": int | None,  # virtual cycles at start (clock bound?)
     "vdur": int | None, # virtual cycles elapsed, "X" records only
     "args": dict}       # small JSON-safe payload

The tracer *observes* the virtual clock and never advances it, which is
what makes the enabled/disabled invariance guarantee
(``tests/telemetry/test_invariance.py``) possible at all.

:data:`NULL_TRACER` is the disabled implementation: every method is a
no-op and ``enabled`` is False so instrumented hot paths can skip even
the argument construction.  Instrumentation sites must never assume a
real tracer; they fetch whatever is active via
:func:`repro.telemetry.get_tracer`.
"""

import time


class _NullSpan:
    """The reusable no-op span (one shared instance, zero allocation)."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **args):
        return self


NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: structurally a Tracer, behaviorally nothing.

    Instrumentation guarded by ``tracer.enabled`` pays one attribute
    load when disabled; unguarded calls pay one no-op method call.
    Neither touches the virtual clock or allocates.
    """

    enabled = False

    def span(self, name, cat="", **args):
        return NULL_SPAN

    def instant(self, name, cat="", **args):
        pass

    def counter(self, name, value, cat=""):
        pass

    def bind_clock(self, clock):
        pass

    def events(self):
        return []

    def close(self):
        pass


NULL_TRACER = NullTracer()


class _Span:
    """One in-flight complete ("X") record; emitted on ``__exit__``."""

    __slots__ = ("tracer", "name", "cat", "args", "_ts", "_vts")

    def __init__(self, tracer, name, cat, args):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self):
        clock = self.tracer.clock
        self._vts = clock.now() if clock is not None else None
        self._ts = self.tracer.host_now()
        return self

    def __exit__(self, exc_type, exc, tb):
        tracer = self.tracer
        end = tracer.host_now()
        clock = tracer.clock
        vts = self._vts
        if exc_type is not None:
            self.args["error"] = exc_type.__name__
        tracer.emit({
            "name": self.name, "cat": self.cat, "ph": "X",
            "ts": self._ts, "dur": end - self._ts,
            "vts": vts,
            "vdur": (clock.now() - vts
                     if clock is not None and vts is not None else None),
            "args": self.args,
        })
        return False

    def set(self, **args):
        """Attach args discovered mid-span (e.g. hit/miss outcomes)."""
        self.args.update(args)
        return self


class Tracer:
    """Records spans/instants/counters into a sink.

    Parameters
    ----------
    sink:
        Any object with ``emit(record)`` (and optionally ``close()``);
        defaults to a fresh :class:`~repro.telemetry.sinks
        .RingBufferSink`.
    clock:
        A :class:`~repro.clock.VirtualClock` to stamp records with
        virtual time; usually bound later by the VM via
        :meth:`bind_clock`.
    """

    enabled = True

    def __init__(self, sink=None, clock=None):
        if sink is None:
            from repro.telemetry.sinks import RingBufferSink
            sink = RingBufferSink()
        self.sink = sink
        self.clock = clock
        self._epoch = time.perf_counter_ns()

    def host_now(self):
        """Host nanoseconds since this tracer was created."""
        return time.perf_counter_ns() - self._epoch

    def bind_clock(self, clock):
        """Stamp subsequent records with *clock*'s virtual time.

        The VM binds its clock at construction; when several VMs run
        sequentially under one tracer (the warm-start experiment), the
        most recent binding wins, which is exactly the run in progress.
        """
        self.clock = clock

    # -- recording -------------------------------------------------------

    def span(self, name, cat="", **args):
        """Context manager timing a block as one complete record."""
        return _Span(self, name, cat, args)

    def instant(self, name, cat="", **args):
        """A point-in-time marker (tier transition, sample tick...)."""
        clock = self.clock
        self.emit({
            "name": name, "cat": cat, "ph": "i",
            "ts": self.host_now(), "dur": 0,
            "vts": clock.now() if clock is not None else None,
            "vdur": None, "args": args,
        })

    def counter(self, name, value, cat=""):
        """A sampled numeric series (queue depth, cache bytes...)."""
        clock = self.clock
        self.emit({
            "name": name, "cat": cat, "ph": "C",
            "ts": self.host_now(), "dur": 0,
            "vts": clock.now() if clock is not None else None,
            "vdur": None, "args": {"value": value},
        })

    def emit(self, record):
        self.sink.emit(record)

    # -- access ----------------------------------------------------------

    def events(self):
        """The sink's retained records (ring-buffer sinks only)."""
        return self.sink.events()

    def close(self):
        self.sink.close()
