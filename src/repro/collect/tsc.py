"""A simulated multi-core Time-Stamp Counter (paper §4.2).

The paper measures method times with ``rdtscp``, which returns both the
64-bit cycle counter and the current processor id.  Two real-hardware
nuisances are modelled:

* **TSC drift** -- each core's counter runs at a slightly different rate,
  so cross-core deltas are garbage;
* **thread migration** -- the Linux load balancer moves threads between
  cores every few seconds, so a method's enter and exit may land on
  different cores.

The instrumentation discards a measurement whenever the processor id
differs between the paired readings, exactly as §4.2 prescribes.
"""


class SimulatedTSC:
    """Per-core cycle counters derived from the VM's virtual clock.

    Core *i* reads ``base + clock * rate_i``: the per-core rates differ by
    up to ``drift_ppm`` parts per million, and each core has a distinct
    power-on offset.  Thread migration is a Poisson-like process: after a
    seeded interval the observing thread hops to another core.
    """

    def __init__(self, clock, rng, cores=8, drift_ppm=80.0,
                 mean_migration_cycles=2_000_000_000):
        if cores < 1:
            raise ValueError("need at least one core")
        self.clock = clock
        self.rng = rng
        self.cores = cores
        # Rate multipliers around 1.0 (±drift_ppm).
        self.rates = 1.0 + rng.uniform(-drift_ppm, drift_ppm,
                                       size=cores) * 1e-6
        self.offsets = rng.integers(0, 1 << 30, size=cores)
        self.mean_migration_cycles = mean_migration_cycles
        self._core = int(rng.integers(0, cores))
        self._next_migration = self._draw_migration()
        self.migrations = 0

    def _draw_migration(self):
        interval = self.rng.exponential(self.mean_migration_cycles)
        return self.clock.now() + max(1, int(interval))

    def _maybe_migrate(self):
        if self.clock.now() >= self._next_migration:
            if self.cores > 1:
                new = int(self.rng.integers(0, self.cores - 1))
                if new >= self._core:
                    new += 1
                self._core = new
                self.migrations += 1
            self._next_migration = self._draw_migration()

    def rdtscp(self):
        """Read the counter: returns ``(tsc_value, core_id)``."""
        self._maybe_migrate()
        core = self._core
        value = int(self.offsets[core]
                    + self.clock.now() * self.rates[core])
        return value & 0xFFFFFFFFFFFFFFFF, core


class PairedTimer:
    """Enter/exit timing with the cross-core discard rule."""

    def __init__(self, tsc):
        self.tsc = tsc
        self.discarded = 0
        self.accepted = 0

    def enter(self):
        return self.tsc.rdtscp()

    def exit(self, enter_reading):
        """Return the measured delta, or None when the reading must be
        discarded because the thread migrated between the probes."""
        enter_value, enter_core = enter_reading
        exit_value, exit_core = self.tsc.rdtscp()
        if exit_core != enter_core:
            self.discarded += 1
            return None
        self.accepted += 1
        return max(0, exit_value - enter_value)
