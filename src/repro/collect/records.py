"""In-memory experiment records.

One :class:`ExperimentRecord` captures everything the learning pipeline
needs about a single (method version, modifier) experiment: the feature
vector extracted before optimization, the modifier bits, the optimization
level, the compile cost, and the accumulated instrumented running time
over the invocations of that version.  Records stay in memory during the
run and are flushed to a compact binary archive afterwards (paper §4.2:
I/O during execution would perturb the measurements).
"""

import dataclasses

import numpy as np

from repro.features import NUM_FEATURES


@dataclasses.dataclass
class ExperimentRecord:
    """One (method version, modifier) experiment."""

    signature: str
    level: int                 # OptLevel value
    modifier_bits: int
    features: np.ndarray       # float64[NUM_FEATURES]
    compile_cycles: int
    running_cycles: int        # accumulated instrumented running time
    invocations: int           # invocations of this version

    def __post_init__(self):
        self.features = np.asarray(self.features, dtype=np.float64)
        if self.features.shape != (NUM_FEATURES,):
            raise ValueError(
                f"feature vector must have {NUM_FEATURES} components, "
                f"got {self.features.shape}")

    def mean_invocation_cycles(self):
        if self.invocations == 0:
            return 0.0
        return self.running_cycles / self.invocations


class RecordSet:
    """A mutable collection of experiment records with provenance."""

    def __init__(self, benchmark="", master_seed=0):
        self.benchmark = benchmark
        self.master_seed = master_seed
        self.records = []

    def add(self, record):
        self.records.append(record)
        return record

    def extend(self, records):
        self.records.extend(records)

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def by_level(self, level):
        return [r for r in self.records if r.level == int(level)]

    def unique_signatures(self):
        return sorted({r.signature for r in self.records})

    def unique_feature_vectors(self):
        return {tuple(r.features) for r in self.records}

    def unique_modifiers(self):
        return {r.modifier_bits for r in self.records}

    def merged_with(self, other):
        out = RecordSet(benchmark=f"{self.benchmark}+{other.benchmark}",
                        master_seed=self.master_seed)
        out.records = list(self.records) + list(other.records)
        return out

    def __repr__(self):
        return (f"RecordSet({self.benchmark!r}, {len(self.records)} "
                f"records)")
