"""Method instrumentation for data collection (paper §4.2).

Every invocation of a compiled method version is timed with the simulated
``rdtscp`` pair (enter/exit probes); readings whose processor ids differ
are discarded.  After the first eight invocations of a freshly compiled
version, a per-method recompilation threshold is fixed so that the method
accumulates roughly ``target_cycles`` of running time between
recompilations (the paper's 10 ms at 2 GHz, scaled to simulator
magnitudes).
"""

import dataclasses

#: First-N invocations used to estimate a method's running time.
CALIBRATION_INVOCATIONS = 8


@dataclasses.dataclass
class ThresholdConfig:
    """Recompilation-threshold policy.

    The paper targets 10 ms between recompilations with the threshold
    clamped to [50, 50000].  Simulated methods are ~1000x shorter than
    production Java methods, so the default target and clamps are scaled
    down by the same factor; ``paper_scale()`` returns the unscaled
    policy for documentation and tests.
    """

    target_cycles: int = 60_000
    min_threshold: int = 4
    max_threshold: int = 400

    @staticmethod
    def paper_scale():
        from repro.clock import ms_to_cycles
        return ThresholdConfig(target_cycles=ms_to_cycles(10),
                               min_threshold=50, max_threshold=50_000)

    def threshold_for(self, mean_invocation_cycles):
        if mean_invocation_cycles <= 0:
            return self.max_threshold
        raw = int(self.target_cycles / mean_invocation_cycles)
        return max(self.min_threshold, min(self.max_threshold, raw))


class VersionInstrumentation:
    """Accumulated measurements for one compiled method version."""

    __slots__ = ("compiled", "invocations", "running_cycles",
                 "discarded", "threshold", "_calibration_total",
                 "_calibration_count")

    def __init__(self, compiled):
        self.compiled = compiled
        self.invocations = 0
        self.running_cycles = 0
        self.discarded = 0
        self.threshold = None
        self._calibration_total = 0
        self._calibration_count = 0

    def record(self, delta, config):
        """Record one invocation's measured time (None = discarded)."""
        self.invocations += 1
        if delta is None:
            self.discarded += 1
            return
        self.running_cycles += delta
        if self.threshold is None:
            self._calibration_total += delta
            self._calibration_count += 1
            if self._calibration_count >= CALIBRATION_INVOCATIONS:
                mean = self._calibration_total / self._calibration_count
                self.threshold = config.threshold_for(mean)

    def due_for_recompilation(self):
        return (self.threshold is not None
                and self.invocations >= self.threshold)

    def mean_invocation_cycles(self):
        measured = self.invocations - self.discarded
        if measured <= 0:
            return 0.0
        return self.running_cycles / measured
