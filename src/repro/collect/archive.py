"""The compact binary archive format (paper §4.2 / contribution 2).

Layout (little-endian)::

    magic   'TRCA'
    u16     version (=1)
    u16     flags (reserved, 0)
    u16+s   benchmark name (length-prefixed UTF-8)
    u64     master seed
    u32     number of dictionary entries
    u32     number of records
    -- signature dictionary: u16+s per entry --
    -- records --
        u32  signature dictionary index
        u8   optimization level
        u64  modifier bits
        u32  compile cycles
        u64  running cycles
        u32  invocations
        u8   number of non-zero feature components
        (u8 index, f32 value) per non-zero component
    u32     CRC-32 of everything before the footer

The *method-signature dictionary* is what makes the format compact: a
signature string is stored once and referenced by index from every record
("the creation of a dictionary of method signatures is key for a compact
representation").  Feature vectors are stored sparse because most of the
71 counters are zero for most methods.
"""

import struct
import zlib

import numpy as np

from repro.collect.records import ExperimentRecord, RecordSet
from repro.errors import ArchiveError
from repro.features import NUM_FEATURES

MAGIC = b"TRCA"
VERSION = 1


def _pack_str(value):
    data = value.encode("utf-8")
    if len(data) > 0xFFFF:
        raise ArchiveError(f"string too long for archive: {len(data)}")
    return struct.pack("<H", len(data)) + data


class _Reader:
    def __init__(self, data):
        self.data = data
        self.pos = 0

    def take(self, fmt):
        size = struct.calcsize(fmt)
        if self.pos + size > len(self.data):
            raise ArchiveError("truncated archive")
        out = struct.unpack_from(fmt, self.data, self.pos)
        self.pos += size
        return out

    def take_str(self):
        (length,) = self.take("<H")
        if self.pos + length > len(self.data):
            raise ArchiveError("truncated archive string")
        out = self.data[self.pos:self.pos + length].decode("utf-8")
        self.pos += length
        return out


def write_archive(path, recordset):
    """Serialize *recordset* to *path*; returns the byte size written."""
    signatures = recordset.unique_signatures()
    sig_index = {s: i for i, s in enumerate(signatures)}

    out = bytearray()
    out += MAGIC
    out += struct.pack("<HH", VERSION, 0)
    out += _pack_str(recordset.benchmark)
    out += struct.pack("<QII", recordset.master_seed & (2**64 - 1),
                       len(signatures), len(recordset.records))
    for s in signatures:
        out += _pack_str(s)
    for r in recordset.records:
        out += struct.pack("<IBQIQI", sig_index[r.signature],
                           r.level & 0xFF, r.modifier_bits,
                           min(r.compile_cycles, 2**32 - 1),
                           min(r.running_cycles, 2**64 - 1),
                           min(r.invocations, 2**32 - 1))
        nz = [(i, v) for i, v in enumerate(r.features) if v != 0.0]
        if len(nz) > 0xFF:
            raise ArchiveError("feature vector too dense for format")
        out += struct.pack("<B", len(nz))
        for i, v in nz:
            out += struct.pack("<Bf", i, float(v))
    out += struct.pack("<I", zlib.crc32(bytes(out)) & 0xFFFFFFFF)
    with open(path, "wb") as fh:
        fh.write(out)
    return len(out)


def read_archive(path):
    """Read an archive back into a :class:`RecordSet`."""
    with open(path, "rb") as fh:
        data = fh.read()
    if len(data) < 12 or data[:4] != MAGIC:
        raise ArchiveError(f"{path}: not a collection archive")
    body, (crc,) = data[:-4], struct.unpack("<I", data[-4:])
    if zlib.crc32(body) & 0xFFFFFFFF != crc:
        raise ArchiveError(f"{path}: checksum mismatch")

    reader = _Reader(body)
    reader.pos = 4
    version, _flags = reader.take("<HH")
    if version != VERSION:
        raise ArchiveError(f"{path}: unsupported version {version}")
    benchmark = reader.take_str()
    seed, n_sigs, n_records = reader.take("<QII")
    signatures = [reader.take_str() for _ in range(n_sigs)]

    out = RecordSet(benchmark=benchmark, master_seed=seed)
    for _ in range(n_records):
        sig_i, level, bits, compile_c, running_c, invocations = \
            reader.take("<IBQIQI")
        if sig_i >= len(signatures):
            raise ArchiveError(f"{path}: bad signature index {sig_i}")
        (nnz,) = reader.take("<B")
        features = np.zeros(NUM_FEATURES, dtype=np.float64)
        for _ in range(nnz):
            idx, value = reader.take("<Bf")
            if idx >= NUM_FEATURES:
                raise ArchiveError(f"{path}: bad feature index {idx}")
            features[idx] = value
        out.add(ExperimentRecord(
            signature=signatures[sig_i], level=level,
            modifier_bits=bits, features=features,
            compile_cycles=compile_c, running_cycles=running_c,
            invocations=invocations))
    if reader.pos != len(body):
        raise ArchiveError(f"{path}: trailing bytes in archive")
    return out
