"""Data-collection infrastructure (paper §4).

``tsc`` simulates the per-core Time-Stamp Counter with drift and thread
migration; ``instrument`` implements the method enter/exit probes and the
per-method recompilation threshold; ``records`` defines the in-memory
experiment records; ``archive`` is the compact binary archive format with
its method-signature dictionary; ``session`` orchestrates a complete
collection run over a benchmark.
"""

from repro.collect.tsc import SimulatedTSC
from repro.collect.records import ExperimentRecord, RecordSet
from repro.collect.archive import read_archive, write_archive
from repro.collect.session import CollectionConfig, CollectionSession

__all__ = [
    "SimulatedTSC",
    "ExperimentRecord",
    "RecordSet",
    "read_archive",
    "write_archive",
    "CollectionConfig",
    "CollectionSession",
]
