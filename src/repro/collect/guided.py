"""Heuristic-guided modifier search -- the paper's future work (§5).

    "Thus a heuristic-based search that evaluates the performance for
    modifiers during data collection may focus the search on promising
    regions within the space of possible modifiers.  The implementation
    of such a search is left for future work."

This module implements that search.  The guided queue behaves like the
paper's pre-computed queues (same ``next_modifier`` interface, null
modifier every third compilation) but generates candidates *online*:

* an exploration fraction of candidates stays purely random (so the
  search never collapses into a local basin);
* the rest are **mutations** of the best-scoring modifiers seen so far
  (flip 1-3 of the 58 bits) or **crossovers** of two good parents
  (each bit drawn from either parent).

Scores arrive through :meth:`feedback`: the collection manager reports,
for each finished experiment, the ranking quality ``best_V / V`` of the
modifier relative to the best modifier seen for the same method (1.0 =
as good as the best known plan; see Eq. 2).  A modifier's score is the
mean quality over the methods it was tried on.
"""

from repro.jit.modifiers import Modifier
from repro.jit.opt.registry import NUM_TRANSFORMS


class GuidedModifierQueue:
    """An online, feedback-driven modifier generator.

    Drop-in compatible with :class:`repro.jit.modifiers.ModifierQueue`.
    """

    def __init__(self, rng, total=1200, uses_per_modifier=3,
                 null_every=3, explore_fraction=0.25, top_k=12,
                 max_flips=3):
        self.rng = rng
        self.total = int(total)
        self.uses_per_modifier = int(uses_per_modifier)
        self.null_every = int(null_every)
        self.explore_fraction = float(explore_fraction)
        self.top_k = int(top_k)
        self.max_flips = int(max_flips)
        self._null = Modifier.null()
        self._dispensed = 0
        self._generated = 0
        self._current = None
        self._uses_of_current = 0
        # bits -> [sum of qualities, count]
        self._scores = {}

    # -- ModifierQueue interface ----------------------------------------------

    def exhausted(self):
        return self._generated >= self.total \
            and self._uses_of_current >= self.uses_per_modifier

    def remaining(self):
        return max(0, self.total - self._generated)

    def next_modifier(self):
        self._dispensed += 1
        if self.null_every and self._dispensed % self.null_every == 0:
            return self._null
        if self._current is None \
                or self._uses_of_current >= self.uses_per_modifier:
            if self._generated >= self.total:
                return None
            self._current = self._generate()
            self._generated += 1
            self._uses_of_current = 0
        self._uses_of_current += 1
        return self._current

    # -- feedback ---------------------------------------------------------

    def feedback(self, bits, quality):
        """Report the ranking quality of one finished experiment.

        *quality* is ``best_V / V`` in (0, 1]; higher is better.
        """
        entry = self._scores.get(bits)
        if entry is None:
            self._scores[bits] = [float(quality), 1]
        else:
            entry[0] += float(quality)
            entry[1] += 1

    def mean_quality(self, bits):
        entry = self._scores.get(bits)
        if entry is None:
            return None
        return entry[0] / entry[1]

    def best_modifiers(self, k=None):
        """The top-k modifiers by mean quality (ties broken by count)."""
        k = k or self.top_k
        scored = [(entry[0] / entry[1], entry[1], bits)
                  for bits, entry in self._scores.items()]
        scored.sort(reverse=True)
        return [Modifier(bits) for _q, _n, bits in scored[:k]]

    # -- candidate generation -----------------------------------------------

    def _generate(self):
        parents = self.best_modifiers()
        if not parents or self.rng.random() < self.explore_fraction:
            return self._random()
        if len(parents) >= 2 and self.rng.random() < 0.3:
            a, b = self.rng.choice(len(parents), size=2, replace=False)
            return self._crossover(parents[int(a)], parents[int(b)])
        parent = parents[int(self.rng.integers(0, len(parents)))]
        return self._mutate(parent)

    def _random(self):
        p = self.rng.uniform(0.05, 0.5)
        mask = self.rng.random(NUM_TRANSFORMS) < p
        bits = 0
        for i, on in enumerate(mask):
            if on:
                bits |= 1 << i
        return Modifier(bits)

    def _mutate(self, parent):
        bits = parent.bits
        flips = int(self.rng.integers(1, self.max_flips + 1))
        for _ in range(flips):
            bits ^= 1 << int(self.rng.integers(0, NUM_TRANSFORMS))
        return Modifier(bits)

    def _crossover(self, a, b):
        mask = 0
        for i in range(NUM_TRANSFORMS):
            if self.rng.random() < 0.5:
                mask |= 1 << i
        return Modifier((a.bits & mask) | (b.bits & ~mask))
