"""A complete data-collection run (paper §4, Figure 2).

The :class:`CollectingManager` extends the adaptive compilation manager:
every compilation consumes a compilation-plan modifier from the strategy
control's queue (with the null modifier every third compilation), compiled
versions are instrumented with the simulated TSC probes, and a version is
recompiled -- consuming the next modifier -- once its invocation count
reaches the calibrated threshold.  A method is never compiled twice with
the same modifier, stops being recompiled after ``max_recompilations``
(the paper's L), and the session terminates gracefully once every method
has either hit L or exhausted the queue.

The :class:`CollectionSession` drives one or more benchmarks through a
collecting VM and returns the gathered :class:`RecordSet` (optionally
flushing it to a binary archive only after execution, per §4.2).
"""

import dataclasses

from repro.collect.instrument import ThresholdConfig, \
    VersionInstrumentation
from repro.collect.records import ExperimentRecord, RecordSet
from repro.collect.tsc import PairedTimer, SimulatedTSC
from repro.errors import CompilationError
from repro.jit.compiler import JitCompiler
from repro.jit.control import CompilationManager, ControlConfig
from repro.jit.modifiers import (
    DEFAULT_L,
    Modifier,
    ModifierQueue,
    progressive_modifiers,
    random_modifiers,
)
from repro.jit.plans import OptLevel
from repro.jvm.vm import VirtualMachine
from repro.rng import RngStreams


@dataclasses.dataclass
class CollectionConfig:
    """Knobs of a collection run."""

    #: 'random', 'progressive', 'merged' (both, as the final models
    #: were trained; paper §8.1) or 'guided' (the paper's future-work
    #: heuristic search, implemented in :mod:`repro.collect.guided`).
    search: str = "merged"
    #: Modifiers generated per level per strategy.
    modifiers_per_level: int = 400
    #: Compilations each modifier serves before retiring.
    uses_per_modifier: int = 50
    #: The paper's L: maximum recompilations of a single method.
    max_recompilations: int = DEFAULT_L
    #: Levels whose compilations explore modifiers (the paper trains
    #: cold/warm/hot; scorching conflicts with its own instrumentation).
    explore_levels: tuple = (OptLevel.COLD, OptLevel.WARM, OptLevel.HOT)
    #: Recompilation-threshold policy.
    thresholds: ThresholdConfig = dataclasses.field(
        default_factory=ThresholdConfig)
    #: Upper bound on benchmark iterations per session.
    max_iterations: int = 30
    #: Optional fault injector: callable(modifier, level) -> bool; True
    #: makes that compilation fail (models the paper's "unsupported
    #: combinations of code transformations resulted in compilation
    #: errors").  Sessions that crash are not added to training data.
    fragility: object = None


class SessionCrashed(CompilationError):
    """A modifier combination crashed the compiler (injected fault)."""


class CollectingManager(CompilationManager):
    """Compilation manager in data-collection mode."""

    def __init__(self, compiler, config, streams, benchmark=""):
        # Collection keeps the controller's escalation but caps it at the
        # highest explored level (scorching's own instrumentation would
        # conflict with collection probes, paper §8.1) and halves the
        # triggers so more methods enter the experiment pool.
        control = ControlConfig(max_level=max(config.explore_levels),
                                immediate_install=True)
        control.triggers = {
            level: tuple(max(1, t // 2) for t in trigs)
            for level, trigs in control.triggers.items()}
        super().__init__(compiler, strategy=None, config=control)
        self.collect_config = config
        self.queues = self._build_queues(config, streams, benchmark)
        self.tsc = None
        self.timer = None
        self._streams = streams
        self._benchmark = benchmark
        # Note: self.records (inherited) holds CompileRecords; the
        # learning-oriented experiment records live here.
        self.experiment_records = RecordSet(
            benchmark=benchmark, master_seed=streams.master_seed)
        self.instrumentation = {}   # signature -> VersionInstrumentation
        self.used_modifiers = {}    # signature -> set of modifier bits
        self.recompile_counts = {}  # signature -> count
        self.finished_methods = set()
        self._enter_stack = []
        self._best_value = {}       # signature -> best Eq. 2 value

    @staticmethod
    def _build_queues(config, streams, benchmark):
        from repro.collect.guided import GuidedModifierQueue
        queues = {}
        for level in config.explore_levels:
            rng = streams.get(f"collect:{benchmark}:{level.name}")
            if config.search == "guided":
                queues[level] = GuidedModifierQueue(
                    rng, total=config.modifiers_per_level,
                    uses_per_modifier=config.uses_per_modifier)
                continue
            if config.search == "random":
                mods = random_modifiers(rng, config.modifiers_per_level)
            elif config.search == "progressive":
                mods = progressive_modifiers(
                    rng, config.modifiers_per_level,
                    total_rounds=config.modifiers_per_level)
            elif config.search == "merged":
                # The paper merges the data of two separate collection
                # campaigns; a single session approximates that by
                # interleaving the two modifier populations, so both
                # get explored even when the session ends early.
                rand = random_modifiers(rng, config.modifiers_per_level)
                prog = progressive_modifiers(
                    rng, config.modifiers_per_level,
                    total_rounds=config.modifiers_per_level)
                mods = [m for pair in zip(rand, prog) for m in pair]
            else:
                raise ValueError(f"unknown search {config.search!r}")
            queues[level] = ModifierQueue(
                mods, uses_per_modifier=config.uses_per_modifier)
        return queues

    # -- VM attachment ----------------------------------------------------

    def on_attach(self, vm):
        super().on_attach(vm)
        self.tsc = SimulatedTSC(vm.clock,
                                self._streams.get(
                                    f"tsc:{self._benchmark}"))
        self.timer = PairedTimer(self.tsc)

    # -- modifier selection ---------------------------------------------------

    def compile_method(self, method, level, state):
        config = self.collect_config
        signature = method.signature
        modifier = Modifier.null()
        if level in config.explore_levels:
            used = self.used_modifiers.setdefault(signature, set())
            queue = self.queues[level]
            for _ in range(64):  # skip duplicates, bounded
                candidate = queue.next_modifier()
                if candidate is None:
                    modifier = None
                    break
                if candidate.bits not in used:
                    modifier = candidate
                    break
            else:
                modifier = None
            if modifier is None:
                self.finished_methods.add(signature)
                return None
            used.add(modifier.bits)
        if config.fragility is not None \
                and config.fragility(modifier, level):
            raise SessionCrashed(
                f"{signature}: modifier {modifier!r} crashed at "
                f"{level.name}")
        compiled = self.compiler.compile(method, level,
                                         modifier=modifier)
        # A new version replaces the old one: flush its measurements.
        self._flush_version(signature)
        self.instrumentation[signature] = VersionInstrumentation(
            compiled)
        return compiled

    # -- instrumentation probes ----------------------------------------------

    def on_invoke(self, method, count):
        super().on_invoke(method, count)
        state = self.states.get(method.signature)
        active = state.active if state else None
        if active is not None:
            self._enter_stack.append(
                (method.signature, active, self.timer.enter()))
        else:
            self._enter_stack.append((method.signature, None, None))

    def on_return(self, method, compiled):
        signature, active, reading = self._enter_stack.pop()
        if active is None:
            return
        instr = self.instrumentation.get(signature)
        if instr is None or instr.compiled is not active:
            return
        delta = self.timer.exit(reading)
        instr.record(delta, self.collect_config.thresholds)
        self._maybe_recompile(method, signature, instr)

    def _maybe_recompile(self, method, signature, instr):
        if not instr.due_for_recompilation():
            return
        if signature in self.finished_methods:
            return
        count = self.recompile_counts.get(signature, 0)
        if count >= self.collect_config.max_recompilations:
            self.finished_methods.add(signature)
            return
        state = self.states[signature]
        if state.pending is not None:
            return
        self.recompile_counts[signature] = count + 1
        level = state.level if state.level is not None else OptLevel.COLD
        self._request_compile(method, state, level)

    # -- record flushing ---------------------------------------------------

    def _flush_version(self, signature):
        instr = self.instrumentation.get(signature)
        if instr is None or instr.invocations == 0:
            return
        compiled = instr.compiled
        record = ExperimentRecord(
            signature=signature,
            level=int(compiled.level),
            modifier_bits=compiled.modifier.bits,
            features=compiled.features,
            compile_cycles=compiled.compile_cycles,
            running_cycles=instr.running_cycles,
            invocations=instr.invocations,
        )
        self.experiment_records.add(record)
        self._report_quality(signature, compiled.level, record)

    def _report_quality(self, signature, level, record):
        """Feed Eq. 2 quality back to feedback-driven (guided) queues."""
        queue = self.queues.get(level)
        if queue is None or not hasattr(queue, "feedback"):
            return
        from repro.ml.ranking import ranking_value, trigger_for_record
        value = ranking_value(record, trigger_for_record(record))
        if value <= 0 or value == float("inf"):
            return
        best = self._best_value.get(signature)
        if best is None or value < best:
            self._best_value[signature] = best = value
        queue.feedback(record.modifier_bits, best / value)

    def flush_all(self):
        for signature in list(self.instrumentation):
            self._flush_version(signature)
            del self.instrumentation[signature]

    def all_methods_finished(self):
        compiled_sigs = set(self.states)
        return (bool(compiled_sigs)
                and compiled_sigs <= self.finished_methods)


class CollectionSession:
    """Runs a benchmark in collection mode and gathers records."""

    def __init__(self, program, config=None, master_seed=0,
                 entry_arg=3):
        self.program = program
        self.config = config or CollectionConfig()
        self.streams = RngStreams(master_seed)
        self.entry_arg = entry_arg
        self.crashed = False

    def run(self):
        """Execute the session; returns the collected RecordSet.

        A session that crashes (injected compiler fault) returns an
        *empty* record set and sets ``self.crashed`` -- data from crashed
        sessions is never used for training (paper §8.1).
        """
        vm = VirtualMachine()
        vm.load_program(self.program)

        def resolver(signature):
            try:
                return vm.lookup(signature)
            except Exception:
                return None

        compiler = JitCompiler(method_resolver=resolver)
        manager = CollectingManager(compiler, self.config, self.streams,
                                    benchmark=self.program.name)
        vm.attach_manager(manager)
        try:
            for _ in range(self.config.max_iterations):
                vm.call(self.program.entry, self.entry_arg)
                if manager.all_methods_finished():
                    break
                if all(q.exhausted() for q in manager.queues.values()):
                    break
        except SessionCrashed:
            self.crashed = True
            return RecordSet(benchmark=self.program.name,
                             master_seed=self.streams.master_seed)
        manager.flush_all()
        return manager.experiment_records


def collect_benchmarks(programs, config=None, master_seed=0):
    """Run a session per program; returns ``{name: RecordSet}`` with
    crashed sessions excluded."""
    out = {}
    for program in programs:
        session = CollectionSession(program, config=config,
                                    master_seed=master_seed)
        records = session.run()
        if not session.crashed:
            out[program.name] = records
    return out
