"""Feature analysis.

Paper §4.1: "The original set of features was gradually reduced as data
collection provided evidence that some of the features were invariant
across all applications used for data collection."  This module provides
that evidence pipeline for our 71 features:

* :func:`invariant_features` -- components with zero range across a
  record set (they carry no information and the scaling maps them to 0);
* :func:`feature_importance` -- for a trained linear model, the
  per-feature contribution to class separation (the L2 norm of the
  feature's column of the p x L weight matrix);
* :func:`feature_report` -- a human-readable combination of both.
"""

import numpy as np

from repro.features import FEATURE_NAMES, NUM_FEATURES


def feature_matrix(records):
    """Stack the feature vectors of a record iterable."""
    rows = [r.features for r in records]
    if not rows:
        return np.zeros((0, NUM_FEATURES))
    return np.vstack(rows)


def invariant_features(records):
    """Names of features with zero range across *records* (§4.1's
    reduction candidates)."""
    matrix = feature_matrix(records)
    if matrix.shape[0] == 0:
        return list(FEATURE_NAMES)
    ranges = matrix.max(axis=0) - matrix.min(axis=0)
    return [FEATURE_NAMES[i] for i in range(NUM_FEATURES)
            if ranges[i] == 0.0]


def feature_importance(level_model):
    """feature name -> importance, from the linear model's weights.

    The importance of feature j is ``||W[:, j]||_2`` over the class
    rows: features with large weight columns drive class separation.
    Scaling-invariant features (zero training range) get importance 0
    regardless of their weights because the scaled input is always 0.
    """
    weights = level_model.svm.W  # (L, p)
    norms = np.linalg.norm(weights, axis=0)
    zero_range = level_model.scaling.delta == 0
    norms = np.where(zero_range, 0.0, norms)
    return dict(zip(FEATURE_NAMES, norms.tolist()))


def top_features(level_model, k=10):
    """The k most influential features, descending."""
    importance = feature_importance(level_model)
    ranked = sorted(importance.items(), key=lambda kv: -kv[1])
    return ranked[:k]


def feature_report(records, level_model=None, k=12):
    """Render the invariance/importance evidence as text."""
    lines = []
    invariant = invariant_features(records)
    lines.append(f"invariant features ({len(invariant)} of "
                 f"{NUM_FEATURES}) -- candidates for removal "
                 "(paper §4.1):")
    for chunk_start in range(0, len(invariant), 4):
        chunk = invariant[chunk_start:chunk_start + 4]
        lines.append("  " + ", ".join(chunk))
    if level_model is not None:
        lines.append(f"\ntop {k} features by model weight "
                     f"({level_model.level.name.lower()} model):")
        ranked = top_features(level_model, k)
        top = ranked[0][1] if ranked and ranked[0][1] > 0 else 1.0
        for name, value in ranked:
            bar = "#" * max(1, int(round(24 * value / top)))
            lines.append(f"  {name:32s} {value:8.3f}  {bar}")
    return "\n".join(lines)
