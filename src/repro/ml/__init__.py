"""The learning pipeline (paper §6).

``ranking`` implements the ranking function (Eq. 2) and the selection of
training modifiers per unique feature vector; ``dataset`` the min-max
normalization (Eq. 3), the persisted scaling file, and the LIBLINEAR
sparse text format (Figure 4); ``svm`` the from-scratch multi-class
linear SVM (Crammer-Singer dual, as in LIBLINEAR) and a kernelized RBF
variant for the kernel-selection study; ``model`` the serialized trained
bundle; and ``pipeline`` the end-to-end unarchive -> merge -> rank ->
normalize -> train flow with leave-one-out cross-validation.
"""

from repro.ml.dataset import (
    Scaling,
    read_liblinear,
    write_liblinear,
)
from repro.ml.ranking import RankedData, rank_records
from repro.ml.model import LevelModel, ModelSet
from repro.ml.pipeline import (
    TrainingPipeline,
    leave_one_out_models,
    table4_statistics,
)

__all__ = [
    "Scaling",
    "read_liblinear",
    "write_liblinear",
    "RankedData",
    "rank_records",
    "LevelModel",
    "ModelSet",
    "TrainingPipeline",
    "leave_one_out_models",
    "table4_statistics",
]
