"""Support Vector Machines, from scratch.

``linear`` implements the multi-class linear SVM of LIBLINEAR (the
Crammer-Singer formulation trained by the sequential dual method of
Keerthi et al., KDD'08 -- the paper's reference [18]); ``rbf`` a
kernelized one-vs-rest SVM used for the kernel-selection study of §6
(linear kernel: slower training, microsecond predictions; RBF kernel:
faster training, predictions far too slow for a JIT).
"""

from repro.ml.svm.linear import LinearSVC
from repro.ml.svm.rbf import KernelSVC
from repro.ml.svm.kernels import linear_kernel, rbf_kernel

__all__ = ["LinearSVC", "KernelSVC", "linear_kernel", "rbf_kernel"]
