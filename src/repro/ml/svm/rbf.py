"""Kernelized one-vs-rest SVM (for the kernel-selection study, §6).

Each class gets a binary L1-loss SVM trained by dual coordinate descent
over the precomputed kernel matrix (Hsieh et al., ICML 2008).  RBF
training converges in few epochs on our data (the paper likewise found
RBF training *faster*), but prediction must evaluate the kernel against
every support vector -- which is precisely why the paper rejects it for
use inside a JIT: "a learned RBF model can take up to 660 ms to compute a
prediction" versus 48 us for the linear model.
"""

import numpy as np

from repro.errors import TrainingError
from repro.ml.svm.kernels import rbf_kernel


class KernelSVC:
    """One-vs-rest kernel SVM with a precomputed-kernel dual CD solver."""

    def __init__(self, C=10.0, gamma=0.5, max_epochs=40, tol=1e-3,
                 seed=0):
        self.C = float(C)
        self.gamma = float(gamma)
        self.max_epochs = int(max_epochs)
        self.tol = float(tol)
        self.seed = seed
        self.X_ = None
        self.classes_ = None
        self.dual_coef_ = None  # (L, n) alpha_i * y_i per class

    def fit(self, X, y):
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2 or X.shape[0] == 0:
            raise TrainingError("empty training set")
        classes, y_idx = np.unique(y, return_inverse=True)
        n = X.shape[0]
        L = len(classes)
        K = rbf_kernel(X, X, self.gamma)
        diag = np.clip(np.diag(K), 1e-12, None)
        rng = np.random.default_rng(self.seed)

        coef = np.zeros((L, n))
        for m in range(L):
            ybin = np.where(y_idx == m, 1.0, -1.0)
            alpha = np.zeros(n)
            f = np.zeros(n)  # f_i = sum_j alpha_j y_j K_ij
            for _epoch in range(self.max_epochs):
                max_change = 0.0
                for i in rng.permutation(n):
                    grad = ybin[i] * f[i] - 1.0
                    old = alpha[i]
                    new = min(max(old - grad / diag[i], 0.0), self.C)
                    delta = new - old
                    if abs(delta) > 1e-12:
                        alpha[i] = new
                        f += delta * ybin[i] * K[:, i]
                        max_change = max(max_change, abs(delta))
                if max_change < self.tol:
                    break
            coef[m] = alpha * ybin

        self.X_ = X
        self.classes_ = classes
        self.dual_coef_ = coef
        return self

    def decision_function(self, X):
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        K = rbf_kernel(X, self.X_, self.gamma)
        return K @ self.dual_coef_.T

    def predict(self, X):
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        single = X.ndim == 1
        scores = self.decision_function(X)
        out = self.classes_[np.argmax(scores, axis=1)]
        return out[0] if single else out

    def support_vector_count(self):
        self._check_fitted()
        return int(np.count_nonzero(np.any(self.dual_coef_ != 0.0,
                                           axis=0)))

    def _check_fitted(self):
        if self.dual_coef_ is None:
            raise TrainingError("model is not trained")
