"""Kernel functions for the kernelized SVM."""

import numpy as np


def linear_kernel(A, B):
    """K(a, b) = a . b"""
    return np.asarray(A) @ np.asarray(B).T


def rbf_kernel(A, B, gamma=0.5):
    """K(a, b) = exp(-gamma * ||a - b||^2)"""
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    aa = np.einsum("ij,ij->i", A, A)[:, None]
    bb = np.einsum("ij,ij->i", B, B)[None, :]
    sq = aa + bb - 2.0 * (A @ B.T)
    np.maximum(sq, 0.0, out=sq)
    return np.exp(-gamma * sq)
