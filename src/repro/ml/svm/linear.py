"""Multi-class linear SVM: Crammer-Singer dual coordinate descent.

This is the same formulation LIBLINEAR's ``-s 4`` solver uses (Keerthi,
Sundararajan, Chang, Hsieh & Lin, KDD 2008).  The primal problem over L
class weight vectors w_m is::

    min  1/2 sum_m ||w_m||^2 + C sum_i xi_i
    s.t. w_{y_i}.x_i - w_m.x_i >= 1 - delta(y_i,m) - xi_i

and the dual keeps one alpha vector per example with the simplex-like
constraints ``sum_m alpha_i^m = 0`` and ``alpha_i^m <= C*delta(y_i,m)``.
The per-example subproblem

    min_alpha  A/2 * sum_m alpha_m^2 + sum_m B_m alpha_m
    s.t.       sum_m alpha_m = 0,  alpha_m <= C_m

has solution ``alpha_m = min(C_m, (beta - B_m)/A)`` for the unique beta
making the sum zero; ``sum_m`` is monotone in beta, so beta is found by
bisection.  The learned model is the p x L weight matrix the paper
describes, and prediction is a single matrix-vector product (time
proportional to the matrix size).
"""

import numpy as np

from repro.errors import TrainingError


def _solve_subproblem(A, B, caps):
    """Solve the per-example dual subproblem by bisection on beta."""
    lo = float(np.min(B)) - A * float(np.sum(caps)) - 1.0
    hi = float(np.max(B)) + A * float(np.sum(caps)) + 1.0

    def total(beta):
        return np.minimum(caps, (beta - B) / A).sum()

    for _ in range(64):
        mid = 0.5 * (lo + hi)
        if total(mid) < 0.0:
            lo = mid
        else:
            hi = mid
    beta = 0.5 * (lo + hi)
    alpha = np.minimum(caps, (beta - B) / A)
    # Exactness: shift any residual onto unconstrained coordinates.
    residual = alpha.sum()
    free = alpha < caps - 1e-12
    n_free = int(free.sum())
    if n_free > 0 and abs(residual) > 1e-12:
        alpha[free] -= residual / n_free
    return alpha


class LinearSVC:
    """Multi-class linear SVM (Crammer-Singer), trained by dual CD.

    Parameters
    ----------
    C:
        Misclassification cost (the paper uses C = 10).
    max_epochs, tol:
        Outer-loop bound and stopping tolerance on the largest dual
        variable change in an epoch.
    seed:
        Permutation seed for the example order (training is otherwise
        deterministic).
    """

    def __init__(self, C=10.0, max_epochs=60, tol=1e-3, seed=0):
        if C <= 0:
            raise TrainingError(f"C must be positive, got {C}")
        self.C = float(C)
        self.max_epochs = int(max_epochs)
        self.tol = float(tol)
        self.seed = seed
        self.W = None           # (L, p) weight matrix
        self.classes_ = None    # original label per row of W
        self.epochs_run = 0

    def fit(self, X, y):
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y)
        if X.ndim != 2 or X.shape[0] == 0:
            raise TrainingError("empty training set")
        if X.shape[0] != y.shape[0]:
            raise TrainingError("X/y length mismatch")
        classes, y_idx = np.unique(y, return_inverse=True)
        n, p = X.shape
        L = len(classes)
        if L < 2:
            # Degenerate but legal: a constant predictor.
            self.classes_ = classes
            self.W = np.zeros((L, p))
            self.epochs_run = 0
            return self

        rng = np.random.default_rng(self.seed)
        W = np.zeros((L, p))
        alpha = np.zeros((n, L))
        caps = np.zeros((n, L))
        caps[np.arange(n), y_idx] = self.C
        sq_norms = np.einsum("ij,ij->i", X, X)

        for epoch in range(self.max_epochs):
            max_change = 0.0
            for i in rng.permutation(n):
                A = sq_norms[i]
                if A <= 0:
                    continue
                x = X[i]
                Gi = W @ x  # w_m . x_i for all m
                # B_m = G_m + e_i^m - A*alpha_i^m, e^m = 1 - delta(y,m)
                B = Gi + 1.0 - A * alpha[i]
                B[y_idx[i]] -= 1.0
                new_alpha = _solve_subproblem(A, B, caps[i])
                delta = new_alpha - alpha[i]
                change = float(np.max(np.abs(delta)))
                if change > 1e-12:
                    W += np.outer(delta, x)
                    alpha[i] = new_alpha
                    max_change = max(max_change, change)
            self.epochs_run = epoch + 1
            if max_change < self.tol:
                break

        self.W = W
        self.classes_ = classes
        return self

    # -- prediction ---------------------------------------------------------

    def decision_function(self, X):
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        return X @ self.W.T

    def predict(self, X):
        self._check_fitted()
        X = np.asarray(X, dtype=np.float64)
        single = X.ndim == 1
        if single:
            X = X[None, :]
        scores = X @ self.W.T
        out = self.classes_[np.argmax(scores, axis=1)]
        return out[0] if single else out

    def _check_fitted(self):
        if self.W is None:
            raise TrainingError("model is not trained")

    @property
    def weight_matrix(self):
        """The p x L matrix of the paper (transposed storage here)."""
        self._check_fitted()
        return self.W.T
