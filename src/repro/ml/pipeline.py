"""End-to-end training pipeline (paper §6) and cross-validation (§8.1).

Flow: unarchive (or take in-memory record sets) -> merge -> rank (Eq. 2)
-> normalize (Eq. 3, scaling persisted) -> train one multi-class linear
SVM per optimization level.  ``leave_one_out_models`` builds the paper's
five model sets, each trained on four of the five training benchmarks;
``table4_statistics`` computes the merged-vs-ranked data-set statistics
of Table 4.
"""

import time

import numpy as np

from repro.errors import TrainingError
from repro.jit.plans import OptLevel
from repro.ml.dataset import Scaling
from repro.ml.model import LevelModel, ModelSet
from repro.ml.ranking import LabelTable, rank_records
from repro.ml.svm.linear import LinearSVC

DEFAULT_LEVELS = (OptLevel.COLD, OptLevel.WARM, OptLevel.HOT)


class TrainingPipeline:
    """Trains a :class:`ModelSet` from experiment records."""

    def __init__(self, levels=DEFAULT_LEVELS, C=10.0, strategy="top_n",
                 top_n=3, quality_floor=0.95, max_epochs=60, seed=0):
        self.levels = tuple(levels)
        self.C = C
        self.strategy = strategy
        self.top_n = top_n
        self.quality_floor = quality_floor
        self.max_epochs = max_epochs
        self.seed = seed
        #: Filled by :meth:`train`: level -> RankedData, training seconds.
        self.ranked = {}
        self.training_seconds = {}

    def train(self, records, name="model", excluded=None,
              training_benchmarks=()):
        """Rank + normalize + train; returns a :class:`ModelSet`."""
        models = {}
        for level in self.levels:
            ranked = rank_records(
                records, level, strategy=self.strategy,
                top_n=self.top_n, quality_floor=self.quality_floor)
            self.ranked[level] = ranked
            if not ranked.instances:
                continue
            X_raw = np.array([inst.features
                              for inst in ranked.instances])
            table = LabelTable()
            y = np.array([table.label_for(inst.modifier_bits)
                          for inst in ranked.instances])
            scaling = Scaling.fit(X_raw)
            X = scaling.transform(X_raw)
            svm = LinearSVC(C=self.C, max_epochs=self.max_epochs,
                            seed=self.seed)
            started = time.perf_counter()
            svm.fit(X, y)
            self.training_seconds[level] = (time.perf_counter()
                                            - started)
            models[level] = LevelModel(level, svm, scaling, table)
        if not models:
            raise TrainingError(
                f"no training instances for any of {self.levels}")
        return ModelSet(name, models, excluded=excluded,
                        training_benchmarks=training_benchmarks)


def merge_record_sets(record_sets):
    """Concatenate several record sets (the 'merging of intermediate
    data sets' step enabling cross-validation)."""
    from repro.collect.records import RecordSet
    out = RecordSet(benchmark="+".join(sorted(record_sets)))
    for name in sorted(record_sets):
        out.extend(record_sets[name].records)
    return out


def leave_one_out_models(record_sets, levels=DEFAULT_LEVELS, C=10.0,
                         **pipeline_kwargs):
    """The paper's five model sets: H_k is trained on every training
    benchmark except the k-th (§8.1: "five sets of models were trained
    with the SVM, each including four benchmarks")."""
    names = sorted(record_sets)
    out = {}
    for k, held_out in enumerate(names, start=1):
        included = {n: rs for n, rs in record_sets.items()
                    if n != held_out}
        pipeline = TrainingPipeline(levels=levels, C=C,
                                    **pipeline_kwargs)
        merged = merge_record_sets(included)
        model_name = f"H{k}"
        out[model_name] = pipeline.train(
            merged, name=model_name, excluded=held_out,
            training_benchmarks=sorted(included))
    return out


def table4_statistics(record_sets, levels=DEFAULT_LEVELS,
                      strategy="top_n", top_n=3, quality_floor=0.95):
    """Rows of Table 4: merged vs ranked data-set sizes per level.

    Returns ``{level: {merged_instances, merged_classes,
    merged_feature_vectors, merged_ratio, training_instances,
    training_classes, training_feature_vectors, training_ratio}}``.
    """
    merged = merge_record_sets(record_sets)
    rows = {}
    for level in levels:
        ranked = rank_records(merged.records, level, strategy=strategy,
                              top_n=top_n, quality_floor=quality_floor)
        merged_fv = max(1, ranked.merged_feature_vectors)
        training_fv = max(1, len(ranked.unique_feature_vectors()))
        rows[level] = {
            "merged_instances": ranked.merged_instances,
            "merged_classes": ranked.merged_classes,
            "merged_feature_vectors": ranked.merged_feature_vectors,
            "merged_ratio": ranked.merged_instances / merged_fv,
            "training_instances": len(ranked.instances),
            "training_classes": len(ranked.unique_classes()),
            "training_feature_vectors":
                len(ranked.unique_feature_vectors()),
            "training_ratio": len(ranked.instances) / training_fv,
        }
    return rows
