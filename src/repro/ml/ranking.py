"""Ranking of collected experiments (paper §6, Eq. 2).

The ranking value of the i-th record is::

    V_i = R_i / I_i + C_i / T_h

where ``R_i`` is the accumulated running time of the method compiled with
the respective modifier, ``I_i`` the invocation count, ``C_i`` the
compilation time, and ``T_h`` the trigger value the compiler uses for
recompilation at level *h* (one of three values depending on the method's
loop character -- footnote 6).  Smaller is better: V combines average
per-invocation time with compilation cost normalized by how often a
method at that hotness is expected to be recompiled.

Records are aggregated by *unique feature vector* ("methods are as
distinct as their respective feature vectors"), lexicographically sorted,
and for each vector a small set of winning modifiers is selected by one
of three strategies: the single best, the top-N, or the top-M%.  The
models in the paper use top-N with N = 3 and the additional rule that a
selected modifier must rank within 95% of the best.
"""

import dataclasses

from repro.jit.control import ControlConfig, loop_class_of
from repro.jit.plans import OptLevel


def ranking_value(record, trigger):
    """Eq. 2 for one record given the level/loop-class trigger T_h."""
    if record.invocations <= 0:
        return float("inf")
    return (record.running_cycles / record.invocations
            + record.compile_cycles / trigger)


def trigger_for_record(record, control_config=None):
    """T_h for a record: the baseline controller's trigger for the
    record's level and the method's loop character (from its features)."""
    config = control_config or ControlConfig()
    loop_class = loop_class_of(None, features=record.features)
    return config.trigger(OptLevel(record.level), loop_class)


@dataclasses.dataclass
class RankedInstance:
    """One training instance: a feature vector labelled with a winning
    modifier."""

    features: tuple          # raw (unnormalized) feature tuple
    modifier_bits: int
    value: float             # Eq. 2 ranking value
    level: int


@dataclasses.dataclass
class RankedData:
    """The ranked training set for one optimization level."""

    level: int
    instances: list
    #: Aggregate statistics of the *merged* (pre-ranking) data,
    #: for Table 4.
    merged_instances: int = 0
    merged_classes: int = 0
    merged_feature_vectors: int = 0

    def unique_classes(self):
        return {i.modifier_bits for i in self.instances}

    def unique_feature_vectors(self):
        return {i.features for i in self.instances}


def rank_records(records, level, strategy="top_n", top_n=3,
                 top_percent=10.0, quality_floor=0.95,
                 control_config=None):
    """Rank the records of one level into training instances.

    *strategy*: ``'best'`` (single best modifier per feature vector),
    ``'top_n'`` (the paper's choice, with the ``quality_floor`` rule: a
    selected modifier's value must be within 95% of the best), or
    ``'top_percent'`` (best M% of a vector's modifiers).
    """
    config = control_config or ControlConfig()
    level_records = [r for r in records if r.level == int(level)]

    # Lexicographic aggregation by feature vector (Figure 3).
    groups = {}
    for record in level_records:
        key = tuple(record.features)
        groups.setdefault(key, []).append(record)

    instances = []
    for key in sorted(groups):
        group = groups[key]
        scored = []
        for record in group:
            trigger = trigger_for_record(record, config)
            scored.append((ranking_value(record, trigger), record))
        scored.sort(key=lambda pair: pair[0])
        best_value = scored[0][0]
        if strategy == "best":
            chosen = scored[:1]
        elif strategy == "top_n":
            chosen = []
            for value, record in scored[:top_n]:
                if value <= 0 or best_value <= 0:
                    quality = 1.0 if value == best_value else 0.0
                else:
                    quality = best_value / value
                if quality >= quality_floor:
                    chosen.append((value, record))
        elif strategy == "top_percent":
            keep = max(1, int(round(len(scored) * top_percent / 100.0)))
            chosen = scored[:keep]
        else:
            raise ValueError(f"unknown ranking strategy {strategy!r}")
        seen_bits = set()
        for value, record in chosen:
            if record.modifier_bits in seen_bits:
                continue  # one instance per (vector, modifier)
            seen_bits.add(record.modifier_bits)
            instances.append(RankedInstance(
                features=key, modifier_bits=record.modifier_bits,
                value=value, level=int(level)))

    return RankedData(
        level=int(level),
        instances=instances,
        merged_instances=len(level_records),
        merged_classes=len({r.modifier_bits for r in level_records}),
        merged_feature_vectors=len(groups),
    )


class LabelTable:
    """Bidirectional mapping between modifier bit patterns and the dense
    class labels required by the SVM (labels must fit [1, 2^31-1]; the
    2^58 modifier space is remapped and mapped back through this table,
    which is persisted with the model)."""

    def __init__(self, modifier_bits_list=()):
        self._bits = []
        self._label_of = {}
        for bits in modifier_bits_list:
            self.label_for(bits)

    def label_for(self, bits):
        label = self._label_of.get(bits)
        if label is None:
            self._bits.append(bits)
            label = len(self._bits)  # labels start at 1
            self._label_of[bits] = label
        return label

    def bits_for(self, label):
        if not 1 <= label <= len(self._bits):
            raise KeyError(f"unknown class label {label}")
        return self._bits[label - 1]

    def __len__(self):
        return len(self._bits)

    def all_bits(self):
        return list(self._bits)
