"""Trained model bundles.

A :class:`LevelModel` is everything learning-enabled compilation needs
for one optimization level: the trained SVM, the scaling file parameters
(features must be renormalized exactly as during training, §7), and the
label table mapping predicted class labels back to full 58-bit modifier
patterns.  A :class:`ModelSet` groups the per-level models of one
training run (e.g. one leave-one-out fold).
"""

import hashlib
import json
import os

import numpy as np

from repro.errors import TrainingError
from repro.jit.modifiers import Modifier
from repro.jit.plans import OptLevel
from repro.ml.dataset import Scaling
from repro.ml.ranking import LabelTable
from repro.ml.svm.linear import LinearSVC


class LevelModel:
    """A trained per-level predictor: features -> plan modifier."""

    def __init__(self, level, svm, scaling, label_table):
        self.level = OptLevel(level)
        self.svm = svm
        self.scaling = scaling
        self.label_table = label_table

    def digest_into(self, h):
        """Feed everything that shapes predictions into hash *h*.

        Covers the learned SVM arrays (linear weights or RBF support
        data -- duck-typed so both kernels hash), the scaling file
        parameters and the label->modifier table: a change to any of
        them can change a predicted plan, so all of them key the
        persistent code cache.
        """
        h.update(f"level:{int(self.level)};".encode("ascii"))
        for attr in ("W", "classes_", "X_", "dual_coef_"):
            value = getattr(self.svm, attr, None)
            if value is None:
                continue
            arr = np.ascontiguousarray(np.asarray(value))
            h.update(f"{attr}:{arr.dtype.str}:{arr.shape};"
                     .encode("ascii"))
            h.update(arr.tobytes())
        for attr in ("C", "gamma"):
            value = getattr(self.svm, attr, None)
            if value is not None:
                h.update(f"{attr}:{float(value)!r};".encode("ascii"))
        for bound in (self.scaling.minimum, self.scaling.maximum):
            h.update(np.ascontiguousarray(bound).tobytes())
        h.update(",".join(str(b) for b in self.label_table.all_bits())
                 .encode("ascii"))

    def predict_label(self, raw_features):
        normalized = self.scaling.transform(
            np.asarray(raw_features, dtype=np.float64))
        return int(self.svm.predict(normalized))

    def predict_modifier(self, raw_features):
        label = self.predict_label(raw_features)
        return Modifier(self.label_table.bits_for(label))

    # -- persistence (linear models only; the service loads these) -----------

    def save(self, directory):
        os.makedirs(directory, exist_ok=True)
        if not isinstance(self.svm, LinearSVC):
            raise TrainingError(
                "only linear models are persisted (RBF models are a "
                "study artifact, not deployable in the JIT)")
        np.savez(os.path.join(directory, "weights.npz"),
                 W=self.svm.W, classes=self.svm.classes_)
        self.scaling.save(os.path.join(directory, "scaling.txt"))
        with open(os.path.join(directory, "labels.json"), "w",
                  encoding="utf-8") as fh:
            json.dump({"level": int(self.level),
                       "C": self.svm.C,
                       "modifier_bits": [str(b) for b in
                                         self.label_table.all_bits()]},
                      fh)

    @staticmethod
    def load(directory):
        data = np.load(os.path.join(directory, "weights.npz"))
        with open(os.path.join(directory, "labels.json"),
                  encoding="utf-8") as fh:
            meta = json.load(fh)
        svm = LinearSVC(C=meta.get("C", 10.0))
        svm.W = data["W"]
        svm.classes_ = data["classes"]
        scaling = Scaling.load(os.path.join(directory, "scaling.txt"))
        table = LabelTable(int(b) for b in meta["modifier_bits"])
        return LevelModel(OptLevel(meta["level"]), svm, scaling, table)


class ModelSet:
    """The per-level models of one training run / cross-validation fold.

    Levels without a model (very hot, scorching -- the paper trains only
    cold/warm/hot) predict None, which the strategy control maps to the
    original Testarossa plan.
    """

    def __init__(self, name, models, excluded=None,
                 training_benchmarks=()):
        self.name = name
        self.models = dict(models)  # OptLevel -> LevelModel
        self.excluded = excluded
        self.training_benchmarks = tuple(training_benchmarks)

    def model_for(self, level):
        return self.models.get(OptLevel(level))

    def predict_modifier(self, level, raw_features):
        model = self.model_for(level)
        if model is None:
            return None
        return model.predict_modifier(raw_features)

    def digest(self):
        """Content hash of every trained model in the set.

        Keys the persistent code cache: flipping any learned weight,
        scaling bound or label-table bit in any level model changes the
        digest, so bodies planned by a retrained model set never alias
        entries of its predecessor.  The set's *name* is deliberately
        excluded -- two identically trained sets are interchangeable.
        """
        h = hashlib.sha256()
        for level in sorted(self.models):
            self.models[level].digest_into(h)
        return h.hexdigest()[:24]

    def save(self, directory):
        os.makedirs(directory, exist_ok=True)
        meta = {"name": self.name, "excluded": self.excluded,
                "training_benchmarks": list(self.training_benchmarks),
                "levels": [int(lv) for lv in self.models]}
        with open(os.path.join(directory, "modelset.json"), "w",
                  encoding="utf-8") as fh:
            json.dump(meta, fh)
        for level, model in self.models.items():
            model.save(os.path.join(directory, f"level_{int(level)}"))

    @staticmethod
    def load(directory):
        with open(os.path.join(directory, "modelset.json"),
                  encoding="utf-8") as fh:
            meta = json.load(fh)
        models = {}
        for level_i in meta["levels"]:
            models[OptLevel(level_i)] = LevelModel.load(
                os.path.join(directory, f"level_{level_i}"))
        return ModelSet(meta["name"], models, meta.get("excluded"),
                        meta.get("training_benchmarks", ()))

    def __repr__(self):
        levels = ",".join(lv.name for lv in self.models)
        return (f"ModelSet({self.name}, levels=[{levels}], "
                f"excluded={self.excluded})")
