"""Model-quality diagnostics.

The paper evaluates its models end to end (run time, compile time); when
iterating on features or SVM parameters it is also useful to evaluate
them *as classifiers*.  Two notions of correctness matter here:

* **label accuracy** -- the prediction is exactly one of the modifiers
  the ranking selected for that feature vector; strict, and pessimistic
  because many distinct modifiers are near-equivalent plans;
* **good-plan rate** -- the predicted modifier, *when it was actually
  measured* on that feature vector during collection, ranked within a
  quality floor of the best (the paper's 95% rule).  This is the number
  that tracks the end-to-end results.

`k_fold_cross_validation` complements the paper's leave-one-benchmark-
out scheme with a per-record k-fold split (useful when only one
benchmark's data is available).
"""

import numpy as np

from repro.jit.plans import OptLevel
from repro.ml.ranking import rank_records, ranking_value, \
    trigger_for_record


def label_accuracy(model, ranked_instances):
    """Fraction of instances whose exact class label is predicted."""
    if not ranked_instances:
        return 0.0
    by_vector = {}
    for inst in ranked_instances:
        by_vector.setdefault(inst.features, set()).add(
            inst.modifier_bits)
    hits = 0
    for features, good_bits in by_vector.items():
        predicted = model.predict_modifier(np.array(features))
        if predicted.bits in good_bits:
            hits += 1
    return hits / len(by_vector)


def good_plan_rate(model, records, level, quality_floor=0.95):
    """Fraction of feature vectors for which the predicted modifier was
    measured during collection and ranked within *quality_floor* of the
    best measured plan.  Vectors whose prediction was never measured are
    counted in the denominator of ``coverage`` but not of the rate.

    Returns ``(rate, coverage)``.
    """
    groups = {}
    for record in records:
        if record.level != int(level):
            continue
        key = tuple(record.features)
        value = ranking_value(record, trigger_for_record(record))
        groups.setdefault(key, {})
        prev = groups[key].get(record.modifier_bits)
        if prev is None or value < prev:
            groups[key][record.modifier_bits] = value
    if not groups:
        return 0.0, 0.0
    judged = 0
    good = 0
    for key, by_bits in groups.items():
        predicted = model.predict_modifier(np.array(key))
        if predicted.bits not in by_bits:
            continue  # prediction never measured on this method
        judged += 1
        best = min(by_bits.values())
        value = by_bits[predicted.bits]
        if value <= 0 or best <= 0:
            quality = 1.0 if value == best else 0.0
        else:
            quality = best / value
        if quality >= quality_floor:
            good += 1
    coverage = judged / len(groups)
    rate = good / judged if judged else 0.0
    return rate, coverage


def k_fold_cross_validation(records, level=OptLevel.HOT, k=5, C=10.0,
                            seed=0, quality_floor=0.95):
    """Per-record k-fold CV; returns per-fold label accuracies.

    Folds split the *unique feature vectors* (splitting raw records
    would leak the same method into train and test).
    """
    ranked = rank_records(list(records), level,
                          quality_floor=quality_floor)
    vectors = sorted({inst.features for inst in ranked.instances})
    if len(vectors) < k:
        k = max(2, len(vectors))
    rng = np.random.default_rng(seed)
    order = rng.permutation(len(vectors))
    folds = np.array_split(order, k)
    accuracies = []
    for fold in folds:
        held = {vectors[i] for i in fold}
        train = [inst for inst in ranked.instances
                 if inst.features not in held]
        test = [inst for inst in ranked.instances
                if inst.features in held]
        if not train or not test:
            continue
        model = _train_from_instances(train, level, C)
        accuracies.append(label_accuracy(model, test))
    return accuracies


def _train_from_instances(instances, level, C):
    """Fit a LevelModel directly from pre-ranked instances."""
    from repro.ml.dataset import Scaling
    from repro.ml.model import LevelModel
    from repro.ml.ranking import LabelTable
    from repro.ml.svm.linear import LinearSVC
    X_raw = np.array([inst.features for inst in instances])
    table = LabelTable()
    y = np.array([table.label_for(inst.modifier_bits)
                  for inst in instances])
    scaling = Scaling.fit(X_raw)
    svm = LinearSVC(C=C).fit(scaling.transform(X_raw), y)
    return LevelModel(level, svm, scaling, table)
