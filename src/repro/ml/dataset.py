"""Data-set normalization and the LIBLINEAR text format (paper §6).

Normalization (Eq. 3) maps every feature component to [0, 1] using the
minimum and range observed during data processing; the shift/scale pairs
are persisted in a *scaling file* so that learning-enabled compilation can
renormalize unseen methods with exactly the training-time parameters
(paper §7).

The sparse text format (Figure 4) is one instance per line::

    <label> <index>:<value> <index>:<value> ...

with 1-based component indices and zero components omitted.
"""

import numpy as np

from repro.errors import DatasetError
from repro.features import NUM_FEATURES


class Scaling:
    """Per-component min-max scaling fitted on a training set."""

    def __init__(self, minimum, maximum):
        self.minimum = np.asarray(minimum, dtype=np.float64)
        self.maximum = np.asarray(maximum, dtype=np.float64)
        if self.minimum.shape != self.maximum.shape:
            raise DatasetError("scaling min/max shape mismatch")
        self.delta = self.maximum - self.minimum

    @staticmethod
    def fit(matrix):
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] == 0:
            raise DatasetError("cannot fit scaling on empty data")
        return Scaling(matrix.min(axis=0), matrix.max(axis=0))

    def transform(self, vector_or_matrix):
        data = np.asarray(vector_or_matrix, dtype=np.float64)
        with np.errstate(invalid="ignore", divide="ignore"):
            out = (data - self.minimum) / self.delta
        # Components with zero range carry no information: map to 0.
        if data.ndim == 1:
            out[self.delta == 0] = 0.0
        else:
            out[:, self.delta == 0] = 0.0
        return np.clip(out, 0.0, 1.0)

    # -- the scaling file ----------------------------------------------------

    def save(self, path):
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(f"# repro scaling file v1 ({len(self.minimum)} "
                     "components)\n")
            for lo, hi in zip(self.minimum, self.maximum):
                fh.write(f"{float(lo)!r} {float(hi)!r}\n")

    @staticmethod
    def load(path):
        mins, maxs = [], []
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line or line.startswith("#"):
                    continue
                parts = line.split()
                if len(parts) != 2:
                    raise DatasetError(f"bad scaling line: {line!r}")
                mins.append(float(parts[0]))
                maxs.append(float(parts[1]))
        if not mins:
            raise DatasetError(f"{path}: empty scaling file")
        return Scaling(mins, maxs)

    def __eq__(self, other):
        return (isinstance(other, Scaling)
                and np.array_equal(self.minimum, other.minimum)
                and np.array_equal(self.maximum, other.maximum))


def write_liblinear(path, labels, matrix):
    """Write instances in the LIBLINEAR sparse text format."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if len(labels) != matrix.shape[0]:
        raise DatasetError("labels/instances length mismatch")
    with open(path, "w", encoding="utf-8") as fh:
        for label, row in zip(labels, matrix):
            if not 1 <= int(label) <= 2**31 - 1:
                raise DatasetError(
                    f"class label {label} outside [1, 2^31-1]")
            parts = [str(int(label))]
            for j, value in enumerate(row):
                if value != 0.0:
                    parts.append(f"{j + 1}:{value:.6g}")
            fh.write(" ".join(parts) + "\n")


def read_liblinear(path, num_features=NUM_FEATURES):
    """Read a LIBLINEAR-format file; returns ``(labels, matrix)``."""
    labels = []
    rows = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            parts = line.split()
            try:
                label = int(parts[0])
            except ValueError as exc:
                raise DatasetError(
                    f"{path}:{lineno}: bad label {parts[0]!r}") from exc
            row = np.zeros(num_features, dtype=np.float64)
            for item in parts[1:]:
                if ":" not in item:
                    raise DatasetError(
                        f"{path}:{lineno}: bad component {item!r}")
                index_s, value_s = item.split(":", 1)
                index = int(index_s)
                if not 1 <= index <= num_features:
                    raise DatasetError(
                        f"{path}:{lineno}: component index {index} "
                        f"outside [1, {num_features}]")
                row[index - 1] = float(value_s)
            labels.append(label)
            rows.append(row)
    if not rows:
        return [], np.zeros((0, num_features))
    return labels, np.vstack(rows)
