"""The SPECjvm98-like suite.

Eight benchmarks with the paper's names and two-letter codes.  The five
training benchmarks (paper §8.1) are ``compress``, ``db``, ``mpegaudio``,
``mtrt`` and ``raytrace``; ``jess``, ``javac`` and ``jack`` are
evaluation-only.  Profiles are modelled on the well-known character of
each benchmark (compress: tight integer loops; mpegaudio: FP-heavy
kernels; db: allocation + object traffic; mtrt/raytrace: FP with object
churn; javac: call-heavy with exceptions; jess: rule-engine branching;
jack: parser with exception-driven control flow).
"""

from repro.rng import RngStreams
from repro.workloads.generator import generate_program
from repro.workloads.profiles import WorkloadProfile

#: benchmark name -> (two-letter code, profile)
SPECJVM_BENCHMARKS = {
    "compress": ("co", WorkloadProfile(
        name="compress", n_methods=28, loop_weight=0.85,
        heavy_loop_weight=0.5, fp_weight=0.05, alloc_weight=0.1,
        array_weight=0.7, exception_weight=0.02, call_weight=0.35,
        loop_iters=14, phase_calls=5, sweep_repeats=4)),
    "jess": ("je", WorkloadProfile(
        name="jess", n_methods=46, loop_weight=0.45,
        heavy_loop_weight=0.15, fp_weight=0.1, alloc_weight=0.35,
        array_weight=0.25, exception_weight=0.12, call_weight=0.65,
        loop_iters=8, phase_calls=7, sweep_repeats=4)),
    "db": ("db", WorkloadProfile(
        name="db", n_methods=32, loop_weight=0.6,
        heavy_loop_weight=0.35, fp_weight=0.05, alloc_weight=0.45,
        array_weight=0.5, exception_weight=0.05, call_weight=0.45,
        sync_weight=0.15, loop_iters=12, phase_calls=5,
        sweep_repeats=4)),
    "javac": ("jc", WorkloadProfile(
        name="javac", n_methods=56, loop_weight=0.4,
        heavy_loop_weight=0.1, fp_weight=0.05, alloc_weight=0.4,
        array_weight=0.3, exception_weight=0.18, call_weight=0.7,
        loop_iters=7, phase_calls=8, sweep_repeats=3)),
    "mpegaudio": ("mp", WorkloadProfile(
        name="mpegaudio", n_methods=30, loop_weight=0.8,
        heavy_loop_weight=0.55, fp_weight=0.75, alloc_weight=0.08,
        array_weight=0.6, exception_weight=0.02, call_weight=0.3,
        loop_iters=16, phase_calls=5, sweep_repeats=3)),
    "mtrt": ("mt", WorkloadProfile(
        name="mtrt", n_methods=36, loop_weight=0.6,
        heavy_loop_weight=0.3, fp_weight=0.6, alloc_weight=0.35,
        array_weight=0.35, exception_weight=0.04, call_weight=0.55,
        sync_weight=0.12, loop_iters=10, phase_calls=6,
        sweep_repeats=3)),
    "raytrace": ("rt", WorkloadProfile(
        name="raytrace", n_methods=34, loop_weight=0.65,
        heavy_loop_weight=0.3, fp_weight=0.65, alloc_weight=0.3,
        array_weight=0.35, exception_weight=0.03, call_weight=0.5,
        loop_iters=10, phase_calls=6, sweep_repeats=3)),
    "jack": ("ja", WorkloadProfile(
        name="jack", n_methods=40, loop_weight=0.5,
        heavy_loop_weight=0.15, fp_weight=0.05, alloc_weight=0.3,
        array_weight=0.3, exception_weight=0.22, call_weight=0.6,
        loop_iters=8, phase_calls=6, sweep_repeats=3)),
}

#: The five benchmarks used for data collection / training (paper §8.1).
SPECJVM_TRAINING = ("compress", "db", "mpegaudio", "mtrt", "raytrace")

#: Two-letter identifiers used in the paper's figures.
SPECJVM_CODES = {name: code for name, (code, _p)
                 in SPECJVM_BENCHMARKS.items()}


def specjvm_program(name, master_seed=0, scale=1.0):
    """Build the named SPECjvm98-like benchmark program."""
    code, profile = SPECJVM_BENCHMARKS[name]
    if scale != 1.0:
        import dataclasses
        profile = dataclasses.replace(profile, scale=scale)
    streams = RngStreams(master_seed)
    rng = streams.get(f"workload:specjvm:{name}")
    return generate_program(profile, rng)
