"""Synthetic guest workloads.

`generator` builds deterministic random programs (classes + methods +
an entry point) from a characteristic :class:`~repro.workloads.profiles.
WorkloadProfile`; `profiles` defines the per-benchmark mixes for the
SPECjvm98-like and DaCapo-like suites (`specjvm`, `dacapo`).
"""

from repro.workloads.generator import Program, ProgramGenerator
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.specjvm import (
    SPECJVM_BENCHMARKS,
    SPECJVM_TRAINING,
    specjvm_program,
)
from repro.workloads.dacapo import DACAPO_BENCHMARKS, dacapo_program

__all__ = [
    "Program",
    "ProgramGenerator",
    "WorkloadProfile",
    "SPECJVM_BENCHMARKS",
    "SPECJVM_TRAINING",
    "specjvm_program",
    "DACAPO_BENCHMARKS",
    "dacapo_program",
]
