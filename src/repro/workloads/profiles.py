"""Workload characteristic profiles.

A profile is the statistical fingerprint of a benchmark: how many methods
it has, how loopy/floaty/allocation-heavy they are, how deep call chains
go, and how much work one iteration performs.  The learning pipeline only
ever observes method features and timings, so two benchmarks with
different profiles are "different programs" in every way that matters to
the paper's experiments.
"""

import dataclasses


@dataclasses.dataclass(frozen=True)
class WorkloadProfile:
    """Knobs of the synthetic program generator (all weights in [0,1])."""

    name: str
    seed_salt: str = ""
    #: Number of generated worker methods (excluding the entry point).
    n_methods: int = 40
    #: Fraction of methods containing loops.
    loop_weight: float = 0.6
    #: Fraction of loopy methods with many-iteration loops.
    heavy_loop_weight: float = 0.3
    #: Floating-point usage.
    fp_weight: float = 0.3
    #: Allocation-heavy methods (objects/arrays created per call).
    alloc_weight: float = 0.25
    #: Array-processing methods.
    array_weight: float = 0.35
    #: Methods that throw/catch exceptions.
    exception_weight: float = 0.1
    #: Methods using BCD-decimal arithmetic (BigDecimal).
    decimal_weight: float = 0.05
    #: Methods touching sun.misc.Unsafe.
    unsafe_weight: float = 0.03
    #: Methods with synchronized sections.
    sync_weight: float = 0.08
    #: Probability a method calls other (earlier) methods.
    call_weight: float = 0.5
    #: Typical counted-loop bound (scaled by `scale`).
    loop_iters: int = 12
    #: Bound used for many-iteration loops.
    heavy_loop_iters: int = 96
    #: Number of phase-method invocations one benchmark iteration makes.
    phase_calls: int = 6
    #: Repetitions of the phase sweep per iteration (the work knob).
    sweep_repeats: int = 4
    #: Global work multiplier applied to sweep_repeats.
    scale: float = 1.0

    def repeats(self):
        return max(1, int(round(self.sweep_repeats * self.scale)))
