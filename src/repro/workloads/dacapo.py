"""The DaCapo-9.12-like suite.

Twelve benchmarks with the paper's names (``tradebeans`` and
``tradesoap`` are excluded exactly as in §8.1, footnote 9).  DaCapo
programs are deliberately *statistically different* from the
SPECjvm98-like suite -- larger method counts, heavier allocation and call
density, more exception traffic -- which is what makes the paper's
generalization experiment (train on SPEC, evaluate on DaCapo)
meaningful.
"""

from repro.rng import RngStreams
from repro.workloads.generator import generate_program
from repro.workloads.profiles import WorkloadProfile

DACAPO_BENCHMARKS = {
    "avrora": WorkloadProfile(
        name="avrora", n_methods=52, loop_weight=0.55,
        heavy_loop_weight=0.25, fp_weight=0.1, alloc_weight=0.3,
        array_weight=0.45, exception_weight=0.08, call_weight=0.6,
        sync_weight=0.2, loop_iters=9, phase_calls=7, sweep_repeats=3),
    "batik": WorkloadProfile(
        name="batik", n_methods=58, loop_weight=0.5,
        heavy_loop_weight=0.2, fp_weight=0.55, alloc_weight=0.4,
        array_weight=0.35, exception_weight=0.1, call_weight=0.65,
        loop_iters=8, phase_calls=7, sweep_repeats=3),
    "eclipse": WorkloadProfile(
        name="eclipse", n_methods=72, loop_weight=0.4,
        heavy_loop_weight=0.12, fp_weight=0.08, alloc_weight=0.45,
        array_weight=0.3, exception_weight=0.15, call_weight=0.75,
        sync_weight=0.18, loop_iters=7, phase_calls=9,
        sweep_repeats=3),
    "fop": WorkloadProfile(
        name="fop", n_methods=50, loop_weight=0.45,
        heavy_loop_weight=0.15, fp_weight=0.3, alloc_weight=0.45,
        array_weight=0.3, exception_weight=0.12, call_weight=0.65,
        loop_iters=8, phase_calls=7, sweep_repeats=3),
    "h2": WorkloadProfile(
        name="h2", n_methods=60, loop_weight=0.55,
        heavy_loop_weight=0.25, fp_weight=0.05, alloc_weight=0.5,
        array_weight=0.45, exception_weight=0.1, call_weight=0.6,
        sync_weight=0.3, decimal_weight=0.2, loop_iters=10,
        phase_calls=8, sweep_repeats=3),
    "jython": WorkloadProfile(
        name="jython", n_methods=66, loop_weight=0.45,
        heavy_loop_weight=0.15, fp_weight=0.15, alloc_weight=0.5,
        array_weight=0.3, exception_weight=0.16, call_weight=0.75,
        loop_iters=7, phase_calls=8, sweep_repeats=3),
    "luindex": WorkloadProfile(
        name="luindex", n_methods=44, loop_weight=0.7,
        heavy_loop_weight=0.4, fp_weight=0.1, alloc_weight=0.3,
        array_weight=0.6, exception_weight=0.06, call_weight=0.5,
        loop_iters=12, phase_calls=6, sweep_repeats=3),
    "lusearch": WorkloadProfile(
        name="lusearch", n_methods=46, loop_weight=0.65,
        heavy_loop_weight=0.35, fp_weight=0.12, alloc_weight=0.3,
        array_weight=0.55, exception_weight=0.06, call_weight=0.5,
        sync_weight=0.25, loop_iters=11, phase_calls=6,
        sweep_repeats=3),
    "pmd": WorkloadProfile(
        name="pmd", n_methods=62, loop_weight=0.45,
        heavy_loop_weight=0.15, fp_weight=0.05, alloc_weight=0.45,
        array_weight=0.3, exception_weight=0.14, call_weight=0.7,
        loop_iters=8, phase_calls=8, sweep_repeats=3),
    "sunflow": WorkloadProfile(
        name="sunflow", n_methods=48, loop_weight=0.7,
        heavy_loop_weight=0.4, fp_weight=0.75, alloc_weight=0.35,
        array_weight=0.4, exception_weight=0.04, call_weight=0.55,
        sync_weight=0.2, loop_iters=12, phase_calls=6,
        sweep_repeats=3),
    "tomcat": WorkloadProfile(
        name="tomcat", n_methods=64, loop_weight=0.45,
        heavy_loop_weight=0.15, fp_weight=0.08, alloc_weight=0.45,
        array_weight=0.35, exception_weight=0.15, call_weight=0.7,
        sync_weight=0.3, loop_iters=8, phase_calls=8,
        sweep_repeats=3),
    "xalan": WorkloadProfile(
        name="xalan", n_methods=56, loop_weight=0.55,
        heavy_loop_weight=0.25, fp_weight=0.08, alloc_weight=0.4,
        array_weight=0.45, exception_weight=0.1, call_weight=0.65,
        sync_weight=0.25, loop_iters=9, phase_calls=7,
        sweep_repeats=3),
}


def dacapo_program(name, master_seed=0, scale=1.0):
    """Build the named DaCapo-like benchmark program."""
    profile = DACAPO_BENCHMARKS[name]
    if scale != 1.0:
        import dataclasses
        profile = dataclasses.replace(profile, scale=scale)
    streams = RngStreams(master_seed)
    rng = streams.get(f"workload:dacapo:{name}")
    return generate_program(profile, rng)
