"""Deterministic synthetic program generator.

Produces guest programs whose methods follow the invariants the IL
generator relies on (single static type per local slot, empty operand
stack at branch points, locals initialized before use) while covering the
full feature space of §4.1: loops (counted, many-iteration, nested),
integer/floating/decimal arithmetic, arrays, object allocation and field
traffic, exceptions with handlers, synchronization, intrinsic calls
(Math, BigDecimal, Unsafe) and acyclic call chains.

All randomness comes from the generator's ``numpy`` Generator, so a
(profile, seed) pair always yields the identical program.
"""

from repro.errors import ReproError
from repro.jvm.asm import Assembler
from repro.jvm.bytecode import JType
from repro.jvm.classfile import Handler, JClass, JMethod, MethodModifiers

_OBJECT_CLASSES = ("app/Node", "app/Point", "app/Record")
_EXC_CLASS = "app/AppError"
_INT_FIELDS = ("val", "cnt", "next")
_DOUBLE_FIELDS = ("w_d", "x_d")


class Program:
    """A generated guest program."""

    def __init__(self, name, classes, entry, profile):
        self.name = name
        self.classes = classes
        self.entry = entry
        self.profile = profile

    def methods(self):
        return [m for c in self.classes for m in c.methods.values()]

    def __repr__(self):
        n = sum(len(c.methods) for c in self.classes)
        return f"Program({self.name}, {n} methods, entry={self.entry})"


class _MethodBuilder:
    """Structured code emission on top of the assembler."""

    def __init__(self, gen, name, param_types, return_type):
        self.gen = gen
        self.rng = gen.rng
        self.asm = Assembler()
        self.name = name
        self.param_types = list(param_types)
        self.return_type = return_type
        self.slot_types = list(param_types)
        self.handlers = []
        self.array_lengths = {}  # slot -> known constant length
        self.loop_depth = 0
        # Active loop counters: never the target of random assignments
        # (clobbering a counter would break loop termination).
        self.protected = set()

    # -- slots ---------------------------------------------------------

    def new_slot(self, jtype):
        self.slot_types.append(jtype)
        return len(self.slot_types) - 1

    def slots_of(self, jtype, initialized_only=True):
        return [i for i, t in enumerate(self.slot_types) if t == jtype]

    def writable_slots_of(self, jtype):
        return [i for i, t in enumerate(self.slot_types)
                if t == jtype and i not in self.protected]

    def pick_int_target(self):
        slots = self.writable_slots_of(JType.INT)
        if slots:
            return int(self.rng.choice(slots))
        return self.init_int()

    def pick_double_target(self):
        slots = self.writable_slots_of(JType.DOUBLE)
        if slots:
            return int(self.rng.choice(slots))
        return self.init_double()

    def init_int(self, value=None):
        slot = self.new_slot(JType.INT)
        if value is None:
            value = int(self.rng.integers(-20, 100))
        self.asm.iconst(value).store(slot)
        return slot

    def init_double(self, value=None):
        slot = self.new_slot(JType.DOUBLE)
        if value is None:
            value = round(float(self.rng.uniform(-4.0, 8.0)), 3)
        self.asm.dconst(value).store(slot)
        return slot

    # -- expressions (emit stack code producing one value) --------------------

    def int_expr(self, depth=2):
        rng = self.rng
        if depth <= 0 or rng.random() < 0.35:
            ints = self.slots_of(JType.INT)
            if ints and rng.random() < 0.75:
                self.asm.load(int(rng.choice(ints)))
            else:
                self.asm.iconst(int(rng.integers(-8, 65)))
            return
        choice = rng.random()
        if choice < 0.72:
            op = rng.choice(["add", "sub", "mul", "and", "or", "xor",
                             "shl", "shr"])
            self.int_expr(depth - 1)
            if op in ("shl", "shr"):
                self.asm.iconst(int(rng.integers(0, 5)))
            else:
                self.int_expr(depth - 1)
            getattr(self.asm, {"and": "and_", "or": "or_"}.get(op, op))()
        elif choice < 0.84:
            if rng.random() < 0.4:
                # Provably non-negative dividend / power-of-two divisor
                # (the divRemToShiftMask pattern).
                self.int_expr(depth - 1)
                self.asm.iconst(63).and_()
                self.asm.iconst(int(rng.choice([2, 4, 8, 16])))
                self.asm.div() if rng.random() < 0.5 else self.asm.rem()
            else:
                # Safe division: divisor is (expr & 7) + 1, positive.
                self.int_expr(depth - 1)
                self.int_expr(depth - 1)
                self.asm.iconst(7).and_().iconst(1).add()
                self.asm.div() if rng.random() < 0.5 \
                    else self.asm.rem()
        elif choice < 0.92:
            self.int_expr(depth - 1)
            self.asm.neg()
        else:
            self.int_expr(depth - 1)
            self.int_expr(depth - 1)
            self.asm.cmp()

    def double_expr(self, depth=2):
        rng = self.rng
        if depth <= 0 or rng.random() < 0.4:
            doubles = self.slots_of(JType.DOUBLE)
            if doubles and rng.random() < 0.75:
                self.asm.load(int(rng.choice(doubles)))
            else:
                self.asm.dconst(round(float(rng.uniform(0.1, 9.0)), 3))
            return
        choice = rng.random()
        if choice < 0.6:
            op = rng.choice(["add", "sub", "mul", "div"])
            self.double_expr(depth - 1)
            self.double_expr(depth - 1)
            getattr(self.asm, op)()
        elif choice < 0.8:
            fn = rng.choice(["java/lang/Math.sqrt", "java/lang/Math.abs",
                             "java/lang/Math.sin"])
            self.double_expr(depth - 1)
            self.asm.call(str(fn), 1)
        else:
            self.int_expr(depth - 1)
            self.asm.cast(JType.DOUBLE)

    # -- statements ---------------------------------------------------------

    def assign_int(self, depth=2):
        target = self.pick_int_target()
        self.int_expr(depth)
        self.asm.store(target)

    def assign_double(self, depth=2):
        target = self.pick_double_target()
        self.double_expr(depth)
        self.asm.store(target)

    def counted_loop(self, bound, body, step=1):
        """for (i = 0; i < bound; i += step) body(i)."""
        i = self.init_int(0)
        top = self.asm.label()
        end = self.asm.new_label()
        self.asm.load(i)
        if isinstance(bound, int):
            self.asm.iconst(bound)
        else:
            self.asm.load(bound)
        self.asm.cmp().ifge(end)
        self.loop_depth += 1
        self.protected.add(i)
        body(i)
        self.protected.discard(i)
        self.loop_depth -= 1
        self.asm.inc(i, step).goto(top)
        self.asm.mark(end)
        return i

    def if_else(self, then_body, else_body=None):
        else_l = self.asm.new_label()
        end_l = self.asm.new_label()
        self.int_expr(1)
        if self.rng.random() < 0.3:
            # javac-style comparison against zero (exercises
            # cmpSimplification).
            self.asm.iconst(0).cmp()
        self.asm.ifle(else_l)
        then_body()
        self.asm.goto(end_l)
        self.asm.mark(else_l)
        if else_body is not None:
            else_body()
        else:
            self.asm.nop()
        self.asm.mark(end_l)

    def guarded_jump(self):
        """`if (c) goto L; goto M` -- the trampoline shape that
        branch reversal straightens."""
        hot = self.asm.new_label()
        done = self.asm.new_label()
        self.int_expr(1)
        self.asm.ifgt(hot)
        self.asm.goto(done)
        self.asm.mark(hot)
        self.assign_int(1)
        self.asm.mark(done)
        self.asm.nop()

    def make_array(self, elem_type, length):
        slot = self.new_slot(JType.ADDRESS)
        self.asm.iconst(length).newarray(elem_type).store(slot)
        self.array_lengths[slot] = length
        return slot

    def array_fill_loop(self, arr, length):
        def body(i):
            self.asm.load(arr).load(i)
            if self.gen.rng.random() < 0.5:
                self.asm.load(i).iconst(
                    int(self.rng.integers(2, 9))).mul()
            else:
                self.int_expr(1)
            self.asm.astore()
        self.counted_loop(length, body)

    def array_reduce_loop(self, arr, length, acc):
        def body(i):
            self.asm.load(acc).load(arr).load(i).aload().add()
            self.asm.store(acc)
        self.counted_loop(length, body)

    def object_traffic(self):
        cls = str(self.rng.choice(_OBJECT_CLASSES))
        obj = self.new_slot(JType.OBJECT)
        self.asm.new(cls).store(obj)
        field = str(self.rng.choice(_INT_FIELDS))
        self.asm.load(obj)
        self.int_expr(1)
        self.asm.putfield(field)
        target = self.pick_int_target()
        self.asm.load(obj).getfield(field)
        self.asm.store(target)
        if self.rng.random() < 0.5:
            # Re-read the same field (redundant-load-elimination food).
            other = self.pick_int_target()
            self.asm.load(obj).getfield(field)
            self.asm.load(target).add().store(other)
        if self.rng.random() < 0.3:
            self.asm.load(obj).instanceof(cls)
            self.asm.store(target)
        if self.rng.random() < 0.3:
            self.asm.load(obj).checkcast(cls).store(obj)
        return obj

    def field_sum_loop(self, iters=6):
        """Create an object before a loop, read its field every
        iteration (field-privatization food)."""
        cls = str(self.rng.choice(_OBJECT_CLASSES))
        obj = self.new_slot(JType.OBJECT)
        self.asm.new(cls).store(obj)
        self.asm.load(obj)
        self.int_expr(1)
        self.asm.putfield("val")
        acc = self.pick_int_target()

        def body(_i):
            self.asm.load(acc).load(obj).getfield("val").add()
            self.asm.store(acc)
        self.counted_loop(iters, body)

    def common_subexpression(self):
        """The same non-trivial pure expression computed twice in one
        block (local-CSE food)."""
        x = self.init_int()
        y = self.init_int()
        a = self.pick_int_target()
        b = self.pick_int_target()
        for target in (a, b):
            self.asm.load(x).load(y).mul().load(x).add()
            self.asm.store(target)

    def discarded_math_call(self):
        """A pure intrinsic call whose result is dropped -- dead after
        DCE, removable by pureCallElimination."""
        self.double_expr(1)
        self.asm.call("java/lang/Math.sqrt", 1)
        self.asm.pop()

    def repeated_index_reads(self, arr, idx):
        """Two reads of the same constant index: the second bounds
        check is provably redundant."""
        a = self.pick_int_target()
        b = self.pick_int_target()
        self.asm.load(arr).iconst(idx).aload().store(a)
        self.asm.load(arr).iconst(idx).aload().load(a).add().store(b)

    def array_self_compare(self, arr):
        target = self.pick_int_target()
        self.asm.load(arr).load(arr).arraycmp().store(target)

    def synchronized_section(self, body):
        cls = str(self.rng.choice(_OBJECT_CLASSES))
        obj = self.new_slot(JType.OBJECT)
        self.asm.new(cls).store(obj)
        self.asm.load(obj).monitorenter()
        body()
        self.asm.load(obj).monitorexit()

    def try_throw_catch(self):
        """if ((expr & 3) == 0) throw AppError; caught locally."""
        result = self.init_int(0)
        start = self.asm.here()
        skip = self.asm.new_label()
        self.int_expr(1)
        self.asm.iconst(3).and_().ifne(skip)
        self.asm.new(_EXC_CLASS).athrow()
        self.asm.mark(skip)
        self.int_expr(1)
        self.asm.store(result)
        end_l = self.asm.new_label()
        self.asm.goto(end_l)
        handler_pc = self.asm.here()
        self.asm.pop()  # the exception object
        self.asm.iconst(-1).store(result)
        self.asm.mark(end_l)
        self.asm.nop()
        self.handlers.append(Handler(start, handler_pc, handler_pc,
                                     _EXC_CLASS))
        return result

    def decimal_work(self):
        # BCD arithmetic: packed or zoned representation (Table 2).
        decimal_type = (JType.PACKED if self.rng.random() < 0.7
                        else JType.ZONED)
        a = self.init_int(int(self.rng.integers(100, 5000)))
        b = self.init_int(int(self.rng.integers(1, 400)))
        out = self.new_slot(decimal_type)
        if self.rng.random() < 0.4:
            # Constant decimal operands: foldable at compile time.
            self.asm.iconst(int(self.rng.integers(100, 900)))
            self.asm.cast(decimal_type)
            self.asm.iconst(int(self.rng.integers(1, 90)))
            self.asm.cast(decimal_type)
        else:
            self.asm.load(a).cast(decimal_type)
            self.asm.load(b).cast(decimal_type)
        if decimal_type is JType.PACKED:
            op = str(self.rng.choice(["add", "multiply", "subtract"]))
            self.asm.call(f"java/math/BigDecimal.{op}", 2)
        else:
            self.asm.add()
        self.asm.store(out)
        target = self.pick_int_target()
        self.asm.load(out).cast(JType.INT).store(target)

    def longdouble_work(self):
        """Quad-precision arithmetic (Testarossa's long double)."""
        target = self.pick_double_target()
        self.double_expr(1)
        self.asm.cast(JType.LONGDOUBLE)
        self.double_expr(1)
        self.asm.cast(JType.LONGDOUBLE)
        self.asm.mul().cast(JType.DOUBLE).store(target)

    def unsafe_work(self):
        target = self.pick_int_target()
        self.asm.load(target).call("sun/misc/Unsafe.getInt", 1)
        self.asm.store(target)

    def call_existing(self, callee):
        """Call a previously generated method (acyclic by construction)."""
        for ptype in callee.param_types:
            if ptype is JType.INT:
                self.int_expr(1)
            else:
                self.double_expr(1)
        self.asm.call(callee.signature, len(callee.param_types))
        if callee.return_type is JType.INT:
            self.asm.store(self.pick_int_target())
        elif callee.return_type is JType.DOUBLE:
            self.asm.store(self.pick_double_target())
        elif callee.return_type is not JType.VOID:
            self.asm.pop()

    # -- finish ---------------------------------------------------------

    def finish(self, class_name, modifiers, virtual_overridden=False):
        if self.return_type is JType.INT:
            ints = self.slots_of(JType.INT)
            if ints:
                self.asm.load(ints[-1])
            else:
                self.asm.iconst(0)
            self.asm.retval()
        elif self.return_type is JType.DOUBLE:
            doubles = self.slots_of(JType.DOUBLE)
            if doubles:
                self.asm.load(doubles[-1])
            else:
                self.asm.dconst(0.0)
            self.asm.retval()
        else:
            self.asm.ret()
        method = JMethod(
            class_name, self.name, self.param_types, self.return_type,
            self.asm.assemble(), modifiers=modifiers,
            num_temps=len(self.slot_types) - len(self.param_types),
            handlers=self.handlers)
        method.virtual_overridden = virtual_overridden
        return method


#: Measured per-invocation cost ceilings (interpreted cycles).  Methods
#: above CALLEE_COST_CAP are never called by other generated methods;
#: methods above LOOP_CALLEE_COST_CAP are only called outside loops.
#: This keeps total dynamic cost bounded (no combinatorial call blow-up)
#: while still producing deep-but-cheap call chains.
CALLEE_COST_CAP = 40_000
LOOP_CALLEE_COST_CAP = 2_500


class ProgramGenerator:
    """Generates one :class:`Program` from a profile and an RNG.

    Every finished method is executed once in a scratch VM to measure its
    per-invocation interpreted cost; the measurement bounds which methods
    later ones may call (and from where), so generated programs have
    predictable total work.
    """

    def __init__(self, profile, rng):
        self.profile = profile
        self.rng = rng
        self.methods = []       # generated so far (callable from later)
        self.method_cost = {}   # signature -> measured interpreted cycles
        self._scratch_vm = None

    # -- cost measurement -----------------------------------------------------

    def _measure(self, method):
        from repro.jvm.vm import VirtualMachine
        if self._scratch_vm is None:
            self._scratch_vm = VirtualMachine()
            self._scratch_class = JClass("bench/_scratch")
        vm = self._scratch_vm
        vm._methods[method.signature] = method
        args = []
        for ptype in method.param_types:
            args.append(7 if ptype is JType.INT else 1.5)
        before = vm.clock.now()
        vm.call(method.signature, *args)
        return vm.clock.now() - before

    def callable_methods(self, in_loop):
        cap = LOOP_CALLEE_COST_CAP if in_loop else CALLEE_COST_CAP
        return [m for m in self.methods
                if self.method_cost[m.signature] <= cap]

    # -- top level ----------------------------------------------------------

    def generate(self):
        profile = self.profile
        class_name = f"bench/{profile.name.capitalize()}"
        jclass = JClass(class_name)
        for i in range(profile.n_methods):
            method = self._gen_method(class_name, f"m{i}")
            jclass.add_method(method)
            self.methods.append(method)
            self.method_cost[method.signature] = self._measure(method)
        entry = self._gen_entry(class_name)
        jclass.add_method(entry)
        # Object classes (app/Node etc.) carry no methods; the VM creates
        # their instances by name, so only the bench class is emitted.
        return Program(profile.name, [jclass], entry.signature, profile)

    # -- a worker method ---------------------------------------------------

    def _gen_method(self, class_name, name):
        rng = self.rng
        profile = self.profile
        uses_fp = rng.random() < profile.fp_weight
        param_types = [JType.INT]
        if rng.random() < 0.4:
            param_types.append(JType.INT)
        if uses_fp and rng.random() < 0.5:
            param_types.append(JType.DOUBLE)
        return_type = JType.DOUBLE if (uses_fp and rng.random() < 0.5) \
            else JType.INT
        mb = _MethodBuilder(self, name, param_types, return_type)

        mods = MethodModifiers.PUBLIC
        if rng.random() < 0.5:
            mods |= MethodModifiers.STATIC
        if rng.random() < 0.15:
            mods |= MethodModifiers.FINAL
        if rng.random() < 0.1:
            mods = (mods & ~MethodModifiers.PUBLIC) \
                | MethodModifiers.PROTECTED
        if rng.random() < profile.sync_weight:
            mods |= MethodModifiers.SYNCHRONIZED
        if uses_fp and rng.random() < 0.15:
            mods |= MethodModifiers.STRICTFP

        acc = mb.init_int(0)
        mb.init_int()
        if uses_fp:
            mb.init_double()

        has_loop = rng.random() < profile.loop_weight
        heavy = has_loop and rng.random() < profile.heavy_loop_weight
        bound = profile.heavy_loop_iters if heavy else max(
            2, int(rng.integers(2, profile.loop_iters + 1)))

        loop_safe, outside = self._pick_statements(mb, uses_fp,
                                                   in_loop=has_loop)

        if has_loop:
            self._run_statements(mb, outside)
            nested = heavy and rng.random() < 0.3

            def loop_body(_i):
                if nested and loop_safe:
                    inner_bound = max(2, min(8, bound // 12))
                    mb.counted_loop(
                        inner_bound,
                        lambda _j: self._run_statements(
                            mb, loop_safe[:1]))
                    self._run_statements(mb, loop_safe[1:])
                else:
                    self._run_statements(mb, loop_safe)
                # Accumulate so the loop is never dead code.
                mb.asm.load(acc)
                mb.int_expr(1)
                mb.asm.add().store(acc)

            mb.counted_loop(bound, loop_body)
        else:
            self._run_statements(mb, loop_safe + outside)
            mb.asm.load(acc)
            mb.int_expr(1)
            mb.asm.add().store(acc)

        if return_type is JType.DOUBLE:
            mb.asm.load(acc).cast(JType.DOUBLE)
            doubles = mb.slots_of(JType.DOUBLE)
            mb.asm.load(doubles[0]).add()
            out = mb.new_slot(JType.DOUBLE)
            mb.asm.store(out)

        return mb.finish(class_name, mods,
                         virtual_overridden=rng.random() < 0.05)

    def _pick_statements(self, mb, uses_fp, in_loop):
        """Choose statement thunks according to the profile; returns
        ``(loop_safe, outside_only)``: expensive calls may only execute
        outside loops so total dynamic cost stays bounded."""
        rng = self.rng
        profile = self.profile
        pool = [(lambda: mb.assign_int(2), True)]
        if uses_fp:
            pool.append((lambda: mb.assign_double(2), True))
        if rng.random() < profile.array_weight:
            length = max(4, int(rng.integers(4, 17)))
            arr = mb.make_array(JType.INT, length)
            mb.array_fill_loop(arr, length)
            acc = mb.init_int(0)
            pool.append((lambda: mb.array_reduce_loop(arr, length, acc),
                         False))
            if rng.random() < 0.5:
                idx = int(rng.integers(0, length))
                pool.append((lambda: mb.repeated_index_reads(arr, idx),
                             True))
            if rng.random() < 0.2:
                pool.append((lambda: mb.array_self_compare(arr), True))
        if rng.random() < profile.alloc_weight:
            pool.append((mb.object_traffic, True))
        if rng.random() < profile.alloc_weight * 0.5:
            pool.append((lambda: mb.field_sum_loop(
                max(3, int(rng.integers(3, 10)))), False))
        if rng.random() < profile.exception_weight:
            pool.append((mb.try_throw_catch, True))
        if rng.random() < profile.decimal_weight:
            pool.append((mb.decimal_work, True))
        if uses_fp and rng.random() < profile.decimal_weight:
            pool.append((mb.longdouble_work, True))
        if rng.random() < profile.unsafe_weight:
            pool.append((mb.unsafe_work, True))
        if rng.random() < profile.sync_weight:
            pool.append((lambda: mb.synchronized_section(
                lambda: mb.assign_int(1)), True))
        if rng.random() < profile.call_weight:
            cheap = self.callable_methods(in_loop=True)
            any_cost = self.callable_methods(in_loop=False)
            if in_loop and cheap and rng.random() < 0.6:
                callee = cheap[int(rng.integers(0, len(cheap)))]
                pool.append((lambda: mb.call_existing(callee), True))
            elif any_cost:
                callee = any_cost[int(rng.integers(0, len(any_cost)))]
                pool.append((lambda: mb.call_existing(callee), False))
        if rng.random() < 0.3:
            pool.append((lambda: mb.if_else(
                lambda: mb.assign_int(1), lambda: mb.assign_int(1)),
                True))
        if rng.random() < 0.25:
            pool.append((mb.guarded_jump, True))
        if rng.random() < 0.3:
            pool.append((mb.common_subexpression, True))
        if uses_fp and rng.random() < 0.15:
            pool.append((mb.discarded_math_call, True))
        count = min(len(pool), int(rng.integers(2, 5)))
        picks = rng.choice(len(pool), size=count, replace=False)
        chosen = [pool[int(p)] for p in picks]
        loop_safe = [fn for fn, safe in chosen if safe]
        outside = [fn for fn, safe in chosen if not safe]
        return loop_safe, outside

    @staticmethod
    def _run_statements(mb, statements):
        for stmt in statements:
            stmt()

    # -- the entry point ----------------------------------------------------

    def _gen_entry(self, class_name):
        """main(n): repeats sweeps over the phase methods, each phase
        invoked with its own per-sweep multiplicity so invocation counts
        spread across the compilation-trigger ladder."""
        profile = self.profile
        rng = self.rng
        # Phases: prefer cheap-to-moderate methods so one iteration makes
        # *many* invocations (what drives the adaptive controller), with
        # one expensive method mixed in when available.
        costs = [(self.method_cost[m.signature], i)
                 for i, m in enumerate(self.methods)]
        cheap = [i for c, i in costs if c <= 20_000]
        pricey = [i for c, i in costs if c > 20_000]
        want = min(profile.phase_calls, len(self.methods))
        phases = list(rng.choice(cheap, size=min(want, len(cheap)),
                                 replace=False)) if cheap else []
        if pricey and len(phases) < want:
            phases.append(int(rng.choice(pricey)))
        mb = _MethodBuilder(self, "main", [JType.INT], JType.INT)
        acc = mb.init_int(0)
        dacc = mb.init_double(0.0)

        # Per-iteration cycle budget: multiplicities are scaled so that
        # one call of main() costs roughly this much interpreted.
        budget = 420_000 * profile.scale
        per_phase = budget / max(1, len(phases) * profile.repeats())

        def sweep(_r):
            for p in phases:
                callee = self.methods[int(p)]
                cost = max(1, self.method_cost[callee.signature])
                multiplicity = int(min(30, max(1, per_phase // cost)))
                multiplicity = max(1, int(rng.integers(
                    max(1, multiplicity // 2), multiplicity + 1)))

                def call_phase(_i, callee=callee):
                    for ptype in callee.param_types:
                        if ptype is JType.INT:
                            mb.asm.load(0)  # main's n
                        else:
                            mb.asm.load(dacc)
                    mb.asm.call(callee.signature,
                                len(callee.param_types))
                    if callee.return_type is JType.INT:
                        mb.asm.load(acc).add().store(acc)
                    elif callee.return_type is JType.DOUBLE:
                        mb.asm.load(dacc).add().store(dacc)

                mb.counted_loop(multiplicity, call_phase)

        mb.counted_loop(profile.repeats(), sweep)
        # Fold the double accumulator into the result deterministically.
        mb.asm.load(dacc).cast(JType.INT).load(acc).add()
        out = mb.new_slot(JType.INT)
        mb.asm.store(out)
        return mb.finish(class_name,
                         MethodModifiers.PUBLIC | MethodModifiers.STATIC)


def generate_program(profile, rng):
    """Convenience wrapper: build the program for (profile, rng)."""
    generator = ProgramGenerator(profile, rng)
    program = generator.generate()
    if not program.methods():
        raise ReproError(f"profile {profile.name} produced no methods")
    return program
