"""Method feature extraction (paper §4.1).

A method is characterized by a 71-dimensional numeric vector: 19 scalar
features (4 counters + 15 binary attributes, Table 1) and 52 distribution
counters -- 14 over operand types (16-bit saturating, Table 2) and 38 over
operations (8-bit saturating, Table 3) -- computed in a single pass over
the tree-based IL just prior to the optimization stage.
"""

from repro.features.vector import (
    FEATURE_NAMES,
    NUM_FEATURES,
    FeatureExtractor,
    extract_features,
)

__all__ = ["FEATURE_NAMES", "NUM_FEATURES", "FeatureExtractor",
           "extract_features"]
