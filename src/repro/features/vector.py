"""The 71-dimensional feature vector.

Layout (indices are stable; trained models depend on them):

* ``[0, 4)``   -- scalar counters: exception handlers, arguments,
  temporaries, tree nodes (Table 1, left column).
* ``[4, 19)``  -- binary attributes (Table 1, right column).
* ``[19, 33)`` -- type distribution, 16-bit saturating (Table 2).
* ``[33, 71)`` -- operation distribution, 8-bit saturating (Table 3).
"""

import numpy as np

from repro.jvm.bytecode import JType
from repro.jit.ir.tree import ILOp

#: Loop bound at or above which a counted loop counts as many-iteration.
MANY_ITERATION_THRESHOLD = 64

TYPE_ORDER = (
    JType.BYTE, JType.CHAR, JType.SHORT, JType.INT, JType.LONG,
    JType.FLOAT, JType.DOUBLE, JType.VOID, JType.ADDRESS, JType.OBJECT,
    JType.LONGDOUBLE, JType.PACKED, JType.ZONED, JType.MIXED,
)

OP_ORDER = (
    # ALU (12)
    "op_add", "op_sub", "op_mul", "op_div", "op_rem", "op_neg",
    "op_shift", "op_or", "op_and", "op_xor", "op_inc", "op_compare",
    # Cast (13)
    "cast_byte", "cast_char", "cast_short", "cast_int", "cast_long",
    "cast_float", "cast_double", "cast_longdouble", "cast_address",
    "cast_object", "cast_packed", "cast_zoned", "cast_check",
    # Load/Store (3)
    "op_load", "op_loadconst", "op_store",
    # Memory (3)
    "op_new", "op_newarray", "op_newmultiarray",
    # JVM (3)
    "op_instanceof", "op_synchronization", "op_throw",
    # Branch (2)
    "op_branch", "op_call",
    # Array operations (1)
    "op_arrayops",
    # Mixed operations (1)
    "op_mixed",
)

SCALAR_COUNTERS = ("exception_handlers", "arguments", "temporaries",
                   "tree_nodes")

ATTRIBUTES = (
    "is_constructor", "is_final", "is_protected", "is_public",
    "is_static", "is_synchronized", "many_iteration_loops",
    "may_have_loops", "may_have_many_iteration_loops",
    "allocates_dynamic_memory", "unsafe_symbols", "uses_bigdecimal",
    "virtual_method_overridden", "strict_floating_point",
    "uses_floating_point",
)

FEATURE_NAMES = (SCALAR_COUNTERS + ATTRIBUTES
                 + tuple(f"type_{t.name.lower()}" for t in TYPE_ORDER)
                 + OP_ORDER)

NUM_FEATURES = len(FEATURE_NAMES)
assert NUM_FEATURES == 71, NUM_FEATURES

TYPE_COUNTER_CAP = 0xFFFF   # 16-bit counters (Table 2)
OP_COUNTER_CAP = 0xFF       # 8-bit counters (Table 3)

_CAST_COUNTER = {
    JType.BYTE: "cast_byte", JType.CHAR: "cast_char",
    JType.SHORT: "cast_short", JType.INT: "cast_int",
    JType.LONG: "cast_long", JType.FLOAT: "cast_float",
    JType.DOUBLE: "cast_double", JType.LONGDOUBLE: "cast_longdouble",
    JType.ADDRESS: "cast_address", JType.OBJECT: "cast_object",
    JType.PACKED: "cast_packed", JType.ZONED: "cast_zoned",
}

_OP_COUNTER = {
    ILOp.ADD: "op_add", ILOp.SUB: "op_sub", ILOp.MUL: "op_mul",
    ILOp.DIV: "op_div", ILOp.REM: "op_rem", ILOp.NEG: "op_neg",
    ILOp.SHL: "op_shift", ILOp.SHR: "op_shift", ILOp.OR: "op_or",
    ILOp.AND: "op_and", ILOp.XOR: "op_xor", ILOp.INC: "op_inc",
    ILOp.CMP: "op_compare",
    ILOp.LOAD: "op_load", ILOp.GETFIELD: "op_load", ILOp.ALOAD: "op_load",
    ILOp.CONST: "op_loadconst",
    ILOp.STORE: "op_store", ILOp.PUTFIELD: "op_store",
    ILOp.ASTORE: "op_store",
    ILOp.NEW: "op_new", ILOp.NEWARRAY: "op_newarray",
    ILOp.NEWMULTIARRAY: "op_newmultiarray",
    ILOp.INSTANCEOF: "op_instanceof",
    ILOp.MONITORENTER: "op_synchronization",
    ILOp.MONITOREXIT: "op_synchronization",
    ILOp.ATHROW: "op_throw",
    ILOp.IF: "op_branch", ILOp.GOTO: "op_branch",
    ILOp.CALL: "op_call",
    ILOp.ARRAYLENGTH: "op_arrayops", ILOp.ARRAYCOPY: "op_arrayops",
    ILOp.ARRAYCMP: "op_arrayops", ILOp.BNDCHK: "op_arrayops",
}

_INDEX = {name: i for i, name in enumerate(FEATURE_NAMES)}


class FeatureExtractor:
    """Computes feature vectors from IL; one pass per method."""

    def __init__(self):
        self._cache = {}

    def extract(self, ilmethod, cfg=None, virtual_overridden=None):
        return extract_features(ilmethod, cfg=cfg,
                                virtual_overridden=virtual_overridden)


def extract_features(ilmethod, cfg=None, virtual_overridden=None):
    """Return the 71-component feature vector as ``np.float64`` array."""
    from repro.jit.ir.cfg import CFGInfo
    method = ilmethod.method
    if cfg is None:
        cfg = CFGInfo(ilmethod)
    vec = np.zeros(NUM_FEATURES, dtype=np.float64)

    def setf(name, value):
        vec[_INDEX[name]] = float(value)

    def bump(name, cap):
        i = _INDEX[name]
        if vec[i] < cap:
            vec[i] += 1.0

    # -- scalar counters ----------------------------------------------------
    setf("exception_handlers", len(method.handlers))
    setf("arguments", method.num_args)
    setf("temporaries", ilmethod.num_locals - method.num_args)
    setf("tree_nodes", ilmethod.count_nodes())

    # -- binary attributes --------------------------------------------------
    setf("is_constructor", method.is_constructor)
    setf("is_final", method.is_final)
    setf("is_protected", method.is_protected)
    setf("is_public", method.is_public)
    setf("is_static", method.is_static)
    setf("is_synchronized", method.is_synchronized)
    setf("strict_floating_point", method.is_strictfp)

    has_loops = bool(cfg.loops)
    nested = cfg.max_loop_depth() >= 2
    many, may_many = _loop_iteration_attributes(ilmethod, cfg, nested)
    setf("may_have_loops", has_loops or method.has_backward_branch())
    setf("many_iteration_loops", many)
    setf("may_have_many_iteration_loops", may_many)

    if virtual_overridden is None:
        virtual_overridden = bool(getattr(method, "virtual_overridden",
                                          False))
    setf("virtual_method_overridden", virtual_overridden)

    allocates = False
    unsafe = False
    bigdecimal = False
    uses_fp = False

    # -- distributions (single pass over the trees) --------------------------
    for _block, treetop in ilmethod.iter_treetops():
        for node in treetop.walk():
            t = node.type
            if t in (JType.FLOAT, JType.DOUBLE, JType.LONGDOUBLE):
                uses_fp = True
            type_name = f"type_{t.name.lower()}"
            if type_name in _INDEX:
                bump(type_name, TYPE_COUNTER_CAP)
            if len(node.children) == 2:
                c0, c1 = node.children
                if c0.type != c1.type:
                    bump("type_mixed", TYPE_COUNTER_CAP)

            op = node.op
            if op is ILOp.CAST:
                counter = _CAST_COUNTER.get(node.type)
                if counter is not None:
                    bump(counter, OP_COUNTER_CAP)
                continue
            if op is ILOp.CHECKCAST:
                bump("cast_check", OP_COUNTER_CAP)
                continue
            counter = _OP_COUNTER.get(op)
            if counter is not None:
                bump(counter, OP_COUNTER_CAP)
            else:
                if op not in (ILOp.RETURN, ILOp.TREETOP, ILOp.NULLCHK,
                              ILOp.CATCH):
                    bump("op_mixed", OP_COUNTER_CAP)
            if op in (ILOp.NEW, ILOp.NEWARRAY, ILOp.NEWMULTIARRAY):
                allocates = True
            elif op is ILOp.CALL:
                if node.value.startswith("sun/misc/Unsafe."):
                    unsafe = True
                elif node.value.startswith("java/math/BigDecimal."):
                    bigdecimal = True

    setf("allocates_dynamic_memory", allocates)
    setf("unsafe_symbols", unsafe)
    setf("uses_bigdecimal", bigdecimal)
    setf("uses_floating_point", uses_fp)
    return vec


def _loop_iteration_attributes(ilmethod, cfg, nested):
    """(many_iteration_loops, may_have_many_iteration_loops) from loop
    bounds visible in header conditions and from nesting."""
    many = False
    may_many = nested
    index = ilmethod.block_index()
    for loop in cfg.loops:
        header = index.get(loop.header)
        if header is None:
            continue
        term = header.terminator
        bound = None
        if term is not None and term.op is ILOp.IF:
            cond = term.children[0]
            if cond.op is ILOp.CMP:
                rhs = cond.children[1]
                if rhs.is_const() and isinstance(rhs.value, int):
                    bound = abs(rhs.value)
        if bound is None:
            may_many = True  # unknown trip count: could be large
        elif bound >= MANY_ITERATION_THRESHOLD:
            many = True
            may_many = True
    return many, may_many


def feature_index(name):
    return _INDEX[name]
