"""The synthetic workload generator and benchmark suites."""

import numpy as np
import pytest

from repro.jvm.vm import VirtualMachine
from repro.workloads import (
    DACAPO_BENCHMARKS,
    SPECJVM_BENCHMARKS,
    SPECJVM_TRAINING,
    dacapo_program,
    specjvm_program,
)
from repro.workloads.generator import (
    CALLEE_COST_CAP,
    LOOP_CALLEE_COST_CAP,
    generate_program,
)
from repro.workloads.profiles import WorkloadProfile


def small_profile(**kw):
    defaults = dict(name="t", n_methods=10, loop_weight=0.7,
                    fp_weight=0.4, alloc_weight=0.4, array_weight=0.5,
                    exception_weight=0.3, decimal_weight=0.3,
                    unsafe_weight=0.2, sync_weight=0.3,
                    call_weight=0.6, loop_iters=6, phase_calls=4,
                    sweep_repeats=2)
    defaults.update(kw)
    return WorkloadProfile(**defaults)


class TestGeneration:
    def test_program_runs_deterministically(self):
        prog = generate_program(small_profile(),
                                np.random.default_rng(3))
        results = []
        for _ in range(2):
            vm = VirtualMachine()
            vm.load_program(prog)
            results.append(vm.call(prog.entry, 4))
        assert results[0] == results[1]

    def test_same_seed_same_program(self):
        a = generate_program(small_profile(), np.random.default_rng(9))
        b = generate_program(small_profile(), np.random.default_rng(9))
        assert [m.signature for m in a.methods()] \
            == [m.signature for m in b.methods()]
        for ma, mb in zip(a.methods(), b.methods()):
            assert ma.code == mb.code

    def test_different_seed_different_program(self):
        a = generate_program(small_profile(), np.random.default_rng(1))
        b = generate_program(small_profile(), np.random.default_rng(2))
        assert any(ma.code != mb.code
                   for ma, mb in zip(a.methods(), b.methods()))

    def test_method_count_matches_profile(self):
        prog = generate_program(small_profile(n_methods=15),
                                np.random.default_rng(0))
        # n_methods workers + main
        assert len(prog.methods()) == 16

    def test_feature_diversity(self):
        from repro.features import extract_features
        from repro.jit.ir.ilgen import generate_il
        prog = generate_program(small_profile(n_methods=20),
                                np.random.default_rng(5))
        vectors = set()
        for method in prog.methods():
            il, _ = generate_il(
                method, resolve_return_type=lambda s: None
                if s else None)
            try:
                il2, _ = generate_il(method)
            except Exception:
                continue
            vectors.add(tuple(extract_features(il2)))
        assert len(vectors) > 10

    def test_cost_caps_respected(self):
        prog_gen_rng = np.random.default_rng(11)
        from repro.workloads.generator import ProgramGenerator
        gen = ProgramGenerator(small_profile(n_methods=12),
                               prog_gen_rng)
        gen.generate()
        for m in gen.callable_methods(in_loop=True):
            assert gen.method_cost[m.signature] <= LOOP_CALLEE_COST_CAP
        for m in gen.callable_methods(in_loop=False):
            assert gen.method_cost[m.signature] <= CALLEE_COST_CAP


class TestSuites:
    def test_spec_suite_membership(self):
        assert set(SPECJVM_TRAINING) <= set(SPECJVM_BENCHMARKS)
        assert len(SPECJVM_TRAINING) == 5  # paper §8.1
        assert len(SPECJVM_BENCHMARKS) == 8

    def test_dacapo_excludes_trade_benchmarks(self):
        assert "tradebeans" not in DACAPO_BENCHMARKS
        assert "tradesoap" not in DACAPO_BENCHMARKS
        assert len(DACAPO_BENCHMARKS) == 12

    @pytest.mark.parametrize("name", ["compress", "javac"])
    def test_spec_program_runs(self, name):
        prog = specjvm_program(name)
        vm = VirtualMachine()
        vm.load_program(prog)
        vm.call(prog.entry, 2)
        assert vm.stats["invocations"] > 1

    def test_dacapo_program_runs(self):
        prog = dacapo_program("luindex")
        vm = VirtualMachine()
        vm.load_program(prog)
        vm.call(prog.entry, 2)
        assert vm.stats["invocations"] > 1

    def test_scale_controls_work(self):
        small = specjvm_program("db", scale=0.5)
        big = specjvm_program("db", scale=2.0)

        def cycles(prog):
            vm = VirtualMachine()
            vm.load_program(prog)
            vm.call(prog.entry, 2)
            return vm.clock.now()

        assert cycles(big) > cycles(small)

    def test_jit_equivalence_on_suite_member(self):
        from repro.jit.compiler import JitCompiler
        from repro.jit.control import CompilationManager
        prog = specjvm_program("mtrt")
        vm1 = VirtualMachine()
        vm1.load_program(prog)
        expected = vm1.call(prog.entry, 2)
        vm2 = VirtualMachine()
        vm2.load_program(prog)
        manager = CompilationManager(
            JitCompiler(method_resolver=vm2._methods.get))
        vm2.attach_manager(manager)
        assert vm2.call(prog.entry, 2) == expected
        assert manager.compilations() > 0
