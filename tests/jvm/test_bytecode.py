"""Unit tests for the bytecode definitions and verifier."""

import pytest

from repro.errors import BytecodeError
from repro.jvm.bytecode import (
    INTERP_COST,
    Instr,
    JType,
    Op,
    mask_integral,
    validate_code,
)


class TestJType:
    def test_integral_classification(self):
        assert JType.INT.is_integral
        assert JType.LONG.is_integral
        assert not JType.DOUBLE.is_integral

    def test_floating_classification(self):
        assert JType.FLOAT.is_floating
        assert JType.LONGDOUBLE.is_floating
        assert not JType.INT.is_floating

    def test_decimal_classification(self):
        assert JType.PACKED.is_decimal
        assert JType.ZONED.is_decimal
        assert not JType.LONG.is_decimal

    def test_reference_classification(self):
        assert JType.OBJECT.is_reference
        assert JType.ADDRESS.is_reference
        assert not JType.INT.is_reference

    def test_numeric_covers_groups(self):
        assert JType.INT.is_numeric
        assert JType.DOUBLE.is_numeric
        assert JType.PACKED.is_numeric
        assert not JType.OBJECT.is_numeric


class TestMasking:
    def test_int_wraps_at_2_31(self):
        assert mask_integral(2**31, JType.INT) == -(2**31)

    def test_int_negative_wrap(self):
        assert mask_integral(-(2**31) - 1, JType.INT) == 2**31 - 1

    def test_byte_wraps(self):
        assert mask_integral(128, JType.BYTE) == -128
        assert mask_integral(255, JType.BYTE) == -1

    def test_char_is_unsigned(self):
        assert mask_integral(-1, JType.CHAR) == 0xFFFF
        assert mask_integral(0x10000, JType.CHAR) == 0

    def test_short_wraps(self):
        assert mask_integral(32768, JType.SHORT) == -32768

    def test_long_wraps(self):
        assert mask_integral(2**63, JType.LONG) == -(2**63)

    def test_identity_in_range(self):
        for v in (-100, 0, 17, 2**30):
            assert mask_integral(v, JType.INT) == v


class TestInstr:
    def test_equality_and_hash(self):
        a = Instr(Op.LOAD, 3)
        b = Instr(Op.LOAD, 3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != Instr(Op.LOAD, 4)

    def test_repr_contains_opcode(self):
        assert "load" in repr(Instr(Op.LOAD, 1))


class TestValidateCode:
    def test_empty_body_rejected(self):
        with pytest.raises(BytecodeError):
            validate_code([], 1)

    def test_branch_target_out_of_range(self):
        code = [Instr(Op.GOTO, 5), Instr(Op.RET)]
        with pytest.raises(BytecodeError, match="branch target"):
            validate_code(code, 1)

    def test_bad_slot_rejected(self):
        code = [Instr(Op.LOAD, 9), Instr(Op.RETVAL)]
        with pytest.raises(BytecodeError, match="slot"):
            validate_code(code, 2)

    def test_fall_off_end_rejected(self):
        code = [Instr(Op.LOAD, 0)]
        with pytest.raises(BytecodeError, match="fall off"):
            validate_code(code, 1)

    def test_loadconst_requires_jtype(self):
        code = [Instr(Op.LOADCONST, 42, 0), Instr(Op.RET)]
        with pytest.raises(BytecodeError, match="JType"):
            validate_code(code, 1)

    def test_call_operands_checked(self):
        code = [Instr(Op.CALL, 123, 0), Instr(Op.RET)]
        with pytest.raises(BytecodeError, match="signature"):
            validate_code(code, 1)

    def test_valid_code_passes(self):
        code = [Instr(Op.LOADCONST, JType.INT, 1), Instr(Op.RETVAL)]
        validate_code(code, 1)


def test_every_opcode_has_interp_cost():
    for op in Op:
        assert op in INTERP_COST, op
        assert INTERP_COST[op] > 0
