"""Guest heap values."""

import pytest

from repro.errors import JavaThrow
from repro.jvm.bytecode import JType
from repro.jvm.classfile import JClass
from repro.jvm.objects import JArray, JObject, make_multiarray, \
    null_check


class TestJObject:
    def test_fields_default_zero(self):
        obj = JObject("C")
        assert obj.getfield("anything") == 0

    def test_put_get(self):
        obj = JObject("C")
        obj.putfield("x", 42)
        assert obj.getfield("x") == 42

    def test_isinstance_exact(self):
        assert JObject("C").isinstance_of("C")
        assert not JObject("C").isinstance_of("D")

    def test_isinstance_via_superclass_chain(self):
        registry = {"Sub": JClass("Sub", superclass="Base"),
                    "Base": JClass("Base")}
        assert JObject("Sub").isinstance_of("Base", registry)
        assert not JObject("Base").isinstance_of("Sub", registry)


class TestJArray:
    def test_fill_typed(self):
        ints = JArray(JType.INT, 3)
        assert ints.data == [0, 0, 0]
        doubles = JArray(JType.DOUBLE, 2)
        assert doubles.data == [0.0, 0.0]
        assert isinstance(doubles.data[0], float)

    def test_bounds(self):
        arr = JArray(JType.INT, 2)
        with pytest.raises(JavaThrow, match="ArrayIndexOutOfBounds"):
            arr.load(2)
        with pytest.raises(JavaThrow, match="ArrayIndexOutOfBounds"):
            arr.store(-1, 0)

    def test_negative_size(self):
        with pytest.raises(JavaThrow, match="NegativeArraySize"):
            JArray(JType.INT, -1)

    def test_multiarray_rectangular(self):
        arr = make_multiarray(JType.INT, [2, 3])
        assert arr.length == 2
        assert arr.load(0).length == 3
        assert arr.load(1).load(2) == 0


class TestNullCheck:
    def test_none_throws(self):
        with pytest.raises(JavaThrow, match="NullPointerException"):
            null_check(None)

    def test_zero_throws(self):
        with pytest.raises(JavaThrow, match="NullPointerException"):
            null_check(0)

    def test_object_passes(self):
        obj = JObject("C")
        assert null_check(obj) is obj
