"""Dispatch-engine parity: the predecoded table-driven loops must be
observationally identical to the legacy if/elif loops they replaced.

Two layers of evidence:

* hypothesis properties over generated programs -- same result, same
  virtual cycle count, same heap statistics, whichever engine runs,
  and whether the method is interpreted or compiled at any level;
* virtual-time invariance on real benchmarks -- a full adaptive run of
  compress and db produces bit-identical cycle totals, compile counts
  and results under either engine.

``host_steps`` is deliberately NOT compared: it is engine-*dependent*
by design (the legacy native loop iterates over LABEL pseudo-ops that
predecoding strips; the superop trampoline counts fused blocks).  The
engine-*invariant* ``retired_instructions`` counter is what the bench
harness divides by, and the superop parity suite
(``tests/jit/test_superop_parity.py``) checks its invariance.
"""

import contextlib

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.jit.codegen.native as native_mod
import repro.jvm.interpreter as interp_mod
from repro.jit.compiler import JitCompiler
from repro.jit.control import CompilationManager
from repro.jit.plans import OptLevel
from repro.jvm.vm import VirtualMachine
from repro.workloads import specjvm_program
from tests.jit.test_equivalence import args_for, build_vm, same_outcome

#: Guest-visible observables that must not depend on the engine.
HEAP_KEYS = ("allocations", "monitor_ops")


@contextlib.contextmanager
def dispatch(predecode):
    """Run a block under one dispatch engine (both tiers at once)."""
    saved = (interp_mod.USE_PREDECODE, native_mod.USE_PREDECODE)
    interp_mod.USE_PREDECODE = predecode
    native_mod.USE_PREDECODE = predecode
    try:
        yield
    finally:
        interp_mod.USE_PREDECODE, native_mod.USE_PREDECODE = saved


def _observe_interp(seed, method_sig, args):
    vm, program = build_vm(seed)
    method = vm._methods[method_sig]
    try:
        result = vm.interpreter.execute(method, list(args))
    except Exception as exc:  # guest exception escaping is a valid outcome
        result = ("raised", type(exc).__name__, str(exc))
    return result, vm.clock.now(), \
        tuple(vm.stats[k] for k in HEAP_KEYS)


def _observe_compiled(seed, method_sig, args, level):
    vm, program = build_vm(seed)
    method = vm._methods[method_sig]
    compiler = JitCompiler(method_resolver=vm._methods.get)
    compiled = compiler.compile(method, level)
    try:
        result = compiled.execute(vm, list(args))
    except Exception as exc:
        result = ("raised", type(exc).__name__, str(exc))
    return result, vm.clock.now(), \
        tuple(vm.stats[k] for k in HEAP_KEYS)


def _assert_same(new, old, label):
    new_result, new_cycles, new_heap = new
    old_result, old_cycles, old_heap = old
    assert same_outcome(new_result, old_result), (
        f"{label}: result {new_result!r} != {old_result!r}")
    assert new_cycles == old_cycles, (
        f"{label}: cycles {new_cycles} != {old_cycles}")
    assert new_heap == old_heap, (
        f"{label}: heap stats {new_heap} != {old_heap}")


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000), arg_seed=st.integers(0, 50))
def test_interpreter_engines_agree(seed, arg_seed):
    """Random method: legacy vs predecoded interpretation is identical
    in (result, cycle count, heap stats)."""
    vm, program = build_vm(seed)
    for method in program.methods():
        args = args_for(method, arg_seed)
        with dispatch(True):
            new = _observe_interp(seed, method.signature, args)
        with dispatch(False):
            old = _observe_interp(seed, method.signature, args)
        _assert_same(new, old, f"{method.signature} interp")


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2_000),
       level=st.sampled_from(list(OptLevel)),
       arg_seed=st.integers(0, 50))
def test_native_engines_agree_at_each_level(seed, level, arg_seed):
    """Random method compiled at each level: legacy vs predecoded
    native execution is identical, and both match the interpreter."""
    vm, program = build_vm(seed)
    for method in program.methods():
        args = args_for(method, arg_seed)
        with dispatch(True):
            new = _observe_compiled(seed, method.signature, args, level)
        with dispatch(False):
            old = _observe_compiled(seed, method.signature, args, level)
        _assert_same(new, old,
                     f"{method.signature} native@{level.name}")
        with dispatch(True):
            interp = _observe_interp(seed, method.signature, args)
        assert same_outcome(new[0], interp[0]), (
            f"{method.signature}@{level.name}: compiled {new[0]!r} "
            f"!= interpreted {interp[0]!r}")


def _adaptive_run(name, iterations=2):
    """Full adaptive run; returns every observable that must be
    engine-invariant."""
    program = specjvm_program(name)
    vm = VirtualMachine()
    vm.load_program(program)
    manager = CompilationManager(
        JitCompiler(method_resolver=vm._methods.get))
    vm.attach_manager(manager)
    results = tuple(vm.call(program.entry, 3) for _ in range(iterations))
    compile_counts = tuple(sorted(
        (sig, state.compile_count)
        for sig, state in manager.states.items()))
    return (results, vm.clock.now(),
            tuple(vm.stats[k] for k in HEAP_KEYS),
            manager.total_compile_cycles, compile_counts)


@pytest.mark.parametrize("name", ["compress", "db"])
def test_virtual_time_invariance_on_benchmarks(name):
    """Acceptance gate: adaptive runs of real benchmarks are
    bit-identical -- cycles, compile counts, compile cycles, results --
    whichever dispatch engine executes them."""
    with dispatch(True):
        new = _adaptive_run(name)
    with dispatch(False):
        old = _adaptive_run(name)
    assert new == old
