"""Interpreter semantics: arithmetic, control flow, heap, exceptions."""

import math

import pytest

from repro.errors import JavaThrow, VMError
from repro.jvm.bytecode import JType
from repro.jvm.classfile import Handler, MethodModifiers
from repro.jvm.interpreter import coerce, default_value, promote

from tests.conftest import build_method, vm_with


def run_body(body_fn, *args, params=(JType.INT,), ret=JType.INT,
             num_temps=4, handlers=None):
    method = build_method(body_fn, params=params, ret=ret,
                          num_temps=num_temps, handlers=handlers)
    vm = vm_with(method)
    return vm.call(method.signature, *args)


class TestPromotion:
    def test_double_beats_int(self):
        assert promote(JType.INT, JType.DOUBLE) is JType.DOUBLE

    def test_longdouble_beats_double(self):
        assert promote(JType.DOUBLE, JType.LONGDOUBLE) \
            is JType.LONGDOUBLE

    def test_long_beats_int(self):
        assert promote(JType.INT, JType.LONG) is JType.LONG

    def test_packed_beats_int(self):
        assert promote(JType.PACKED, JType.INT) is JType.PACKED

    def test_int_default(self):
        assert promote(JType.BYTE, JType.SHORT) is JType.INT


class TestCoerce:
    def test_int_masking(self):
        assert coerce(2**31, JType.INT) == -(2**31)

    def test_float_conversion(self):
        assert coerce(3, JType.DOUBLE) == 3.0
        assert isinstance(coerce(3, JType.DOUBLE), float)

    def test_default_values(self):
        assert default_value(JType.INT) == 0
        assert default_value(JType.DOUBLE) == 0.0
        assert default_value(JType.OBJECT) is None


class TestArithmetic:
    def test_add(self):
        assert run_body(lambda a: a.load(0).iconst(5).add().retval(),
                        37) == 42

    def test_int_overflow_wraps(self):
        result = run_body(
            lambda a: a.load(0).load(0).mul().retval(), 2**20)
        assert result == 0  # 2^40 mod 2^32 == 0

    def test_div_truncates_toward_zero(self):
        assert run_body(
            lambda a: a.load(0).iconst(2).div().retval(), -7) == -3

    def test_rem_sign_follows_dividend(self):
        assert run_body(
            lambda a: a.load(0).iconst(3).rem().retval(), -7) == -1

    def test_div_by_zero_throws(self):
        with pytest.raises(JavaThrow, match="ArithmeticException"):
            run_body(lambda a: a.load(0).iconst(0).div().retval(), 1)

    def test_float_div_by_zero_is_inf(self):
        result = run_body(
            lambda a: a.load(0).dconst(0.0).div().retval(),
            4.0, params=(JType.DOUBLE,), ret=JType.DOUBLE)
        assert result == math.inf

    def test_shift_masks_amount(self):
        # shift by 33 == shift by 1 for 32-bit ints
        assert run_body(
            lambda a: a.load(0).iconst(33).shl().retval(), 3) == 6

    def test_cmp_returns_sign(self):
        assert run_body(
            lambda a: a.load(0).iconst(10).cmp().retval(), 3) == -1
        assert run_body(
            lambda a: a.load(0).iconst(10).cmp().retval(), 10) == 0
        assert run_body(
            lambda a: a.load(0).iconst(10).cmp().retval(), 99) == 1

    def test_cmp_nan_is_minus_one(self):
        def body(a):
            a.load(0).dconst(0.0).div()   # nan path needs 0/0
            a.dconst(1.0).cmp().retval()
        assert run_body(body, 0.0, params=(JType.DOUBLE,)) == -1

    def test_inc(self):
        def body(a):
            a.load(0).store(1)
            a.inc(1, 5)
            a.load(1).retval()
        assert run_body(body, 10) == 15

    def test_neg(self):
        assert run_body(lambda a: a.load(0).neg().retval(), 9) == -9

    def test_bitwise(self):
        assert run_body(
            lambda a: a.load(0).iconst(0xF0).and_().retval(),
            0xABCD) == 0xC0
        assert run_body(
            lambda a: a.load(0).iconst(1).or_().retval(), 8) == 9
        assert run_body(
            lambda a: a.load(0).load(0).xor().retval(), 77) == 0


class TestControlFlow:
    def test_loop(self, loaded_vm):
        vm, method = loaded_vm
        assert vm.call(method.signature, 10) == 45

    def test_goto_skips(self):
        def body(a):
            a.goto("end")
            a.iconst(1).retval()
            a.mark("end")
            a.iconst(2).retval()
        assert run_body(body, 0) == 2

    def test_conditional_both_paths(self):
        def body(a):
            a.load(0).ifle("neg")
            a.iconst(1).retval()
            a.mark("neg")
            a.iconst(-1).retval()
        assert run_body(body, 5) == 1
        assert run_body(body, -5) == -1
        assert run_body(body, 0) == -1


class TestHeap:
    def test_object_fields(self):
        def body(a):
            a.new("app/Box").store(1)
            a.load(1).load(0).putfield("v")
            a.load(1).getfield("v").retval()
        assert run_body(body, 33) == 33

    def test_unset_field_reads_zero(self):
        def body(a):
            a.new("app/Box").getfield("never_set").retval()
        assert run_body(body, 0) == 0

    def test_array_store_load(self):
        def body(a):
            a.iconst(4).newarray(JType.INT).store(1)
            a.load(1).iconst(2).load(0).astore()
            a.load(1).iconst(2).aload().retval()
        assert run_body(body, 7) == 7

    def test_array_out_of_bounds(self):
        def body(a):
            a.iconst(2).newarray(JType.INT).store(1)
            a.load(1).iconst(5).aload().retval()
        with pytest.raises(JavaThrow, match="ArrayIndexOutOfBounds"):
            run_body(body, 0)

    def test_negative_array_size(self):
        def body(a):
            a.iconst(-1).newarray(JType.INT).store(1)
            a.iconst(0).retval()
        with pytest.raises(JavaThrow, match="NegativeArraySize"):
            run_body(body, 0)

    def test_arraylength(self):
        def body(a):
            a.iconst(9).newarray(JType.INT).arraylength().retval()
        assert run_body(body, 0) == 9

    def test_arraycopy(self):
        def body(a):
            a.iconst(3).newarray(JType.INT).store(1)
            a.load(1).iconst(0).load(0).astore()
            a.iconst(3).newarray(JType.INT).store(2)
            # arraycopy(src, srcoff, dst, dstoff, count)
            a.load(1).iconst(0).load(2).iconst(0).iconst(3).arraycopy()
            a.load(2).iconst(0).aload().retval()
        assert run_body(body, 5) == 5

    def test_arraycmp_equal(self):
        def body(a):
            a.iconst(2).newarray(JType.INT).store(1)
            a.iconst(2).newarray(JType.INT).store(2)
            a.load(1).load(2).arraycmp().retval()
        assert run_body(body, 0) == 0

    def test_instanceof(self):
        def body(a):
            a.new("app/Box").instanceof("app/Box").retval()
        assert run_body(body, 0) == 1

    def test_instanceof_wrong_class(self):
        def body(a):
            a.new("app/Box").instanceof("app/Other").retval()
        assert run_body(body, 0) == 0

    def test_multiarray(self):
        def body(a):
            a.iconst(2).iconst(3).newmultiarray(JType.INT, 2).store(1)
            a.load(1).iconst(1).aload().arraylength().retval()
        assert run_body(body, 0) == 3


class TestExceptions:
    def test_athrow_uncaught(self):
        def body(a):
            a.new("app/E").athrow()
        with pytest.raises(JavaThrow, match="app/E"):
            run_body(body, 0)

    def test_handler_catches(self):
        def body(a):
            start = a.here()
            a.new("app/E").athrow()
            handler = a.here()
            a.pop().iconst(99).retval()
            return [Handler(start, handler, handler, "app/E")]
        assert run_body(body, 0) == 99

    def test_handler_class_mismatch_propagates(self):
        def body(a):
            start = a.here()
            a.new("app/E").athrow()
            handler = a.here()
            a.pop().iconst(99).retval()
            return [Handler(start, handler, handler, "app/Other")]
        with pytest.raises(JavaThrow, match="app/E"):
            run_body(body, 0)

    def test_throwable_catches_everything(self):
        def body(a):
            start = a.here()
            a.load(0).iconst(0).div().retval()
            handler = a.here()
            a.pop().iconst(-7).retval()
            return [Handler(start, handler, handler)]
        assert run_body(body, 1) == -7

    def test_exception_crosses_frames(self):
        def thrower(a):
            a.new("app/E").athrow()
        callee = build_method(thrower, params=(), ret=JType.VOID,
                              num_temps=0, name="thrower")

        def caller(a):
            start = a.here()
            a.call(callee.signature, 0)
            a.iconst(0).retval()
            handler = a.here()
            a.pop().iconst(123).retval()
            return [Handler(start, handler, handler, "app/E")]

        method = build_method(caller, num_temps=1, name="caller",
                              handlers=None)
        # rebuild with handlers via body return
        vm = vm_with(callee, build_method(
            caller, num_temps=1, name="caller"))
        assert vm.call("T.caller(INT)INT", 5) == 123

    def test_null_pointer(self):
        def body(a):
            a.iconst(0).store(1)
            # slot 1 holds int 0, used as null ref
            a.load(1).getfield("x").retval()
        with pytest.raises(JavaThrow, match="NullPointerException"):
            run_body(body, 0)


class TestStackOps:
    def test_dup(self):
        def body(a):
            a.load(0).dup().add().retval()
        assert run_body(body, 21) == 42

    def test_swap(self):
        def body(a):
            a.load(0).iconst(1).swap().sub().retval()
        # stack: x, 1 -> swap -> 1, x -> 1 - x
        assert run_body(body, 10) == -9

    def test_pop(self):
        def body(a):
            a.load(0).iconst(99).pop().retval()
        assert run_body(body, 7) == 7


class TestIntrinsics:
    def test_math_sqrt(self):
        def body(a):
            a.load(0).call("java/lang/Math.sqrt", 1).retval()
        result = run_body(body, 16.0, params=(JType.DOUBLE,),
                          ret=JType.DOUBLE)
        assert result == 4.0

    def test_bigdecimal_divide_by_zero_throws(self):
        def body(a):
            a.load(0).cast(JType.PACKED)
            a.iconst(0).cast(JType.PACKED)
            a.call("java/math/BigDecimal.divide", 2)
            a.cast(JType.INT).retval()
        with pytest.raises(JavaThrow, match="ArithmeticException"):
            run_body(body, 10)

    def test_bigdecimal_multiply_fixed_point(self):
        def body(a):
            a.load(0).cast(JType.PACKED)
            a.iconst(200).cast(JType.PACKED)
            a.call("java/math/BigDecimal.multiply", 2)
            a.cast(JType.INT).retval()
        # fixed-point hundredths: 300 * 200 / 100 = 600
        assert run_body(body, 300) == 600


class TestVMGuards:
    def test_wrong_arg_count(self, loaded_vm):
        vm, method = loaded_vm
        with pytest.raises(VMError, match="expected"):
            vm.call(method.signature, 1, 2)

    def test_unknown_method(self, loaded_vm):
        vm, _ = loaded_vm
        with pytest.raises(VMError, match="no such method"):
            vm.call("Nope.nope()INT")

    def test_recursion_depth_guard(self):
        def body(a):
            a.load(0).call("T.m(INT)INT", 1).retval()
        method = build_method(body, num_temps=0)
        vm = vm_with(method)
        with pytest.raises(VMError, match="depth"):
            vm.call(method.signature, 1)
