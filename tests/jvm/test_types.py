"""Semantics of the Testarossa-specific types (Table 2) and the unified
float->integral conversion rules."""

import math

import pytest

from repro.jvm.bytecode import JType, convert_to_integral
from repro.jvm.vm import run_entry

from tests.conftest import build_method, vm_with


def run_body(body_fn, *args, params=(JType.INT,), ret=JType.INT,
             num_temps=4):
    method = build_method(body_fn, params=params, ret=ret,
                          num_temps=num_temps)
    vm = vm_with(method)
    return vm.call(method.signature, *args)


class TestConvertToIntegral:
    def test_nan_is_zero(self):
        assert convert_to_integral(math.nan, JType.INT) == 0
        assert convert_to_integral(math.nan, JType.LONG) == 0

    def test_infinities_saturate(self):
        assert convert_to_integral(math.inf, JType.INT) == 2**31 - 1
        assert convert_to_integral(-math.inf, JType.INT) == -(2**31)

    def test_large_float_saturates(self):
        assert convert_to_integral(1e20, JType.INT) == 2**31 - 1
        assert convert_to_integral(-1e20, JType.SHORT) == -32768

    def test_truncates_toward_zero(self):
        assert convert_to_integral(2.9, JType.INT) == 2
        assert convert_to_integral(-2.9, JType.INT) == -2

    def test_char_saturation_is_unsigned(self):
        assert convert_to_integral(-5.0, JType.CHAR) == 0
        assert convert_to_integral(1e9, JType.CHAR) == 0xFFFF

    def test_int_input_wraps(self):
        assert convert_to_integral(2**31, JType.INT) == -(2**31)

    def test_decimal_targets_use_long_width(self):
        assert convert_to_integral(2**40, JType.PACKED) == 2**40
        assert convert_to_integral(1e30, JType.ZONED) == 2**63 - 1


class TestDecimalArithmetic:
    def test_zoned_addition(self):
        def body(a):
            a.load(0).cast(JType.ZONED)
            a.iconst(25).cast(JType.ZONED)
            a.add().cast(JType.INT).retval()
        assert run_body(body, 100) == 125

    def test_packed_promotion_in_mixed_add(self):
        def body(a):
            a.load(0).cast(JType.PACKED)
            a.iconst(5)
            a.add().cast(JType.INT).retval()
        assert run_body(body, 7) == 12

    def test_cast_nan_double_to_packed_is_zero(self):
        def body(a):
            a.load(0).load(0).sub()      # inf - inf = nan for inf input
            a.cast(JType.PACKED).cast(JType.INT).retval()
        result = run_body(body, math.inf, params=(JType.DOUBLE,))
        assert result == 0


class TestLongDouble:
    def test_longdouble_arithmetic(self):
        def body(a):
            a.load(0).cast(JType.LONGDOUBLE)
            a.dconst(2.0).cast(JType.LONGDOUBLE)
            a.mul().cast(JType.DOUBLE).retval()
        result = run_body(body, 3.5, params=(JType.DOUBLE,),
                          ret=JType.DOUBLE)
        assert result == 7.0

    def test_longdouble_promotes_over_double(self):
        from repro.jvm.interpreter import promote
        assert promote(JType.DOUBLE, JType.LONGDOUBLE) \
            is JType.LONGDOUBLE


class TestCompiledDecimalEquivalence:
    @pytest.mark.parametrize("value", [0, 7, -3, 10_000])
    def test_zoned_compiles_identically(self, value):
        from repro.jit.compiler import JitCompiler
        from repro.jit.plans import OptLevel

        def body(a):
            a.load(0).cast(JType.ZONED)
            a.iconst(25).cast(JType.ZONED)
            a.add().cast(JType.INT).retval()
        method = build_method(body, num_temps=2)
        vm = vm_with(method)
        expected = vm.call(method.signature, value)
        compiled = JitCompiler().compile(method, OptLevel.SCORCHING)
        vm2 = vm_with(method)
        actual, _t = compiled.execute(vm2, [(value, JType.INT)])
        assert actual == expected


def test_run_entry_helper(sum_to_method):
    vm = vm_with(sum_to_method)
    result, cycles = run_entry(vm, sum_to_method.signature, 10)
    assert result == 45
    assert cycles > 0
