"""The bytecode assembler."""

import pytest

from repro.errors import BytecodeError
from repro.jvm.asm import Assembler
from repro.jvm.bytecode import JType, Op


class TestLabels:
    def test_backward_label(self):
        a = Assembler()
        top = a.label()
        a.goto(top)
        code = a.assemble()
        assert code[0].op is Op.GOTO and code[0].a == 0

    def test_forward_label(self):
        a = Assembler()
        end = a.new_label()
        a.goto(end)
        a.nop()
        a.mark(end)
        a.ret()
        code = a.assemble()
        assert code[0].a == 2

    def test_unbound_label_rejected(self):
        a = Assembler()
        a.goto("nowhere")
        with pytest.raises(BytecodeError, match="unbound"):
            a.assemble()

    def test_duplicate_mark_rejected(self):
        a = Assembler()
        a.mark("x")
        with pytest.raises(BytecodeError, match="already bound"):
            a.mark("x")

    def test_here_tracks_position(self):
        a = Assembler()
        assert a.here() == 0
        a.nop().nop()
        assert a.here() == 2


class TestEmission:
    def test_chaining(self):
        code = (Assembler().iconst(1).iconst(2).add().retval()
                .assemble())
        assert [i.op for i in code] == [Op.LOADCONST, Op.LOADCONST,
                                        Op.ADD, Op.RETVAL]

    def test_every_helper_emits_its_opcode(self):
        a = Assembler()
        a.load(0).loadconst(JType.INT, 1).store(1)
        a.sub().mul().div().rem().neg().shl().shr()
        a.or_().and_().xor().inc(0, 1).cmp()
        a.cast(JType.LONG).checkcast("C")
        a.getfield("f").putfield("f").aload().astore()
        a.new("C").newarray(JType.INT).newmultiarray(JType.INT, 2)
        a.call("X.y()INT", 0).instanceof("C")
        a.monitorenter().monitorexit().athrow()
        a.arraylength().arraycopy().arraycmp()
        a.dup().pop().swap().nop().ret()
        ops = {i.op for i in a._code}
        expected = {Op.LOAD, Op.LOADCONST, Op.STORE, Op.SUB, Op.MUL,
                    Op.DIV, Op.REM, Op.NEG, Op.SHL, Op.SHR, Op.OR,
                    Op.AND, Op.XOR, Op.INC, Op.CMP, Op.CAST,
                    Op.CHECKCAST, Op.GETFIELD, Op.PUTFIELD, Op.ALOAD,
                    Op.ASTORE, Op.NEW, Op.NEWARRAY, Op.NEWMULTIARRAY,
                    Op.CALL, Op.INSTANCEOF, Op.MONITORENTER,
                    Op.MONITOREXIT, Op.ATHROW, Op.ARRAYLENGTH,
                    Op.ARRAYCOPY, Op.ARRAYCMP, Op.DUP, Op.POP,
                    Op.SWAP, Op.NOP, Op.RET}
        assert expected <= ops

    def test_dconst_is_double(self):
        a = Assembler()
        a.dconst(3)
        ins = a._code[0]
        assert ins.a is JType.DOUBLE and isinstance(ins.b, float)
