"""Recompilation thresholds and version instrumentation (§4.2)."""

from repro.clock import ms_to_cycles
from repro.collect.instrument import (
    CALIBRATION_INVOCATIONS,
    ThresholdConfig,
    VersionInstrumentation,
)


class TestThresholdConfig:
    def test_paper_scale_bounds(self):
        paper = ThresholdConfig.paper_scale()
        assert paper.min_threshold == 50
        assert paper.max_threshold == 50_000
        assert paper.target_cycles == ms_to_cycles(10)

    def test_threshold_clamped_low(self):
        config = ThresholdConfig(target_cycles=1000, min_threshold=4,
                                 max_threshold=400)
        # very slow method: raw threshold < min
        assert config.threshold_for(10_000) == 4

    def test_threshold_clamped_high(self):
        config = ThresholdConfig(target_cycles=1000, min_threshold=4,
                                 max_threshold=400)
        assert config.threshold_for(0.01) == 400

    def test_threshold_mid_range(self):
        config = ThresholdConfig(target_cycles=1000, min_threshold=4,
                                 max_threshold=400)
        assert config.threshold_for(100) == 10

    def test_zero_time_maps_to_max(self):
        config = ThresholdConfig()
        assert config.threshold_for(0) == config.max_threshold


class TestVersionInstrumentation:
    def test_threshold_fixed_after_calibration(self):
        config = ThresholdConfig(target_cycles=800, min_threshold=2,
                                 max_threshold=100)
        instr = VersionInstrumentation(compiled=object())
        for _ in range(CALIBRATION_INVOCATIONS - 1):
            instr.record(100, config)
            assert instr.threshold is None
        instr.record(100, config)
        assert instr.threshold == 8

    def test_discarded_readings_not_counted_in_calibration(self):
        config = ThresholdConfig(target_cycles=800, min_threshold=2,
                                 max_threshold=100)
        instr = VersionInstrumentation(compiled=object())
        for _ in range(5):
            instr.record(None, config)
        assert instr.discarded == 5
        assert instr.threshold is None
        for _ in range(CALIBRATION_INVOCATIONS):
            instr.record(100, config)
        assert instr.threshold == 8

    def test_due_for_recompilation(self):
        config = ThresholdConfig(target_cycles=2000, min_threshold=2,
                                 max_threshold=100)
        instr = VersionInstrumentation(compiled=object())
        for _ in range(CALIBRATION_INVOCATIONS):
            instr.record(100, config)
        # threshold is 20; 8 calibration invocations are not yet due.
        assert instr.threshold == 20
        assert not instr.due_for_recompilation()
        for _ in range(12):
            instr.record(100, config)
        assert instr.due_for_recompilation()

    def test_mean_excludes_discards(self):
        config = ThresholdConfig()
        instr = VersionInstrumentation(compiled=object())
        instr.record(100, config)
        instr.record(None, config)
        instr.record(300, config)
        assert instr.mean_invocation_cycles() == 200
