"""The simulated TSC: drift, migration, discard rule."""

import numpy as np

from repro.clock import VirtualClock
from repro.collect.tsc import PairedTimer, SimulatedTSC


def make_tsc(cores=4, mean_migration=10_000, seed=0):
    clock = VirtualClock()
    rng = np.random.default_rng(seed)
    return clock, SimulatedTSC(clock, rng, cores=cores,
                               mean_migration_cycles=mean_migration)


class TestReadings:
    def test_monotone_on_same_core(self):
        clock, tsc = make_tsc(cores=1)
        v1, c1 = tsc.rdtscp()
        clock.advance(1000)
        v2, c2 = tsc.rdtscp()
        assert c1 == c2
        assert v2 > v1

    def test_cores_have_distinct_offsets(self):
        _clock, tsc = make_tsc(cores=8)
        assert len(set(tsc.offsets.tolist())) > 1

    def test_drift_rates_differ(self):
        _clock, tsc = make_tsc(cores=8)
        assert len(set(tsc.rates.tolist())) > 1
        assert np.all(np.abs(tsc.rates - 1.0) < 1e-3)

    def test_migration_happens(self):
        clock, tsc = make_tsc(cores=4, mean_migration=1_000)
        for _ in range(200):
            clock.advance(1_000)
            tsc.rdtscp()
        assert tsc.migrations > 0


class TestPairedTimer:
    def test_same_core_measurement_accepted(self):
        clock, tsc = make_tsc(cores=1)
        timer = PairedTimer(tsc)
        reading = timer.enter()
        clock.advance(5000)
        delta = timer.exit(reading)
        assert delta is not None
        assert 4000 < delta < 6000
        assert timer.accepted == 1

    def test_cross_core_measurement_discarded(self):
        clock, tsc = make_tsc(cores=4, mean_migration=100)
        timer = PairedTimer(tsc)
        discarded = 0
        for _ in range(300):
            reading = timer.enter()
            clock.advance(500)
            if timer.exit(reading) is None:
                discarded += 1
        assert discarded > 0
        assert timer.discarded == discarded

    def test_deltas_never_negative(self):
        clock, tsc = make_tsc(cores=4, mean_migration=2_000, seed=3)
        timer = PairedTimer(tsc)
        for _ in range(200):
            reading = timer.enter()
            clock.advance(100)
            delta = timer.exit(reading)
            assert delta is None or delta >= 0
