"""Data-collection sessions (§4 end to end)."""

import pytest

from repro.collect.instrument import ThresholdConfig
from repro.collect.session import (
    CollectionConfig,
    CollectionSession,
    collect_benchmarks,
)
from repro.jit.plans import OptLevel
from repro.workloads.generator import generate_program
from repro.workloads.profiles import WorkloadProfile

import numpy as np


def small_program(seed=0, name="collectme"):
    profile = WorkloadProfile(
        name=name, n_methods=8, loop_weight=0.8, heavy_loop_weight=0.4,
        fp_weight=0.2, alloc_weight=0.3, array_weight=0.4,
        exception_weight=0.1, call_weight=0.4, loop_iters=8,
        phase_calls=4, sweep_repeats=3)
    rng = np.random.default_rng(seed)
    return generate_program(profile, rng)


def quick_config(**kw):
    defaults = dict(
        modifiers_per_level=40, uses_per_modifier=2, max_iterations=6,
        thresholds=ThresholdConfig(target_cycles=6000, min_threshold=3,
                                   max_threshold=30))
    defaults.update(kw)
    return CollectionConfig(**defaults)


class TestSession:
    def test_produces_records(self):
        session = CollectionSession(small_program(), quick_config())
        records = session.run()
        assert not session.crashed
        assert len(records) > 0
        for r in records:
            assert r.invocations > 0
            assert r.compile_cycles > 0
            assert r.features.shape == (71,)

    def test_levels_within_explored_set(self):
        config = quick_config(
            explore_levels=(OptLevel.COLD, OptLevel.WARM))
        records = CollectionSession(small_program(), config).run()
        assert {r.level for r in records} <= {0, 1}

    def test_never_same_modifier_twice_per_method(self):
        records = CollectionSession(small_program(),
                                    quick_config()).run()
        seen = {}
        for r in records:
            key = (r.signature, r.level)
            assert r.modifier_bits not in seen.get(key, set()), key
            seen.setdefault(key, set()).add(r.modifier_bits)

    def test_null_modifier_appears(self):
        records = CollectionSession(small_program(),
                                    quick_config()).run()
        assert any(r.modifier_bits == 0 for r in records)

    def test_deterministic(self):
        a = CollectionSession(small_program(), quick_config(),
                              master_seed=5).run()
        b = CollectionSession(small_program(), quick_config(),
                              master_seed=5).run()
        assert len(a) == len(b)
        assert [(r.signature, r.modifier_bits) for r in a] \
            == [(r.signature, r.modifier_bits) for r in b]

    def test_search_strategies_differ(self):
        random_rs = CollectionSession(
            small_program(), quick_config(search="random")).run()
        prog_rs = CollectionSession(
            small_program(), quick_config(search="progressive")).run()
        # progressive starts near the null plan: fewer disabled bits.
        def mean_bits(rs):
            vals = [bin(r.modifier_bits).count("1") for r in rs
                    if r.modifier_bits]
            return sum(vals) / max(1, len(vals))
        assert mean_bits(prog_rs) < mean_bits(random_rs)

    def test_unknown_search_rejected(self):
        with pytest.raises(ValueError):
            CollectionSession(small_program(),
                              quick_config(search="exhaustive")).run()


class TestCrashHandling:
    def test_fragility_crashes_session(self):
        def fragile(modifier, level):
            return modifier is not None \
                and modifier.count_disabled() > 5

        config = quick_config(fragility=fragile)
        session = CollectionSession(small_program(), config)
        records = session.run()
        assert session.crashed
        assert len(records) == 0

    def test_collect_benchmarks_excludes_crashed(self):
        def fragile(modifier, level):
            return modifier is not None \
                and modifier.count_disabled() > 5

        programs = [small_program(0, "ok"), small_program(1, "boom")]
        out = collect_benchmarks(
            [programs[0]], config=quick_config(), master_seed=0)
        crashed = collect_benchmarks(
            [programs[1]], config=quick_config(fragility=fragile),
            master_seed=0)
        assert "ok" in out
        assert crashed == {}


class TestMergedSearchInterleaving:
    def test_merged_queue_alternates_populations(self):
        """The merged strategy must expose BOTH modifier populations
        early (the paper merges two collection campaigns; a
        concatenated queue would effectively be random-only)."""
        import numpy as np
        from repro.collect.session import CollectingManager
        from repro.jit.compiler import JitCompiler
        from repro.jit.plans import OptLevel
        from repro.rng import RngStreams
        config = quick_config(search="merged", uses_per_modifier=1)
        manager = CollectingManager(JitCompiler(), config,
                                    RngStreams(0), "x")
        queue = manager.queues[OptLevel.COLD]
        bits = []
        while len(bits) < 40:
            modifier = queue.next_modifier()
            if modifier is None:
                break
            if not modifier.is_null():
                bits.append(modifier.count_disabled())
        evens = np.mean(bits[0::2])
        odds = np.mean(bits[1::2])
        # Random population is aggressive, progressive conservative.
        assert abs(evens - odds) > 2
