"""The compact binary archive format, including corruption handling."""

import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collect.archive import read_archive, write_archive
from repro.collect.records import ExperimentRecord, RecordSet
from repro.errors import ArchiveError
from repro.features import NUM_FEATURES


def record(signature="T.m(INT)INT", level=1, bits=0b1010,
           compile_cycles=1000, running=5000, invocations=7,
           feature_seed=0):
    rng = np.random.default_rng(feature_seed)
    features = np.zeros(NUM_FEATURES)
    for i in rng.integers(0, NUM_FEATURES, size=12):
        features[i] = float(rng.integers(0, 200))
    return ExperimentRecord(signature=signature, level=level,
                            modifier_bits=bits,
                            features=features,
                            compile_cycles=compile_cycles,
                            running_cycles=running,
                            invocations=invocations)


def record_set(n=5, benchmark="bench"):
    rs = RecordSet(benchmark=benchmark, master_seed=42)
    for i in range(n):
        rs.add(record(signature=f"T.m{i % 3}(INT)INT",
                      feature_seed=i, bits=i))
    return rs


class TestRoundTrip:
    def test_lossless(self, tmp_path):
        rs = record_set(20)
        path = tmp_path / "a.trca"
        write_archive(path, rs)
        back = read_archive(path)
        assert back.benchmark == rs.benchmark
        assert back.master_seed == rs.master_seed
        assert len(back) == len(rs)
        for a, b in zip(rs, back):
            assert a.signature == b.signature
            assert a.level == b.level
            assert a.modifier_bits == b.modifier_bits
            assert a.compile_cycles == b.compile_cycles
            assert a.running_cycles == b.running_cycles
            assert a.invocations == b.invocations
            assert np.array_equal(a.features, b.features)

    def test_empty_set(self, tmp_path):
        rs = RecordSet(benchmark="empty")
        path = tmp_path / "e.trca"
        write_archive(path, rs)
        assert len(read_archive(path)) == 0

    def test_dictionary_compacts_signatures(self, tmp_path):
        many = RecordSet(benchmark="dict")
        for i in range(200):
            many.add(record(signature="Very.long_signature_here"
                                      "(INT,INT,DOUBLE)INT", bits=i))
        path = tmp_path / "d.trca"
        size = write_archive(path, many)
        # One signature stored once: < 100 bytes/record on average
        # (29 fixed + ~60 sparse-feature bytes).
        assert size / 200 < 100

    @settings(max_examples=20, deadline=None)
    @given(bits=st.integers(0, 2**58 - 1),
           level=st.integers(0, 4),
           invocations=st.integers(0, 2**31))
    def test_field_ranges_roundtrip(self, tmp_path_factory, bits,
                                    level, invocations):
        rs = RecordSet(benchmark="prop")
        rs.add(record(bits=bits, level=level, invocations=invocations))
        path = tmp_path_factory.mktemp("arch") / "p.trca"
        write_archive(path, rs)
        back = read_archive(path)
        assert back.records[0].modifier_bits == bits
        assert back.records[0].level == level
        assert back.records[0].invocations == invocations


class TestCorruption:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.trca"
        path.write_bytes(b"NOPE" + b"\x00" * 40)
        with pytest.raises(ArchiveError, match="not a collection"):
            read_archive(path)

    def test_truncated_file(self, tmp_path):
        rs = record_set(5)
        path = tmp_path / "t.trca"
        write_archive(path, rs)
        data = path.read_bytes()
        path.write_bytes(data[:len(data) // 2])
        with pytest.raises(ArchiveError):
            read_archive(path)

    def test_flipped_byte_detected(self, tmp_path):
        rs = record_set(5)
        path = tmp_path / "f.trca"
        write_archive(path, rs)
        data = bytearray(path.read_bytes())
        data[30] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(ArchiveError, match="checksum"):
            read_archive(path)

    def test_bad_version(self, tmp_path):
        rs = record_set(1)
        path = tmp_path / "v.trca"
        write_archive(path, rs)
        data = bytearray(path.read_bytes())
        struct.pack_into("<H", data, 4, 99)  # version field
        body = bytes(data[:-4])
        import zlib
        data[-4:] = struct.pack("<I", zlib.crc32(body) & 0xFFFFFFFF)
        path.write_bytes(bytes(data))
        with pytest.raises(ArchiveError, match="version"):
            read_archive(path)


class TestRecordSet:
    def test_unique_queries(self):
        rs = record_set(9)
        assert len(rs.unique_signatures()) == 3
        assert len(rs.unique_modifiers()) == 9
        assert len(rs.unique_feature_vectors()) == 9

    def test_by_level(self):
        rs = RecordSet()
        rs.add(record(level=0))
        rs.add(record(level=2))
        rs.add(record(level=2))
        assert len(rs.by_level(2)) == 2

    def test_merge(self):
        a = record_set(3, benchmark="a")
        b = record_set(4, benchmark="b")
        merged = a.merged_with(b)
        assert len(merged) == 7
        assert "a" in merged.benchmark and "b" in merged.benchmark

    def test_feature_shape_validated(self):
        with pytest.raises(ValueError):
            ExperimentRecord(signature="s", level=0, modifier_bits=0,
                             features=np.zeros(5), compile_cycles=0,
                             running_cycles=0, invocations=0)
