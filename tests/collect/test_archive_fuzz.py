"""Archive robustness: arbitrary corruption must never crash the reader
with anything other than ArchiveError, and intact archives must always
round-trip."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.collect.archive import read_archive, write_archive
from repro.collect.records import ExperimentRecord, RecordSet
from repro.errors import ArchiveError
from repro.features import NUM_FEATURES


def small_record_set(seed):
    rng = np.random.default_rng(seed)
    rs = RecordSet(benchmark=f"fuzz{seed}", master_seed=seed)
    for i in range(int(rng.integers(1, 6))):
        features = np.zeros(NUM_FEATURES)
        for j in rng.integers(0, NUM_FEATURES, size=6):
            features[j] = float(rng.integers(0, 255))
        rs.add(ExperimentRecord(
            signature=f"C.m{i}(INT)INT",
            level=int(rng.integers(0, 5)),
            modifier_bits=int(rng.integers(0, 2**58)),
            features=features,
            compile_cycles=int(rng.integers(0, 1 << 20)),
            running_cycles=int(rng.integers(0, 1 << 30)),
            invocations=int(rng.integers(1, 1000))))
    return rs


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_roundtrip_random_record_sets(tmp_path_factory, seed):
    rs = small_record_set(seed)
    path = tmp_path_factory.mktemp("fz") / "a.trca"
    write_archive(path, rs)
    back = read_archive(path)
    assert len(back) == len(rs)
    for a, b in zip(rs, back):
        assert a.modifier_bits == b.modifier_bits
        assert np.array_equal(a.features, b.features)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 100), flip_at=st.integers(0, 500),
       flip_val=st.integers(1, 255))
def test_single_byte_corruption_always_detected(tmp_path_factory, seed,
                                                flip_at, flip_val):
    rs = small_record_set(seed)
    path = tmp_path_factory.mktemp("fz") / "c.trca"
    write_archive(path, rs)
    data = bytearray(path.read_bytes())
    flip_at %= len(data)
    data[flip_at] ^= flip_val
    path.write_bytes(bytes(data))
    # CRC-32 catches every single-byte flip.
    with pytest.raises(ArchiveError):
        read_archive(path)


@settings(max_examples=25, deadline=None)
@given(garbage=st.binary(min_size=0, max_size=200))
def test_garbage_input_raises_archive_error(tmp_path_factory, garbage):
    path = tmp_path_factory.mktemp("fz") / "g.trca"
    path.write_bytes(garbage)
    with pytest.raises(ArchiveError):
        read_archive(path)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 100), cut=st.floats(0.01, 0.99))
def test_truncation_always_detected(tmp_path_factory, seed, cut):
    rs = small_record_set(seed)
    path = tmp_path_factory.mktemp("fz") / "t.trca"
    write_archive(path, rs)
    data = path.read_bytes()
    keep = max(1, int(len(data) * cut))
    if keep == len(data):
        keep -= 1
    path.write_bytes(data[:keep])
    with pytest.raises(ArchiveError):
        read_archive(path)
