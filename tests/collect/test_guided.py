"""The heuristic-guided modifier search (the paper's future work)."""

import numpy as np
import pytest

from repro.collect.guided import GuidedModifierQueue
from repro.collect.instrument import ThresholdConfig
from repro.collect.session import CollectionConfig, CollectionSession
from repro.jit.modifiers import Modifier
from repro.jit.opt.registry import NUM_TRANSFORMS

from tests.collect.test_session import small_program


def make_queue(seed=0, **kw):
    return GuidedModifierQueue(np.random.default_rng(seed), **kw)


class TestQueueInterface:
    def test_null_every_third(self):
        queue = make_queue(total=100)
        out = [queue.next_modifier() for _ in range(12)]
        for i, m in enumerate(out, start=1):
            assert m.is_null() == (i % 3 == 0)

    def test_exhaustion_after_total(self):
        queue = make_queue(total=3, uses_per_modifier=1, null_every=0)
        out = [queue.next_modifier() for _ in range(3)]
        assert all(m is not None for m in out)
        assert queue.next_modifier() is None
        assert queue.exhausted()

    def test_uses_per_modifier_respected(self):
        queue = make_queue(total=10, uses_per_modifier=3, null_every=0)
        a = [queue.next_modifier() for _ in range(3)]
        b = queue.next_modifier()
        assert a[0] is a[1] is a[2]
        assert b is not a[0]

    def test_deterministic(self):
        a = make_queue(7, total=20, null_every=0)
        b = make_queue(7, total=20, null_every=0)
        for _ in range(20):
            assert a.next_modifier() == b.next_modifier()


class TestFeedbackSteering:
    def test_scores_aggregate(self):
        queue = make_queue()
        queue.feedback(0b101, 0.8)
        queue.feedback(0b101, 0.6)
        assert queue.mean_quality(0b101) == pytest.approx(0.7)
        assert queue.mean_quality(0b111) is None

    def test_best_modifiers_sorted_by_quality(self):
        queue = make_queue()
        queue.feedback(1, 0.5)
        queue.feedback(2, 0.9)
        queue.feedback(3, 0.7)
        best = queue.best_modifiers(2)
        assert [m.bits for m in best] == [2, 3]

    def test_mutations_stay_near_good_parents(self):
        queue = make_queue(seed=1, total=400, uses_per_modifier=1,
                           null_every=0, explore_fraction=0.0,
                           max_flips=2)
        parent_bits = 0b111000111
        queue.feedback(parent_bits, 1.0)
        hamming = []
        for _ in range(60):
            child = queue.next_modifier()
            hamming.append(bin(child.bits ^ parent_bits).count("1"))
        # children are mutations/crossovers of the sole parent
        assert np.mean(hamming) <= 2.5

    def test_exploration_fraction_stays_random(self):
        queue = make_queue(seed=2, total=400, uses_per_modifier=1,
                           null_every=0, explore_fraction=1.0)
        queue.feedback(0, 1.0)
        bits = [queue.next_modifier().count_disabled()
                for _ in range(50)]
        assert np.mean(bits) > 4  # random draws, not null mutations

    def test_crossover_mixes_parents(self):
        queue = make_queue(seed=3)
        a, b = Modifier(0b1111 << 20), Modifier(0b1111)
        child = queue._crossover(a, b)
        assert child.bits | (a.bits | b.bits) == (a.bits | b.bits)


class TestGuidedSession:
    def test_guided_collection_runs(self):
        config = CollectionConfig(
            search="guided", modifiers_per_level=40,
            uses_per_modifier=2, max_iterations=6,
            thresholds=ThresholdConfig(target_cycles=6000,
                                       min_threshold=3,
                                       max_threshold=30))
        session = CollectionSession(small_program(), config)
        records = session.run()
        assert not session.crashed
        assert len(records) > 0

    def test_guided_receives_feedback(self):
        from repro.collect.session import CollectingManager
        from repro.jit.compiler import JitCompiler
        from repro.jvm.vm import VirtualMachine
        from repro.rng import RngStreams
        config = CollectionConfig(
            search="guided", modifiers_per_level=40,
            uses_per_modifier=2, max_iterations=6,
            thresholds=ThresholdConfig(target_cycles=6000,
                                       min_threshold=3,
                                       max_threshold=30))
        program = small_program()
        vm = VirtualMachine()
        vm.load_program(program)
        manager = CollectingManager(
            JitCompiler(method_resolver=vm._methods.get), config,
            RngStreams(0), benchmark=program.name)
        vm.attach_manager(manager)
        for _ in range(6):
            vm.call(program.entry, 3)
        manager.flush_all()
        fed = sum(len(q._scores) for q in manager.queues.values())
        assert fed > 0
