"""Native-simulator edge paths: exception dispatch, THROWLOCAL, guards."""

import pytest

from repro.errors import JavaThrow, VMError
from repro.jit.codegen.lower import lower_method
from repro.jit.compiler import JitCompiler
from repro.jit.ir.ilgen import generate_il
from repro.jit.modifiers import Modifier
from repro.jit.opt.registry import transform_index
from repro.jit.plans import OptLevel
from repro.jvm.bytecode import JType
from repro.jvm.classfile import Handler

from tests.conftest import build_method, vm_with


def compile_and_run(method, argvals, level=OptLevel.HOT, vm=None,
                    modifier=None):
    vm = vm or vm_with(method)
    compiler = JitCompiler(method_resolver=vm._methods.get)
    compiled = compiler.compile(method, level, modifier=modifier)
    return compiled.execute(vm, [(v, t) for v, t in argvals])


class TestExceptionDispatch:
    def _handled(self):
        def body(a):
            start = a.here()
            a.load(0).iconst(0).div().retval()
            handler = a.here()
            a.pop().iconst(-1).retval()
            return [Handler(start, handler, handler)]
        return build_method(body, num_temps=0)

    def test_compiled_handler_catches(self):
        method = self._handled()
        value, _t = compile_and_run(method, [(5, JType.INT)])
        assert value == -1

    def test_uncaught_exception_propagates(self):
        def body(a):
            a.load(0).iconst(0).div().retval()
        method = build_method(body, num_temps=0)
        with pytest.raises(JavaThrow, match="ArithmeticException"):
            compile_and_run(method, [(5, JType.INT)])

    def test_handler_order_first_match_wins(self):
        def body(a):
            start = a.here()
            a.new("app/E").athrow()
            h1 = a.here()
            a.pop().iconst(1).retval()
            h2 = a.here()
            a.pop().iconst(2).retval()
            return [Handler(start, h1, h1, "app/E"),
                    Handler(start, h1, h2, "java/lang/Throwable")]
        method = build_method(body, num_temps=0)
        value, _t = compile_and_run(method, [(0, JType.INT)])
        assert value == 1

    def test_throwlocal_matches_interpreter(self):
        """EDO-enabled compilation vs interpreted result, both branches
        of a conditional throw."""
        def body(a):
            start = a.here()
            a.load(0).ifgt("ok")
            a.new("app/E").athrow()
            a.mark("ok")
            a.load(0).iconst(100).add().retval()
            handler = a.here()
            a.pop().iconst(-99).retval()
            return [Handler(start, handler, handler, "app/E")]
        method = build_method(body, num_temps=1)
        for v in (5, -5, 0):
            vm = vm_with(method)
            expected = vm.call(method.signature, v)
            value, _t = compile_and_run(method, [(v, JType.INT)])
            assert value == expected

    def test_edo_disabled_still_correct(self):
        def body(a):
            start = a.here()
            a.new("app/E").athrow()
            handler = a.here()
            a.pop().iconst(7).retval()
            return [Handler(start, handler, handler, "app/E")]
        method = build_method(body, num_temps=0)
        off = Modifier.disabling(
            [transform_index("exceptionDirectedOptimization")])
        value, _t = compile_and_run(method, [(0, JType.INT)],
                                    modifier=off)
        assert value == 7


class TestCallsFromNative:
    def test_native_calls_dispatch_through_vm(self):
        def callee_body(a):
            a.load(0).iconst(2).mul().retval()
        callee = build_method(callee_body, num_temps=0, name="twice")

        def caller_body(a):
            a.load(0).call(callee.signature, 1).iconst(1).add()
            a.retval()
        caller = build_method(caller_body, num_temps=0, name="outer")
        vm = vm_with(caller, callee)
        compiler = JitCompiler(method_resolver=vm._methods.get)
        compiled = compiler.compile(caller, OptLevel.COLD)
        value, _t = compiled.execute(vm, [(10, JType.INT)])
        assert value == 21
        # the callee ran interpreted via the VM dispatch
        assert vm.invocation_counts[callee.signature] == 1

    def test_exception_from_callee_reaches_caller_handler(self):
        def callee_body(a):
            a.new("app/E").athrow()
        callee = build_method(callee_body, params=(), ret=JType.VOID,
                              num_temps=0, name="ka")

        def caller_body(a):
            start = a.here()
            a.call(callee.signature, 0)
            a.iconst(0).retval()
            handler = a.here()
            a.pop().iconst(42).retval()
            return [Handler(start, handler, handler, "app/E")]
        caller = build_method(caller_body, num_temps=0, name="kb")
        vm = vm_with(caller, callee)
        compiler = JitCompiler(method_resolver=vm._methods.get)
        compiled = compiler.compile(caller, OptLevel.WARM)
        value, _t = compiled.execute(vm, [(0, JType.INT)])
        assert value == 42


class TestGuards:
    def test_wrong_arg_count(self, sum_to_method):
        il, _ = generate_il(sum_to_method)
        code, _ = lower_method(il)
        vm = vm_with(sum_to_method)
        with pytest.raises(VMError, match="expected"):
            code.execute(vm, [])

    def test_frame_cost_charged(self, sum_to_method):
        il, _ = generate_il(sum_to_method)
        code, _ = lower_method(il)
        vm = vm_with(sum_to_method)
        code.execute(vm, [(0, JType.INT)])
        assert vm.clock.now() >= code.frame_cost
