"""Feedback-directed optimization: branch profiling + guided layout."""

import pytest

from repro.jit.compiler import JitCompiler
from repro.jit.control import CompilationManager, ControlConfig
from repro.jit.ir.ilgen import generate_il
from repro.jit.ir.tree import ILOp
from repro.jit.opt.base import PassContext
from repro.jit.opt.controlflow import BlockOrdering
from repro.jit.plans import OptLevel
from repro.jvm.bytecode import JType

from tests.conftest import build_method, vm_with


def branchy_method(name="br"):
    """Branch at the top: positive inputs go one way."""
    def body(a):
        a.load(0).ifle("cold_path")
        a.load(0).iconst(2).mul().retval()
        a.mark("cold_path")
        a.load(0).neg().retval()
    return build_method(body, num_temps=0, name=name)


class TestProfileCollection:
    def test_execute_records_branches(self):
        method = branchy_method()
        vm = vm_with(method)
        compiler = JitCompiler(method_resolver=vm._methods.get)
        compiled = compiler.compile(method, OptLevel.HOT)
        profile = {}
        for v in (5, 7, -1, 9):
            compiled.native.execute(vm, [(v, JType.INT)],
                                    profile=profile)
        assert sum(profile.values()) == 4
        taken = sum(c for (pc, t), c in profile.items() if t)
        assert taken == 1  # only the -1 input takes the <= branch

    def test_profiled_execution_costs_more(self):
        method = branchy_method()
        compiler = JitCompiler()
        compiled = compiler.compile(method, OptLevel.COLD)
        vm1 = vm_with(method)
        compiled.native.execute(vm1, [(5, JType.INT)])
        plain = vm1.clock.now()
        vm2 = vm_with(method)
        compiled.native.execute(vm2, [(5, JType.INT)], profile={})
        assert vm2.clock.now() > plain

    def test_profile_keys_are_bytecode_pcs(self):
        method = branchy_method()
        compiler = JitCompiler()
        compiled = compiler.compile(method, OptLevel.COLD)
        vm = vm_with(method)
        profile = {}
        compiled.native.execute(vm, [(5, JType.INT)], profile=profile)
        for (pc, taken), _count in profile.items():
            assert 0 <= pc < len(method.code)
            assert isinstance(taken, bool)


class TestProfileGuidedLayout:
    def test_hot_taken_branch_inverted(self):
        method = branchy_method()
        il, _ = generate_il(method)
        branch_block = next(b for b in il.blocks
                            if b.terminator is not None
                            and b.terminator.op is ILOp.IF)
        relop_before, target_before = branch_block.terminator.value
        # Claim the taken edge is much hotter.
        il.notes["branch_profile"] = {
            (branch_block.bc_start, True): 100,
            (branch_block.bc_start, False): 1,
        }
        assert BlockOrdering().execute(PassContext(il))
        relop_after, target_after = branch_block.terminator.value
        assert relop_after != relop_before
        assert target_after != target_before
        il.check()

    def test_cold_taken_branch_untouched(self):
        method = branchy_method()
        il, _ = generate_il(method)
        branch_block = next(b for b in il.blocks
                            if b.terminator is not None
                            and b.terminator.op is ILOp.IF)
        before = branch_block.terminator.value
        il.notes["branch_profile"] = {
            (branch_block.bc_start, True): 1,
            (branch_block.bc_start, False): 100,
        }
        BlockOrdering().execute(PassContext(il))
        assert branch_block.terminator.value == before

    def test_inverted_code_still_correct(self):
        method = branchy_method()
        profile = None
        # Gather a real profile with skewed inputs.
        compiler = JitCompiler()
        base = compiler.compile(method, OptLevel.COLD)
        vm = vm_with(method)
        profile = {}
        for v in (-3, -8, -1, -9, 2):
            base.native.execute(vm, [(v, JType.INT)], profile=profile)
        fdo = compiler.compile(method, OptLevel.SCORCHING,
                               profile=profile)
        for v in (-3, 4, 0):
            ref = vm_with(method)
            expected = ref.call(method.signature, v)
            run = vm_with(method)
            actual, _t = fdo.execute(run, [(v, JType.INT)])
            assert actual == expected

    def test_hot_path_gets_cheaper(self):
        """After FDO with a 'mostly negative inputs' profile, negative
        inputs should run at most as many cycles as before."""
        method = branchy_method()
        compiler = JitCompiler()
        base = compiler.compile(method, OptLevel.COLD)
        vm = vm_with(method)
        profile = {}
        for _ in range(20):
            base.native.execute(vm, [(-5, JType.INT)],
                                profile=profile)
        fdo = compiler.compile(method, OptLevel.SCORCHING,
                               profile=profile)
        vm1 = vm_with(method)
        base_plain = compiler.compile(method, OptLevel.SCORCHING)
        base_plain.execute(vm1, [(-5, JType.INT)])
        vm2 = vm_with(method)
        fdo.execute(vm2, [(-5, JType.INT)])
        assert vm2.clock.now() <= vm1.clock.now()


class TestControllerIntegration:
    def test_very_hot_install_arms_profile(self):
        method = branchy_method()
        vm = vm_with(method)
        config = ControlConfig(immediate_install=True)
        manager = CompilationManager(
            JitCompiler(method_resolver=vm._methods.get),
            config=config)
        vm.attach_manager(manager)
        for _ in range(2500):
            vm.call(method.signature, 5)
        state = manager.states[method.signature]
        levels = {r.level for r in manager.records}
        if OptLevel.VERY_HOT in levels:
            # Once the very-hot version installed, profiling was armed.
            armed = any(r.level is OptLevel.VERY_HOT
                        for r in manager.records)
            assert armed
        if OptLevel.SCORCHING in levels and state.active is not None \
                and state.active.level is OptLevel.SCORCHING:
            # The scorching compile consumed a profile (arming happened
            # at very hot and the method kept executing).
            assert state.active.profile is None  # fresh version
