"""Check-elimination, escape analysis, monitor elision, EDO."""

from repro.jit.codegen.lower import lower_method
from repro.jit.ir.ilgen import generate_il
from repro.jit.ir.tree import ILOp, Node
from repro.jit.opt.base import PassContext
from repro.jit.opt.checks import (
    BoundsCheckElimination,
    CheckcastElimination,
    EscapeAnalysis,
    ExceptionDirectedOptimization,
    InstanceofSimplification,
    MonitorElision,
    NullCheckElimination,
    StackAllocation,
)
from repro.jvm.bytecode import JType
from repro.jvm.classfile import Handler

from tests.conftest import build_method, vm_with


def run_pass(pass_obj, il):
    changed = pass_obj.execute(PassContext(il))
    il.check()
    return changed


def count_ops(il, op):
    return sum(1 for _b, t in il.iter_treetops()
               for n in t.walk() if n.op is op)


def check_equivalent(method, il, *argvals):
    code, _ = lower_method(il)
    for v in argvals:
        vm1 = vm_with(method)
        expected = vm1.call(method.signature, v)
        vm2 = vm_with(method)
        actual, _t = code.execute(vm2, [(v, JType.INT)])
        assert actual == expected


class TestNullCheckElimination:
    def test_duplicate_checks_removed(self):
        def body(a):
            a.new("C").store(1)
            a.load(1).load(0).putfield("f")
            a.load(1).getfield("f").store(2)
            a.load(1).getfield("f").load(0).add().store(2)
            a.load(2).retval()
        method = build_method(body, num_temps=2)
        il, _ = generate_il(method)
        before = count_ops(il, ILOp.NULLCHK)
        assert run_pass(NullCheckElimination(), il)
        assert count_ops(il, ILOp.NULLCHK) < before
        check_equivalent(method, il, 5)

    def test_fresh_allocation_needs_no_check(self):
        def body(a):
            a.new("C").store(1)
            a.load(1).getfield("f").retval()
        method = build_method(body, num_temps=1)
        il, _ = generate_il(method)
        run_pass(NullCheckElimination(), il)
        # The store of a NEW proves non-nullness: no check needed.
        assert count_ops(il, ILOp.NULLCHK) == 0

    def test_check_after_redefinition_kept(self):
        def body(a):
            a.new("C").store(1)
            a.load(1).getfield("f").store(2)
            a.load(0).store(1)  # redefined with unknown value
            a.load(1).getfield("f").store(2)
            a.load(2).retval()
        method = build_method(body, num_temps=2)
        il, _ = generate_il(method)
        run_pass(NullCheckElimination(), il)
        assert count_ops(il, ILOp.NULLCHK) >= 1


class TestBoundsCheckElimination:
    def test_duplicate_check_removed(self):
        def body(a):
            a.iconst(5).newarray(JType.INT).store(1)
            a.load(1).iconst(2).aload().store(2)
            a.load(1).iconst(2).aload().load(2).add().store(2)
            a.load(2).retval()
        method = build_method(body, num_temps=2)
        il, _ = generate_il(method)
        before = count_ops(il, ILOp.BNDCHK)
        assert run_pass(BoundsCheckElimination(), il)
        assert count_ops(il, ILOp.BNDCHK) < before
        check_equivalent(method, il, 3)

    def test_larger_const_subsumes_smaller(self):
        def body(a):
            a.iconst(5).newarray(JType.INT).store(1)
            a.load(1).iconst(4).aload().store(2)
            a.load(1).iconst(1).aload().load(2).add().store(2)
            a.load(2).retval()
        method = build_method(body, num_temps=2)
        il, _ = generate_il(method)
        before = count_ops(il, ILOp.BNDCHK)
        assert run_pass(BoundsCheckElimination(), il)
        assert count_ops(il, ILOp.BNDCHK) < before


class TestCheckcastAndInstanceof:
    def test_duplicate_checkcast_removed(self):
        def body(a):
            a.new("C").store(1)
            a.load(1).checkcast("D").store(1)
            a.load(1).checkcast("D").store(1)
            a.iconst(0).retval()
        method = build_method(body, num_temps=1)
        il, _ = generate_il(method)
        before = count_ops(il, ILOp.CHECKCAST)
        assert run_pass(CheckcastElimination(), il)
        assert count_ops(il, ILOp.CHECKCAST) < before

    def test_cast_to_allocated_class_removed(self):
        def body(a):
            a.new("C").store(1)
            a.load(1).checkcast("C").store(1)
            a.iconst(0).retval()
        method = build_method(body, num_temps=1)
        il, _ = generate_il(method)
        run_pass(CheckcastElimination(), il)
        assert count_ops(il, ILOp.CHECKCAST) == 0

    def test_instanceof_on_fresh_object_folds(self):
        def body(a):
            a.new("C").store(1)
            a.load(1).instanceof("C").retval()
        method = build_method(body, num_temps=1)
        il, _ = generate_il(method)
        assert run_pass(InstanceofSimplification(), il)
        assert count_ops(il, ILOp.INSTANCEOF) == 0
        check_equivalent(method, il, 0)


def escape_test_il(escaping):
    """A method allocating an object that may or may not escape."""
    def body(a):
        a.new("C").store(1)
        a.load(1).load(0).putfield("f")
        if escaping:
            a.load(1).call("X.sink(OBJECT)INT", 1).store(2)
        a.load(1).getfield("f").retval()
    method = build_method(body, num_temps=2)
    il, _ = generate_il(
        method, resolve_return_type=lambda s: JType.INT)
    return method, il


class TestEscapeAnalysis:
    def test_local_object_does_not_escape(self):
        _m, il = escape_test_il(escaping=False)
        assert run_pass(EscapeAnalysis(), il)
        assert il.notes["stack_alloc_candidates"]
        assert il.notes["nonescaping_slots"]

    def test_call_argument_escapes(self):
        _m, il = escape_test_il(escaping=True)
        run_pass(EscapeAnalysis(), il)
        assert not il.notes.get("stack_alloc_candidates")

    def test_returned_object_escapes(self):
        def body(a):
            a.new("C").store(1)
            a.load(1).retval()
        method = build_method(body, ret=JType.OBJECT, num_temps=1)
        il, _ = generate_il(method)
        run_pass(EscapeAnalysis(), il)
        assert not il.notes.get("stack_alloc_candidates")

    def test_stored_to_field_escapes(self):
        def body(a):
            a.new("C").store(1)
            a.new("D").store(2)
            a.load(2).load(1).putfield("link_o")
            a.iconst(0).retval()
        method = build_method(body, num_temps=2)
        il, _ = generate_il(method)
        run_pass(EscapeAnalysis(), il)
        candidates = il.notes.get("stack_alloc_candidates", set())
        # C escaped (stored into D's field); D itself does not escape.
        assert len(candidates) == 1


class TestStackAllocation:
    def test_flags_candidates_for_codegen(self):
        _m, il = escape_test_il(escaping=False)
        run_pass(EscapeAnalysis(), il)
        assert run_pass(StackAllocation(), il)
        assert il.notes["codegen_stack_alloc"]

    def test_inert_without_escape_analysis(self):
        _m, il = escape_test_il(escaping=False)
        assert not run_pass(StackAllocation(), il)


class TestMonitorElision:
    def test_nonescaping_monitor_removed(self):
        def body(a):
            a.new("C").store(1)
            a.load(1).monitorenter()
            a.load(1).load(0).putfield("f")
            a.load(1).monitorexit()
            a.load(1).getfield("f").retval()
        method = build_method(body, num_temps=1)
        il, _ = generate_il(method)
        run_pass(EscapeAnalysis(), il)
        assert run_pass(MonitorElision(), il)
        assert count_ops(il, ILOp.MONITORENTER) == 0
        assert count_ops(il, ILOp.MONITOREXIT) == 0
        check_equivalent(method, il, 5)

    def test_escaping_monitor_kept(self):
        def body(a):
            a.new("C").store(1)
            a.load(1).monitorenter()
            a.load(1).call("X.sink(OBJECT)INT", 1).store(2)
            a.load(1).monitorexit()
            a.iconst(0).retval()
        method = build_method(body, num_temps=2)
        il, _ = generate_il(
            method, resolve_return_type=lambda s: JType.INT)
        run_pass(EscapeAnalysis(), il)
        assert not run_pass(MonitorElision(), il)


class TestEDO:
    def _method(self):
        def body(a):
            start = a.here()
            a.load(0).ifgt("ok")
            a.new("app/E").athrow()
            a.mark("ok")
            a.load(0).retval()
            handler = a.here()
            a.pop().iconst(-1).retval()
            return [Handler(start, handler, handler, "app/E")]
        return build_method(body, num_temps=1)

    def test_throw_becomes_direct_branch(self):
        method = self._method()
        il, _ = generate_il(method)
        assert run_pass(ExceptionDirectedOptimization(), il)
        assert count_ops(il, ILOp.ATHROW) == 0
        assert count_ops(il, ILOp.THROWTO) == 1
        check_equivalent(method, il, 5)
        check_equivalent(method, il, -5)

    def test_uncovered_throw_untouched(self):
        def body(a):
            a.new("app/E").athrow()
        method = build_method(body, num_temps=1)
        il, _ = generate_il(method)
        assert not run_pass(ExceptionDirectedOptimization(), il)

    def test_class_mismatch_untouched(self):
        def body(a):
            start = a.here()
            a.new("app/Other").athrow()
            handler = a.here()
            a.pop().iconst(-1).retval()
            return [Handler(start, handler, handler, "app/E")]
        method = build_method(body, num_temps=1)
        il, _ = generate_il(method)
        assert not run_pass(ExceptionDirectedOptimization(), il)
