"""The keystone property: compiled code is bit-equivalent to the
interpreter, at every optimization level, under arbitrary plan modifiers.

Random guest programs come from the workload generator (seeded by
hypothesis), modifiers from the two search strategies; compiled results
are compared against the interpreter for every method of the program.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.jit.compiler import JitCompiler
from repro.jit.modifiers import (
    Modifier,
    progressive_modifiers,
    random_modifiers,
)
from repro.jit.opt.registry import NUM_TRANSFORMS
from repro.jit.plans import OptLevel
from repro.jvm.bytecode import JType
from repro.jvm.vm import VirtualMachine
from repro.workloads.generator import generate_program
from repro.workloads.profiles import WorkloadProfile


def small_profile(seed):
    return WorkloadProfile(
        name=f"prop{seed}", n_methods=6, loop_weight=0.7,
        heavy_loop_weight=0.3, fp_weight=0.4, alloc_weight=0.4,
        array_weight=0.5, exception_weight=0.3, decimal_weight=0.2,
        unsafe_weight=0.1, sync_weight=0.2, call_weight=0.5,
        loop_iters=6, heavy_loop_iters=20, phase_calls=3,
        sweep_repeats=1)


def build_vm(seed):
    rng = np.random.default_rng(seed)
    program = generate_program(small_profile(seed), rng)
    vm = VirtualMachine()
    vm.load_program(program)
    return vm, program


def args_for(method, arg_seed):
    rng = np.random.default_rng(arg_seed)
    out = []
    for ptype in method.param_types:
        if ptype is JType.DOUBLE:
            out.append((round(float(rng.uniform(-3, 9)), 3),
                        JType.DOUBLE))
        else:
            out.append((int(rng.integers(-5, 40)), JType.INT))
    return out


def same_outcome(a, b):
    """Equality with NaN == NaN (Java's Double.equals semantics)."""
    import math
    if isinstance(a, tuple) and isinstance(b, tuple):
        return len(a) == len(b) and all(
            same_outcome(x, y) for x, y in zip(a, b))
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
    return a == b


def check_program(seed, level, modifier, arg_seed=1):
    vm, program = build_vm(seed)
    resolver = vm._methods.get
    compiler = JitCompiler(method_resolver=resolver, debug_check=True)
    for method in program.methods():
        args = args_for(method, arg_seed)
        ref_vm, _prog = build_vm(seed)
        try:
            expected = ref_vm.interpreter.execute(method, list(args))
        except Exception as exc:  # guest exception escaping is valid
            expected = ("raised", type(exc).__name__, str(exc))
        compiled = compiler.compile(method, level, modifier=modifier)
        run_vm, _prog = build_vm(seed)
        try:
            actual = compiled.execute(run_vm, list(args))
        except Exception as exc:
            actual = ("raised", type(exc).__name__, str(exc))
        assert same_outcome(actual, expected), (
            f"{method.signature} at {level.name} with {modifier!r}: "
            f"{actual!r} != {expected!r}")


@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_null_modifier_equivalence_hot(seed):
    check_program(seed, OptLevel.HOT, Modifier.null())


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2_000),
       bits=st.integers(0, 2**NUM_TRANSFORMS - 1))
def test_arbitrary_modifier_equivalence_scorching(seed, bits):
    check_program(seed, OptLevel.SCORCHING, Modifier(bits))


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2_000), level=st.sampled_from(list(OptLevel)),
       mod_seed=st.integers(0, 100))
def test_search_strategy_modifiers_equivalence(seed, level, mod_seed):
    rng = np.random.default_rng(mod_seed)
    if mod_seed % 2:
        modifier = random_modifiers(rng, 1)[0]
    else:
        modifier = progressive_modifiers(rng, 1, total_rounds=10,
                                         start_round=9)[0]
    check_program(seed, level, modifier)


@pytest.mark.parametrize("level", list(OptLevel))
def test_all_levels_on_fixed_program(level):
    check_program(7, level, Modifier.null())


def test_modifier_disabling_everything_still_correct():
    everything_off = Modifier(2**NUM_TRANSFORMS - 1)
    check_program(3, OptLevel.SCORCHING, everything_off)
