"""Loop passes: each transformation's effect AND its end-to-end
correctness (compiled result equals interpreter result)."""

import pytest

from repro.jit.codegen.lower import lower_method
from repro.jit.ir.cfg import CFGInfo
from repro.jit.ir.ilgen import generate_il
from repro.jit.ir.tree import ILOp, Node
from repro.jit.opt.base import PassContext
from repro.jit.opt.controlflow import LoopCanonicalization
from repro.jit.opt.loops import (
    FieldPrivatization,
    InductionVariableElimination,
    LoopInvariantCodeMotion,
    LoopInversion,
    LoopPeeling,
    LoopUnrolling,
    match_two_block_loop,
)
from repro.jvm.bytecode import JType

from tests.conftest import build_method, vm_with


def loop_method(name="loopy"):
    """acc = sum of (i*5 + x*7) for i in 0..n-1, via a counted loop."""
    def body(a):
        a.iconst(0).store(1)     # acc
        a.load(0).iconst(7).mul().store(2)  # invariant-ish
        a.iconst(0).store(3)     # i
        top = a.label()
        a.load(3).load(0).cmp().ifge("end")
        a.load(1).load(3).iconst(5).mul().add().load(2).add().store(1)
        a.inc(3, 1).goto(top)
        a.mark("end")
        a.load(1).retval()
    return build_method(body, num_temps=3, name=name)


def field_loop_method(name="floopy"):
    """Reads obj.f every iteration; the loop never writes it."""
    def body(a):
        a.new("app/Box").store(1)
        a.load(1).load(0).putfield("f")
        a.iconst(0).store(2)  # acc
        a.iconst(0).store(3)  # i
        top = a.label()
        a.load(3).iconst(10).cmp().ifge("end")
        a.load(2).load(1).getfield("f").add().store(2)
        a.inc(3, 1).goto(top)
        a.mark("end")
        a.load(2).retval()
    return build_method(body, num_temps=3, name=name)


def check_equivalent(method, il, *argvals):
    code, _ = lower_method(il)
    for v in argvals:
        vm1 = vm_with(method)
        expected = vm1.call(method.signature, v)
        vm2 = vm_with(method)
        actual, _t = code.execute(vm2, [(v, JType.INT)])
        assert actual == expected, (v, actual, expected)


def run_with_canonical_loops(pass_obj, il):
    ctx = PassContext(il)
    LoopCanonicalization().execute(ctx)
    changed = pass_obj.execute(ctx)
    il.check()
    return changed


class TestMatcher:
    def test_matches_canonical_loop(self):
        method = loop_method()
        il, _ = generate_il(method)
        ctx = PassContext(il)
        loop = ctx.cfg().loops[0]
        match = match_two_block_loop(ctx, loop)
        assert match is not None
        header, body, exit_bid = match
        assert header.terminator.op is ILOp.IF
        assert body.terminator.op is ILOp.GOTO


class TestLICM:
    def test_hoists_invariant_store(self):
        # Put an invariant store in the header by constructing IL where
        # the header computes x*7 every iteration.
        method = loop_method()
        il, _ = generate_il(method)
        run_with_canonical_loops(LoopInvariantCodeMotion(), il)
        check_equivalent(method, il, 0, 1, 9)

    def test_hoist_from_header_block(self):
        from repro.jit.ir.block import ILBlock, ILMethod
        from repro.jvm.bytecode import Instr, Op
        from repro.jvm.classfile import JMethod
        method = JMethod("T", "m", (JType.INT,), JType.INT,
                         [Instr(Op.LOADCONST, JType.INT, 0),
                          Instr(Op.RETVAL)], num_temps=0)
        # b0: preamble; b1 (header): t5 = arg*3; if i >= arg -> b3
        # b2: acc += t5; i++; goto b1 ; b3: return acc
        def iload(s):
            return Node.load(s, JType.INT)

        def iconst(v):
            return Node.const(JType.INT, v)

        b0 = ILBlock(0)
        b0.append(Node(ILOp.STORE, JType.INT, (iconst(0),), 1))  # acc
        b0.append(Node(ILOp.STORE, JType.INT, (iconst(0),), 2))  # i
        b0.fallthrough = 1
        b1 = ILBlock(1)
        b1.append(Node(ILOp.STORE, JType.INT,
                       (Node(ILOp.MUL, JType.INT,
                             (iload(0), iconst(3))),), 5))
        b1.append(Node(ILOp.IF, JType.VOID,
                       (Node(ILOp.CMP, JType.INT,
                             (iload(2), iload(0))),), ("ge", 3)))
        b1.fallthrough = 2
        b2 = ILBlock(2)
        b2.append(Node(ILOp.STORE, JType.INT,
                       (Node(ILOp.ADD, JType.INT,
                             (iload(1), iload(5))),), 1))
        b2.append(Node(ILOp.INC, JType.INT, (), (2, 1)))
        b2.append(Node(ILOp.GOTO, value=1))
        b3 = ILBlock(3)
        b3.append(Node(ILOp.RETURN, JType.INT, (iload(1),)))
        il = ILMethod(method, [b0, b1, b2, b3], 6)
        il.check()
        assert run_with_canonical_loops(LoopInvariantCodeMotion(), il)
        header = il.block(1)
        # The invariant store left the header.
        assert all(t.op is not ILOp.STORE for t in header.treetops)
        code, _ = lower_method(il)
        from repro.jvm.vm import VirtualMachine
        vm = VirtualMachine()
        value, _t = code.execute(vm, [(4, JType.INT)])
        assert value == 4 * (4 * 3)


class TestUnrolling:
    def test_unroll_duplicates_body(self):
        method = loop_method()
        il, _ = generate_il(method)
        nblocks = len(il.blocks)
        assert run_with_canonical_loops(LoopUnrolling(), il)
        assert len(il.blocks) > nblocks
        check_equivalent(method, il, 0, 1, 2, 7, 10)

    def test_unroll_odd_and_even_trip_counts(self):
        method = loop_method()
        il, _ = generate_il(method)
        run_with_canonical_loops(LoopUnrolling(), il)
        check_equivalent(method, il, 3, 4, 5, 6)


class TestPeeling:
    def test_peel_creates_prologue_copy(self):
        method = loop_method()
        il, _ = generate_il(method)
        nblocks = len(il.blocks)
        assert run_with_canonical_loops(LoopPeeling(), il)
        assert len(il.blocks) >= nblocks + 2
        check_equivalent(method, il, 0, 1, 5, 12)

    def test_peel_only_once(self):
        method = loop_method()
        il, _ = generate_il(method)
        ctx = PassContext(il)
        LoopCanonicalization().execute(ctx)
        assert LoopPeeling().execute(ctx)
        assert not LoopPeeling().execute(ctx)


class TestInductionVariables:
    def test_mul_replaced_by_additive_iv(self):
        method = loop_method()
        il, _ = generate_il(method)
        muls_before = sum(1 for _b, t in il.iter_treetops()
                          for n in t.walk() if n.op is ILOp.MUL)
        assert run_with_canonical_loops(
            InductionVariableElimination(), il)
        incs = [t for _b, t in il.iter_treetops() if t.op is ILOp.INC]
        assert len(incs) >= 2  # the original i++ plus the IV update
        muls_after = sum(1 for _b, t in il.iter_treetops()
                         for n in t.walk() if n.op is ILOp.MUL)
        assert muls_after < muls_before + 1  # mul moved to preheader
        check_equivalent(method, il, 0, 1, 3, 9)


class TestInversion:
    def test_test_only_header_rotated(self):
        method = loop_method()
        il, _ = generate_il(method)
        assert run_with_canonical_loops(LoopInversion(), il)
        # The body now ends with a conditional back edge to itself.
        self_loops = [b for b in il.blocks
                      if b.terminator is not None
                      and b.terminator.op is ILOp.IF
                      and b.terminator.value[1] == b.bid]
        assert self_loops
        check_equivalent(method, il, 0, 1, 2, 8)


class TestFieldPrivatization:
    def test_field_read_hoisted(self):
        method = field_loop_method()
        il, _ = generate_il(method)
        ctx = PassContext(il)
        LoopCanonicalization().execute(ctx)
        loop = ctx.cfg().loops[0]
        reads_in_loop_before = sum(
            1 for bid in loop.body
            for t in il.block(bid).treetops
            for n in t.walk() if n.op is ILOp.GETFIELD)
        changed = FieldPrivatization().execute(ctx)
        il.check()
        if changed:
            loop = ctx.cfg().loops[0]
            reads_after = sum(
                1 for bid in loop.body
                for t in il.block(bid).treetops
                for n in t.walk() if n.op is ILOp.GETFIELD)
            assert reads_after < reads_in_loop_before
        code, _ = lower_method(il)
        vm = vm_with(method)
        expected = vm.call(method.signature, 6)
        vm2 = vm_with(method)
        actual, _t = code.execute(vm2, [(6, JType.INT)])
        assert actual == expected

    def test_loop_with_putfield_not_privatized(self):
        def body(a):
            a.new("app/Box").store(1)
            a.iconst(0).store(2)
            top = a.label()
            a.load(2).iconst(5).cmp().ifge("end")
            a.load(1).load(2).putfield("f")
            a.load(1).getfield("f").store(3)
            a.inc(2, 1).goto(top)
            a.mark("end")
            a.load(3).retval()
        method = build_method(body, num_temps=3)
        il, _ = generate_il(method)
        ctx = PassContext(il)
        LoopCanonicalization().execute(ctx)
        assert not FieldPrivatization().execute(ctx)


class TestLoopPassGating:
    @pytest.mark.parametrize("pass_cls", [
        LoopInvariantCodeMotion, LoopUnrolling, LoopPeeling,
        InductionVariableElimination, LoopInversion,
        FieldPrivatization])
    def test_skipped_without_loops(self, pass_cls):
        method = build_method(lambda a: a.load(0).retval(),
                              num_temps=0)
        il, _ = generate_il(method)
        ctx = PassContext(il)
        assert not pass_cls().execute(ctx)
