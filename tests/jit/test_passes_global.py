"""Whole-method dataflow passes."""

from repro.jit.ir.block import ILBlock, ILHandler, ILMethod
from repro.jit.ir.tree import ILOp, Node
from repro.jit.opt.base import PassContext
from repro.jit.opt.globalopts import (
    GlobalCSE,
    GlobalConstantPropagation,
    GlobalCopyPropagation,
    GlobalDCE,
    GlobalDeadStoreElimination,
)
from repro.jvm.bytecode import Instr, JType, Op
from repro.jvm.classfile import JMethod


def iload(s):
    return Node.load(s, JType.INT)


def iconst(v):
    return Node.const(JType.INT, v)


def istore(s, rhs):
    return Node(ILOp.STORE, JType.INT, (rhs,), s)


def two_block_method(b0_tts, b1_tts, num_locals=8, num_args=1):
    method = JMethod("T", "m", (JType.INT,) * num_args, JType.INT,
                     [Instr(Op.LOADCONST, JType.INT, 0),
                      Instr(Op.RETVAL)], num_temps=0)
    b0 = ILBlock(0)
    for tt in b0_tts:
        b0.append(tt)
    b0.fallthrough = 1
    b1 = ILBlock(1)
    for tt in b1_tts:
        b1.append(tt)
    if b1.terminator is None:
        b1.append(Node(ILOp.RETURN, JType.INT, (iconst(0),)))
    il = ILMethod(method, [b0, b1], num_locals)
    il.check()
    return il


def run_pass(pass_obj, il):
    changed = pass_obj.execute(PassContext(il))
    il.check()
    return changed


class TestGlobalConstantPropagation:
    def test_constant_crosses_blocks(self):
        il = two_block_method(
            [istore(1, iconst(9))],
            [istore(2, iload(1)),
             Node(ILOp.RETURN, JType.INT, (iload(2),))])
        assert run_pass(GlobalConstantPropagation(), il)
        assert il.blocks[1].treetops[0].children[0].value == 9

    def test_multiply_defined_slot_not_propagated(self):
        il = two_block_method(
            [istore(1, iconst(9)), istore(1, iconst(8))],
            [Node(ILOp.RETURN, JType.INT, (iload(1),))])
        assert not run_pass(GlobalConstantPropagation(), il)


class TestGlobalCopyPropagation:
    def test_argument_copy_propagated(self):
        il = two_block_method(
            [istore(1, iload(0))],
            [Node(ILOp.RETURN, JType.INT, (iload(1),))])
        assert run_pass(GlobalCopyPropagation(), il)
        assert il.blocks[1].treetops[0].children[0].value == 0

    def test_written_argument_not_propagated(self):
        il = two_block_method(
            [istore(1, iload(0)), istore(0, iconst(5))],
            [Node(ILOp.RETURN, JType.INT, (iload(1),))])
        assert not run_pass(GlobalCopyPropagation(), il)


class TestGlobalCSE:
    def _expr(self):
        return Node(ILOp.MUL, JType.INT,
                    (Node(ILOp.ADD, JType.INT, (iload(0), iconst(1))),
                     iload(0)))

    def test_expression_commoned_across_blocks(self):
        il = two_block_method(
            [istore(1, self._expr())],
            [istore(2, self._expr()),
             Node(ILOp.RETURN, JType.INT, (iload(2),))])
        assert run_pass(GlobalCSE(), il)
        # Second occurrence must read the temp.
        assert il.blocks[1].treetops[0].children[0].op is ILOp.LOAD

    def test_loop_variant_slot_blocks_cse(self):
        # slot 3 is defined inside a loop -> its single def may run many
        # times with different values; CSE must not treat it as stable.
        method = JMethod("T", "m", (JType.INT,), JType.INT,
                         [Instr(Op.LOADCONST, JType.INT, 0),
                          Instr(Op.RETVAL)], num_temps=0)
        expr = Node(ILOp.MUL, JType.INT,
                    (Node(ILOp.ADD, JType.INT, (iload(3), iconst(1))),
                     iload(3)))
        b0 = ILBlock(0)
        b0.fallthrough = 1
        b1 = ILBlock(1)  # loop header+body
        b1.append(istore(3, Node(ILOp.ADD, JType.INT,
                                 (iload(3), iconst(1)))))
        b1.append(istore(1, expr))
        b1.append(istore(2, expr.copy()))
        b1.append(Node(ILOp.IF, JType.VOID, (iload(3),), ("lt", 1)))
        b1.fallthrough = 2
        b2 = ILBlock(2)
        b2.append(Node(ILOp.RETURN, JType.INT, (iload(2),)))
        il = ILMethod(method, [b0, b1, b2], 8)
        il.check()
        assert not run_pass(GlobalCSE(), il)


class TestGlobalDeadStoreElimination:
    def test_store_never_read_removed(self):
        il = two_block_method(
            [istore(1, iconst(9)), istore(2, iconst(4))],
            [Node(ILOp.RETURN, JType.INT, (iload(2),))])
        assert run_pass(GlobalDeadStoreElimination(), il)
        stores = [t for t in il.blocks[0].treetops
                  if t.op is ILOp.STORE]
        assert len(stores) == 1

    def test_live_across_block_kept(self):
        il = two_block_method(
            [istore(1, iconst(9))],
            [Node(ILOp.RETURN, JType.INT, (iload(1),))])
        assert not run_pass(GlobalDeadStoreElimination(), il)

    def test_handler_covered_block_untouched(self):
        il = two_block_method(
            [istore(1, iconst(9)), istore(2, iconst(4))],
            [Node(ILOp.RETURN, JType.INT, (iload(2),))])
        il.handlers = [ILHandler({0}, 1, "java/lang/Throwable")]
        il.blocks[1].is_handler = True
        assert not run_pass(GlobalDeadStoreElimination(), il)


class TestGlobalDCE:
    def test_unread_temp_store_removed(self):
        # slot 5 is a compiler temp (>= max_locals of 1) never loaded.
        il = two_block_method(
            [istore(5, iconst(3))],
            [Node(ILOp.RETURN, JType.INT, (iload(0),))])
        assert run_pass(GlobalDCE(), il)
        assert not [t for t in il.blocks[0].treetops
                    if t.op is ILOp.STORE]

    def test_impure_rhs_becomes_bare_treetop(self):
        getf = Node(ILOp.GETFIELD, JType.INT,
                    (Node.load(0, JType.OBJECT),), "f")
        il = two_block_method(
            [istore(5, getf)],
            [Node(ILOp.RETURN, JType.INT, (iconst(0),))])
        assert run_pass(GlobalDCE(), il)
        assert il.blocks[0].treetops[0].op is ILOp.TREETOP

    def test_argument_slot_never_touched(self):
        il = two_block_method(
            [istore(0, iconst(3))],
            [Node(ILOp.RETURN, JType.INT, (iconst(0),))])
        assert not run_pass(GlobalDCE(), il)
