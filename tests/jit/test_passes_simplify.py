"""Tree-simplification passes: each rewrite and its guards."""

import pytest

from repro.jit.ir.block import ILBlock, ILMethod
from repro.jit.ir.tree import ILOp, Node
from repro.jit.opt.base import PassContext
from repro.jit.opt.simplify import (
    ArithmeticSimplification,
    CastSimplification,
    CmpSimplification,
    ConstantFolding,
    DecimalConstantFolding,
    DivRemToShiftMask,
    FPConstantFolding,
    MathSimplification,
    MulToShift,
    NegSimplification,
    Reassociation,
    TreeCleanup,
    ZeroPropagation,
)
from repro.jvm.bytecode import JType
from repro.jvm.classfile import JMethod, MethodModifiers
from repro.jvm.bytecode import Instr, Op


def il_with_expr(expr, strictfp=False):
    """Wrap *expr* in `store t0; return t0` inside a one-block method."""
    mods = MethodModifiers.PUBLIC
    if strictfp:
        mods |= MethodModifiers.STRICTFP
    method = JMethod("T", "m", (), expr.type,
                     [Instr(Op.LOADCONST, JType.INT, 0),
                      Instr(Op.RETVAL)], modifiers=mods, num_temps=1)
    block = ILBlock(0)
    block.append(Node(ILOp.STORE, expr.type, (expr,), 0))
    block.append(Node(ILOp.RETURN, expr.type,
                      (Node.load(0, expr.type),)))
    il = ILMethod(method, [block], 1)
    return il


def run_pass(pass_obj, il):
    ctx = PassContext(il)
    changed = pass_obj.execute(ctx)
    il.check()
    return changed


def stored_expr(il):
    return il.blocks[0].treetops[0].children[0]


def iconst(v):
    return Node.const(JType.INT, v)


def iload(slot=0):
    return Node.load(slot, JType.INT)


class TestConstantFolding:
    def test_folds_add(self):
        il = il_with_expr(Node(ILOp.ADD, JType.INT,
                               (iconst(2), iconst(3))))
        assert run_pass(ConstantFolding(), il)
        assert stored_expr(il).value == 5

    def test_folds_with_wraparound(self):
        il = il_with_expr(Node(ILOp.MUL, JType.INT,
                               (iconst(2**20), iconst(2**20))))
        run_pass(ConstantFolding(), il)
        assert stored_expr(il).value == 0

    def test_does_not_fold_div_by_zero(self):
        il = il_with_expr(Node(ILOp.DIV, JType.INT,
                               (iconst(1), iconst(0))))
        assert not run_pass(ConstantFolding(), il)
        assert stored_expr(il).op is ILOp.DIV

    def test_folds_div_truncation(self):
        il = il_with_expr(Node(ILOp.DIV, JType.INT,
                               (iconst(-7), iconst(2))))
        run_pass(ConstantFolding(), il)
        assert stored_expr(il).value == -3

    def test_skips_float(self):
        il = il_with_expr(Node(ILOp.ADD, JType.DOUBLE,
                               (Node.const(JType.DOUBLE, 1.0),
                                Node.const(JType.DOUBLE, 2.0))))
        assert not run_pass(ConstantFolding(), il)

    def test_cmp_folds(self):
        il = il_with_expr(Node(ILOp.CMP, JType.INT,
                               (iconst(9), iconst(4))))
        run_pass(ConstantFolding(), il)
        assert stored_expr(il).value == 1


class TestFPConstantFolding:
    def test_folds_double(self):
        il = il_with_expr(Node(ILOp.MUL, JType.DOUBLE,
                               (Node.const(JType.DOUBLE, 2.0),
                                Node.const(JType.DOUBLE, 4.0))))
        assert run_pass(FPConstantFolding(), il)
        assert stored_expr(il).value == 8.0

    def test_blocked_by_strictfp(self):
        expr = Node(ILOp.MUL, JType.DOUBLE,
                    (Node.const(JType.DOUBLE, 2.0),
                     Node.const(JType.DOUBLE, 4.0)))
        il = il_with_expr(expr, strictfp=True)
        assert not run_pass(FPConstantFolding(), il)


class TestDecimalFolding:
    def test_folds_packed(self):
        il = il_with_expr(Node(ILOp.ADD, JType.PACKED,
                               (Node.const(JType.PACKED, 100),
                                Node.const(JType.PACKED, 250))))
        assert run_pass(DecimalConstantFolding(), il)
        assert stored_expr(il).value == 350


class TestIdentities:
    def test_add_zero(self):
        il = il_with_expr(Node(ILOp.ADD, JType.INT,
                               (iload(), iconst(0))))
        assert run_pass(ArithmeticSimplification(), il)
        assert stored_expr(il).op is ILOp.LOAD

    def test_mul_one(self):
        il = il_with_expr(Node(ILOp.MUL, JType.INT,
                               (iload(), iconst(1))))
        run_pass(ArithmeticSimplification(), il)
        assert stored_expr(il).op is ILOp.LOAD

    def test_zero_times_pure(self):
        il = il_with_expr(Node(ILOp.MUL, JType.INT,
                               (iload(), iconst(0))))
        assert run_pass(ZeroPropagation(), il)
        assert stored_expr(il).value == 0

    def test_zero_times_impure_not_removed(self):
        getf = Node(ILOp.GETFIELD, JType.INT, (iload(),), "f")
        il = il_with_expr(Node(ILOp.MUL, JType.INT,
                               (getf, iconst(0))))
        assert not run_pass(ZeroPropagation(), il)

    def test_sub_self_is_zero(self):
        il = il_with_expr(Node(ILOp.SUB, JType.INT,
                               (iload(), iload())))
        run_pass(ZeroPropagation(), il)
        assert stored_expr(il).value == 0

    def test_or_self_is_self(self):
        il = il_with_expr(Node(ILOp.OR, JType.INT, (iload(), iload())))
        run_pass(ZeroPropagation(), il)
        assert stored_expr(il).op is ILOp.LOAD


class TestStrengthReduction:
    def test_mul_by_8_becomes_shift(self):
        il = il_with_expr(Node(ILOp.MUL, JType.INT,
                               (iload(), iconst(8))))
        assert run_pass(MulToShift(), il)
        expr = stored_expr(il)
        assert expr.op is ILOp.SHL
        assert expr.children[1].value == 3

    def test_mul_by_non_power_untouched(self):
        il = il_with_expr(Node(ILOp.MUL, JType.INT,
                               (iload(), iconst(6))))
        assert not run_pass(MulToShift(), il)

    def test_div_pow2_needs_nonnegative_proof(self):
        il = il_with_expr(Node(ILOp.DIV, JType.INT,
                               (iload(), iconst(4))))
        assert not run_pass(DivRemToShiftMask(), il)

    def test_div_of_arraylength_reduced(self):
        alen = Node(ILOp.ARRAYLENGTH, JType.INT,
                    (Node.load(0, JType.ADDRESS),))
        il = il_with_expr(Node(ILOp.DIV, JType.INT,
                               (alen, iconst(4))))
        assert run_pass(DivRemToShiftMask(), il)
        assert stored_expr(il).op is ILOp.SHR

    def test_rem_pow2_becomes_mask(self):
        alen = Node(ILOp.ARRAYLENGTH, JType.INT,
                    (Node.load(0, JType.ADDRESS),))
        il = il_with_expr(Node(ILOp.REM, JType.INT,
                               (alen, iconst(8))))
        assert run_pass(DivRemToShiftMask(), il)
        expr = stored_expr(il)
        assert expr.op is ILOp.AND
        assert expr.children[1].value == 7


class TestReassociation:
    def test_regroups_constants(self):
        inner = Node(ILOp.ADD, JType.INT, (iload(), iconst(3)))
        il = il_with_expr(Node(ILOp.ADD, JType.INT,
                               (inner, iconst(4))))
        assert run_pass(Reassociation(), il)
        expr = stored_expr(il)
        assert expr.children[1].value == 7


class TestCmpSimplification:
    def test_if_over_cmp_zero_drops_cmp(self):
        method = JMethod("T", "m", (JType.INT,), JType.INT,
                         [Instr(Op.LOAD, 0), Instr(Op.RETVAL)],
                         num_temps=0)
        b0 = ILBlock(0)
        cmp = Node(ILOp.CMP, JType.INT, (iload(), iconst(0)))
        b0.append(Node(ILOp.IF, JType.VOID, (cmp,), ("lt", 1)))
        b0.fallthrough = 1
        b1 = ILBlock(1)
        b1.append(Node(ILOp.RETURN, JType.INT, (iload(),)))
        il = ILMethod(method, [b0, b1], 1)
        assert run_pass(CmpSimplification(), il)
        assert b0.treetops[0].children[0].op is ILOp.LOAD


class TestNegAndCast:
    def test_double_negation(self):
        il = il_with_expr(Node(ILOp.NEG, JType.INT,
                               (Node(ILOp.NEG, JType.INT, (iload(),)),)))
        assert run_pass(NegSimplification(), il)
        assert stored_expr(il).op is ILOp.LOAD

    def test_zero_minus_x(self):
        il = il_with_expr(Node(ILOp.SUB, JType.INT,
                               (iconst(0), iload())))
        run_pass(NegSimplification(), il)
        assert stored_expr(il).op is ILOp.NEG

    def test_identity_cast_removed(self):
        il = il_with_expr(Node(ILOp.CAST, JType.INT, (iload(),)))
        assert run_pass(CastSimplification(), il)
        assert stored_expr(il).op is ILOp.LOAD

    def test_const_cast_folded(self):
        il = il_with_expr(Node(ILOp.CAST, JType.DOUBLE, (iconst(3),)))
        run_pass(CastSimplification(), il)
        expr = stored_expr(il)
        assert expr.is_const() and expr.value == 3.0

    def test_narrowing_cast_kept(self):
        il = il_with_expr(Node(ILOp.CAST, JType.BYTE, (iload(),)))
        assert not run_pass(CastSimplification(), il)


class TestMathSimplification:
    def test_const_sqrt_folded(self):
        call = Node(ILOp.CALL, JType.DOUBLE,
                    (Node.const(JType.DOUBLE, 16.0),),
                    "java/lang/Math.sqrt")
        il = il_with_expr(call)
        assert run_pass(MathSimplification(), il)
        assert stored_expr(il).value == 4.0

    def test_max_of_same_value(self):
        call = Node(ILOp.CALL, JType.DOUBLE,
                    (Node.load(0, JType.DOUBLE),
                     Node.load(0, JType.DOUBLE)),
                    "java/lang/Math.max")
        il = il_with_expr(call)
        assert run_pass(MathSimplification(), il)
        assert stored_expr(il).op is ILOp.LOAD


class TestTreeCleanup:
    def test_composite_runs_several_rewrites(self):
        inner = Node(ILOp.ADD, JType.INT, (iconst(2), iconst(3)))
        il = il_with_expr(Node(ILOp.ADD, JType.INT,
                               (inner, iconst(0))))
        assert run_pass(TreeCleanup(), il)
        assert stored_expr(il).value == 5
