"""Pass tracing and CFG dumps."""

from repro.jit.ir.ilgen import generate_il
from repro.jit.modifiers import Modifier
from repro.jit.opt.registry import transform_index
from repro.jit.opt.trace import TracingManager, cfg_to_dot
from repro.jit.plans import OptLevel, default_plans


def test_trace_records_every_entry(sum_to_method):
    il, _ = generate_il(sum_to_method)
    plan = default_plans()[OptLevel.WARM]
    manager = TracingManager(plan.entries)
    manager.optimize(il)
    assert len(manager.trace) == len(plan.entries)
    assert all(t.cost >= 0 for t in manager.trace)


def test_masked_passes_marked(sum_to_method):
    il, _ = generate_il(sum_to_method)
    off = Modifier.disabling([transform_index("constantFolding")])
    manager = TracingManager(["constantFolding", "localDCE"],
                             modifier=off)
    manager.optimize(il)
    assert manager.masked_passes() == ["constantFolding"]
    assert not manager.trace[0].ran
    assert manager.trace[1].ran


def test_changed_passes_listed(sum_to_method):
    il, _ = generate_il(sum_to_method)
    plan = default_plans()[OptLevel.HOT]
    manager = TracingManager(plan.entries)
    manager.optimize(il)
    assert manager.changed_passes()  # something always fires on a loop


def test_report_renders(sum_to_method):
    il, _ = generate_il(sum_to_method)
    manager = TracingManager(["constantFolding", "blockOrdering"])
    manager.optimize(il)
    text = manager.report()
    assert "constantFolding" in text
    short = manager.report(only_changed=True)
    assert len(short.splitlines()) <= len(text.splitlines())


def test_trace_agrees_with_plain_manager(sum_to_method):
    from repro.jit.opt.base import PassManager
    plan = default_plans()[OptLevel.WARM]
    il1, _ = generate_il(sum_to_method)
    il2, _ = generate_il(sum_to_method)
    _il, cost1, log1 = PassManager(plan.entries).optimize(il1)
    _il, cost2, log2 = TracingManager(plan.entries).optimize(il2)
    assert log1 == log2
    assert cost1 == cost2


def test_cfg_to_dot(sum_to_method):
    il, _ = generate_il(sum_to_method)
    dot = cfg_to_dot(il)
    assert dot.startswith("digraph")
    assert "b0" in dot and "->" in dot
    assert dot.rstrip().endswith("}")


def test_cfg_to_dot_handlers_dashed():
    from repro.jvm.classfile import Handler
    from tests.conftest import build_method

    def body(a):
        start = a.here()
        a.new("app/E").athrow()
        handler = a.here()
        a.pop().iconst(0).retval()
        return [Handler(start, handler, handler, "app/E")]
    method = build_method(body, num_temps=0)
    il, _ = generate_il(method)
    dot = cfg_to_dot(il)
    assert "style=dashed" in dot
    assert "fillcolor" in dot
