"""Code generation: lowering options, register allocation, native-level
cleanup passes, and the cost/size effects of each codegen flag."""

import pytest

from repro.jit.codegen.isa import NOp, PHYS_REGS, SCRATCH_REGS
from repro.jit.codegen.lower import CodegenOptions, lower_method
from repro.jit.codegen import peephole as ph
from repro.jit.codegen.regalloc import allocate, _intervals
from repro.jit.ir.ilgen import generate_il
from repro.jvm.bytecode import JType

from tests.conftest import build_method, vm_with


def lowered(method, **opts):
    il, _ = generate_il(method)
    return lower_method(il, CodegenOptions(**opts))


def run_native(code, method, *argvals):
    results = []
    for v in argvals:
        vm = vm_with(method)
        value, _t = code.execute(vm, [(v, JType.INT)])
        results.append((value, vm.clock.now()))
    return results


def wide_expr_method():
    """Deep expression tree: enough live values to force spills."""
    def body(a):
        for _ in range(10):
            a.load(0)
            a.load(0).iconst(3).mul()
            a.add()
        for _ in range(9):
            a.mul()
        a.retval()
    return build_method(body, num_temps=0, name="wide")


class TestLoweringOptions:
    def test_immediate_folding_shrinks_code(self):
        def body(a):
            a.load(0).iconst(3).mul().iconst(4).add().retval()
        method = build_method(body, num_temps=0, name="affine")
        base, _ = lowered(method)
        opt, _ = lowered(method, const_operand_folding=True)
        assert opt.size() < base.size()
        assert any(i.op is NOp.ALUI for i in opt.instrs)
        (r1, _), = run_native(base, method, 5)
        (r2, _), = run_native(opt, method, 5)
        assert r1 == r2 == 19

    def test_address_mode_folding(self):
        def body(a):
            a.iconst(4).newarray(JType.INT).store(1)
            a.load(1).iconst(2).load(0).astore()
            a.load(1).iconst(2).aload().retval()
        method = build_method(body, num_temps=1)
        base, _ = lowered(method)
        opt, _ = lowered(method, address_mode_folding=True)
        assert opt.size() < base.size()
        (r_base,), (r_opt,) = (run_native(base, method, 9),
                               run_native(opt, method, 9))
        assert r_base[0] == r_opt[0] == 9

    def test_leaf_frames_cheaper(self, sum_to_method):
        base, _ = lowered(sum_to_method)
        leaf, _ = lowered(sum_to_method, leaf_frames=True)
        assert leaf.frame_cost < base.frame_cost

    def test_nonleaf_not_flagged(self):
        def body(a):
            a.load(0).cast(JType.DOUBLE)
            a.call("java/lang/Math.abs", 1).cast(JType.INT).retval()
        method = build_method(body, num_temps=1)
        code, _ = lowered(method, leaf_frames=True)
        assert not code.leaf


class TestRegisterAllocation:
    def test_spills_inserted_when_pressure_high(self):
        method = wide_expr_method()
        code, _ = lowered(method)
        assert any(i.op in (NOp.SPST, NOp.SPLD) for i in code.instrs)

    def test_spilled_code_still_correct(self):
        method = wide_expr_method()
        code, _ = lowered(method)
        vm = vm_with(method)
        expected = vm.call(method.signature, 3)
        (result, _cycles), = run_native(code, method, 3)
        assert result == expected

    def test_all_registers_physical_after_allocation(self):
        method = wide_expr_method()
        code, _ = lowered(method)
        for ins in code.instrs:
            if ins.dst is not None:
                assert ins.dst < PHYS_REGS
            for s in ins.srcs:
                assert s < PHYS_REGS

    def test_rematerialization_replaces_spill_loads(self):
        method = wide_expr_method()
        plain, _ = lowered(method)
        remat, _ = lowered(method, rematerialization=True)
        plain_splds = sum(1 for i in plain.instrs
                          if i.op is NOp.SPLD)
        remat_splds = sum(1 for i in remat.instrs
                          if i.op is NOp.SPLD)
        assert remat_splds <= plain_splds
        (r1, _), = run_native(plain, method, 4)
        (r2, _), = run_native(remat, method, 4)
        assert r1 == r2

    def test_intervals_cover_defs_and_uses(self):
        from repro.jit.codegen.isa import NInstr
        instrs = [
            NInstr(NOp.CONST, 0, (), 1, JType.INT),
            NInstr(NOp.CONST, 1, (), 2, JType.INT),
            NInstr(NOp.ADD, 2, (0, 1), None, JType.INT),
            NInstr(NOp.RET, None, (2,)),
        ]
        start, end = _intervals(instrs)
        assert start[0] == 0 and end[0] == 2
        assert start[2] == 2 and end[2] == 3


class TestPeepholePasses:
    def test_coalesce_forwards_store_load(self, sum_to_method):
        base, _ = lowered(sum_to_method)
        opt, _ = lowered(sum_to_method, coalescing=True)
        base_ld = sum(1 for i in base.instrs if i.op is NOp.LDLOC)
        opt_ld = sum(1 for i in opt.instrs if i.op is NOp.LDLOC)
        assert opt_ld <= base_ld

    def test_compact_null_checks(self):
        def body(a):
            a.new("C").store(1)
            a.load(0).store(2)  # break freshness proof via codegen only
            a.load(1).getfield("f").retval()
        method = build_method(body, num_temps=2)
        base, _ = lowered(method)
        opt, _ = lowered(method, compact_null_checks=True)
        base_chk = sum(1 for i in base.instrs if i.op is NOp.NULLCHK)
        opt_chk = sum(1 for i in opt.instrs if i.op is NOp.NULLCHK)
        assert opt_chk < base_chk
        (r1, _), = run_native(base, method, 5)
        (r2, _), = run_native(opt, method, 5)
        assert r1 == r2

    def test_peephole_removes_dead_pure_defs(self):
        from repro.jit.codegen.isa import NInstr
        instrs = [
            NInstr(NOp.CONST, 0, (), 1, JType.INT),
            NInstr(NOp.CONST, 1, (), 2, JType.INT),  # dead
            NInstr(NOp.RET, None, (0,)),
        ]
        out, _cost = ph.peephole(instrs)
        assert len(out) == 2

    def test_scheduling_reduces_stalls(self, sum_to_method):
        base, _ = lowered(sum_to_method)
        sched, _ = lowered(sum_to_method, scheduling=True)
        (_r1, c1), = run_native(base, sum_to_method, 30)
        (_r2, c2), = run_native(sched, sum_to_method, 30)
        assert c2 <= c1

    def test_fallthrough_branch_elision(self, sum_to_method):
        code, _ = lowered(sum_to_method)
        for i, ins in enumerate(code.instrs[:-1]):
            if ins.op is NOp.BR:
                nxt = code.instrs[i + 1]
                assert not (nxt.op is NOp.LABEL and nxt.aux == ins.aux)


class TestNativeCode:
    def test_listing_is_printable(self, sum_to_method):
        code, _ = lowered(sum_to_method)
        text = code.listing()
        assert "ldloc" in text or "const" in text

    def test_size_excludes_labels(self, sum_to_method):
        code, _ = lowered(sum_to_method)
        labels = sum(1 for i in code.instrs if i.op is NOp.LABEL)
        assert code.size() == len(code.instrs) - labels

    def test_compile_cost_positive(self, sum_to_method):
        il, ilcost = generate_il(sum_to_method)
        _code, cost = lower_method(il)
        assert cost > 0 and ilcost > 0

    def test_stall_model_charges_dependent_chain(self):
        # a chain of dependent adds costs more than independent ones
        def chain(a):
            a.load(0)
            for _ in range(6):
                a.iconst(1).add()
            a.retval()
        method = build_method(chain, num_temps=0, name="chain")
        code, _ = lowered(method)
        vm = vm_with(method)
        value, _t = code.execute(vm, [(1, JType.INT)])
        assert value == 7
