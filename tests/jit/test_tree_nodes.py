"""IL node primitives: purity, keys, copying, walking."""

from repro.jit.ir.tree import ILOp, Node, RELOP_FN, RELOP_NEGATE
from repro.jvm.bytecode import JType


def iload(s=0):
    return Node.load(s, JType.INT)


def iconst(v):
    return Node.const(JType.INT, v)


class TestPurity:
    def test_alu_over_loads_is_pure(self):
        node = Node(ILOp.ADD, JType.INT, (iload(), iconst(1)))
        assert node.is_pure(allow_loads=True)
        assert not node.is_pure(allow_loads=False)

    def test_integral_div_never_pure(self):
        node = Node(ILOp.DIV, JType.INT, (iload(), iconst(2)))
        assert not node.is_pure(allow_loads=True)
        assert node.can_throw()

    def test_float_div_cannot_throw(self):
        node = Node(ILOp.DIV, JType.DOUBLE,
                    (Node.load(0, JType.DOUBLE),
                     Node.const(JType.DOUBLE, 2.0)))
        assert not node.can_throw()

    def test_heap_reads_gated(self):
        getf = Node(ILOp.GETFIELD, JType.INT,
                    (Node.load(0, JType.OBJECT),), "f")
        assert not getf.is_pure(allow_loads=True)
        assert getf.is_pure(allow_loads=True, allow_heap_reads=True)
        assert getf.can_throw()

    def test_call_always_impure(self):
        call = Node(ILOp.CALL, JType.INT, (), "X.y()INT")
        assert not call.is_pure(allow_loads=True,
                                allow_heap_reads=True)


class TestStructure:
    def test_key_structural_equality(self):
        a = Node(ILOp.ADD, JType.INT, (iload(), iconst(3)))
        b = Node(ILOp.ADD, JType.INT, (iload(), iconst(3)))
        c = Node(ILOp.ADD, JType.INT, (iload(), iconst(4)))
        assert a.key() == b.key()
        assert a.key() != c.key()
        assert a.key() != Node(ILOp.ADD, JType.LONG,
                               (iload(), iconst(3))).key()

    def test_copy_is_deep(self):
        a = Node(ILOp.ADD, JType.INT, (iload(), iconst(3)))
        b = a.copy()
        b.children[1].value = 99
        assert a.children[1].value == 3

    def test_walk_preorder(self):
        tree = Node(ILOp.ADD, JType.INT,
                    (Node(ILOp.MUL, JType.INT, (iload(), iconst(2))),
                     iconst(1)))
        ops = [n.op for n in tree.walk()]
        assert ops == [ILOp.ADD, ILOp.MUL, ILOp.LOAD, ILOp.CONST,
                       ILOp.CONST]

    def test_count_nodes(self):
        tree = Node(ILOp.ADD, JType.INT, (iload(), iconst(1)))
        assert tree.count_nodes() == 3

    def test_loads_used(self):
        tree = Node(ILOp.ADD, JType.INT,
                    (Node.load(3, JType.INT), Node.load(5, JType.INT)))
        assert tree.loads_used() == {3, 5}

    def test_contains_op(self):
        tree = Node(ILOp.ADD, JType.INT,
                    (Node(ILOp.CALL, JType.INT, (), "s"), iconst(1)))
        assert tree.contains_op(ILOp.CALL)
        assert not tree.contains_op(ILOp.MUL)

    def test_replace_with_keeps_identity(self):
        tree = Node(ILOp.ADD, JType.INT, (iload(), iconst(1)))
        target = tree.children[0]
        target.replace_with(iconst(9))
        assert tree.children[0] is target
        assert tree.children[0].op is ILOp.CONST

    def test_repr_renders_tree(self):
        tree = Node(ILOp.ADD, JType.INT, (iload(), iconst(1)))
        text = repr(tree)
        assert "add" in text and "const" in text


class TestRelops:
    def test_negation_is_involutive(self):
        for relop, negated in RELOP_NEGATE.items():
            assert RELOP_NEGATE[negated] == relop

    def test_negation_flips_outcome(self):
        for relop in RELOP_FN:
            for v in (-5, -1, 0, 1, 5):
                assert RELOP_FN[relop](v) \
                    != RELOP_FN[RELOP_NEGATE[relop]](v)
