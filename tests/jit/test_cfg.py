"""CFG analyses: reverse postorder, dominators, natural loops."""

from repro.jit.ir.cfg import CFGInfo
from repro.jit.ir.ilgen import generate_il
from repro.jvm.bytecode import JType
from repro.jvm.classfile import Handler

from tests.conftest import build_method


def cfg_of(body_fn, **kwargs):
    method = build_method(body_fn, **kwargs)
    il, _ = generate_il(method)
    return il, CFGInfo(il)


class TestBasics:
    def test_entry_first_in_rpo(self, sum_to_method):
        il, _ = generate_il(sum_to_method)
        cfg = CFGInfo(il)
        assert cfg.rpo[0] == il.blocks[0].bid

    def test_preds_inverse_of_succs(self, sum_to_method):
        il, _ = generate_il(sum_to_method)
        cfg = CFGInfo(il)
        for bid, succs in cfg.succs.items():
            for s in succs:
                assert bid in cfg.preds[s]

    def test_straightline_no_loops(self):
        _il, cfg = cfg_of(lambda a: a.load(0).retval())
        assert cfg.loops == []
        assert cfg.max_loop_depth() == 0


class TestDominators:
    def test_entry_dominates_all(self, sum_to_method):
        il, _ = generate_il(sum_to_method)
        cfg = CFGInfo(il)
        entry = il.blocks[0].bid
        for bid in cfg.reachable:
            assert cfg.dominates(entry, bid)

    def test_dominates_is_reflexive(self, sum_to_method):
        il, _ = generate_il(sum_to_method)
        cfg = CFGInfo(il)
        for bid in cfg.reachable:
            assert cfg.dominates(bid, bid)

    def test_diamond_join_not_dominated_by_arms(self):
        def body(a):
            a.load(0).ifle("else")
            a.iconst(1).store(1)
            a.goto("join")
            a.mark("else")
            a.iconst(2).store(1)
            a.mark("join")
            a.load(1).retval()
        il, cfg = cfg_of(body)
        join = il.blocks[-1].bid
        arms = [b.bid for b in il.blocks[1:-1]]
        for arm in arms:
            assert not cfg.dominates(arm, join)


class TestLoops:
    def test_single_loop_detected(self, sum_to_method):
        il, _ = generate_il(sum_to_method)
        cfg = CFGInfo(il)
        assert len(cfg.loops) == 1
        loop = cfg.loops[0]
        assert len(loop.body) == 2
        assert cfg.loop_depth[loop.header] == 1

    def test_nested_loops_depth_two(self):
        def body(a):
            a.iconst(0).store(1)
            a.iconst(0).store(2)
            outer = a.label()
            a.load(2).iconst(5).cmp().ifge("done")
            a.iconst(0).store(3)
            inner = a.label()
            a.load(3).iconst(4).cmp().ifge("inner_done")
            a.load(1).iconst(1).add().store(1)
            a.inc(3, 1).goto(inner)
            a.mark("inner_done")
            a.inc(2, 1).goto(outer)
            a.mark("done")
            a.load(1).retval()
        il, cfg = cfg_of(body, num_temps=3)
        assert len(cfg.loops) == 2
        assert cfg.max_loop_depth() == 2

    def test_loop_of_lookup(self, sum_to_method):
        il, _ = generate_il(sum_to_method)
        cfg = CFGInfo(il)
        header = cfg.loops[0].header
        assert cfg.loop_of(header) is cfg.loops[0]
        assert cfg.loop_of(-1) is None


class TestExceptionalEdges:
    def test_handler_reachable_via_exceptional_edge(self):
        def body(a):
            start = a.here()
            a.load(0).iconst(0).div().retval()
            handler = a.here()
            a.pop().iconst(-1).retval()
            return [Handler(start, handler, handler)]
        il, cfg = cfg_of(body)
        handler_bid = il.handlers[0].handler_bid
        assert handler_bid in cfg.reachable
