"""The adaptive compilation controller."""

import pytest

from repro.jit.compiler import JitCompiler
from repro.jit.control import (
    CompilationManager,
    ControlConfig,
    HAS_LOOPS,
    MANY_ITER,
    NO_LOOPS,
    loop_class_of,
)
from repro.jit.plans import OptLevel

from tests.conftest import build_method, vm_with


def looping_method(name="hot"):
    def body(a):
        a.iconst(0).store(1)
        a.iconst(0).store(2)
        top = a.label()
        a.load(2).load(0).cmp().ifge("end")
        a.load(1).load(2).add().store(1)
        a.inc(2, 1).goto(top)
        a.mark("end")
        a.load(1).retval()
    return build_method(body, num_temps=2, name=name)


def managed_vm(method, config=None, strategy=None):
    vm = vm_with(method)
    compiler = JitCompiler(method_resolver=vm._methods.get)
    manager = CompilationManager(compiler, strategy=strategy,
                                 config=config)
    vm.attach_manager(manager)
    return vm, manager


class TestTriggers:
    def test_three_triggers_per_level(self):
        config = ControlConfig()
        for level in OptLevel:
            values = [config.trigger(level, c)
                      for c in (NO_LOOPS, HAS_LOOPS, MANY_ITER)]
            # loopy methods compile sooner (footnote 6)
            assert values[0] > values[1] > values[2]

    def test_triggers_grow_with_level(self):
        config = ControlConfig()
        for cls in (NO_LOOPS, HAS_LOOPS, MANY_ITER):
            values = [config.trigger(lv, cls) for lv in OptLevel]
            assert values == sorted(values)

    def test_loop_class_from_bytecode(self):
        assert loop_class_of(looping_method()) == HAS_LOOPS
        flat = build_method(lambda a: a.load(0).retval(), num_temps=0)
        assert loop_class_of(flat) == NO_LOOPS


class TestCompilationLifecycle:
    def test_method_compiles_after_trigger(self):
        method = looping_method()
        vm, manager = managed_vm(method)
        for _ in range(30):
            vm.call(method.signature, 5)
        assert manager.compilations() >= 1
        assert vm.stats["compiled_invocations"] > 0

    def test_installation_is_delayed_by_compile_time(self):
        method = looping_method()
        vm, manager = managed_vm(method)
        for _ in range(10):
            vm.call(method.signature, 5)
        record = manager.records[0]
        assert record.installed_at >= record.requested_at \
            + record.compile_cycles

    def test_immediate_install_mode(self):
        method = looping_method()
        config = ControlConfig(immediate_install=True)
        vm, manager = managed_vm(method, config=config)
        for _ in range(10):
            vm.call(method.signature, 5)
        record = manager.records[0]
        assert record.installed_at == record.requested_at

    def test_escalation_to_higher_levels(self):
        method = looping_method()
        vm, manager = managed_vm(method)
        for _ in range(700):
            vm.call(method.signature, 20)
        levels = {r.level for r in manager.records}
        assert OptLevel.COLD in levels or OptLevel.WARM in levels
        assert max(levels) >= OptLevel.HOT

    def test_max_level_respected(self):
        method = looping_method()
        config = ControlConfig(max_level=OptLevel.WARM)
        vm, manager = managed_vm(method, config=config)
        for _ in range(700):
            vm.call(method.signature, 20)
        assert max(r.level for r in manager.records) <= OptLevel.WARM

    def test_compile_records_accumulate_time(self):
        method = looping_method()
        vm, manager = managed_vm(method)
        for _ in range(200):
            vm.call(method.signature, 10)
        assert manager.compile_time_total() == sum(
            r.compile_cycles for r in manager.records)

    def test_strategy_consulted(self):
        calls = []

        class Probe:
            prediction_cost_cycles = 50

            def choose_modifier(self, method, level, features):
                calls.append((method.signature, level))
                return None

        method = looping_method()
        vm, manager = managed_vm(method, strategy=Probe())
        for _ in range(30):
            vm.call(method.signature, 5)
        assert calls
        assert calls[0][0] == method.signature

    def test_failed_compile_disables_method(self):
        method = looping_method()

        class FailingManager(CompilationManager):
            def compile_method(self, method, level, state):
                return None

        vm = vm_with(method)
        compiler = JitCompiler(method_resolver=vm._methods.get)
        manager = FailingManager(compiler)
        vm.attach_manager(manager)
        for _ in range(40):
            vm.call(method.signature, 5)
        assert manager.compilations() == 0
        assert vm.stats["compiled_invocations"] == 0
