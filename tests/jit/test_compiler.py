"""The compile pipeline facade."""

import pytest

from repro.errors import CompilationError
from repro.features import NUM_FEATURES
from repro.jit.compiler import JitCompiler
from repro.jit.modifiers import Modifier
from repro.jit.opt.registry import transform_index
from repro.jit.plans import OptLevel
from repro.jvm.bytecode import JType

from tests.conftest import build_method, vm_with


@pytest.fixture
def compiler(sum_to_method):
    vm = vm_with(sum_to_method)
    return JitCompiler(method_resolver=vm._methods.get,
                       debug_check=True), sum_to_method


class TestCompile:
    def test_produces_executable_code(self, compiler, sum_to_method):
        jc, method = compiler
        compiled = jc.compile(method, OptLevel.WARM)
        vm = vm_with(sum_to_method)
        value, _t = compiled.execute(vm, [(10, JType.INT)])
        assert value == 45

    def test_features_attached(self, compiler):
        jc, method = compiler
        compiled = jc.compile(method, OptLevel.COLD)
        assert compiled.features.shape == (NUM_FEATURES,)

    def test_compile_cost_grows_with_level(self, compiler):
        jc, method = compiler
        costs = [jc.compile(method, lv).compile_cycles
                 for lv in OptLevel]
        assert costs[0] < costs[-1]

    def test_rejects_non_level(self, compiler):
        jc, method = compiler
        with pytest.raises(CompilationError):
            jc.compile(method, 2)

    def test_stats_accumulate(self, compiler):
        jc, method = compiler
        jc.compile(method, OptLevel.COLD)
        jc.compile(method, OptLevel.COLD)
        assert jc.stats["compilations"] == 2
        assert jc.stats["compile_cycles"] > 0


class TestModifierEffect:
    def test_full_mask_reduces_compile_cost(self, compiler):
        jc, method = compiler
        base = jc.compile(method, OptLevel.SCORCHING)
        masked = jc.compile(method, OptLevel.SCORCHING,
                            modifier=Modifier((1 << 58) - 1))
        assert masked.compile_cycles < base.compile_cycles

    def test_pass_log_reflects_modifier(self, compiler):
        jc, method = compiler
        off = transform_index("constantFolding")
        compiled = jc.compile(method, OptLevel.WARM,
                              modifier=Modifier.disabling([off]))
        ran = [name for name, _changed in compiled.pass_log]
        assert "constantFolding" not in ran
        assert "localConstantPropagation" in ran

    def test_strategy_modifier_used(self, compiler):
        jc, method = compiler

        class FixedStrategy:
            def choose_modifier(self, method, level, features):
                return Modifier.disabling([0, 1, 2])

        compiled = jc.compile(method, OptLevel.WARM,
                              strategy=FixedStrategy())
        assert compiled.modifier.count_disabled() == 3

    def test_explicit_modifier_beats_strategy(self, compiler):
        jc, method = compiler

        class Boom:
            def choose_modifier(self, *a):
                raise AssertionError("must not be consulted")

        compiled = jc.compile(method, OptLevel.COLD,
                              modifier=Modifier.null(),
                              strategy=Boom())
        assert compiled.modifier.is_null()

    def test_codegen_flags_masked(self, compiler):
        jc, method = compiler
        off = transform_index("instructionScheduling")
        base = jc.compile(method, OptLevel.HOT)
        masked = jc.compile(method, OptLevel.HOT,
                            modifier=Modifier.disabling([off]))
        base_flags = {n for n, c in base.pass_log}
        masked_flags = {n for n, c in masked.pass_log}
        assert "instructionScheduling" in base_flags
        assert "instructionScheduling" not in masked_flags
