"""Compilation-plan modifiers: bit vectors, queues, search strategies."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.jit.modifiers import (
    DEFAULT_L,
    Modifier,
    ModifierQueue,
    PROGRESSIVE_CAP,
    USES_PER_MODIFIER,
    progressive_modifiers,
    random_modifiers,
)
from repro.jit.opt.registry import NUM_TRANSFORMS


class TestModifier:
    def test_null_disables_nothing(self):
        null = Modifier.null()
        assert null.is_null()
        assert null.count_disabled() == 0
        assert all(not null.disabled(i) for i in range(NUM_TRANSFORMS))

    def test_disabling_specific_indices(self):
        m = Modifier.disabling([0, 7, 57])
        assert m.disabled(0) and m.disabled(7) and m.disabled(57)
        assert not m.disabled(1)
        assert m.count_disabled() == 3
        assert m.disabled_indices() == [0, 7, 57]

    def test_out_of_range_index_rejected(self):
        with pytest.raises(ValueError):
            Modifier.disabling([NUM_TRANSFORMS])

    def test_bits_masked_to_transform_space(self):
        m = Modifier(1 << 63)
        assert m.count_disabled() == 0  # bit 63 outside the 58-bit space

    def test_equality_and_hash(self):
        assert Modifier(5) == Modifier(5)
        assert hash(Modifier(5)) == hash(Modifier(5))
        assert Modifier(5) != Modifier(6)

    @given(st.integers(0, 2**NUM_TRANSFORMS - 1))
    def test_roundtrip_bits(self, bits):
        m = Modifier(bits)
        assert Modifier.disabling(m.disabled_indices()).bits == m.bits


class TestSearchStrategies:
    def test_search_space_is_2_to_58(self):
        assert NUM_TRANSFORMS == 58

    def test_progressive_round_zero_is_null(self):
        rng = np.random.default_rng(0)
        mods = progressive_modifiers(rng, 1, total_rounds=DEFAULT_L)
        assert mods[0].is_null()  # D_0 = 0

    def test_progressive_probability_grows(self):
        rng = np.random.default_rng(0)
        mods = progressive_modifiers(rng, 2000, total_rounds=2000)
        early = np.mean([m.count_disabled() for m in mods[:200]])
        late = np.mean([m.count_disabled() for m in mods[-200:]])
        assert late > early

    def test_progressive_cap_quarter(self):
        # At round L the expected disabled fraction is 0.25.
        rng = np.random.default_rng(1)
        mods = progressive_modifiers(rng, 300, total_rounds=300,
                                     start_round=299)
        mean_frac = np.mean([m.count_disabled() / NUM_TRANSFORMS
                             for m in mods])
        assert abs(mean_frac - PROGRESSIVE_CAP) < 0.05

    def test_progressive_rate_matches_paper(self):
        # 0.25 / 2000 = 0.000125 per round (paper §5).
        assert PROGRESSIVE_CAP / DEFAULT_L == pytest.approx(0.000125)

    def test_random_modifiers_diverse(self):
        rng = np.random.default_rng(0)
        mods = random_modifiers(rng, 100)
        assert len({m.bits for m in mods}) > 90

    def test_deterministic_given_seed(self):
        a = random_modifiers(np.random.default_rng(42), 10)
        b = random_modifiers(np.random.default_rng(42), 10)
        assert [m.bits for m in a] == [m.bits for m in b]


class TestModifierQueue:
    def test_null_every_third(self):
        mods = [Modifier(1), Modifier(2)]
        queue = ModifierQueue(mods, uses_per_modifier=100)
        seen = [queue.next_modifier() for _ in range(9)]
        for i, m in enumerate(seen, start=1):
            if i % 3 == 0:
                assert m.is_null()
            else:
                assert not m.is_null()

    def test_retirement_after_uses(self):
        mods = [Modifier(1), Modifier(2)]
        queue = ModifierQueue(mods, uses_per_modifier=2, null_every=0)
        out = [queue.next_modifier() for _ in range(4)]
        assert [m.bits for m in out] == [1, 1, 2, 2]
        assert queue.exhausted()
        assert queue.next_modifier() is None

    def test_default_uses_per_modifier_is_50(self):
        assert USES_PER_MODIFIER == 50

    def test_remaining_counts_down(self):
        queue = ModifierQueue([Modifier(1)], uses_per_modifier=1,
                              null_every=0)
        assert queue.remaining() == 1
        queue.next_modifier()
        assert queue.remaining() == 0
