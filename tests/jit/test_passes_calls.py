"""Inlining and call optimizations."""

from repro.jit.codegen.lower import lower_method
from repro.jit.ir.ilgen import generate_il
from repro.jit.ir.tree import ILOp, Node
from repro.jit.opt.base import PassContext
from repro.jit.opt.calls import (
    AggressiveInlining,
    PureCallElimination,
    TrivialInlining,
)
from repro.jvm.bytecode import JType

from tests.conftest import build_method, vm_with


def count_calls(il, signature=None):
    return sum(1 for _b, t in il.iter_treetops() for n in t.walk()
               if n.op is ILOp.CALL
               and (signature is None or n.value == signature))


def tiny_callee():
    def body(a):
        a.load(0).iconst(3).mul().load(1).add().retval()
    return build_method(body, params=(JType.INT, JType.INT),
                        num_temps=0, name="tiny")


def branchy_callee():
    def body(a):
        a.load(0).ifle("neg")
        a.load(0).iconst(2).mul().retval()
        a.mark("neg")
        a.load(0).neg().retval()
    return build_method(body, num_temps=0, name="branchy")


def make_caller(callee, name="caller"):
    def body(a):
        nargs = len(callee.param_types)
        for i in range(nargs):
            a.load(0)
        a.call(callee.signature, nargs).store(1)
        a.load(1).load(0).add().retval()
    return build_method(body, num_temps=1, name=name)


def run_inline(pass_obj, caller, callee):
    vm = vm_with(caller, callee)
    il, _ = generate_il(caller,
                        resolve_return_type=lambda s: JType.INT)
    ctx = PassContext(il, resolver=vm._methods.get)
    changed = pass_obj.execute(ctx)
    il.check()
    return vm, il, changed


def check_equiv(vm, caller, il, *argvals):
    code, _ = lower_method(il)
    for v in argvals:
        expected = vm.call(caller.signature, v)
        actual, _t = code.execute(vm, [(v, JType.INT)])
        assert actual == expected, (v, actual, expected)


class TestTrivialInlining:
    def test_single_block_callee_inlined(self):
        callee = tiny_callee()
        caller = make_caller(callee)
        vm, il, changed = run_inline(TrivialInlining(), caller, callee)
        assert changed
        assert count_calls(il, callee.signature) == 0
        check_equiv(vm, caller, il, 0, 5, -3)

    def test_without_resolver_inert(self):
        callee = tiny_callee()
        caller = make_caller(callee)
        il, _ = generate_il(caller,
                            resolve_return_type=lambda s: JType.INT)
        ctx = PassContext(il, resolver=None)
        assert not TrivialInlining().execute(ctx)

    def test_multiblock_callee_rejected(self):
        callee = branchy_callee()
        caller = make_caller(callee)
        _vm, il, changed = run_inline(TrivialInlining(), caller, callee)
        assert not changed

    def test_direct_recursion_not_inlined(self):
        def body(a):
            a.load(0).call("T.rec(INT)INT", 1).retval()
        rec = build_method(body, num_temps=0, name="rec")
        vm = vm_with(rec)
        il, _ = generate_il(rec,
                            resolve_return_type=lambda s: JType.INT)
        ctx = PassContext(il, resolver=vm._methods.get)
        assert not TrivialInlining().execute(ctx)

    def test_argument_cast_to_declared_type(self):
        def callee_body(a):
            a.load(0).retval()
        callee = build_method(callee_body, params=(JType.BYTE,),
                              ret=JType.INT, num_temps=0, name="takes_b")

        def caller_body(a):
            a.load(0).call(callee.signature, 1).retval()
        caller = build_method(caller_body, num_temps=0, name="c2")
        vm, il, changed = run_inline(TrivialInlining(), caller, callee)
        assert changed
        # 300 masked to byte = 44
        check_equiv(vm, caller, il, 300)


class TestAggressiveInlining:
    def test_multiblock_callee_inlined(self):
        callee = branchy_callee()
        caller = make_caller(callee)
        vm, il, changed = run_inline(AggressiveInlining(), caller,
                                     callee)
        assert changed
        assert count_calls(il, callee.signature) == 0
        check_equiv(vm, caller, il, 4, 0, -4)

    def test_handlerful_callee_rejected(self):
        from repro.jvm.classfile import Handler

        def body(a):
            start = a.here()
            a.new("app/E").athrow()
            handler = a.here()
            a.pop().iconst(1).retval()
            return [Handler(start, handler, handler, "app/E")]
        callee = build_method(body, num_temps=0, name="handled")
        caller = make_caller(callee)
        _vm, il, changed = run_inline(AggressiveInlining(), caller,
                                      callee)
        assert not changed

    def test_exception_coverage_inherited(self):
        from repro.jvm.classfile import Handler

        def thrower(a):
            a.new("app/E").athrow()
        callee = build_method(thrower, params=(JType.INT,),
                              ret=JType.INT, num_temps=0, name="boom")

        def caller_body(a):
            start = a.here()
            a.load(0).call(callee.signature, 1).store(1)
            a.load(1).retval()
            handler = a.here()
            a.pop().iconst(-1).retval()
            return [Handler(start, handler, handler, "app/E")]
        caller = build_method(caller_body, num_temps=1, name="cat")
        vm, il, changed = run_inline(AggressiveInlining(), caller,
                                     callee)
        assert changed
        check_equiv(vm, caller, il, 7)


class TestPureCallElimination:
    def test_discarded_math_call_removed(self):
        def body(a):
            a.load(0).cast(JType.DOUBLE).call("java/lang/Math.sqrt", 1)
            a.pop()
            a.load(0).retval()
        method = build_method(body, num_temps=2)
        il, _ = generate_il(method)
        # GlobalDCE converts the dead anchored store to a bare treetop.
        from repro.jit.opt.globalopts import GlobalDCE
        ctx = PassContext(il)
        GlobalDCE().execute(ctx)
        assert PureCallElimination().execute(ctx)
        assert count_calls(il) == 0

    def test_used_math_call_kept(self):
        def body(a):
            a.load(0).call("java/lang/Math.abs", 1).retval()
        method = build_method(body, params=(JType.DOUBLE,),
                              ret=JType.DOUBLE, num_temps=1)
        il, _ = generate_il(method)
        ctx = PassContext(il)
        assert not PureCallElimination().execute(ctx)
        assert count_calls(il) == 1
