"""Compilation plans: the five levels and the transformation registry."""

import pytest

from repro.errors import CompilationError
from repro.jit.opt.registry import (
    ALL_TRANSFORMS,
    NUM_TRANSFORMS,
    transform_by_name,
    transform_index,
    transform_names,
)
from repro.jit.plans import CompilationPlan, OptLevel, default_plans


class TestRegistry:
    def test_exactly_58_controllable_transforms(self):
        assert NUM_TRANSFORMS == 58  # paper §5

    def test_names_unique(self):
        names = transform_names()
        assert len(set(names)) == len(names)

    def test_lookup_by_name_and_index(self):
        for i, name in enumerate(transform_names()):
            assert transform_index(name) == i
            assert transform_by_name(name).name == name

    def test_unknown_name_raises(self):
        with pytest.raises(CompilationError):
            transform_by_name("fuseEverything")
        with pytest.raises(CompilationError):
            transform_index("fuseEverything")

    def test_cost_factors_positive(self):
        for pass_obj in ALL_TRANSFORMS:
            assert pass_obj.cost_factor > 0


class TestPlans:
    def test_five_levels(self):
        plans = default_plans()
        assert set(plans) == set(OptLevel)

    def test_cold_has_about_20_entries(self):
        assert len(default_plans()[OptLevel.COLD]) == 20  # paper §2

    def test_scorching_exceeds_170_entries(self):
        assert len(default_plans()[OptLevel.SCORCHING]) > 170

    def test_plan_sizes_monotone(self):
        plans = default_plans()
        sizes = [len(plans[lv]) for lv in OptLevel]
        assert sizes == sorted(sizes)

    def test_plans_repeat_cleanup_passes(self):
        plan = default_plans()[OptLevel.SCORCHING]
        from collections import Counter
        counts = Counter(plan.entries)
        assert counts["treeCleanup"] >= 3

    def test_every_entry_is_registered(self):
        for plan in default_plans().values():
            for name in plan.entries:
                transform_by_name(name)

    def test_invalid_entry_rejected_eagerly(self):
        with pytest.raises(CompilationError):
            CompilationPlan(OptLevel.COLD, ["notATransform"])

    def test_distinct_transforms_subset_of_registry(self):
        plan = default_plans()[OptLevel.SCORCHING]
        assert set(plan.distinct_transforms()) <= set(transform_names())

    def test_level_labels(self):
        assert OptLevel.VERY_HOT.label == "very hot"
        assert OptLevel.COLD.label == "cold"
