"""Superop-engine parity: fused block execution must be
observationally identical to the per-instruction engines it outruns.

Mirrors ``tests/jvm/test_dispatch_parity.py`` one engine up, with the
same layers of evidence:

* hypothesis properties over generated programs -- same result, same
  virtual cycle count, same heap statistics under legacy, predecoded
  and superop execution, at every host-tier optimization level;
* virtual-time invariance on real benchmarks -- full adaptive runs of
  compress and db produce bit-identical cycle totals, compile counts,
  retired-instruction counts and *branch profiles* under all three
  engines;
* the warm-start path -- bodies deserialized from a cold code cache
  are re-fused at load time, so a warm run executes superop blocks
  immediately and still lands on the same cycles;
* a CLI smoke test -- ``repro run`` under each ``REPRO_DISPATCH``
  value prints the identical result line;
* the telemetry counter series -- ``vm.superop_blocks`` and
  ``jit.queue_depth`` appear as Perfetto counter records on the
  sampling cadence, without perturbing virtual time.
"""

import contextlib
import os
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

import repro.jit.codegen.native as native_mod
import repro.jvm.interpreter as interp_mod
from repro import telemetry
from repro.codecache import CodeCache, CodeCacheConfig
from repro.jit.compiler import JitCompiler
from repro.jit.control import CompilationManager, ControlConfig
from repro.jit.plans import OptLevel
from repro.jvm.vm import VirtualMachine
from repro.workloads import specjvm_program
from tests.jit.test_equivalence import args_for, build_vm, same_outcome

ENGINES = ("legacy", "predecode", "superop")

#: Guest-visible observables that must not depend on the engine.
HEAP_KEYS = ("allocations", "monitor_ops")

#: Levels at which the host tier fuses (the gate is ``HOT``).
HOST_LEVELS = (OptLevel.HOT, OptLevel.VERY_HOT, OptLevel.SCORCHING)


@contextlib.contextmanager
def engine(name):
    """Run a block under one of the three dispatch engines."""
    saved = (interp_mod.USE_PREDECODE, native_mod.USE_PREDECODE,
             native_mod.USE_SUPEROP)
    interp_mod.USE_PREDECODE = name != "legacy"
    native_mod.USE_PREDECODE = name != "legacy"
    native_mod.USE_SUPEROP = name == "superop"
    try:
        yield
    finally:
        (interp_mod.USE_PREDECODE, native_mod.USE_PREDECODE,
         native_mod.USE_SUPEROP) = saved


def _observe_compiled(seed, method_sig, args, level):
    vm, program = build_vm(seed)
    method = vm._methods[method_sig]
    compiler = JitCompiler(method_resolver=vm._methods.get)
    compiled = compiler.compile(method, level)
    try:
        result = compiled.execute(vm, list(args))
    except Exception as exc:  # guest exception escaping is an outcome
        result = ("raised", type(exc).__name__, str(exc))
    return (result, vm.clock.now(),
            tuple(vm.stats[k] for k in HEAP_KEYS),
            vm.stats["retired_instructions"],
            vm.stats["superop_blocks"])


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2_000),
       level=st.sampled_from(HOST_LEVELS),
       arg_seed=st.integers(0, 50))
def test_engines_agree_at_host_levels(seed, level, arg_seed):
    """Random method at a host-tier level: all three engines agree on
    (result, cycles, heap stats, retired instructions), and the superop
    engine actually dispatched fused blocks."""
    vm, program = build_vm(seed)
    ran_superop = False
    for method in program.methods():
        args = args_for(method, arg_seed)
        observed = {}
        for name in ENGINES:
            with engine(name):
                observed[name] = _observe_compiled(
                    seed, method.signature, args, level)
        base = observed["legacy"]
        for name in ("predecode", "superop"):
            got = observed[name]
            label = f"{method.signature}@{level.name} {name}"
            assert same_outcome(got[0], base[0]), (
                f"{label}: result {got[0]!r} != {base[0]!r}")
            assert got[1] == base[1], (
                f"{label}: cycles {got[1]} != {base[1]}")
            assert got[2] == base[2], (
                f"{label}: heap stats {got[2]} != {base[2]}")
        # Retired instructions are engine-invariant (unlike host_steps).
        assert (observed["predecode"][3] == observed["superop"][3]), (
            f"{method.signature}: retired_instructions diverged")
        ran_superop = ran_superop or observed["superop"][4] > 0
    assert ran_superop, "no method exercised the superop engine"


#: Low thresholds so adaptive runs reach the host tier in a few
#: iterations instead of hundreds.
FAST_HOT_TRIGGERS = {
    OptLevel.COLD: (4, 2, 2),
    OptLevel.WARM: (8, 4, 3),
    OptLevel.HOT: (16, 8, 5),
    OptLevel.VERY_HOT: (600, 300, 150),
    OptLevel.SCORCHING: (2000, 1000, 500),
}


def _adaptive_run(name, iterations=6, code_cache=None):
    """Full adaptive run; returns every observable that must be
    engine-invariant, plus the engine-dependent superop block count."""
    program = specjvm_program(name)
    vm = VirtualMachine()
    vm.load_program(program)
    manager = CompilationManager(
        JitCompiler(method_resolver=vm._methods.get),
        config=ControlConfig(triggers=dict(FAST_HOT_TRIGGERS)),
        code_cache=code_cache)
    vm.attach_manager(manager)
    results = tuple(vm.call(program.entry, 3)
                    for _ in range(iterations))
    compile_counts = tuple(sorted(
        (sig, state.compile_count)
        for sig, state in manager.states.items()))
    profiles = tuple(sorted(
        (sig, tuple(sorted((state.active.profile or {}).items())))
        for sig, state in manager.states.items()
        if state.active is not None))
    invariant = (results, vm.clock.now(),
                 tuple(vm.stats[k] for k in HEAP_KEYS),
                 vm.stats["retired_instructions"],
                 manager.total_compile_cycles, compile_counts,
                 profiles)
    return invariant, vm.stats["superop_blocks"]


@pytest.mark.parametrize("name", ["compress", "db"])
def test_adaptive_benchmarks_invariant(name):
    """Acceptance gate: adaptive runs of real benchmarks are
    bit-identical -- cycles, results, retired instructions, compile
    counts/cycles and branch profiles -- under all three engines, and
    the superop engine demonstrably ran fused blocks."""
    observed = {}
    for eng in ENGINES:
        with engine(eng):
            observed[eng] = _adaptive_run(name)
    assert observed["legacy"][0] == observed["predecode"][0]
    assert observed["legacy"][0] == observed["superop"][0]
    assert observed["legacy"][1] == observed["predecode"][1] == 0
    assert observed["superop"][1] > 0, (
        "adaptive run never dispatched a superop block")


def test_warm_start_rebuilds_superop(tmp_path):
    """Bodies loaded from a cold code cache are re-fused at install:
    the warm run executes superop blocks from its first compiled
    invocation and stays cycle-identical to the per-instruction
    engines on the same warm cache."""
    def cache(**overrides):
        return CodeCache(CodeCacheConfig(
            enabled=True, directory=str(tmp_path / "cc"), **overrides))

    with engine("superop"):
        cold, cold_blocks = _adaptive_run("compress", code_cache=cache())
    assert cold_blocks > 0
    # Read-only warm probes: each engine must see the *same* cold
    # cache, not one enriched by the previous engine's warm stores.
    warm = {}
    for eng in ENGINES:
        with engine(eng):
            warm[eng], blocks = _adaptive_run(
                "compress", code_cache=cache(read_only=True))
            if eng == "superop":
                assert blocks > 0, (
                    "warm install did not rebuild superop programs")
    assert warm["legacy"] == warm["predecode"] == warm["superop"]
    # The warm runs really took the deserialization path: compile
    # cycles collapse to relocation charges.
    assert warm["superop"][4] < cold[4]


@pytest.mark.parametrize("dispatch", ["legacy", "predecode", "superop"])
def test_cli_smoke_each_engine(dispatch, tmp_path):
    """``repro run`` prints the identical result/cycle line whichever
    ``REPRO_DISPATCH`` value is exported."""
    env = dict(os.environ,
               REPRO_DISPATCH=dispatch,
               PYTHONPATH="src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro", "run", "compress"],
        capture_output=True, text=True, env=env, cwd=_repo_root())
    assert proc.returncode == 0, proc.stderr
    first = proc.stdout.splitlines()[0]
    assert first == "compress: result 336, 289,885 cycles, " \
                    "53 invocations", first


def _repo_root():
    return os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))


def test_superop_counter_series():
    """Sampling ticks emit ``vm.superop_blocks`` and
    ``jit.queue_depth`` counter records ("C" phase, numeric value),
    and recording them leaves virtual time untouched."""
    with engine("superop"):
        baseline, _ = _adaptive_run("compress")
        tracer = telemetry.Tracer(
            sink=telemetry.RingBufferSink(capacity=1 << 16))
        with telemetry.tracing(tracer):
            traced, blocks = _adaptive_run("compress")
    assert blocks > 0
    assert traced == baseline  # tracer observes, never advances
    counters = [ev for ev in tracer.events() if ev["ph"] == "C"]
    names = {ev["name"] for ev in counters}
    assert "vm.superop_blocks" in names
    assert "jit.queue_depth" in names
    series = [ev["args"]["value"] for ev in counters
              if ev["name"] == "vm.superop_blocks"]
    assert series == sorted(series), (
        "superop block counter must be monotonic")
    assert series[-1] > 0
    for ev in counters:
        assert ev["vts"] is not None  # stamped with virtual time
