"""IL generation: structure, anchoring, checks, handlers."""

import pytest

from repro.errors import CompilationError
from repro.jvm.bytecode import JType
from repro.jvm.classfile import Handler
from repro.jit.ir.ilgen import field_type, generate_il
from repro.jit.ir.tree import ILOp

from tests.conftest import build_method


def gen(body_fn, **kwargs):
    method = build_method(body_fn, **kwargs)
    il, cost = generate_il(method)
    return il, cost


class TestBlocks:
    def test_loop_produces_four_blocks(self, sum_to_method):
        il, _ = generate_il(sum_to_method)
        assert len(il.blocks) == 4
        il.check()

    def test_straightline_single_block(self):
        il, _ = gen(lambda a: a.load(0).iconst(1).add().retval())
        assert len(il.blocks) == 1

    def test_cost_positive_and_scales(self):
        il1, c1 = gen(lambda a: a.load(0).retval())
        il2, c2 = gen(lambda a: (a.load(0).iconst(1).add().iconst(2)
                                 .add().iconst(3).add().retval()))
        assert 0 < c1 < c2

    def test_fallthrough_set_for_if_blocks(self, sum_to_method):
        il, _ = generate_il(sum_to_method)
        for block in il.blocks:
            term = block.terminator
            if term is not None and term.op is ILOp.IF:
                assert block.fallthrough is not None


class TestAnchoring:
    def test_call_result_is_anchored(self):
        def body(a):
            a.load(0).call("java/lang/Math.abs", 1)
            a.load(0).add().retval()
        il, _ = gen(body, params=(JType.DOUBLE,), ret=JType.DOUBLE)
        stores = [t for _b, t in il.iter_treetops()
                  if t.op is ILOp.STORE
                  and t.children[0].op is ILOp.CALL]
        assert len(stores) == 1

    def test_allocation_is_anchored(self):
        il, _ = gen(lambda a: a.new("C").getfield("x").retval())
        stores = [t for _b, t in il.iter_treetops()
                  if t.op is ILOp.STORE
                  and t.children[0].op is ILOp.NEW]
        assert len(stores) == 1

    def test_void_call_becomes_treetop(self):
        def callee(a):
            a.ret()
        callee_m = build_method(callee, params=(), ret=JType.VOID,
                                num_temps=0, name="v")

        def body(a):
            a.call(callee_m.signature, 0)
            a.iconst(0).retval()
        method = build_method(body)
        il, _ = generate_il(
            method, resolve_return_type=lambda s: JType.VOID)
        tts = [t for _b, t in il.iter_treetops()
               if t.op is ILOp.TREETOP
               and t.children[0].op is ILOp.CALL]
        assert len(tts) == 1


class TestChecks:
    def test_getfield_emits_nullchk(self):
        il, _ = gen(lambda a: a.new("C").getfield("x").retval())
        assert any(t.op is ILOp.NULLCHK
                   for _b, t in il.iter_treetops())

    def test_aload_emits_bndchk(self):
        def body(a):
            a.iconst(3).newarray(JType.INT).store(1)
            a.load(1).iconst(0).aload().retval()
        il, _ = gen(body)
        assert any(t.op is ILOp.BNDCHK
                   for _b, t in il.iter_treetops())

    def test_astore_emits_both_checks(self):
        def body(a):
            a.iconst(3).newarray(JType.INT).store(1)
            a.load(1).iconst(0).load(0).astore()
            a.iconst(0).retval()
        il, _ = gen(body)
        ops = [t.op for _b, t in il.iter_treetops()]
        assert ILOp.NULLCHK in ops and ILOp.BNDCHK in ops


class TestTypes:
    def test_field_type_convention(self):
        assert field_type("weight_d") is JType.DOUBLE
        assert field_type("count") is JType.INT
        assert field_type("link_o") is JType.OBJECT
        assert field_type("buf_a") is JType.ADDRESS
        assert field_type("big_l") is JType.LONG

    def test_array_elem_type_flows_to_aload(self):
        def body(a):
            a.iconst(3).newarray(JType.DOUBLE).store(1)
            a.load(1).iconst(0).aload().retval()
        il, _ = gen(body, ret=JType.DOUBLE)
        aloads = [n for _b, t in il.iter_treetops()
                  for n in t.walk() if n.op is ILOp.ALOAD]
        assert aloads and aloads[0].type is JType.DOUBLE

    def test_param_array_elems_hint(self):
        def body(a):
            a.load(0).iconst(0).aload().retval()
        il, _ = gen(body, params=(JType.ADDRESS,), ret=JType.DOUBLE,
                    array_elems={0: JType.DOUBLE})
        aloads = [n for _b, t in il.iter_treetops()
                  for n in t.walk() if n.op is ILOp.ALOAD]
        assert aloads[0].type is JType.DOUBLE

    def test_slot_type_from_store(self):
        def body(a):
            a.load(0).cast(JType.DOUBLE).store(1)
            a.load(1).retval()
        il, _ = gen(body, ret=JType.DOUBLE)
        loads = [n for _b, t in il.iter_treetops()
                 for n in t.walk()
                 if n.op is ILOp.LOAD and n.value == 1]
        assert all(n.type is JType.DOUBLE for n in loads)


class TestHandlers:
    def test_handler_block_starts_with_catch(self):
        def body(a):
            start = a.here()
            a.new("app/E").athrow()
            handler = a.here()
            a.pop().iconst(1).retval()
            return [Handler(start, handler, handler, "app/E")]
        il, _ = gen(body)
        handler_blocks = [b for b in il.blocks if b.is_handler]
        assert len(handler_blocks) == 1
        assert il.handlers[0].handler_bid == handler_blocks[0].bid

    def test_handler_coverage_maps_blocks(self):
        def body(a):
            start = a.here()
            a.load(0).iconst(0).div().retval()
            handler = a.here()
            a.pop().iconst(-1).retval()
            return [Handler(start, handler, handler)]
        il, _ = gen(body)
        assert il.handlers
        assert il.handlers[0].covered


class TestStackDiscipline:
    def test_dup_of_pure_value(self):
        il, _ = gen(lambda a: a.load(0).dup().add().retval())
        il.check()

    def test_cross_block_stack_rejected_on_cond_branch(self):
        def body(a):
            a.load(0).load(0).iflt("x")  # residual value on stack
            a.retval()
            a.mark("x")
            a.retval()
        method = build_method(body)
        with pytest.raises(CompilationError, match="residual"):
            generate_il(method)
