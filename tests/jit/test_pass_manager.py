"""The pass framework: applicability, modifiers, cost, corruption."""

import pytest

from repro.errors import CompilationError
from repro.jit.ir.ilgen import generate_il
from repro.jit.ir.tree import ILOp, Node
from repro.jit.modifiers import Modifier
from repro.jit.opt.base import Pass, PassContext, PassManager
from repro.jit.opt.registry import transform_index
from repro.jvm.bytecode import JType

from tests.conftest import build_method


@pytest.fixture
def loop_il(sum_to_method):
    il, _ = generate_il(sum_to_method)
    return il


class TestPassContext:
    def test_facts_computed(self, loop_il):
        ctx = PassContext(loop_il)
        facts = ctx.facts()
        assert facts["has_loops"]
        assert not facts["has_allocations"]
        assert not facts["is_strictfp"]

    def test_cfg_cached_until_invalidated(self, loop_il):
        ctx = PassContext(loop_il)
        first = ctx.cfg()
        assert ctx.cfg() is first
        ctx.invalidate()
        assert ctx.cfg() is not first

    def test_charge_scales_with_cost_factor(self, loop_il):
        ctx = PassContext(loop_il)

        class Cheap(Pass):
            name = "cheap"
            cost_factor = 0.5

        class Dear(Pass):
            name = "dear"
            cost_factor = 5.0

        ctx.charge(Cheap(), 100)
        cheap_cost = ctx.cost
        ctx.charge(Dear(), 100)
        assert ctx.cost - cheap_cost == 10 * cheap_cost


class TestApplicability:
    def test_requires_gating(self, loop_il):
        class NeedsMonitors(Pass):
            name = "nm"
            requires = ("has_monitors",)

            def run(self, ctx):  # pragma: no cover
                raise AssertionError("must not run")

        ctx = PassContext(loop_il)
        assert not NeedsMonitors().execute(ctx)

    def test_charges_even_when_skipped(self, loop_il):
        class NeedsMonitors(Pass):
            name = "nm"
            requires = ("has_monitors",)

            def run(self, ctx):  # pragma: no cover
                raise AssertionError

        ctx = PassContext(loop_il)
        NeedsMonitors().execute(ctx)
        assert ctx.cost > 0


class TestPassManager:
    def test_runs_plan_in_order(self, loop_il):
        manager = PassManager(["constantFolding", "localDCE"])
        _il, cost, log = manager.optimize(loop_il)
        assert [name for name, _c in log] == ["constantFolding",
                                              "localDCE"]
        assert cost > 0

    def test_modifier_suppresses_every_occurrence(self, loop_il):
        entries = ["constantFolding", "localDCE", "constantFolding"]
        off = Modifier.disabling([transform_index("constantFolding")])
        manager = PassManager(entries, modifier=off)
        _il, _cost, log = manager.optimize(loop_il)
        assert [name for name, _c in log] == ["localDCE"]

    def test_unknown_entry_raises(self, loop_il):
        manager = PassManager(["definitelyNotAPass"])
        with pytest.raises(CompilationError):
            manager.optimize(loop_il)

    def test_debug_check_catches_corruption(self, loop_il):
        class Corruptor(Pass):
            name = "constantFolding"  # reuse a registered name

            def run(self, ctx):
                # Illegally nest a treetop inside an expression.
                block = ctx.il.blocks[0]
                bad = Node(ILOp.STORE, JType.INT,
                           (Node(ILOp.RETURN, JType.INT,
                                 (Node.const(JType.INT, 1),)),), 0)
                block.treetops.insert(0, bad)
                return True

        ctx = PassContext(loop_il, debug_check=True)
        with pytest.raises(CompilationError, match="corrupted"):
            Corruptor().execute(ctx)
