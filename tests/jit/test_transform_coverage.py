"""Meta-test: no dead transformations.

Every one of the 58 controllable transformations must actually change
some method of the synthetic suites under the scorching plan.  A
transformation that never fires would be pure noise to the learning
process (disabling it is always free), so this guards both compiler
health and training-data quality.
"""

import pytest

from repro.jit.ir.ilgen import generate_il
from repro.jit.opt.registry import transform_names
from repro.jit.opt.trace import TracingManager
from repro.jit.plans import OptLevel, default_plans
from repro.workloads import dacapo_program, specjvm_program

#: Benchmarks whose methods jointly exercise the full transformation set.
_PROGRAMS = (
    ("specjvm", "mtrt"),
    ("specjvm", "javac"),
    ("specjvm", "compress"),
    ("specjvm", "jess"),
    ("specjvm", "db"),
    ("dacapo", "h2"),
    ("dacapo", "sunflow"),
)


@pytest.mark.slow
def test_every_transformation_fires_on_the_suites():
    plan = default_plans()[OptLevel.SCORCHING]
    fired = set()
    remaining = set(transform_names())
    for suite, name in _PROGRAMS:
        program = (specjvm_program(name) if suite == "specjvm"
                   else dacapo_program(name))
        resolver = {m.signature: m for m in program.methods()}.get

        def rtype(sig, resolver=resolver):
            method = resolver(sig)
            return method.return_type if method else None

        for method in program.methods():
            il, _ = generate_il(method, resolve_return_type=rtype)
            tracer = TracingManager(plan.entries, resolver=resolver)
            tracer.optimize(il)
            fired |= set(tracer.changed_passes())
        remaining = set(transform_names()) - fired
        if not remaining:
            break
    assert not remaining, (
        f"transformations that never fired: {sorted(remaining)}")
