"""Control-flow passes."""

from repro.jit.ir.block import ILBlock, ILMethod
from repro.jit.ir.cfg import CFGInfo
from repro.jit.ir.ilgen import generate_il
from repro.jit.ir.tree import ILOp, Node
from repro.jit.opt.base import PassContext
from repro.jit.opt.controlflow import (
    BlockOrdering,
    BranchFolding,
    BranchReversal,
    EmptyBlockMerging,
    JumpThreading,
    LoopCanonicalization,
    TailDuplication,
    UnreachableCodeElimination,
)
from repro.jvm.bytecode import Instr, JType, Op
from repro.jvm.classfile import JMethod

from tests.conftest import build_method


def iconst(v):
    return Node.const(JType.INT, v)


def iload(s):
    return Node.load(s, JType.INT)


def method_shell(num_args=1):
    return JMethod("T", "m", (JType.INT,) * num_args, JType.INT,
                   [Instr(Op.LOADCONST, JType.INT, 0),
                    Instr(Op.RETVAL)], num_temps=0)


def run_pass(pass_obj, il):
    changed = pass_obj.execute(PassContext(il))
    il.check()
    return changed


class TestBranchFolding:
    def _il(self, cond_value):
        b0 = ILBlock(0)
        b0.append(Node(ILOp.IF, JType.VOID, (iconst(cond_value),),
                       ("ne", 2)))
        b0.fallthrough = 1
        b1 = ILBlock(1)
        b1.append(Node(ILOp.RETURN, JType.INT, (iconst(10),)))
        b2 = ILBlock(2)
        b2.append(Node(ILOp.RETURN, JType.INT, (iconst(20),)))
        return ILMethod(method_shell(), [b0, b1, b2], 1)

    def test_taken_branch_becomes_goto(self):
        il = self._il(1)
        assert run_pass(BranchFolding(), il)
        assert il.blocks[0].terminator.op is ILOp.GOTO
        assert il.blocks[0].terminator.value == 2

    def test_untaken_branch_removed(self):
        il = self._il(0)
        assert run_pass(BranchFolding(), il)
        assert il.blocks[0].terminator is None
        assert il.blocks[0].fallthrough == 1

    def test_variable_condition_untouched(self):
        b0 = ILBlock(0)
        b0.append(Node(ILOp.IF, JType.VOID, (iload(0),), ("ne", 1)))
        b0.fallthrough = 1
        b1 = ILBlock(1)
        b1.append(Node(ILOp.RETURN, JType.INT, (iconst(0),)))
        il = ILMethod(method_shell(), [b0, b1], 1)
        assert not run_pass(BranchFolding(), il)


class TestJumpThreading:
    def test_goto_chain_threaded(self):
        b0 = ILBlock(0)
        b0.append(Node(ILOp.GOTO, value=1))
        b1 = ILBlock(1)
        b1.append(Node(ILOp.GOTO, value=2))
        b2 = ILBlock(2)
        b2.append(Node(ILOp.RETURN, JType.INT, (iconst(1),)))
        il = ILMethod(method_shell(), [b0, b1, b2], 1)
        assert run_pass(JumpThreading(), il)
        assert il.blocks[0].terminator.value == 2

    def test_goto_cycle_not_infinite(self):
        b0 = ILBlock(0)
        b0.append(Node(ILOp.GOTO, value=1))
        b1 = ILBlock(1)
        b1.append(Node(ILOp.GOTO, value=2))
        b2 = ILBlock(2)
        b2.append(Node(ILOp.GOTO, value=1))
        il = ILMethod(method_shell(), [b0, b1, b2], 1)
        run_pass(JumpThreading(), il)  # must terminate


class TestUnreachable:
    def test_dead_block_removed(self):
        b0 = ILBlock(0)
        b0.append(Node(ILOp.RETURN, JType.INT, (iconst(1),)))
        b1 = ILBlock(1)
        b1.append(Node(ILOp.RETURN, JType.INT, (iconst(2),)))
        il = ILMethod(method_shell(), [b0, b1], 1)
        assert run_pass(UnreachableCodeElimination(), il)
        assert len(il.blocks) == 1

    def test_all_reachable_unchanged(self, sum_to_method):
        il, _ = generate_il(sum_to_method)
        assert not run_pass(UnreachableCodeElimination(), il)


class TestEmptyBlockMerging:
    def test_straightline_chain_merged(self):
        b0 = ILBlock(0)
        b0.append(Node(ILOp.STORE, JType.INT, (iconst(1),), 0))
        b0.fallthrough = 1
        b1 = ILBlock(1)
        b1.append(Node(ILOp.RETURN, JType.INT, (iload(0),)))
        il = ILMethod(method_shell(), [b0, b1], 1)
        assert run_pass(EmptyBlockMerging(), il)
        assert len(il.blocks) == 1
        assert il.blocks[0].terminator.op is ILOp.RETURN

    def test_join_block_not_merged(self):
        # b2 has two predecessors: must stay separate.
        b0 = ILBlock(0)
        b0.append(Node(ILOp.IF, JType.VOID, (iload(0),), ("ne", 2)))
        b0.fallthrough = 1
        b1 = ILBlock(1)
        b1.fallthrough = 2
        b1.append(Node(ILOp.STORE, JType.INT, (iconst(5),), 0))
        b2 = ILBlock(2)
        b2.append(Node(ILOp.RETURN, JType.INT, (iload(0),)))
        il = ILMethod(method_shell(), [b0, b1, b2], 1)
        run_pass(EmptyBlockMerging(), il)
        assert len(il.blocks) == 3


class TestBlockOrdering:
    def test_goto_target_moved_adjacent(self):
        b0 = ILBlock(0)
        b0.append(Node(ILOp.GOTO, value=2))
        b1 = ILBlock(1)
        b1.append(Node(ILOp.RETURN, JType.INT, (iconst(1),)))
        b2 = ILBlock(2)
        b2.append(Node(ILOp.GOTO, value=1))
        il = ILMethod(method_shell(), [b0, b1, b2], 1)
        assert run_pass(BlockOrdering(), il)
        assert [b.bid for b in il.blocks] == [0, 2, 1]

    def test_entry_stays_first(self, sum_to_method):
        il, _ = generate_il(sum_to_method)
        entry = il.blocks[0].bid
        run_pass(BlockOrdering(), il)
        assert il.blocks[0].bid == entry


class TestTailDuplication:
    def test_small_return_block_duplicated(self):
        b0 = ILBlock(0)
        b0.append(Node(ILOp.IF, JType.VOID, (iload(0),), ("ne", 2)))
        b0.fallthrough = 1
        b1 = ILBlock(1)
        b1.append(Node(ILOp.GOTO, value=3))
        b2 = ILBlock(2)
        b2.append(Node(ILOp.GOTO, value=3))
        b3 = ILBlock(3)
        b3.append(Node(ILOp.RETURN, JType.INT, (iload(0),)))
        il = ILMethod(method_shell(), [b0, b1, b2, b3], 1)
        assert run_pass(TailDuplication(), il)
        assert il.blocks[1].terminator.op is ILOp.RETURN
        assert il.blocks[2].terminator.op is ILOp.RETURN


class TestBranchReversal:
    def test_trampoline_removed_from_hot_path(self):
        b0 = ILBlock(0)
        b0.append(Node(ILOp.IF, JType.VOID, (iload(0),), ("ne", 2)))
        b0.fallthrough = 1
        b1 = ILBlock(1)  # trampoline: only a goto
        b1.append(Node(ILOp.GOTO, value=3))
        b2 = ILBlock(2)
        b2.append(Node(ILOp.RETURN, JType.INT, (iconst(1),)))
        b3 = ILBlock(3)
        b3.append(Node(ILOp.RETURN, JType.INT, (iconst(2),)))
        il = ILMethod(method_shell(), [b0, b1, b2, b3], 1)
        assert run_pass(BranchReversal(), il)
        relop, target = il.blocks[0].terminator.value
        assert relop == "eq" and target == 3
        assert il.blocks[0].fallthrough == 2


class TestLoopCanonicalization:
    def test_preheader_created(self, sum_to_method):
        il, _ = generate_il(sum_to_method)
        nblocks = len(il.blocks)
        assert run_pass(LoopCanonicalization(), il)
        assert len(il.blocks) == nblocks + 1
        assert il.notes["preheaders"]

    def test_idempotent(self, sum_to_method):
        il, _ = generate_il(sum_to_method)
        run_pass(LoopCanonicalization(), il)
        ctx = PassContext(il)
        assert not LoopCanonicalization().execute(ctx)

    def test_semantics_preserved(self, sum_to_method):
        from repro.jit.codegen.lower import lower_method
        from tests.conftest import vm_with
        il, _ = generate_il(sum_to_method)
        run_pass(LoopCanonicalization(), il)
        code, _ = lower_method(il)
        vm = vm_with(sum_to_method)
        value, _t = code.execute(vm, [(10, JType.INT)])
        assert value == 45
