"""Property tests: every algebraic rewrite preserves evaluation.

Random pure integer expression trees are generated with hypothesis,
evaluated directly with the interpreter's arithmetic, rewritten by each
simplification pass, and evaluated again -- the two results must agree
for every environment.
"""

import math

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.jit.ir.block import ILBlock, ILMethod
from repro.jit.ir.tree import BINARY_ALU, ILOp, Node
from repro.jit.opt.base import PassContext
from repro.jit.opt.rewrite import fold_binary, fold_unary
from repro.jit.opt.simplify import SIMPLIFY_PASSES
from repro.jvm.bytecode import Instr, JType, Op, mask_integral
from repro.jvm.classfile import JMethod

NUM_SLOTS = 4

_BIN_OPS = [ILOp.ADD, ILOp.SUB, ILOp.MUL, ILOp.SHL, ILOp.SHR, ILOp.OR,
            ILOp.AND, ILOp.XOR, ILOp.CMP]


def expr_strategy():
    leaves = st.one_of(
        st.integers(-64, 64).map(lambda v: Node.const(JType.INT, v)),
        st.integers(0, NUM_SLOTS - 1).map(
            lambda s: Node.load(s, JType.INT)),
    )

    def binary(children):
        return st.tuples(st.sampled_from(_BIN_OPS), children,
                         children).map(
            lambda t: Node(t[0], JType.INT, (t[1], t[2])))

    def unary(children):
        return children.map(
            lambda c: Node(ILOp.NEG, JType.INT, (c,)))

    return st.recursive(leaves,
                        lambda ch: st.one_of(binary(ch), unary(ch)),
                        max_leaves=12)


def evaluate(node, env):
    """Reference evaluation of a pure INT tree."""
    if node.op is ILOp.CONST:
        return mask_integral(int(node.value), JType.INT)
    if node.op is ILOp.LOAD:
        return env[node.value]
    if node.op is ILOp.NEG:
        return mask_integral(-evaluate(node.children[0], env),
                             JType.INT)
    if node.op in BINARY_ALU:
        a = evaluate(node.children[0], env)
        b = evaluate(node.children[1], env)
        out = fold_binary(node.op, JType.INT, a, b)
        assert out is not None
        return out
    raise AssertionError(f"unexpected op {node.op}")


def wrap(expr):
    method = JMethod("P", "p", (JType.INT,) * NUM_SLOTS, JType.INT,
                     [Instr(Op.LOADCONST, JType.INT, 0),
                      Instr(Op.RETVAL)], num_temps=0)
    block = ILBlock(0)
    block.append(Node(ILOp.STORE, JType.INT, (expr,), NUM_SLOTS))
    block.append(Node(ILOp.RETURN, JType.INT,
                      (Node.load(NUM_SLOTS, JType.INT),)))
    return ILMethod(method, [block], NUM_SLOTS + 1)


@settings(max_examples=120, deadline=None)
@given(expr=expr_strategy(), env_seed=st.integers(0, 1000))
def test_simplify_passes_preserve_value(expr, env_seed):
    rng = np.random.default_rng(env_seed)
    env = [int(v) for v in rng.integers(-100, 100, size=NUM_SLOTS)]
    expected = evaluate(expr, env)
    il = wrap(expr.copy())
    ctx = PassContext(il)
    for pass_obj in SIMPLIFY_PASSES:
        pass_obj.execute(ctx)
    il.check()
    rewritten = il.blocks[0].treetops[0].children[0]
    assert evaluate(rewritten, env) == expected


@settings(max_examples=200, deadline=None)
@given(a=st.integers(-2**31, 2**31 - 1),
       b=st.integers(-2**31, 2**31 - 1),
       op=st.sampled_from(list(BINARY_ALU)))
def test_fold_binary_matches_interpreter(a, b, op):
    """fold_binary must agree with the interpreter's ALU for ints."""
    from repro.jvm.interpreter import Interpreter, promote
    from repro.jvm.vm import VirtualMachine
    from repro.jvm.asm import Assembler

    folded = fold_binary(op, JType.INT, a, b)
    if folded is None:  # division by zero: interpreter throws
        assert op in (ILOp.DIV, ILOp.REM) and b == 0
        return
    asm = Assembler()
    asm.load(0).load(1)
    opname = {ILOp.ADD: "add", ILOp.SUB: "sub", ILOp.MUL: "mul",
              ILOp.DIV: "div", ILOp.REM: "rem", ILOp.SHL: "shl",
              ILOp.SHR: "shr", ILOp.OR: "or_", ILOp.AND: "and_",
              ILOp.XOR: "xor", ILOp.CMP: "cmp"}[op]
    getattr(asm, opname)()
    asm.retval()
    from repro.jvm.classfile import JClass, JMethod
    method = JMethod("F", "f", (JType.INT, JType.INT), JType.INT,
                     asm.assemble(), num_temps=0)
    jclass = JClass("F")
    jclass.add_method(method)
    vm = VirtualMachine()
    vm.load_class(jclass)
    assert vm.call(method.signature, a, b) == folded


@settings(max_examples=100, deadline=None)
@given(v=st.integers(-2**40, 2**40),
       to=st.sampled_from([JType.BYTE, JType.CHAR, JType.SHORT,
                           JType.INT, JType.LONG]))
def test_fold_unary_cast_matches_masking(v, to):
    assert fold_unary(ILOp.CAST, to, v) == mask_integral(v, to)
