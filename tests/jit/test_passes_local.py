"""Block-local dataflow passes."""

from repro.jit.ir.block import ILBlock, ILMethod
from repro.jit.ir.tree import ILOp, Node
from repro.jit.opt.base import PassContext
from repro.jit.opt.localopts import (
    ArrayOpSimplification,
    LocalCSE,
    LocalConstantPropagation,
    LocalCopyPropagation,
    LocalDCE,
    LocalDeadStoreElimination,
    RedundantLoadElimination,
)
from repro.jvm.bytecode import Instr, JType, Op
from repro.jvm.classfile import Handler, JMethod


def make_il(treetops, num_locals=8, handlers=(), num_args=1):
    method = JMethod("T", "m", (JType.INT,) * num_args, JType.INT,
                     [Instr(Op.LOADCONST, JType.INT, 0),
                      Instr(Op.RETVAL)], num_temps=0)
    block = ILBlock(0)
    for tt in treetops:
        block.append(tt)
    if block.terminator is None:
        block.append(Node(ILOp.RETURN, JType.INT,
                          (Node.const(JType.INT, 0),)))
    il = ILMethod(method, [block], num_locals, handlers=list(handlers))
    il.check()
    return il


def run_pass(pass_obj, il):
    changed = pass_obj.execute(PassContext(il))
    il.check()
    return changed


def iload(s):
    return Node.load(s, JType.INT)


def iconst(v):
    return Node.const(JType.INT, v)


def istore(s, rhs):
    return Node(ILOp.STORE, JType.INT, (rhs,), s)


class TestLocalConstantPropagation:
    def test_const_forwarded(self):
        il = make_il([
            istore(1, iconst(7)),
            istore(2, Node(ILOp.ADD, JType.INT, (iload(1), iload(1)))),
        ])
        assert run_pass(LocalConstantPropagation(), il)
        add = il.blocks[0].treetops[1].children[0]
        assert all(c.is_const() and c.value == 7 for c in add.children)

    def test_killed_by_redefinition(self):
        il = make_il([
            istore(1, iconst(7)),
            istore(1, iload(0)),
            istore(2, iload(1)),
        ])
        run_pass(LocalConstantPropagation(), il)
        assert il.blocks[0].treetops[2].children[0].op is ILOp.LOAD

    def test_killed_by_inc(self):
        il = make_il([
            istore(1, iconst(7)),
            Node(ILOp.INC, JType.INT, (), (1, 1)),
            istore(2, iload(1)),
        ])
        run_pass(LocalConstantPropagation(), il)
        assert il.blocks[0].treetops[2].children[0].op is ILOp.LOAD


class TestLocalCopyPropagation:
    def test_copy_forwarded(self):
        il = make_il([
            istore(1, iload(0)),
            istore(2, iload(1)),
        ])
        assert run_pass(LocalCopyPropagation(), il)
        assert il.blocks[0].treetops[1].children[0].value == 0

    def test_kill_on_source_redefinition(self):
        il = make_il([
            istore(1, iload(0)),
            istore(0, iconst(5)),
            istore(2, iload(1)),
        ])
        run_pass(LocalCopyPropagation(), il)
        assert il.blocks[0].treetops[2].children[0].value == 1


class TestLocalCSE:
    def _big_expr(self):
        return Node(ILOp.MUL, JType.INT,
                    (Node(ILOp.ADD, JType.INT, (iload(0), iconst(3))),
                     iload(0)))

    def test_repeated_expression_commoned(self):
        il = make_il([
            istore(1, self._big_expr()),
            istore(2, self._big_expr()),
        ], num_locals=4)
        before = il.count_nodes()
        assert run_pass(LocalCSE(), il)
        assert il.count_nodes() < before
        # The second occurrence must now be a plain load.
        assert il.blocks[0].treetops[-2].children[0].op is ILOp.LOAD

    def test_kill_on_operand_store(self):
        il = make_il([
            istore(1, self._big_expr()),
            istore(0, iconst(9)),
            istore(2, self._big_expr()),
        ], num_locals=4)
        assert not run_pass(LocalCSE(), il)

    def test_small_expressions_not_commoned(self):
        il = make_il([
            istore(1, iload(0)),
            istore(2, iload(0)),
        ])
        assert not run_pass(LocalCSE(), il)


class TestRedundantLoadElimination:
    def _field_read(self):
        return Node(ILOp.GETFIELD, JType.INT,
                    (Node.load(0, JType.OBJECT),), "f")

    def _method(self, treetops):
        method = JMethod("T", "m", (JType.OBJECT,), JType.INT,
                         [Instr(Op.LOADCONST, JType.INT, 0),
                          Instr(Op.RETVAL)], num_temps=0)
        block = ILBlock(0)
        for tt in treetops:
            block.append(tt)
        block.append(Node(ILOp.RETURN, JType.INT, (iconst(0),)))
        il = ILMethod(method, [block], 8)
        return il

    def test_repeated_field_read_commoned(self):
        il = self._method([
            istore(1, self._field_read()),
            istore(2, self._field_read()),
        ])
        assert run_pass(RedundantLoadElimination(), il)
        assert il.blocks[0].treetops[-2].children[0].op is ILOp.LOAD

    def test_killed_by_putfield(self):
        il = self._method([
            istore(1, self._field_read()),
            Node(ILOp.PUTFIELD, JType.INT,
                 (Node.load(0, JType.OBJECT), iconst(5)), "f"),
            istore(2, self._field_read()),
        ])
        assert not run_pass(RedundantLoadElimination(), il)

    def test_killed_by_call(self):
        call = Node(ILOp.CALL, JType.VOID, (), "X.x()VOID")
        il = self._method([
            istore(1, self._field_read()),
            Node(ILOp.TREETOP, JType.VOID, (call,)),
            istore(2, self._field_read()),
        ])
        assert not run_pass(RedundantLoadElimination(), il)


class TestLocalDeadStoreElimination:
    def test_overwritten_store_removed(self):
        il = make_il([
            istore(1, iconst(1)),
            istore(1, iconst(2)),
        ])
        assert run_pass(LocalDeadStoreElimination(), il)
        stores = [t for t in il.blocks[0].treetops
                  if t.op is ILOp.STORE]
        assert len(stores) == 1
        assert stores[0].children[0].value == 2

    def test_intervening_read_blocks_removal(self):
        il = make_il([
            istore(1, iconst(1)),
            istore(2, iload(1)),
            istore(1, iconst(2)),
        ])
        assert not run_pass(LocalDeadStoreElimination(), il)

    def test_handler_coverage_blocks_removal(self):
        il = make_il([
            istore(1, iconst(1)),
            istore(1, iconst(2)),
        ])
        from repro.jit.ir.block import ILHandler
        il.handlers = [ILHandler({0}, 0, "java/lang/Throwable")]
        assert not run_pass(LocalDeadStoreElimination(), il)


class TestLocalDCE:
    def test_pure_treetop_removed(self):
        il = make_il([
            Node(ILOp.TREETOP, JType.VOID,
                 (Node(ILOp.ADD, JType.INT, (iload(0), iconst(1))),)),
        ])
        assert run_pass(LocalDCE(), il)
        assert len(il.blocks[0].treetops) == 1  # only the return

    def test_throwing_treetop_kept(self):
        getf = Node(ILOp.GETFIELD, JType.INT,
                    (Node.load(0, JType.OBJECT),), "f")
        il = make_il([Node(ILOp.TREETOP, JType.VOID, (getf,))])
        assert not run_pass(LocalDCE(), il)


class TestArrayOpSimplification:
    def test_zero_length_copy_with_zero_offsets_removed(self):
        ref = Node.load(0, JType.ADDRESS)
        copy = Node(ILOp.ARRAYCOPY, JType.VOID,
                    (ref, iconst(0), ref.copy(), iconst(0), iconst(0)))
        il = make_il([copy])
        assert run_pass(ArrayOpSimplification(), il)

    def test_nonzero_offset_kept(self):
        ref = Node.load(0, JType.ADDRESS)
        copy = Node(ILOp.ARRAYCOPY, JType.VOID,
                    (ref, iconst(5), ref.copy(), iconst(0), iconst(0)))
        il = make_il([copy])
        assert not run_pass(ArrayOpSimplification(), il)

    def test_self_comparison_folds(self):
        cmp = Node(ILOp.ARRAYCMP, JType.INT,
                   (Node.load(0, JType.ADDRESS),
                    Node.load(0, JType.ADDRESS)))
        il = make_il([istore(1, cmp)])
        assert run_pass(ArrayOpSimplification(), il)
        assert il.blocks[0].treetops[0].children[0].value == 0
