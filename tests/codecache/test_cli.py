"""The ``repro cache`` and ``repro warmstart`` CLI subcommands."""

import os

import pytest

from repro.__main__ import main
from repro.codecache import CodeCache, CodeCacheConfig
from repro.jit.compiler import JitCompiler
from repro.jit.plans import OptLevel

from tests.codecache.test_store import add_method, compile_one


def populate(tmp_path, n=3):
    directory = str(tmp_path / "cache")
    cache = CodeCache(CodeCacheConfig(enabled=True, directory=directory))
    for i in range(n):
        vm, compiled = compile_one(add_method(extra=i, name=f"m{i}"))
        cache.store(compiled, resolver=vm._methods.get)
    return directory, cache


def test_cache_stats(tmp_path, capsys):
    directory, _cache = populate(tmp_path)
    main(["cache", "stats", "--dir", directory])
    out = capsys.readouterr().out
    assert "3 entries" in out
    assert "warm" in out


def test_cache_verify_flags_corruption(tmp_path, capsys):
    directory, cache = populate(tmp_path)
    victim = cache.entries()[0].path
    with open(victim, "r+b") as fh:
        fh.seek(12)
        fh.write(b"\x00\x00\x00\x00")
    assert main(["cache", "verify", "--dir", directory]) == 1
    out = capsys.readouterr().out
    assert "2 entries ok, 1 corrupt" in out
    assert "BAD" in out


def test_cache_verify_clean(tmp_path, capsys):
    directory, _cache = populate(tmp_path)
    assert main(["cache", "verify", "--dir", directory]) in (0, None)
    assert "3 entries ok, 0 corrupt" in capsys.readouterr().out


def test_cache_prune(tmp_path, capsys):
    directory, _cache = populate(tmp_path)
    main(["cache", "prune", "--dir", directory, "--max-bytes", "0"])
    out = capsys.readouterr().out
    assert "evicted 3" in out
    assert os.listdir(os.path.join(directory, "entries")) == []


def test_run_with_cache_dir(tmp_path, capsys):
    directory = str(tmp_path / "cache")
    main(["run", "compress", "--cache-dir", directory])
    first = capsys.readouterr().out
    assert "code cache:" in first
    main(["run", "compress", "--cache-dir", directory])
    second = capsys.readouterr().out
    assert "hit rate" in second
    # The second invocation warm-starts from the first one's entries.
    assert "hits 0," in first
    assert "hits 0," not in second


def test_warmstart_command(tmp_path, capsys):
    main(["warmstart", "compress",
          "--cache-dir", str(tmp_path / "cache")])
    out = capsys.readouterr().out
    assert "start-up speedup" in out
    assert "compile-cycle reduction" in out
    assert "warm+prof" in out
    assert "speedup (cold/warm+profiles)" in out


def test_warmstart_no_profiles_is_the_pr1_pair(tmp_path, capsys):
    main(["warmstart", "compress", "--no-profiles",
          "--cache-dir", str(tmp_path / "cache")])
    out = capsys.readouterr().out
    assert "start-up speedup" in out
    assert "warm+prof" not in out


def test_run_with_tiering_and_profiles(tmp_path, capsys):
    directory = str(tmp_path / "cache")
    flags = ["--cache-dir", directory, "--cache-tiering",
             "--cache-profiles"]
    main(["run", "compress"] + flags)
    capsys.readouterr()
    main(["run", "compress"] + flags)
    second = capsys.readouterr().out
    assert "tier skips" in second


class TestCliErrorPaths:
    """Bad input earns a message, never a traceback."""

    def test_cache_stats_missing_dir(self, tmp_path):
        missing = str(tmp_path / "nowhere")
        with pytest.raises(SystemExit) as exc:
            main(["cache", "stats", "--dir", missing])
        assert "no such cache directory" in str(exc.value.code)

    def test_cache_verify_missing_dir(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["cache", "verify", "--dir", str(tmp_path / "gone")])
        assert "no such cache directory" in str(exc.value.code)

    def test_cache_prune_missing_dir(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["cache", "prune", "--dir", str(tmp_path / "gone")])
        assert "no such cache directory" in str(exc.value.code)

    def test_cache_stats_empty_dir(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        main(["cache", "stats", "--dir", str(empty)])
        assert "0 entries" in capsys.readouterr().out

    def test_cache_verify_empty_dir(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["cache", "verify", "--dir", str(empty)]) in (0,
                                                                  None)
        assert "0 entries ok, 0 corrupt" in capsys.readouterr().out

    def test_cache_stats_all_entries_garbage(self, tmp_path, capsys):
        directory, cache = populate(tmp_path, n=2)
        for entry in cache.entries():
            with open(entry.path, "wb") as fh:
                fh.write(b"\x00" * 64)
        main(["cache", "stats", "--dir", directory])
        out = capsys.readouterr().out
        assert "2 corrupt entries" in out

    def test_run_readonly_on_missing_cache(self, tmp_path):
        with pytest.raises(SystemExit) as exc:
            main(["run", "compress", "--cache-dir",
                  str(tmp_path / "gone"), "--cache-readonly"])
        assert "no such cache directory" in str(exc.value.code)

    def test_run_policy_flags_require_cache_dir(self):
        for flag in ("--cache-tiering", "--cache-profiles"):
            with pytest.raises(SystemExit) as exc:
                main(["run", "compress", flag])
            assert "--cache-dir" in str(exc.value.code)
