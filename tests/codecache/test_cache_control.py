"""The cache-aware controller policy: tiering and profile seeding.

Deterministic (non-property) tests of the two ``ControlConfig`` flags
added with the profile-directed warm starts:

* ``cache_tiering`` -- a compile request may install a cached body of a
  *higher* level directly, skipping the COLD/WARM stepping stones.
* ``cache_profiles`` -- gathered branch profiles are written back into
  the collector's cache entry, and warm hits seed live instrumentation
  from the persisted profile so the first scorching recompilation is
  profile-directed.

Both flags default off; with a cold or absent cache they must be
cycle-identical no-ops.
"""

import dataclasses

import pytest

from repro.codecache import CodeCache, CodeCacheConfig
from repro.jit.compiler import JitCompiler
from repro.jit.control import CompilationManager, ControlConfig
from repro.jit.plans import OptLevel

from tests.codecache.test_store import add_method
from tests.conftest import vm_with

#: Low, loop-class-independent triggers: with sampling hotness off and
#: immediate installs, every level is requested exactly at its trigger
#: count, in order, so ~300 host-side calls walk a method through the
#: whole tier ladder -- and the VERY_HOT body's instrumentation runs
#: for 120 invocations before the SCORCHING (FDO) request consumes it.
LOW_TRIGGERS = {
    OptLevel.COLD: (3, 3, 3),
    OptLevel.WARM: (14, 14, 14),
    OptLevel.HOT: (40, 40, 40),
    OptLevel.VERY_HOT: (80, 80, 80),
    OptLevel.SCORCHING: (200, 200, 200),
}


def config(**overrides):
    return ControlConfig(triggers=dict(LOW_TRIGGERS),
                         sample_weight=0.0, immediate_install=True,
                         **overrides)


def open_cache(tmp_path, **overrides):
    return CodeCache(CodeCacheConfig(
        enabled=True, directory=str(tmp_path / "cc"), **overrides))


class RecordingCompiler(JitCompiler):
    """Captures the profile argument of every FDO compilation."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.fdo_profiles = []

    def compile(self, method, level, modifier=None, strategy=None,
                profile=None):
        if profile:
            self.fdo_profiles.append(
                (method.signature, level, dict(profile)))
        return super().compile(method, level, modifier=modifier,
                               strategy=strategy, profile=profile)


def drive(cfg, cache, calls=300, arg=9, compiler_cls=JitCompiler):
    """Run *calls* invocations of a fresh loop method under *cfg*."""
    method = add_method()
    vm = vm_with(method)
    compiler = compiler_cls(method_resolver=vm._methods.get)
    manager = CompilationManager(compiler, config=cfg, code_cache=cache)
    vm.attach_manager(manager)
    result = None
    for _ in range(calls):
        result = vm.call(method.signature, arg)
    return vm, manager, compiler, result


class TestColdCacheIsANoOp:
    def test_policy_flags_with_cold_cache_are_cycle_identical(
            self, tmp_path):
        """The acceptance bar: cache disabled, or enabled-but-cold with
        both policy flags on, produce identical virtual-clock traces --
        probes and profile write-backs live outside the clock."""
        base_vm, base_mgr, _c, base_out = drive(config(), None)
        flags = config(cache_tiering=True, cache_profiles=True)
        vm, mgr, _c, out = drive(flags, open_cache(tmp_path))
        assert out == base_out
        assert vm.clock.now() == base_vm.clock.now()
        assert mgr.total_compile_cycles == base_mgr.total_compile_cycles
        assert ([(r.level, r.compile_cycles, r.installed_at)
                 for r in mgr.records]
                == [(r.level, r.compile_cycles, r.installed_at)
                    for r in base_mgr.records])

    def test_flags_off_warm_run_matches_pr1_policy(self, tmp_path):
        """With both flags off a populated cache behaves exactly as the
        plain load-per-requested-level policy: no tier skips, no
        seeding."""
        drive(config(), open_cache(tmp_path))
        cache = open_cache(tmp_path)
        _vm, mgr, _c, _out = drive(config(), cache)
        assert cache.stats.hits > 0
        assert cache.stats.tier_skips == 0
        assert cache.stats.profile_seeds == 0


class TestProfilePersistence:
    def test_scorching_request_writes_profile_back(self, tmp_path):
        cache = open_cache(tmp_path)
        _vm, mgr, _c, _out = drive(config(cache_profiles=True), cache)
        levels = [r.level for r in mgr.records]
        assert OptLevel.SCORCHING in levels
        assert cache.stats.profile_stores == 1
        # The write-back landed in the VERY_HOT collector's entry.
        ok, bad = cache.verify()
        assert not bad
        with_profile = [meta for _e, meta in ok if meta["has_profile"]]
        assert len(with_profile) == 1
        assert with_profile[0]["level"] is OptLevel.VERY_HOT
        assert with_profile[0]["profile_points"] > 0

    def test_warm_hit_seeds_instrumentation(self, tmp_path):
        drive(config(cache_profiles=True), open_cache(tmp_path))
        cache = open_cache(tmp_path)
        _vm, _mgr, _c, _out = drive(config(cache_profiles=True), cache)
        assert cache.stats.profile_hits >= 1
        assert cache.stats.profile_seeds == 1

    def test_seeding_respects_the_flag(self, tmp_path):
        """A persisted profile is ignored unless cache_profiles is on
        in *this* run, so the flag alone controls the behavior."""
        drive(config(cache_profiles=True), open_cache(tmp_path))
        cache = open_cache(tmp_path)
        _vm, _mgr, _c, _out = drive(config(), cache)
        assert cache.stats.profile_hits >= 1  # the entry carries one
        assert cache.stats.profile_seeds == 0  # but nobody consumed it

    def test_first_scorching_consumes_persisted_profile(self, tmp_path):
        """The acceptance criterion: after a warm start, the first
        SCORCHING compilation is fed the profile persisted in the
        cache.  A sentinel profile point at an impossible bytecode pc
        proves the data came from the entry, not from this run's
        re-gathering."""
        method = add_method()
        vm = vm_with(method)
        compiler = JitCompiler(method_resolver=vm._methods.get)
        collector = compiler.compile(method, OptLevel.VERY_HOT)
        cache = open_cache(tmp_path)
        sentinel = {(999, True): 7}
        assert cache.store(collector, resolver=vm._methods.get,
                           profile=sentinel)

        warm_cache = open_cache(tmp_path)
        _vm, mgr, rec, _out = drive(config(cache_profiles=True),
                                    warm_cache,
                                    compiler_cls=RecordingCompiler)
        assert warm_cache.stats.profile_seeds == 1
        assert rec.fdo_profiles, "no profile-directed compilation ran"
        signature, level, profile = rec.fdo_profiles[0]
        assert level is OptLevel.SCORCHING
        # The sentinel survived store -> load -> seed -> FDO consume,
        # alongside the counts this run's instrumentation added.
        assert profile[(999, True)] >= 7
        assert len(profile) > 1

    def test_loaded_bodies_are_never_written_back(self, tmp_path):
        """Write-back only covers bodies compiled this run: a loaded
        body's compile_cycles was clobbered to the relocation cost, so
        re-storing it would corrupt the cycles-saved accounting."""
        drive(config(cache_profiles=True), open_cache(tmp_path))
        cache = open_cache(tmp_path)
        _vm, _mgr, _c, _out = drive(config(cache_profiles=True), cache)
        # The second run's collector was a cache hit; its entry already
        # has the profile, so no second write-back happens.
        assert cache.stats.profile_stores == 0
        # And the cycles-saved credit of a third run is still based on
        # real compile costs, not relocation costs.
        cache3 = open_cache(tmp_path)
        _vm, _mgr, _c, _out = drive(config(cache_profiles=True), cache3)
        assert cache3.stats.cycles_saved > 0


class TestCacheTiering:
    def test_warm_start_installs_best_cached_level_first(self, tmp_path):
        cold_cache = open_cache(tmp_path)
        _vm, cold_mgr, _c, cold_out = drive(
            config(cache_profiles=True), cold_cache)
        cold_levels = [r.level for r in cold_mgr.records]
        assert cold_levels == [OptLevel.COLD, OptLevel.WARM,
                               OptLevel.HOT, OptLevel.VERY_HOT,
                               OptLevel.SCORCHING]

        cache = open_cache(tmp_path)
        flags = config(cache_tiering=True, cache_profiles=True)
        _vm, mgr, _c, out = drive(flags, cache)
        assert out == cold_out
        warm_levels = [r.level for r in mgr.records]
        # First request (at the COLD trigger) installs the best cached
        # body -- VERY_HOT; SCORCHING was never cached (FDO bodies are
        # not loadable) and is recompiled fresh, profile-directed.
        assert warm_levels == [OptLevel.VERY_HOT, OptLevel.SCORCHING]
        assert cache.stats.tier_skips == 1
        assert cache.stats.profile_seeds == 1
        assert len(mgr.records) < len(cold_mgr.records)

    def test_tiering_never_exceeds_max_level(self, tmp_path):
        drive(config(cache_profiles=True), open_cache(tmp_path))
        cache = open_cache(tmp_path)
        capped = config(cache_tiering=True,
                        max_level=OptLevel.WARM)
        _vm, mgr, _c, _out = drive(capped, cache)
        assert all(r.level <= OptLevel.WARM for r in mgr.records)

    def test_tiering_on_cold_cache_climbs_normally(self, tmp_path):
        flags = config(cache_tiering=True, cache_profiles=True)
        _vm, mgr, _c, _out = drive(flags, open_cache(tmp_path))
        assert [r.level for r in mgr.records] == [
            OptLevel.COLD, OptLevel.WARM, OptLevel.HOT,
            OptLevel.VERY_HOT, OptLevel.SCORCHING]


class TestModelDigestKeying:
    class _FixedDigestStrategy:
        prediction_cost_cycles = 0

        def __init__(self, digest):
            self._digest = digest

        def choose_modifier(self, method, level, features):
            return None  # null modifier: plans identical across digests

        def model_digest(self):
            return self._digest

    def test_retrained_model_misses_old_entries(self, tmp_path):
        cfg = config()
        cache = open_cache(tmp_path)
        method = add_method()
        vm = vm_with(method)
        compiler = JitCompiler(method_resolver=vm._methods.get)
        manager = CompilationManager(
            compiler, strategy=self._FixedDigestStrategy("aaaa"),
            config=cfg, code_cache=cache)
        vm.attach_manager(manager)
        for _ in range(8):
            vm.call(method.signature, 9)
        assert cache.stats.stores > 0

        # Same code, same plans -- but a different model digest: every
        # probe misses, nothing is invalidated (the old model's entries
        # stay valid for the old model).
        cache2 = open_cache(tmp_path)
        vm2 = vm_with(add_method())
        compiler2 = JitCompiler(method_resolver=vm2._methods.get)
        manager2 = CompilationManager(
            compiler2, strategy=self._FixedDigestStrategy("bbbb"),
            config=dataclasses.replace(cfg), code_cache=cache2)
        vm2.attach_manager(manager2)
        for _ in range(8):
            vm2.call(method.signature, 9)
        assert cache2.stats.hits == 0
        assert cache2.stats.invalidations == 0

        # The original model set still hits its own entries.
        cache3 = open_cache(tmp_path)
        vm3 = vm_with(add_method())
        compiler3 = JitCompiler(method_resolver=vm3._methods.get)
        manager3 = CompilationManager(
            compiler3, strategy=self._FixedDigestStrategy("aaaa"),
            config=dataclasses.replace(cfg), code_cache=cache3)
        vm3.attach_manager(manager3)
        for _ in range(8):
            vm3.call(method.signature, 9)
        assert cache3.stats.hits > 0
