"""Differential parity: profile-seeded warm starts never change behavior.

The keystone property of the profile-directed warm start: for randomly
generated programs, a VM that loads cached bodies, skips tiering
stepping stones and seeds branch instrumentation from persisted
profiles produces **bit-identical outcomes** -- the same result or
guest exception on every iteration -- as the cold VM that compiled
everything from scratch, at every optimization level reached and under
arbitrary plan modifiers.  Allocation and monitor-operation counts are
*not* compared across tier timelines: stackAllocation and
monitorElision legitimately remove them at higher levels, and tiering
exists precisely to reach those levels sooner.  A cold cache, however,
must be a perfect no-op: identical outcomes *and* identical allocation
/ monitor counts *and* an identical virtual-clock trace.

Mirrors the generator setup of ``tests/jit/test_equivalence.py`` /
``test_serialize.py``.
"""

import tempfile
import zlib

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.codecache import CodeCache, CodeCacheConfig
from repro.jit.compiler import JitCompiler
from repro.jit.control import CompilationManager, ControlConfig
from repro.jit.modifiers import random_modifiers
from repro.jit.plans import OptLevel
from repro.jvm.vm import VirtualMachine
from repro.workloads.generator import generate_program
from repro.workloads.profiles import WorkloadProfile

#: Aggressively low triggers: generated entry points run a few dozen
#: invocation-equivalents, so this ladder pushes the hot ones through
#: every level (sampling hotness stays on -- timing-dependent level
#: choices are part of what must not change behavior).
LOW_TRIGGERS = {
    OptLevel.COLD: (2, 2, 2),
    OptLevel.WARM: (5, 4, 3),
    OptLevel.HOT: (9, 7, 5),
    OptLevel.VERY_HOT: (14, 11, 8),
    OptLevel.SCORCHING: (22, 18, 13),
}


def small_profile(seed):
    return WorkloadProfile(
        name=f"pp{seed}", n_methods=6, loop_weight=0.7,
        heavy_loop_weight=0.3, fp_weight=0.4, alloc_weight=0.4,
        array_weight=0.5, exception_weight=0.3, decimal_weight=0.2,
        unsafe_weight=0.1, sync_weight=0.2, call_weight=0.5,
        loop_iters=6, heavy_loop_iters=20, phase_calls=3,
        sweep_repeats=1)


class SeededModifierStrategy:
    """Deterministic per-(method, level) random modifiers + a digest.

    Stands in for a trained model: plan modifiers vary arbitrarily
    across methods and levels, but identically across the cold and
    warm runs of one example -- and the digest keys the cache.
    """

    prediction_cost_cycles = 0

    def __init__(self, seed):
        self.seed = seed

    def choose_modifier(self, method, level, features):
        salt = zlib.crc32(method.signature.encode("utf-8"))
        rng = np.random.default_rng(
            (self.seed, int(level), salt))
        return random_modifiers(rng, 1)[0]

    def model_digest(self):
        return f"seeded-{self.seed}"


def run_vm(program, mod_seed, cache, iterations=3, entry_arg=5,
           **config_overrides):
    config = ControlConfig(triggers={lv: tuple(t) for lv, t
                                     in LOW_TRIGGERS.items()},
                           **config_overrides)
    vm = VirtualMachine()
    vm.load_program(program)
    compiler = JitCompiler(method_resolver=vm._methods.get)
    manager = CompilationManager(
        compiler, strategy=SeededModifierStrategy(mod_seed),
        config=config, code_cache=cache)
    vm.attach_manager(manager)
    outcomes = []
    for _ in range(iterations):
        try:
            outcomes.append(("ok", vm.call(program.entry, entry_arg)))
        except Exception as exc:  # guest exception: a valid outcome
            outcomes.append(("raised", type(exc).__name__, str(exc)))
    observable = (tuple(outcomes), vm.stats["allocations"],
                  vm.stats["monitor_ops"])
    return observable, vm, manager


def outcomes_of(observable):
    return observable[0]


@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2_000), mod_seed=st.integers(0, 100))
def test_profile_seeded_warm_run_is_observably_identical(seed, mod_seed):
    rng = np.random.default_rng(seed)
    program = generate_program(small_profile(seed), rng)
    with tempfile.TemporaryDirectory(prefix="repro-parity-") as tmp:
        def cache():
            return CodeCache(CodeCacheConfig(enabled=True,
                                             directory=tmp))

        baseline, base_vm, _m = run_vm(program, mod_seed, None)

        cold, cold_vm, _m = run_vm(program, mod_seed, cache(),
                                   cache_tiering=True,
                                   cache_profiles=True)
        # Cold cache + policy flags: a perfect no-op, cycle-identical.
        assert cold == baseline
        assert cold_vm.clock.now() == base_vm.clock.now()

        warm, _vm, warm_mgr = run_vm(program, mod_seed, cache(),
                                     cache_tiering=True,
                                     cache_profiles=True)
        # Warm + profiles: timing (and tier-dependent optimization
        # effects) may differ, outcomes must not.
        assert outcomes_of(warm) == outcomes_of(baseline)
        assert warm_mgr.code_cache.stats.hits > 0


@settings(max_examples=3, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 2_000))
def test_plain_warm_run_is_observably_identical(seed):
    """The PR-1 policy (no flags) under the same differential harness:
    loaded bodies alone never change behavior either."""
    rng = np.random.default_rng(seed)
    program = generate_program(small_profile(seed), rng)
    with tempfile.TemporaryDirectory(prefix="repro-parity-") as tmp:
        def cache():
            return CodeCache(CodeCacheConfig(enabled=True,
                                             directory=tmp))

        baseline, _vm, _m = run_vm(program, 7, None)
        cold, _vm, _m = run_vm(program, 7, cache())
        warm, _vm, _m = run_vm(program, 7, cache())
        assert cold == baseline
        assert outcomes_of(warm) == outcomes_of(baseline)
